// Livemonitor: the control center as an *online* algorithm (Section VII-A).
// Meters stream readings over TCP; a man-in-the-middle begins falsifying
// one consumer's readings mid-stream; the monitor — a streaming KLD window
// per consumer, seeded with trusted history (Section VII-D) — raises an
// alert hours into the attack rather than waiting for a full week of data.
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/ami"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/meter"
	"repro/internal/timeseries"
)

const (
	consumers  = 4
	trainWeeks = 28
	victimIdx  = 1
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livemonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	ds, err := dataset.Generate(dataset.Config{Residential: consumers, Weeks: trainWeeks + 1, Seed: 114})
	if err != nil {
		return err
	}

	// Enroll every consumer with the online monitor.
	monitor := core.NewMonitor()
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		train, _, err := c.Demand.Split(trainWeeks)
		if err != nil {
			return err
		}
		id := fmt.Sprintf("meter-%d", c.ID)
		if err := monitor.Watch(id, train, detect.KLDConfig{Significance: 0.05}); err != nil {
			return err
		}
	}
	fmt.Printf("monitoring %d consumers online\n", monitor.Watched())

	// AMI plumbing: head-end, and a MITM on the victim's link that starts
	// zeroing readings 24 hours (48 slots) into the live week — a maximal
	// Class-2A theft beginning mid-stream.
	head := ami.New()
	headAddr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = head.Close() }()

	victimID := fmt.Sprintf("meter-%d", ds.Consumers[victimIdx].ID)
	const attackStartSlot = 48
	mitm := ami.NewMITM(headAddr, func(r ami.ReadingMsg) ami.ReadingMsg {
		if int(r.Slot)%timeseries.SlotsPerWeek >= attackStartSlot {
			r.KW = 0
		}
		return r
	})
	mitmAddr, err := mitm.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = mitm.Close() }()
	fmt.Printf("attack scheduled: %s's link falsified from hour %d of the live week\n\n",
		victimID, attackStartSlot/2)

	// Stream the live week, slot by slot across all meters — the
	// control center ingests in collection order.
	clients := make(map[string]*ami.Client, consumers)
	meters := make(map[string]*meter.SmartMeter, consumers)
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		id := fmt.Sprintf("meter-%d", c.ID)
		m, err := meter.New(id, c.Demand, meter.Config{})
		if err != nil {
			return err
		}
		meters[id] = m
		target := headAddr
		if id == victimID {
			target = mitmAddr
		}
		client, err := ami.Dial(target, id, 5*time.Second)
		if err != nil {
			return err
		}
		defer func() { _ = client.Close() }()
		clients[id] = client
	}

	liveStart := timeseries.Slot(trainWeeks * timeseries.SlotsPerWeek)
	alerts := 0
	for s := 0; s < timeseries.SlotsPerWeek; s++ {
		for id, m := range meters {
			r, err := m.Report(liveStart + timeseries.Slot(s))
			if err != nil {
				return err
			}
			if err := clients[id].Send(r); err != nil {
				return err
			}
			// The control center ingests what the head-end stored (the
			// possibly-falsified value), not what the meter sent.
			stored, ok := head.Reading(id, liveStart+timeseries.Slot(s))
			if !ok {
				return fmt.Errorf("reading for %s slot %d not collected", id, s)
			}
			alert, err := monitor.Ingest(id, stored)
			if err != nil {
				return err
			}
			if alert != nil {
				alerts++
				sinceAttack := s - attackStartSlot + 1
				fmt.Printf("ALERT at live slot %d (%s): %s flagged — %.1f hours after the attack began\n",
					s, slotClock(s), alert.ConsumerID, float64(sinceAttack)*timeseries.DeltaHours)
				fmt.Printf("      %s\n", alert.Verdict.Reason)
			}
		}
	}
	if alerts == 0 {
		return fmt.Errorf("the attack was never detected")
	}
	if !monitor.Alerted(victimID) {
		return fmt.Errorf("the alert did not implicate the victimized link %s", victimID)
	}
	fmt.Println("\nthe online monitor caught the attack mid-week — no need to wait for 336 readings.")
	return nil
}

// slotClock renders a weekly slot as day/hh:mm.
func slotClock(s int) string {
	day := s / timeseries.SlotsPerDay
	h := (s % timeseries.SlotsPerDay) / 2
	m := (s % 2) * 30
	return fmt.Sprintf("day %d %02d:%02d", day, h, m)
}
