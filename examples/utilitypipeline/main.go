// Utilitypipeline: the full control-center loop over a real TCP AMI.
// Meters stream a week of readings to the head-end; one meter's traffic
// passes through a man-in-the-middle that rewrites it into the Integrated
// ARIMA attack; the F-DETA framework then evaluates every collected series
// and names the victim.
//
//	go run ./examples/utilitypipeline
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/ami"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/meter"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

const (
	consumers  = 5
	trainWeeks = 20
	victimIdx  = 2 // the consumer whose link the attacker owns
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "utilitypipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	// Synthesize the neighbourhood: 21 weeks of data; the first 20 train
	// the utility's models, week 21 is transmitted live.
	ds, err := dataset.Generate(dataset.Config{Residential: consumers, Weeks: trainWeeks + 1, Seed: 90})
	if err != nil {
		return err
	}

	// The utility enrolls every consumer from historic (trusted) data.
	framework, err := core.New(core.Config{Factory: core.DefaultDetectorFactory(0.05)})
	if err != nil {
		return err
	}
	trains := make(map[string]timeseries.Series, consumers)
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		id := fmt.Sprintf("meter-%d", c.ID)
		train, _, err := c.Demand.Split(trainWeeks)
		if err != nil {
			return err
		}
		trains[id] = train
		if err := framework.Enroll(id, train); err != nil {
			return err
		}
	}
	fmt.Printf("enrolled %d consumers\n", consumers)

	// Start the head-end with explicit lifecycle limits: idle meters are
	// cut after a minute, and shutdown force-closes stragglers after 2s.
	head := ami.New(ami.WithConfig(ami.HeadEndConfig{
		MaxConns:     64,
		IdleTimeout:  time.Minute,
		DrainTimeout: 2 * time.Second,
	}))
	headAddr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = head.Close() }()
	fmt.Printf("head-end on %s\n", headAddr)

	// The attacker owns the victim's communication link: a MITM rewrites
	// the victim's honest readings into the Integrated ARIMA attack vector
	// (over-reporting — the victim pays for Mallory's consumption).
	victimID := fmt.Sprintf("meter-%d", ds.Consumers[victimIdx].ID)
	replica, err := detect.NewIntegratedARIMADetector(trains[victimID], detect.IntegratedARIMAConfig{})
	if err != nil {
		return err
	}
	vector, err := attack.IntegratedARIMAAttack(replica, attack.Up, attack.IntegratedARIMAConfig{}, stats.NewRand(3))
	if err != nil {
		return err
	}
	mitm := ami.NewMITM(headAddr, func(r ami.ReadingMsg) ami.ReadingMsg {
		slotOfWeek := int(r.Slot) % timeseries.SlotsPerWeek
		r.KW = vector[slotOfWeek]
		return r
	})
	mitmAddr, err := mitm.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = mitm.Close() }()
	fmt.Printf("man-in-the-middle on %s (intercepting %s)\n", mitmAddr, victimID)

	// Every meter transmits its final week. The victim's meter is honest —
	// the wire is not.
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		id := fmt.Sprintf("meter-%d", c.ID)
		m, err := meter.New(id, c.Demand, meter.Config{})
		if err != nil {
			return err
		}
		target := headAddr
		if id == victimID {
			target = mitmAddr
		}
		client, err := ami.Dial(target, id, 5*time.Second)
		if err != nil {
			return err
		}
		start := timeseries.Slot(trainWeeks * timeseries.SlotsPerWeek)
		readings, err := m.ReportRange(start, timeseries.SlotsPerWeek)
		if err != nil {
			_ = client.Close()
			return err
		}
		if err := client.SendAll(readings); err != nil {
			_ = client.Close()
			return err
		}
		if err := client.Close(); err != nil {
			return err
		}
	}
	seen, rewritten := mitm.Stats()
	fmt.Printf("transmission complete; MITM saw %d readings, rewrote %d\n", seen, rewritten)

	// The ingestion counters must account for exactly the traffic sent: a
	// week from every meter, nothing rejected, nothing force-closed.
	st := head.Stats()
	fmt.Printf("head-end ingestion: %d conns, %d accepted, %d rejected, %d auth-failed, %d forced closes\n",
		st.TotalConns, st.Accepted, st.Rejected, st.AuthFailed, st.ForcedCloses)
	if want := int64(consumers * timeseries.SlotsPerWeek); st.Accepted != want {
		return fmt.Errorf("head-end accepted %d readings, want %d", st.Accepted, want)
	}
	if st.Rejected != 0 || st.AuthFailed != 0 || st.LimitRejected != 0 {
		return fmt.Errorf("unclean ingestion counters: %+v", st)
	}

	// The control center reassembles each consumer's week and evaluates it.
	fmt.Println("\ncontrol-center assessments:")
	flagged := ""
	for _, id := range head.Meters() {
		week := make(timeseries.Series, timeseries.SlotsPerWeek)
		for s := 0; s < timeseries.SlotsPerWeek; s++ {
			slot := timeseries.Slot(trainWeeks*timeseries.SlotsPerWeek + s)
			v, ok := head.Reading(id, slot)
			if !ok {
				return fmt.Errorf("missing reading for %s slot %d", id, slot)
			}
			week[s] = v
		}
		a, err := framework.Evaluate(id, trainWeeks, week)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s anomalous=%-5v label=%v\n", id, a.Anomalous, a.Kind)
		if a.Anomalous && a.Kind == core.SuspectedVictim {
			flagged = id
		}
	}
	if flagged != victimID {
		return fmt.Errorf("expected %s to be flagged as victim, got %q", victimID, flagged)
	}

	// Every meter disconnected after its batch, so shutdown must drain
	// cleanly with no force-closes. (Close is idempotent; the deferred
	// closes become no-ops.)
	if err := mitm.Close(); err != nil {
		return err
	}
	if err := head.Close(); err != nil {
		return err
	}
	if st := head.Stats(); st.ForcedCloses != 0 {
		return fmt.Errorf("clean shutdown force-closed %d connections", st.ForcedCloses)
	}
	fmt.Printf("\n%s correctly identified as a victimized neighbour: a thief shares their transformer.\n", victimID)
	return nil
}
