// Gridaudit: build a radial distribution feeder, let an attacker steal
// electricity two different ways, and run the utility's topology-driven
// audits — the balance checks, meter alarms, and localization procedures of
// Section V of the paper.
//
//	go run ./examples/gridaudit
package main

import (
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gridaudit:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 40-consumer feeder with every internal node metered.
	cfg := topology.DefaultBuilderConfig()
	cfg.Consumers = 40
	cfg.Seed = 11
	tree, err := topology.BuildRandom(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("feeder: %d nodes, %d consumers, %d internal nodes\n",
		tree.Len(), len(tree.Consumers()), len(tree.Internals()))

	// Everyone consumes 2 kW and reports honestly; losses are calculated.
	honest := func() *topology.Snapshot {
		snap := topology.NewSnapshot()
		for _, c := range tree.Consumers() {
			snap.ConsumerActual[c.ID] = 2
			snap.ConsumerReported[c.ID] = 2
		}
		for _, n := range tree.Internals() {
			for _, ch := range n.Children {
				if ch.Kind == topology.Loss {
					snap.LossCalc[ch.ID] = 0.05
				}
			}
		}
		return snap
	}

	bc := topology.DefaultChecker()
	mallory := tree.Consumers()[13].ID
	fmt.Printf("mallory is %s\n\n", mallory)

	// --- Scenario 1: Class 2A — Mallory under-reports her own meter. ---
	fmt.Println("scenario 1: Attack Class 2A (under-report own meter)")
	snap := honest()
	snap.ConsumerActual[mallory] = 6
	snap.ConsumerReported[mallory] = 1
	inv, err := topology.LocalizeDeepest(tree, bc, snap)
	if err != nil {
		return err
	}
	fmt.Printf("  deepest failing checks: %v\n", inv.DeepestFailures)
	fmt.Printf("  neighbourhood to inspect (%d of %d consumers): %v\n",
		len(inv.Suspects), len(tree.Consumers()), inv.Suspects)
	if !contains(inv.Suspects, mallory) {
		return fmt.Errorf("localization missed the thief")
	}
	meters, err := topology.MetersToCompromise(tree, mallory)
	if err != nil {
		return err
	}
	fmt.Printf("  to hide, Mallory would need to compromise %d balance meters on her supply path\n\n", meters)

	// --- Scenario 2: she compromises those meters; the serviceman walks. ---
	fmt.Println("scenario 2: same theft, balance meters on the path compromised (Section V-C case 2)")
	node, err := tree.Node(mallory)
	if err != nil {
		return err
	}
	for cur := node.Parent; cur != nil && cur.Parent != nil; cur = cur.Parent {
		if cur.Metered {
			snap.CompromisedMeters[cur.ID] = true
		}
	}
	inv2, err := topology.LocalizeDeepest(tree, bc, snap)
	if err != nil {
		return err
	}
	fmt.Printf("  meter-driven localization now implicates: %v (lying meters exonerate the real branch)\n",
		inv2.Suspects)
	results, err := bc.CheckAll(tree, snap)
	if err != nil {
		return err
	}
	alarms := topology.MeterAlarms(tree, results)
	fmt.Printf("  but Section V-B raises %d meter-consistency alarm(s)\n", len(alarms))
	sv, err := topology.ServicemanSearch(tree, bc, snap)
	if err != nil {
		return err
	}
	fmt.Printf("  serviceman search with a portable meter: visited %d internal nodes, suspects %v\n\n",
		sv.NodesVisited, sv.Suspects)
	if !contains(sv.Suspects, mallory) {
		return fmt.Errorf("serviceman search missed the thief")
	}

	// --- Scenario 3: Class 2B — a neighbour absorbs the theft. ---
	fmt.Println("scenario 3: Attack Class 2B (balance the books on a neighbour)")
	snap3 := honest()
	victim := pickSibling(tree, mallory)
	snap3.ConsumerActual[mallory] = 6
	snap3.ConsumerReported[mallory] = 1
	snap3.ConsumerReported[victim] = 2 + 5 // victim absorbs the 5 kW
	results3, err := bc.CheckAll(tree, snap3)
	if err != nil {
		return err
	}
	failing := 0
	for _, r := range results3 {
		if !r.Pass {
			failing++
		}
	}
	fmt.Printf("  victim: %s; failing balance checks: %d (Proposition 2 — the books balance)\n", victim, failing)
	fmt.Println("  topology checks are blind here: this is why F-DETA layers the data-driven KLD detector")
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// pickSibling returns a consumer sharing Mallory's parent node, or any
// other consumer when she has no sibling.
func pickSibling(tree *topology.Tree, mallory string) string {
	node, err := tree.Node(mallory)
	if err != nil {
		return mallory
	}
	for _, c := range node.Parent.Children {
		if c.Kind == topology.Consumer && c.ID != mallory {
			return c.ID
		}
	}
	for _, c := range tree.Consumers() {
		if c.ID != mallory {
			return c.ID
		}
	}
	return mallory
}
