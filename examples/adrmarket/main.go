// Adrmarket: Attack Class 4B end-to-end — the study the paper leaves to
// future work (Section VII-A). A real-time market sets prices; the victim
// runs automated demand response, so his recorded history is his baseline
// load *suppressed by the price signal*. Mallory spoofs his price feed high
// (his ADR sheds even more load) while his compromised meter reports the
// raw, unsuppressed baseline — freeing real power that Mallory consumes.
// The victim even believes his bill shrank. The price-conditioned KLD
// detector then catches the reported readings being too high for the
// prices in force.
//
//	go run ./examples/adrmarket
package main

import (
	"fmt"
	"os"

	"repro/internal/adr"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/pricing"
	"repro/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adrmarket:", err)
		os.Exit(1)
	}
}

func run() error {
	const trainWeeks = 20

	// A real-time market covering training history plus the attack week.
	cfg := pricing.DefaultMarketConfig()
	market, err := pricing.GenerateRTP(cfg, (trainWeeks+1)*timeseries.SlotsPerWeek)
	if err != nil {
		return err
	}
	fmt.Printf("market: %d half-hour prices, %.3f-%.3f $/kWh\n",
		len(market.Trace), minOf(market.Trace), maxOf(market.Trace))

	// Baseline (pre-ADR) demand for victim and attacker.
	ds, err := dataset.Generate(dataset.Config{Residential: 2, Weeks: trainWeeks + 1, Seed: 17})
	if err != nil {
		return err
	}
	victimBaseline := ds.Consumers[0].Demand
	attackerSeries := ds.Consumers[1].Demand

	// The victim runs OpenADR-style automation with the paper's cited
	// consumer-own-elasticity model [26]: most of his load is flexible, so
	// what his meter historically records is baseline x response(price).
	victimADR, err := adr.NewElasticConsumer(-1.5, cfg.BaseRate, 0.9)
	if err != nil {
		return err
	}
	allPrices := adr.PriceTraceFor(market.Price, 0, len(victimBaseline))
	victimHistoric, err := victimADR.Respond(victimBaseline, allPrices)
	if err != nil {
		return err
	}
	victimTrain, victimRecorded, err := victimHistoric.Split(trainWeeks)
	if err != nil {
		return err
	}

	// Attack week: Mallory spoofs the victim's price feed 2x. The victim's
	// compromised meter reports the raw baseline — well above both his
	// actual (extra-suppressed) consumption and his usual price response.
	attackStart := timeseries.Slot(trainWeeks * timeseries.SlotsPerWeek)
	truePrices := adr.PriceTraceFor(market.Price, attackStart, timeseries.SlotsPerWeek)
	baselineWeek := victimBaseline.MustWeek(trainWeeks)
	res, err := attack.InjectClass4B(baselineWeek, attackerSeries.MustWeek(trainWeeks),
		truePrices, victimADR, 2.0)
	if err != nil {
		return err
	}
	if err := res.Verify(); err != nil {
		return err
	}

	// The economics of Section VI-B.
	loss, err := pricing.NeighbourLoss(market, res.VictimActual, res.VictimReported, attackStart)
	if err != nil {
		return err
	}
	perceived, err := pricing.PerceivedBenefit(market, res.SpoofedPrices, res.VictimReported, attackStart)
	if err != nil {
		return err
	}
	profit, err := pricing.Profit(market, res.AttackerActual, res.AttackerReported, attackStart)
	if err != nil {
		return err
	}
	stolen, err := pricing.StolenEnergy(res.AttackerActual, res.AttackerReported)
	if err != nil {
		return err
	}
	fmt.Println("\nattack-week economics (Eqs. 1, 10, 11):")
	fmt.Printf("  victim's real loss L_n:            $%.2f\n", loss)
	fmt.Printf("  victim's PERCEIVED benefit ΔB:     $%.2f  (he thinks he saved money!)\n", perceived)
	fmt.Printf("  Mallory's profit α:                $%.2f\n", profit)
	fmt.Printf("  energy Mallory consumed unbilled:  %.1f kWh\n", stolen)

	// Detection: condition the KLD detector on quantized market prices, as
	// Section VIII-F3 proposes for RTP systems. Training saw consumption
	// suppressed at high prices; the attack week's reported baseline is
	// not, so the high-price tiers light up.
	tiers, err := pricing.QuantizeRTP(market, 3)
	if err != nil {
		return err
	}
	det, err := detect.NewPriceKLDDetector(victimTrain, detect.PriceKLDConfig{
		NTiers:       3,
		Significance: 0.05,
		Tier: func(slotOfWeek int) int {
			return tiers[slotOfWeek%len(tiers)]
		},
	})
	if err != nil {
		return err
	}
	normalVerdict, err := det.Detect(victimRecorded.MustWeek(0))
	if err != nil {
		return err
	}
	attackVerdict, err := det.Detect(res.VictimReported)
	if err != nil {
		return err
	}
	fmt.Println("\nprice-conditioned KLD detector on the victim's reported readings:")
	fmt.Printf("  normal week: anomalous=%v (K=%.4f, threshold=%.4f)\n",
		normalVerdict.Anomalous, normalVerdict.Score, normalVerdict.Threshold)
	fmt.Printf("  attack week: anomalous=%v (K=%.4f, threshold=%.4f)\n",
		attackVerdict.Anomalous, attackVerdict.Score, attackVerdict.Threshold)
	if !attackVerdict.Anomalous {
		return fmt.Errorf("price-conditioned detector should flag the 4B attack week")
	}
	if attackVerdict.Score <= normalVerdict.Score {
		return fmt.Errorf("attack week should look more anomalous than the normal week")
	}
	fmt.Println("\nAttack Class 4B realized, measured, and detected — the paper's future-work study, implemented.")
	return nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
