// Quickstart: train the F-DETA detector stack on one consumer, inject the
// paper's Integrated ARIMA attack, and watch the KLD detector catch what
// the state-of-the-art baseline misses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Data: one synthetic consumer with 30 weeks of half-hourly
	//    readings (the real paper uses the Irish CER trial data).
	ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: 30, Seed: 42})
	if err != nil {
		return err
	}
	consumer := ds.Consumers[0]
	train, test, err := consumer.Demand.Split(28)
	if err != nil {
		return err
	}
	fmt.Printf("consumer %d: %d weeks training, %d weeks test\n",
		consumer.ID, train.Weeks(), test.Weeks())

	// 2. Enroll the consumer in the F-DETA framework (step 1 of the
	//    Section VII pipeline: build the expectation model).
	framework, err := core.New(core.Config{Factory: core.DefaultDetectorFactory(0.05)})
	if err != nil {
		return err
	}
	if err := framework.Enroll("consumer", train); err != nil {
		return err
	}

	// 3. A normal week sails through.
	normal := test.MustWeek(0)
	assessment, err := framework.Evaluate("consumer", 0, normal)
	if err != nil {
		return err
	}
	fmt.Printf("normal week:  anomalous=%v\n", assessment.Anomalous)

	// 4. Mallory crafts the Integrated ARIMA attack: she replicates the
	//    utility's Integrated ARIMA detector and samples readings that pass
	//    its confidence-interval, mean, and variance checks.
	replica, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		return err
	}
	vector, err := attack.IntegratedARIMAAttack(replica, attack.Up, attack.IntegratedARIMAConfig{}, stats.NewRand(7))
	if err != nil {
		return err
	}
	baselineVerdict, err := replica.Detect(vector)
	if err != nil {
		return err
	}
	fmt.Printf("attack week:  integrated-ARIMA detector anomalous=%v (the attack is built to evade it)\n",
		baselineVerdict.Anomalous)

	// 5. The framework's KLD layer sees the distribution shift.
	assessment, err = framework.Evaluate("consumer", 1, vector)
	if err != nil {
		return err
	}
	fmt.Printf("attack week:  F-DETA anomalous=%v, label=%v\n", assessment.Anomalous, assessment.Kind)
	for name, v := range assessment.Verdicts {
		fmt.Printf("  %-18s anomalous=%-5v score=%.4f threshold=%.4f\n",
			name, v.Anomalous, v.Score, v.Threshold)
	}
	if !assessment.Anomalous {
		return fmt.Errorf("expected the KLD detector to flag the attack")
	}
	fmt.Println("\nF-DETA detected an attack the state-of-the-art baseline missed.")
	return nil
}
