package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun guards the runnable examples against rot: each one must
// build and exit cleanly. The examples are full end-to-end scenarios
// (training, attacks, TCP collection, detection), so this doubles as a
// coarse integration test of the whole stack.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
