package main

import (
	"strings"
	"testing"
)

// The CLI tests run fdetalint in-process against the real module. The
// whole-module paths type-check from source, so they share one run where
// possible and skip under -short.

func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; run without -short")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on a clean tree\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree printed findings:\n%s", stdout.String())
	}
	for _, check := range []string{"determinism", "metricnames", "floatcmp", "goroutines", "wrapcheck"} {
		if !strings.Contains(stderr.String(), check) {
			t.Errorf("summary missing analyzer %q:\n%s", check, stderr.String())
		}
	}
}

func TestRunQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; run without -short")
	}
	var stdout, stderr strings.Builder
	// One cheap analyzer keeps the quiet path fast: goroutines touches two
	// packages.
	if code := run([]string{"-C", "../..", "-q", "-checks", "goroutines"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("-q still printed summaries:\n%s", stderr.String())
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown check, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuchcheck") || !strings.Contains(stderr.String(), "known:") {
		t.Errorf("error does not name the bad check and the known set:\n%s", stderr.String())
	}
}

func TestRunBadDir(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for a directory with no go.mod, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for an unknown flag, want 2", code)
	}
}

func TestRunSuppressionsAudit(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-suppressions", "-C", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("audit listed no directives; the tree has reasoned suppressions")
	}
	for _, line := range lines {
		if !strings.Contains(line, ": [") || !strings.Contains(line, "] ") {
			t.Errorf("audit line not in file:line: [checks] reason form: %q", line)
		}
	}
	if !strings.Contains(stderr.String(), "suppression(s)") {
		t.Errorf("audit summary missing total:\n%s", stderr.String())
	}
}
