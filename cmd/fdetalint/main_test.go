package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI tests run fdetalint in-process against the real module. The
// whole-module paths type-check from source, so they share one run where
// possible and skip under -short.

func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; run without -short")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on a clean tree\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree printed findings:\n%s", stdout.String())
	}
	for _, check := range []string{"determinism", "metricnames", "floatcmp", "goroutines", "wrapcheck",
		"lockhold", "chanbound", "blockctx"} {
		if !strings.Contains(stderr.String(), check) {
			t.Errorf("summary missing analyzer %q:\n%s", check, stderr.String())
		}
	}
}

// TestRunJSON checks the machine-readable stream: one object per line,
// suppressed findings included and marked, with module-relative paths. The
// tree is clean, so every object must be a suppressed finding with a
// reason.
func TestRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; run without -short")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", "../..", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on a clean tree\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("-json printed summaries on stderr:\n%s", stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("-json emitted nothing; the tree has suppressed findings to report")
	}
	sawLockhold := false
	for _, line := range lines {
		var f struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Check      string `json:"check"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
			Reason     string `json:"reason"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not a JSON object: %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Message == "" {
			t.Errorf("object missing fields: %q", line)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file %q not module-relative", f.File)
		}
		if !f.Suppressed || f.Reason == "" {
			t.Errorf("clean tree emitted an unsuppressed or reasonless finding: %q", line)
		}
		if f.Check == "lockhold" {
			sawLockhold = true
		}
	}
	if !sawLockhold {
		t.Error("JSON stream missing the tree's lockhold suppressions")
	}
}

// TestRunGitHub checks the annotation mode on a seeded-violation fixture
// tree (the lockhold bad fixture copied into a scratch module), since the
// real tree is clean and -github only emits unsuppressed findings.
func TestRunGitHub(t *testing.T) {
	if testing.Short() {
		t.Skip("module lint is slow; run without -short")
	}
	src, err := os.ReadFile("../../internal/analysis/testdata/src/lockhold/bad/bad.go")
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "store"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed := strings.ReplaceAll(string(src), "package bad", "package store")
	if err := os.WriteFile(filepath.Join(root, "store", "store.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", root, "-github", "-checks", "lockhold"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d on seeded violations, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("-github emitted no annotations for seeded violations")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=store/store.go,line=") {
			t.Errorf("annotation not in workflow-command form: %q", line)
		}
		if !strings.Contains(line, "title=fdetalint(lockhold)::") {
			t.Errorf("annotation missing check title: %q", line)
		}
		if strings.Contains(strings.SplitN(line, "::", 3)[2], "\n") {
			t.Errorf("unescaped newline in message: %q", line)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; run without -short")
	}
	var stdout, stderr strings.Builder
	// One cheap analyzer keeps the quiet path fast: goroutines touches two
	// packages.
	if code := run([]string{"-C", "../..", "-q", "-checks", "goroutines"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("-q still printed summaries:\n%s", stderr.String())
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown check, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuchcheck") || !strings.Contains(stderr.String(), "known:") {
		t.Errorf("error does not name the bad check and the known set:\n%s", stderr.String())
	}
}

func TestRunBadDir(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-C", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for a directory with no go.mod, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for an unknown flag, want 2", code)
	}
}

func TestRunSuppressionsAudit(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-suppressions", "-C", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("audit listed no directives; the tree has reasoned suppressions")
	}
	for _, line := range lines {
		if !strings.Contains(line, ": [") || !strings.Contains(line, "] ") {
			t.Errorf("audit line not in file:line: [checks] reason form: %q", line)
		}
	}
	if !strings.Contains(stderr.String(), "suppression(s)") {
		t.Errorf("audit summary missing total:\n%s", stderr.String())
	}
}
