// Command fdetalint is the F-DETA domain linter: it loads the whole module
// with the stdlib go/* toolchain and enforces the reproduction's invariants
// — determinism of the evaluation packages, the fdeta_* metric namespace,
// float-comparison hygiene, goroutine tracking in the AMI/evaluation worker
// pools, and typed errors across the ami wire boundary.
//
// Usage:
//
//	fdetalint [-C dir] [-checks list] [-q]   lint the module (exit 1 on findings)
//	fdetalint -suppressions [-C dir]         audit every //lint:ignore directive
//
// Findings print as file:line:col: [check] message, followed by a one-line
// per-analyzer summary (packages checked / findings / suppressions) so the
// `make verify` transcript stays scannable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdetalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module directory (or any directory beneath it)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	quiet := fs.Bool("q", false, "suppress the per-analyzer summary lines")
	suppressions := fs.Bool("suppressions", false, "list every //lint:ignore directive instead of linting")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *suppressions {
		return runSuppressions(*dir, stdout, stderr)
	}

	analyzers := analysis.Analyzers()
	if *checks != "" {
		selected, err := selectAnalyzers(analyzers, *checks)
		if err != nil {
			fmt.Fprintf(stderr, "fdetalint: %v\n", err)
			return 2
		}
		analyzers = selected
	}

	mod, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "fdetalint: %v\n", err)
		return 2
	}

	exit := 0
	if typeErrs := analysis.TypeErrorFindings(mod); len(typeErrs) > 0 {
		for _, f := range typeErrs {
			fmt.Fprintln(stdout, relFinding(mod.Dir, f))
		}
		exit = 1
	}

	res := analysis.Run(mod, analyzers)
	for _, f := range res.BadDirectives {
		fmt.Fprintln(stdout, relFinding(mod.Dir, f))
	}
	for _, f := range res.Findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintln(stdout, relFinding(mod.Dir, f))
	}
	if !*quiet {
		for _, s := range res.Summaries {
			fmt.Fprintf(stderr, "fdetalint: %s\n", s)
		}
	}
	if res.Unsuppressed() > 0 {
		exit = 1
	}
	return exit
}

// runSuppressions implements the -suppressions audit: every directive with
// file:line and reason, then a total. Parse-only, so it is fast enough to
// run in a pre-commit reflex.
func runSuppressions(dir string, stdout, stderr io.Writer) int {
	mod, err := analysis.ParseModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "fdetalint: %v\n", err)
		return 2
	}
	directives, malformed := analysis.Suppressions(mod)
	for _, d := range directives {
		rel := relPath(mod.Dir, d.Pos.Filename)
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", rel, d.Pos.Line, strings.Join(d.Checks, ","), d.Reason)
	}
	for _, f := range malformed {
		fmt.Fprintln(stdout, relFinding(mod.Dir, f))
	}
	fmt.Fprintf(stderr, "fdetalint: %d suppression(s), %d malformed directive(s)\n",
		len(directives), len(malformed))
	if len(malformed) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite by the -checks flag.
func selectAnalyzers(all []*analysis.Analyzer, list string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	known := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	sort.Strings(known)
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// relFinding renders a finding with a module-relative path.
func relFinding(root string, f analysis.Finding) string {
	f.Pos.Filename = relPath(root, f.Pos.Filename)
	return f.String()
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
