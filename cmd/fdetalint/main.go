// Command fdetalint is the F-DETA domain linter: it loads the whole module
// with the stdlib go/* toolchain and enforces the reproduction's invariants
// — determinism of the evaluation packages, the fdeta_* metric namespace,
// float-comparison hygiene, goroutine tracking in the AMI/evaluation worker
// pools, and typed errors across the ami wire boundary.
//
// Usage:
//
//	fdetalint [-C dir] [-checks list] [-q]   lint the module (exit 1 on findings)
//	fdetalint -json [-C dir]                 machine-readable findings on stdout
//	fdetalint -github [-C dir]               GitHub Actions ::error annotations
//	fdetalint -suppressions [-C dir]         audit every //lint:ignore directive
//
// Findings print as file:line:col: [check] message, followed by a one-line
// per-analyzer summary (packages checked / findings / suppressions) so the
// `make verify` transcript stays scannable. -json emits one object per
// finding — suppressed ones included, marked — for tooling; -github emits
// workflow commands so findings annotate the offending lines on a PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdetalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module directory (or any directory beneath it)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	quiet := fs.Bool("q", false, "suppress the per-analyzer summary lines")
	suppressions := fs.Bool("suppressions", false, "list every //lint:ignore directive instead of linting")
	jsonOut := fs.Bool("json", false, "emit findings as JSON (one object per line), suppressed ones included")
	github := fs.Bool("github", false, "emit GitHub Actions ::error annotations for unsuppressed findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *suppressions {
		return runSuppressions(*dir, stdout, stderr)
	}

	analyzers := analysis.Analyzers()
	if *checks != "" {
		selected, err := selectAnalyzers(analyzers, *checks)
		if err != nil {
			fmt.Fprintf(stderr, "fdetalint: %v\n", err)
			return 2
		}
		analyzers = selected
	}

	mod, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "fdetalint: %v\n", err)
		return 2
	}

	exit := 0
	typeErrs := analysis.TypeErrorFindings(mod)
	if len(typeErrs) > 0 {
		exit = 1
	}
	res := analysis.Run(mod, analyzers)
	if res.Unsuppressed() > 0 {
		exit = 1
	}

	emit := printFinding
	switch {
	case *jsonOut:
		emit = jsonFinding
	case *github:
		emit = githubFinding
	}
	for _, f := range typeErrs {
		emit(stdout, mod.Dir, f)
	}
	for _, f := range res.BadDirectives {
		emit(stdout, mod.Dir, f)
	}
	for _, f := range res.Findings {
		if f.Suppressed && !*jsonOut {
			// Only the JSON stream carries suppressed findings: tooling wants
			// the full picture, humans and CI annotations want the failures.
			continue
		}
		emit(stdout, mod.Dir, f)
	}
	if !*quiet && !*jsonOut && !*github {
		for _, s := range res.Summaries {
			fmt.Fprintf(stderr, "fdetalint: %s\n", s)
		}
	}
	return exit
}

// printFinding is the human-readable default: file:line:col: [check] msg.
func printFinding(w io.Writer, root string, f analysis.Finding) {
	fmt.Fprintln(w, relFinding(root, f))
}

// jsonFinding emits one finding as a single-line JSON object.
func jsonFinding(w io.Writer, root string, f analysis.Finding) {
	b, err := json.Marshal(struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Check      string `json:"check"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
		Reason     string `json:"reason,omitempty"`
	}{
		File:       relPath(root, f.Pos.Filename),
		Line:       f.Pos.Line,
		Col:        f.Pos.Column,
		Check:      f.Check,
		Message:    f.Message,
		Suppressed: f.Suppressed,
		Reason:     f.Reason,
	})
	if err != nil {
		// A finding is plain strings and ints; this cannot fail.
		panic(err)
	}
	fmt.Fprintf(w, "%s\n", b)
}

// githubFinding emits one workflow command per finding so GitHub Actions
// annotates the offending line. Property values escape %, CR, LF, comma,
// and colon per the workflow-command grammar.
func githubFinding(w io.Writer, root string, f analysis.Finding) {
	fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=fdetalint(%s)::%s\n",
		githubEscape(relPath(root, f.Pos.Filename), true), f.Pos.Line, f.Pos.Column,
		githubEscape(f.Check, true), githubEscape(f.Message, false))
}

// githubEscape encodes a workflow-command value; property values (inside
// the key=value list) additionally escape their delimiters.
func githubEscape(s string, property bool) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	if property {
		r = strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ",", "%2C", ":", "%3A")
	}
	return r.Replace(s)
}

// runSuppressions implements the -suppressions audit: every directive with
// file:line and reason, then a total. Parse-only, so it is fast enough to
// run in a pre-commit reflex.
func runSuppressions(dir string, stdout, stderr io.Writer) int {
	mod, err := analysis.ParseModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "fdetalint: %v\n", err)
		return 2
	}
	directives, malformed := analysis.Suppressions(mod)
	for _, d := range directives {
		rel := relPath(mod.Dir, d.Pos.Filename)
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", rel, d.Pos.Line, strings.Join(d.Checks, ","), d.Reason)
	}
	for _, f := range malformed {
		fmt.Fprintln(stdout, relFinding(mod.Dir, f))
	}
	fmt.Fprintf(stderr, "fdetalint: %d suppression(s), %d malformed directive(s)\n",
		len(directives), len(malformed))
	if len(malformed) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite by the -checks flag.
func selectAnalyzers(all []*analysis.Analyzer, list string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	known := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	sort.Strings(known)
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// relFinding renders a finding with a module-relative path.
func relFinding(root string, f analysis.Finding) string {
	f.Pos.Filename = relPath(root, f.Pos.Filename)
	return f.String()
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
