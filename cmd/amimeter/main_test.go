package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/ami"
)

func TestAmimeterEndToEnd(t *testing.T) {
	head := ami.New()
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = head.Close() }()

	var out bytes.Buffer
	code := run([]string{"-addr", addr, "-id", "m-test", "-slots", "12"}, &out)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, out.String())
	}
	if head.Count("m-test") != 12 {
		t.Errorf("head-end collected %d readings, want 12", head.Count("m-test"))
	}
	if !strings.Contains(out.String(), "reported 12 readings") {
		t.Errorf("output = %q", out.String())
	}
}

func TestAmimeterUnderreport(t *testing.T) {
	head := ami.New()
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = head.Close() }()

	// Honest run first.
	var out bytes.Buffer
	if code := run([]string{"-addr", addr, "-id", "honest", "-slots", "8"}, &out); code != 0 {
		t.Fatalf("honest run failed: %s", out.String())
	}
	// Compromised run with the same seed under-reports by half.
	out.Reset()
	if code := run([]string{"-addr", addr, "-id", "thief", "-slots", "8", "-underreport", "0.5"}, &out); code != 0 {
		t.Fatalf("compromised run failed: %s", out.String())
	}
	if !strings.Contains(out.String(), "COMPROMISED") {
		t.Error("compromised banner missing")
	}
	for s := 0; s < 8; s++ {
		h, ok1 := head.Reading("honest", 0)
		th, ok2 := head.Reading("thief", 0)
		if !ok1 || !ok2 {
			t.Fatal("readings missing")
		}
		if th >= h {
			t.Fatalf("slot %d: thief reported %g >= honest %g", s, th, h)
		}
		break // same-seed comparison at slot 0 suffices
	}
}

func TestAmimeterFaultInjection(t *testing.T) {
	head := ami.New()
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = head.Close() }()

	var out bytes.Buffer
	code := run([]string{"-addr", addr, "-id", "flaky", "-slots", "48", "-fault", "dropout:0.5"}, &out)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAULTY") {
		t.Error("fault banner missing")
	}
	got := head.Count("flaky")
	if got >= 48 || got == 0 {
		t.Errorf("head-end collected %d readings; want some but fewer than 48 under 50%% dropout", got)
	}
	if !strings.Contains(out.String(), "dropped by faults") {
		t.Errorf("dropped summary missing: %q", out.String())
	}

	// The same (seed, id) pair replays the same fault pattern.
	out.Reset()
	if code := run([]string{"-addr", addr, "-id", "flaky2", "-slots", "48", "-fault", "dropout:0.5"}, &out); code != 0 {
		t.Fatalf("second run failed: %s", out.String())
	}
	if head.Count("flaky2") == 48 {
		t.Error("second faulty meter delivered a dense series")
	}
}

func TestAmimeterBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-underreport", "1.5"}, &out); code != 2 {
		t.Error("invalid underreport should exit 2")
	}
	if code := run([]string{"-bogus"}, &out); code != 2 {
		t.Error("unknown flag should exit 2")
	}
	if code := run([]string{"-fault", "sparks:1"}, &out); code != 2 {
		t.Error("invalid fault spec should exit 2")
	}
	// Dead head-end: delivery fails after retries.
	if code := run([]string{"-addr", "127.0.0.1:1", "-slots", "1", "-retries", "1"}, &out); code != 1 {
		t.Error("unreachable head-end should exit 1")
	}
	_ = time.Millisecond
}
