// Command amimeter simulates one consumer smart meter: it synthesizes a
// load profile, measures it, and streams the readings to an AMI head-end
// (cmd/amiserver). With -underreport it compromises its own reports —
// a Class 2A attacker in a box.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ami"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/meter"
	"repro/internal/timeseries"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("amimeter", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7425", "head-end address")
	id := fs.String("id", "meter-1", "meter identifier")
	seed := fs.Int64("seed", 1, "load profile seed")
	slots := fs.Int("slots", timeseries.SlotsPerDay, "number of readings to report")
	underreport := fs.Float64("underreport", 0, "fraction to shave off every report (0 = honest, 0.5 = report half)")
	interval := fs.Duration("interval", 0, "delay between readings (0 = as fast as possible)")
	retries := fs.Int("retries", 3, "delivery attempts per reading")
	batch := fs.Int("batch", 0, "readings per wire-v2 batch frame (0 = one v1 frame per reading; requires a v2 head-end)")
	faultSpec := fs.String("fault", "", "inject meter faults, e.g. 'dropout:0.1+stuckat:1' (dropped slots are never sent)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *underreport < 0 || *underreport >= 1 {
		fmt.Fprintln(os.Stderr, "amimeter: -underreport must be in [0, 1)")
		return 2
	}
	scens, err := fault.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amimeter:", err)
		return 2
	}

	ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: 2, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "amimeter:", err)
		return 1
	}
	series := ds.Consumers[0].Demand
	var mask timeseries.Mask
	if len(scens) > 0 {
		// Key the fault stream on the meter identity so a fleet of amimeter
		// processes sharing one seed still draws distinct fault patterns.
		h := fnv.New64a()
		_, _ = h.Write([]byte(*id))
		plan := fault.Plan{Seed: *seed, Scenarios: scens}
		r, err := plan.Realize(int64(h.Sum64()), len(series))
		if err != nil {
			fmt.Fprintln(os.Stderr, "amimeter:", err)
			return 1
		}
		series, mask, err = r.Apply(series)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amimeter:", err)
			return 1
		}
		fmt.Fprintf(out, "amimeter: %s FAULTY — plan %s hits %d of %d slots\n",
			*id, plan, r.Bad(), r.Len())
	}
	m, err := meter.New(*id, series, meter.Config{ErrorSigma: 0.005, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "amimeter:", err)
		return 1
	}
	if *underreport > 0 {
		frac := 1 - *underreport
		m.Compromise(func(_ timeseries.Slot, v float64) float64 { return v * frac })
		fmt.Fprintf(out, "amimeter: %s COMPROMISED — reporting %.0f%% of measured demand\n", *id, frac*100)
	}

	newClient := ami.NewReliableClient
	if *batch > 0 {
		newClient = ami.NewReliableBatchClient
	}
	client, err := newClient(*addr, *id, nil, 5*time.Second, *retries, 100*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amimeter:", err)
		return 1
	}
	defer func() { _ = client.Close() }()

	// An interrupt aborts delivery mid-retry-backoff rather than leaving
	// the process stuck sleeping through an exponential schedule.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	n := *slots
	if n > m.Slots() {
		n = m.Slots()
	}
	sent := 0
	// With -batch, surviving readings accumulate into frames of that size;
	// the interval then paces frames rather than individual readings, the
	// way a real meter spools a reporting window and uploads it in one go.
	var pending []meter.Reading
	flush := func(last int) (int, bool) {
		if err := client.SendAllContext(ctx, pending); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(out, "amimeter: %s interrupted after %d readings\n", *id, last)
				return 130, false
			}
			fmt.Fprintln(os.Stderr, "amimeter:", err)
			return 1, false
		}
		sent += len(pending)
		pending = pending[:0]
		return 0, true
	}
	// One ticker paces every delivery; allocating a timer per reading
	// (time.After in the loop) would leak one timer per slot sent.
	var pace *time.Ticker
	if *interval > 0 {
		pace = time.NewTicker(*interval)
		defer pace.Stop()
	}
	for s := 0; s < n; s++ {
		if len(mask) > 0 && mask[s] == timeseries.StatusMissing {
			continue // the backhaul dropped this slot: nothing to deliver
		}
		r, err := m.Report(timeseries.Slot(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "amimeter:", err)
			return 1
		}
		if *batch > 0 {
			pending = append(pending, r)
			if len(pending) < *batch {
				continue
			}
			if code, ok := flush(s); !ok {
				return code
			}
		} else {
			if err := client.SendContext(ctx, r); err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Fprintf(out, "amimeter: %s interrupted after %d readings\n", *id, s)
					return 130
				}
				fmt.Fprintln(os.Stderr, "amimeter:", err)
				return 1
			}
			sent++
		}
		if pace != nil {
			select {
			case <-ctx.Done():
				fmt.Fprintf(out, "amimeter: %s interrupted after %d readings\n", *id, s+1)
				return 130
			case <-pace.C:
			}
		}
	}
	if len(pending) > 0 {
		if code, ok := flush(n); !ok {
			return code
		}
	}
	if dropped := n - sent; dropped > 0 {
		fmt.Fprintf(out, "amimeter: %s reported %d readings to %s (%d dropped by faults)\n",
			*id, sent, *addr, dropped)
		return 0
	}
	fmt.Fprintf(out, "amimeter: %s reported %d readings to %s\n", *id, sent, *addr)
	return 0
}
