package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// cmdFaults emits the detection-degradation curve: the Table II protocol
// re-evaluated at a sweep of missing-data fractions, showing how Metric 1
// decays and how many verdicts the coverage gate declines as readings are
// lost. Extra fault scenarios given via -fault compose into every point.
func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	ratesArg := fs.String("rates", "0,0.05,0.1,0.2,0.3", "comma-separated dropout rates to sweep")
	out := fs.String("o", "", "also write the full detector×scenario curve as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rates, err := parseRates(*ratesArg)
	if err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	res, err := evalRun(ef, func() (*experiments.FaultSweepResult, error) {
		return experiments.RunFaultSweep(opts, rates)
	})
	if err != nil {
		return err
	}

	fmt.Println("Detection degradation vs missing-data fraction (Metric 1, mean over scenarios)")
	if opts.Fault.Enabled() {
		fmt.Printf("composed fault scenarios at every point: %s\n", opts.Fault)
	}
	header := "dropout"
	for _, d := range experiments.DetectorIDs() {
		header += fmt.Sprintf("  %16s", string(d))
	}
	header += "   inconcl  quarantined"
	fmt.Println(header)
	for _, pt := range res.Points {
		row := fmt.Sprintf("%6.1f%%", 100*pt.Rate)
		for _, d := range experiments.DetectorIDs() {
			var sum float64
			scens := experiments.Scenarios()
			for _, s := range scens {
				sum += pt.DetectionRate[d][s]
			}
			row += fmt.Sprintf("  %15.1f%%", 100*sum/float64(len(scens)))
		}
		row += fmt.Sprintf("  %7.1f%%  %11d", 100*pt.InconclusiveFrac, pt.Quarantined)
		fmt.Println(row)
	}
	fmt.Println("(inconcl: verdicts declined at the coverage gate; they count as misses in Metric 1)")

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		fmt.Fprintln(f, "rate,detector,scenario,detection_rate,inconclusive_frac,quarantined")
		for _, pt := range res.Points {
			for _, d := range experiments.DetectorIDs() {
				for _, s := range experiments.Scenarios() {
					fmt.Fprintf(f, "%g,%s,%s,%g,%g,%d\n",
						pt.Rate, d, s, pt.DetectionRate[d][s], pt.InconclusiveFrac, pt.Quarantined)
				}
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d-point degradation curve to %s\n", len(res.Points), *out)
	}
	return nil
}

// parseRates parses the -rates list ("0,0.1,0.3") into a float slice.
func parseRates(arg string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad rate %q: %w", part, err)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("faults: -rates is empty")
	}
	return rates, nil
}
