package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/timeseries"
)

// cmdReport regenerates the full evaluation — every table, the headline
// reductions, the dataset validation, and all ablations/extensions — into a
// single markdown report.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	out := fs.String("o", "report.md", "output markdown path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()

	start := time.Now()
	if err := ef.run(func() error { return writeReport(f, opts) }); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s in %s\n", *out, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeReport(w io.Writer, opts experiments.Options) error {
	p := func(format string, a ...any) {
		fmt.Fprintf(w, format, a...)
	}
	p("# F-DETA evaluation report\n\n")
	p("Protocol: %d-consumer population, %d weeks (%d training), %d attack trials, seed %d.\n\n",
		opts.Dataset.Residential+opts.Dataset.SMEs+opts.Dataset.Unclassified,
		opts.Dataset.Weeks, opts.TrainWeeks, opts.Trials, opts.Seed)

	// Table I.
	rows, err := experiments.VerifyTableI(1)
	if err != nil {
		return fmt.Errorf("table I: %w", err)
	}
	p("## Table I — attack classification (verified by construction)\n\n```\n%s```\n\n",
		experiments.FormatTableI(rows))

	// Tables II & III.
	ev, err := experiments.RunEvaluation(opts)
	if err != nil {
		return fmt.Errorf("evaluation: %w", err)
	}
	t2, err := experiments.FormatTableII(ev)
	if err != nil {
		return err
	}
	p("## Table II — Metric 1: detection percentages\n\n```\n%s```\n\n", t2)
	t3, err := experiments.FormatTableIII(ev)
	if err != nil {
		return err
	}
	p("## Table III — Metric 2: attacker gains\n\n```\n%s```\n\n", t3)
	iv, kv, err := experiments.Headline(ev)
	if err != nil {
		return err
	}
	p("**Headline**: the Integrated ARIMA detector cuts Class-1B theft %.1f%% vs the ARIMA detector "+
		"(paper: ~78%%); the KLD detector cuts a further %.1f%% (paper: 94.8%%).\n\n", iv, kv)

	// Dataset validation.
	rep, err := experiments.ValidateDataset(opts.Dataset)
	if err != nil {
		return err
	}
	p("## Dataset validation (Section VIII-B3)\n\n")
	p("- consumers: %d, weeks: %d\n- peak-heavy fraction: %.1f%% (paper reports 94.4%%)\n\n",
		rep.Consumers, rep.Weeks, 100*rep.PeakHeavyFraction)

	// Time-to-detection.
	ttdOpts := opts
	if ttdOpts.MaxConsumers == 0 || ttdOpts.MaxConsumers > 50 {
		ttdOpts.MaxConsumers = 50
	}
	ttd, err := experiments.TimeToDetection(ttdOpts)
	if err != nil {
		return err
	}
	p("## Time-to-detection (streaming KLD, Section VII-D)\n\n")
	p("- detected within the week: %.1f%%\n- median latency: %.0f slots (%.1f hours; the bound is %d slots)\n\n",
		100*ttd.DetectedFrac, ttd.MedianSlots, ttd.MedianHours, timeseries.SlotsPerWeek)

	// Ablations at a bounded sub-population.
	ablOpts := opts
	if ablOpts.MaxConsumers == 0 || ablOpts.MaxConsumers > 25 {
		ablOpts.MaxConsumers = 25
	}
	bins, err := experiments.BinSweep(ablOpts, []int{4, 8, 10, 20, 40})
	if err != nil {
		return err
	}
	p("## Ablation: KLD histogram bin count\n\n")
	p("| B | detection | false-pos | success |\n|---|---|---|---|\n")
	for _, pt := range bins {
		p("| %d | %.0f%% | %.0f%% | %.0f%% |\n",
			pt.Bins, 100*pt.DetectionRate, 100*pt.FalsePosRate, 100*pt.SuccessRate)
	}
	p("\n")

	div, err := experiments.DivergenceSweep(ablOpts)
	if err != nil {
		return err
	}
	p("## Ablation: divergence measure\n\n")
	p("| measure | detection | false-pos | success |\n|---|---|---|---|\n")
	for _, pt := range div {
		p("| %s | %.0f%% | %.0f%% | %.0f%% |\n",
			pt.Kind, 100*pt.DetectionRate, 100*pt.FalsePosRate, 100*pt.SuccessRate)
	}
	p("\n")

	base, err := experiments.BaselineComparison(ablOpts)
	if err != nil {
		return err
	}
	p("## Detector families (KLD vs PCA of ref [3])\n\n")
	p("| detector | detection | false-pos | success |\n|---|---|---|---|\n")
	for _, pt := range base {
		p("| %s | %.0f%% | %.0f%% | %.0f%% |\n",
			pt.Detector, 100*pt.DetectionRate, 100*pt.FalsePosRate, 100*pt.SuccessRate)
	}
	p("\n")

	fp, err := experiments.FalsePositiveProfile(ablOpts)
	if err != nil {
		return err
	}
	p("## False-positive calibration\n\n")
	p("| detector | nominal α | measured FP | consumer-weeks |\n|---|---|---|---|\n")
	for _, pt := range fp {
		nominal := "—"
		if pt.Significance > 0 {
			nominal = fmt.Sprintf("%.0f%%", 100*pt.Significance)
		}
		p("| %s | %s | %.1f%% | %d |\n", pt.Detector, nominal, 100*pt.FPRate, pt.ConsumerWeeks)
	}
	p("\n")

	pop := ablOpts.Dataset.Residential + ablOpts.Dataset.SMEs + ablOpts.Dataset.Unclassified
	if ablOpts.MaxConsumers > 0 && ablOpts.MaxConsumers < pop {
		pop = ablOpts.MaxConsumers
	}
	victimCounts := []int{}
	for _, m := range []int{1, 2, 4, 8} {
		if m <= pop {
			victimCounts = append(victimCounts, m)
		}
	}
	spread, err := experiments.SpreadSweep(ablOpts, 200, victimCounts)
	if err != nil {
		return err
	}
	p("## Multi-victim spreading (200 kWh/week)\n\n")
	p("| victims | kWh/victim | victim detection | scheme caught |\n|---|---|---|---|\n")
	for _, pt := range spread {
		p("| %d | %.0f | %.0f%% | %.0f%% |\n",
			pt.Victims, pt.PerVictimKWh, 100*pt.VictimDetectionRate, 100*pt.SchemeCaughtRate)
	}
	p("\n")
	return nil
}
