// Command fdeta is the F-DETA control CLI: it generates the synthetic CER-
// style dataset, validates it, regenerates every table and figure of the
// paper, and runs the ablation sweeps.
//
// Usage:
//
//	fdeta <subcommand> [flags]
//
// Subcommands:
//
//	generate      write a synthetic dataset as CER-style CSV
//	validate      dataset summary + the Section VIII-B3 peak-heavy check
//	table1        regenerate Table I (attack-class feasibility, verified)
//	table2        regenerate Table II (Metric 1: detection percentages)
//	table3        regenerate Table III (Metric 2: attacker gains)
//	fig1          demonstrate upstream-tap under-reporting (Fig. 1)
//	fig2          demonstrate the Fig. 2 topology and balance check
//	fig3          emit the Fig. 3 attack-vector series as CSV
//	fig4          emit the Fig. 4 distribution data as CSV
//	faults        detection-degradation curve under injected meter faults
//	ablate-bins   sweep the KLD histogram bin count B
//	ablate-train  sweep the training history length
//	ablate-divergence  compare divergence measures
//	ttd           streaming time-to-detection
//	spread        multi-victim theft spreading
//	bill          statements + revenue assurance
//	collect       concurrent TCP collection harness over the AMI head-end
//	serve         always-on streaming detection service with tiered alerts
//	chaos         kill -9/restart durability harness for the WAL-backed head-end
//	bench         benchmark trajectory recorder (BENCH_<date>.json)
//
// Run `fdeta <subcommand> -h` for per-command flags.
package main

import (
	"fmt"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(rest)
	case "validate":
		err = cmdValidate(rest)
	case "table1":
		err = cmdTable1(rest)
	case "table2", "table3":
		err = cmdTables(cmd, rest)
	case "fig1":
		err = cmdFig1(rest)
	case "fig2":
		err = cmdFig2(rest)
	case "fig3":
		err = cmdFig3(rest)
	case "fig4":
		err = cmdFig4(rest)
	case "ablate-bins":
		err = cmdAblateBins(rest)
	case "ablate-train":
		err = cmdAblateTrain(rest)
	case "ablate-divergence":
		err = cmdAblateDivergence(rest)
	case "ablate-binning":
		err = cmdAblateBinStrategy(rest)
	case "faults":
		err = cmdFaults(rest)
	case "ttd":
		err = cmdTimeToDetect(rest)
	case "spread":
		err = cmdSpread(rest)
	case "baselines":
		err = cmdBaselines(rest)
	case "fp-profile":
		err = cmdFPProfile(rest)
	case "report":
		err = cmdReport(rest)
	case "bill":
		err = cmdBill(rest)
	case "detect":
		err = cmdDetect(rest)
	case "investigate":
		err = cmdInvestigate(rest)
	case "simulate":
		err = cmdSimulate(rest)
	case "collect":
		err = cmdCollect(rest)
	case "serve":
		err = cmdServe(rest)
	case "chaos":
		err = cmdChaos(rest)
	case "bench":
		err = cmdBench(rest)
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "fdeta: unknown subcommand %q\n\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdeta:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `fdeta — F-DETA electricity-theft detection framework

Usage: fdeta <subcommand> [flags]

Dataset:
  generate      write a synthetic CER-style dataset as CSV
  validate      dataset summary + Section VIII-B3 peak-heavy check

Operations:
  detect        run the detection pipeline over a CER-format CSV
  investigate   balance checks, alarms, and localization on a feeder
  simulate      scripted multi-week feeder simulation with scored detection
  collect       concurrent TCP collection harness over the AMI head-end
  serve         always-on streaming detection service: compact per-consumer
                detector state fed by the head-end's accepted-reading tap,
                tiered alerts over JSONL + SSE + the admin endpoint, rolling
                re-train without stopping (-smoke for CI, -bench-consumers
                for the fleet-scale footprint)
  chaos         kill -9/restart durability harness: proves acked readings
                survive crashes of the WAL-backed sharded head-end

Paper artifacts:
  table1        Table I  — attack-class feasibility (verified by construction)
  table2        Table II — Metric 1: detection percentages per detector
  table3        Table III — Metric 2: attacker gains per detector
  fig1          Fig. 1 — upstream-tap under-reporting demonstration
  fig2          Fig. 2 — radial topology and the balance check
  fig3          Fig. 3 — attack-vector series (CSV)
  fig4          Fig. 4 — X / X_i / attack distributions and KLD data (CSV)

Extensions:
  faults             detection-degradation curve under injected meter faults
  ablate-bins        sweep the KLD histogram bin count
  ablate-train       sweep the training history length
  ablate-divergence  compare KL vs symmetric-KL vs Jensen-Shannon
  ablate-binning     compare equal-width vs equal-frequency histogram bins
  ttd                time-to-detection via streaming KLD (Section VII-D)
  spread             multi-victim theft spreading (paper future work)
  baselines          detector-family comparison (KLD vs PCA of ref [3])
  fp-profile         false-positive calibration over all normal test weeks
  report             regenerate the complete evaluation into a markdown report
  bill               weekly statements + revenue assurance
  bench              run table + component benchmarks, write BENCH_<date>.json

Evaluation commands accept -parallelism (worker goroutines; results are
identical at any setting), -warmstart (pre-train suites with the
clustered population trainer; metrics stay within the pinned tolerance
of cold training), -cpuprofile/-memprofile (pprof output files),
-fault SPEC (inject meter faults into the monitored weeks), -checkpoint
FILE (crash-safe per-consumer progress; rerun to resume), and -strict
(fail fast instead of quarantining a failing consumer).

Long-running commands (detect, collect, bench, and every evaluation
command) also accept -metrics-addr ADDR: an opt-in HTTP admin endpoint
serving /metrics (Prometheus text), /metrics.json, /healthz, and
/debug/pprof for the duration of the run. Unset means no listener.
`)
}
