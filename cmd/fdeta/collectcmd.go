package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ami"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// metricSendLatency times one batch-frame round trip (send through batch
// ack) on the load-harness side — the client's view of the same exchange
// fdeta_ami_ingest_latency_seconds times on the server side.
const metricSendLatency = "fdeta_collect_send_latency_seconds"

// collectHead is the surface the harness needs from either head-end
// flavour; ami.HeadEnd and ami.ShardedHeadEnd both satisfy it.
type collectHead interface {
	Listen(addr string) (string, error)
	Close() error
	Stats() ami.HeadEndStats
	Meters() []string
	Series(meterID string, n int) (timeseries.Series, error)
	Metrics() *obs.Registry
}

// cmdCollect exercises the hardened AMI ingestion path end to end. In its
// default mode it streams a synthetic neighbourhood's readings from
// concurrent reliable meter clients over real TCP, then prints the
// ingestion counters and verifies that every collected series is dense.
// With -concurrency it becomes a load harness: a fixed pool of persistent
// wire-v2 connections multiplexes an arbitrarily large simulated fleet
// (rebinding per meter, batching readings per frame) against a plain or
// sharded head-end, and reports throughput and latency quantiles —
// optionally as a BENCH_*.json record via -bench-out.
func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	rf := bindRunFlags(fs)
	meters := fs.Int("meters", 8, "number of simulated meters")
	slots := fs.Int("slots", timeseries.SlotsPerDay, "readings per meter")
	seed := fs.Int64("seed", 2016, "synthetic neighbourhood seed")
	maxConns := fs.Int("max-conns", ami.DefaultMaxConns, "head-end connection limit")
	idleTimeout := fs.Duration("idle-timeout", ami.DefaultIdleTimeout, "head-end idle read deadline")
	drain := fs.Duration("drain", time.Second, "shutdown grace before force-closing connections")
	retries := fs.Int("retries", 3, "delivery attempts per reading (per-meter mode)")
	faultSpec := fs.String("fault", "", "inject meter faults into the collected stream, e.g. 'dropout:0.1+spike:0.01,20' (dropped slots are never sent)")
	shards := fs.Int("shards", 0, "shard the head-end store N ways with async ingest queues (0 = single synchronous store)")
	batch := fs.Int("batch", 0, "readings per wire-v2 batch frame (0 = one v1 frame per reading)")
	concurrency := fs.Int("concurrency", 0, "load-harness connection pool size; >0 multiplexes the fleet over persistent v2 connections (requires -batch >= 1)")
	profiles := fs.Int("profiles", 64, "synthetic consumption profiles cycled across the fleet (load-harness mode)")
	baseline := fs.Int("baseline-meters", 0, "first drive a v1 one-frame-per-reading baseline over this many meters and report the harness speedup")
	benchOut := fs.String("bench-out", "", "write a BENCH_*.json throughput record to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *meters < 1 {
		return fmt.Errorf("collect: -meters must be >= 1")
	}
	if *slots < 1 || *slots > timeseries.SlotsPerWeek {
		return fmt.Errorf("collect: -slots must be in [1, %d]", timeseries.SlotsPerWeek)
	}
	if *concurrency > 0 && *batch < 1 {
		return fmt.Errorf("collect: -concurrency requires -batch >= 1 (the pool multiplexes v2 batch sessions)")
	}
	if *concurrency > 0 && *faultSpec != "" {
		return fmt.Errorf("collect: -fault is a per-meter-client feature; drop -concurrency to use it")
	}
	scens, err := fault.Parse(*faultSpec)
	if err != nil {
		return fmt.Errorf("collect: %w", err)
	}

	cfg := ami.HeadEndConfig{
		MaxConns:     *maxConns,
		IdleTimeout:  *idleTimeout,
		DrainTimeout: *drain,
	}
	if *batch > ami.DefaultMaxBatch {
		cfg.MaxBatch = *batch
	}
	headOpts := []ami.Option{ami.WithConfig(cfg)}
	if rf.metricsAddr != "" {
		// The admin endpoint serves the process default registry; point the
		// head-end's ingest counters at it so they are scrapeable live.
		headOpts = append(headOpts, ami.WithMetrics(obs.Default()))
	}
	newHead := func() collectHead {
		if *shards > 0 {
			return ami.NewSharded(*shards, headOpts...)
		}
		return ami.New(headOpts...)
	}

	if *concurrency > 0 {
		h := &harness{
			meters:      *meters,
			slots:       *slots,
			seed:        *seed,
			batch:       *batch,
			shards:      *shards,
			concurrency: *concurrency,
			profiles:    *profiles,
			baseline:    *baseline,
			benchOut:    *benchOut,
			newHead:     newHead,
		}
		return rf.run(h.run)
	}

	plan := fault.Plan{Seed: *seed, Scenarios: scens}
	ds, err := dataset.Generate(dataset.Config{Residential: *meters, Weeks: 2, Seed: *seed})
	if err != nil {
		return err
	}
	return rf.run(func() error {
		return runCollect(newHead(), ds, plan, *meters, *slots, *retries, *batch, *maxConns, *idleTimeout, *drain)
	})
}

// runCollect is the per-meter-client collection body: one goroutine and one
// reliable client per meter, exactly the seed topology (with -batch > 1 the
// clients speak v2 batch frames instead of one frame per reading).
func runCollect(head collectHead, ds *dataset.Dataset, plan fault.Plan,
	meterCount, slotCount, retries, batch, maxConns int, idleTimeout, drain time.Duration) error {
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("collect: head-end on %s (max-conns %d, idle-timeout %s, drain %s)\n",
		addr, maxConns, idleTimeout, drain)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	start := time.Now()
	errc := make(chan error, meterCount)
	var dropped, corrupted atomic.Int64
	var wg sync.WaitGroup
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("meter-%d", c.ID)
			// Faults hit the reported stream: the realization rewrites the
			// register values (spikes, stuck windows) and marks the slots
			// the backhaul lost, which the client then never sends.
			series := c.Demand[:slotCount]
			mask := timeseries.Mask(nil)
			if plan.Enabled() {
				r, err := plan.Realize(int64(c.ID), slotCount)
				if err != nil {
					errc <- err
					return
				}
				series, mask, err = r.Apply(series)
				if err != nil {
					errc <- err
					return
				}
			}
			m, err := meter.New(id, series, meter.Config{})
			if err != nil {
				errc <- err
				return
			}
			newClient := ami.NewReliableClient
			if batch > 1 {
				newClient = ami.NewReliableBatchClient
			}
			rc, err := newClient(addr, id, nil, 5*time.Second, retries, 50*time.Millisecond)
			if err != nil {
				errc <- err
				return
			}
			defer func() { _ = rc.Close() }()
			readings, err := m.ReportRange(0, slotCount)
			if err != nil {
				errc <- err
				return
			}
			if len(mask) > 0 {
				kept := readings[:0]
				for _, r := range readings {
					switch mask[r.Slot] {
					case timeseries.StatusMissing:
						dropped.Add(1)
						continue
					case timeseries.StatusCorrupt:
						corrupted.Add(1)
					}
					kept = append(kept, r)
				}
				readings = kept
			}
			errc <- rc.SendAllContext(ctx, readings)
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			_ = head.Close()
			return err
		}
	}
	elapsed := time.Since(start)
	flushHead(head)

	// Every collected series must be dense — a gap is a lost reading.
	// Injected dropouts are intentional gaps, so the density check only
	// applies on the fault-free path.
	if !plan.Enabled() {
		for _, id := range head.Meters() {
			if _, err := head.Series(id, slotCount); err != nil {
				_ = head.Close()
				return err
			}
		}
	}
	if err := head.Close(); err != nil {
		return err
	}

	st := head.Stats()
	total := int64(meterCount)*int64(slotCount) - dropped.Load()
	fmt.Printf("collect: %d meters delivered %d/%d readings in %s (%.0f readings/s)\n",
		meterCount, st.Accepted, total, elapsed.Round(time.Millisecond),
		float64(st.Accepted)/elapsed.Seconds())
	fmt.Printf("collect: conns %d total, %d limit-rejected; readings %d rejected, %d auth-failed; %d idle-timeouts, %d forced closes\n",
		st.TotalConns, st.LimitRejected, st.Rejected, st.AuthFailed, st.IdleTimeouts, st.ForcedCloses)
	if st.Accepted != total {
		return fmt.Errorf("collect: accepted %d of %d readings", st.Accepted, total)
	}
	if plan.Enabled() {
		fmt.Printf("collect: fault plan %s dropped %d readings and corrupted %d in flight\n",
			plan, dropped.Load(), corrupted.Load())
		return nil
	}
	fmt.Println("collect: all series dense — clean shutdown, no forced closes expected on this path")
	return nil
}

// flushHead drains a sharded head-end's ingest queues so reads are exact;
// a plain head-end stores synchronously and has nothing to flush.
func flushHead(head collectHead) {
	if f, ok := head.(interface{ Flush() }); ok {
		f.Flush()
	}
}

// harness drives the load-harness mode: a pool of persistent v2
// connections multiplexing the simulated fleet, with profile templates
// standing in for per-meter datasets so fleet size is decoupled from
// synthesis cost.
type harness struct {
	meters, slots         int
	seed                  int64
	batch, shards         int
	concurrency, profiles int
	baseline              int
	benchOut              string
	newHead               func() collectHead
}

// loadProfiles synthesizes the consumption templates the fleet cycles over.
func (h *harness) loadProfiles() ([]timeseries.Series, error) {
	n := h.profiles
	if n < 1 {
		n = 1
	}
	if n > h.meters {
		n = h.meters
	}
	weeks := (h.slots + timeseries.SlotsPerWeek - 1) / timeseries.SlotsPerWeek
	if weeks < 2 {
		weeks = 2 // dataset.Generate's floor
	}
	ds, err := dataset.Generate(dataset.Config{Residential: n, Weeks: weeks, Seed: h.seed})
	if err != nil {
		return nil, err
	}
	out := make([]timeseries.Series, len(ds.Consumers))
	for i := range ds.Consumers {
		out[i] = ds.Consumers[i].Demand[:h.slots]
	}
	return out, nil
}

func (h *harness) run() error {
	profiles, err := h.loadProfiles()
	if err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	report := BenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Protocol:   "collect",
	}

	var baselineRate float64
	if h.baseline > 0 {
		res, err := h.runBaseline(ctx, profiles)
		if err != nil {
			return err
		}
		baselineRate = res.Metrics["readings_per_sec"]
		report.Results = append(report.Results, res)
	}

	res, err := h.runBatched(ctx, profiles, baselineRate)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, res)

	if h.benchOut == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(h.benchOut), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(h.benchOut, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("collect: wrote %s\n", h.benchOut)
	return nil
}

// runBaseline replays the seed ingestion path — one TCP dial per meter,
// one v1 frame and one ack round trip per reading, single synchronous
// store — over a bounded fleet, to anchor the speedup figure.
func (h *harness) runBaseline(ctx context.Context, profiles []timeseries.Series) (BenchResult, error) {
	head := ami.New(ami.WithConfig(ami.HeadEndConfig{DrainTimeout: time.Second}))
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	fmt.Printf("collect: baseline head-end on %s (v1, one frame per reading, %d meters)\n", addr, h.baseline)

	var sent atomic.Int64
	start := time.Now()
	err = h.pool(ctx, h.baseline, func(_ int, meterID string, readings []meter.Reading) error {
		c, err := ami.Dial(addr, meterID, 5*time.Second)
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		if err := c.SendAll(readings); err != nil {
			return err
		}
		sent.Add(int64(len(readings)))
		return nil
	}, profiles)
	elapsed := time.Since(start)
	if cerr := head.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return BenchResult{}, err
	}
	st := head.Stats()
	total := int64(h.baseline) * int64(h.slots)
	if st.Accepted != total {
		return BenchResult{}, fmt.Errorf("collect: baseline accepted %d of %d readings", st.Accepted, total)
	}
	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("collect: baseline delivered %d readings in %s (%.0f readings/s)\n",
		total, elapsed.Round(time.Millisecond), rate)
	return BenchResult{
		Name:       "CollectBaselineV1",
		Iterations: int(total),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(total),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    h.poolSize(h.baseline),
		Metrics: map[string]float64{
			"meters":           float64(h.baseline),
			"slots":            float64(h.slots),
			"readings_per_sec": rate,
			"frames_per_sec":   rate, // one frame per reading, by definition
		},
	}, nil
}

// runBatched drives the batched, optionally sharded ingestion tier at
// fleet scale and derives the throughput/latency record.
func (h *harness) runBatched(ctx context.Context, profiles []timeseries.Series, baselineRate float64) (BenchResult, error) {
	head := h.newHead()
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	fmt.Printf("collect: head-end on %s (%d shards, batch %d, %d conns, %d meters)\n",
		addr, h.shards, h.batch, h.poolSize(h.meters), h.meters)

	clientReg := obs.NewRegistry()
	sendLatency := clientReg.Histogram(metricSendLatency,
		"one batch frame send through batch ack, harness side", obs.FineLatencyBuckets())
	var frames atomic.Int64

	// Each pool worker owns one persistent v2 session (its slot in this
	// slice — no cross-worker locking) and rebinds it per meter instead of
	// redialing, which is what keeps a 100k fleet from exhausting
	// ephemeral ports.
	clients := make([]*ami.Client, h.poolSize(h.meters))
	defer func() {
		for _, c := range clients {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	workerClient := func(worker int, meterID string) (*ami.Client, error) {
		if c := clients[worker]; c != nil {
			if err := c.Bind(meterID); err != nil {
				return nil, err
			}
			return c, nil
		}
		c, err := ami.DialBatch(addr, meterID, nil, 5*time.Second)
		if err != nil {
			return nil, err
		}
		clients[worker] = c
		return c, nil
	}

	start := time.Now()
	err = h.pool(ctx, h.meters, func(worker int, meterID string, readings []meter.Reading) error {
		c, err := workerClient(worker, meterID)
		if err != nil {
			return err
		}
		for off := 0; off < len(readings); off += h.batch {
			end := off + h.batch
			if end > len(readings) {
				end = len(readings)
			}
			t0 := time.Now()
			if err := c.SendBatch(readings[off:end]); err != nil {
				return err
			}
			sendLatency.Observe(time.Since(t0).Seconds())
			frames.Add(1)
		}
		return nil
	}, profiles)
	elapsed := time.Since(start)
	for i, c := range clients {
		if c != nil {
			_ = c.Close()
			clients[i] = nil
		}
	}
	flushHead(head)

	if err != nil {
		_ = head.Close()
		return BenchResult{}, err
	}
	if err := h.spotCheck(head); err != nil {
		_ = head.Close()
		return BenchResult{}, err
	}
	headSnap := head.Metrics().Snapshot()
	if err := head.Close(); err != nil {
		return BenchResult{}, err
	}

	st := head.Stats()
	total := int64(h.meters) * int64(h.slots)
	if st.Accepted != total {
		return BenchResult{}, fmt.Errorf("collect: accepted %d of %d readings", st.Accepted, total)
	}
	rate := float64(total) / elapsed.Seconds()
	frameRate := float64(frames.Load()) / elapsed.Seconds()

	merged := obs.MergeSnapshots(headSnap, clientReg.Snapshot())
	res := BenchResult{
		Name:       "CollectBatchedSharded",
		Iterations: int(total),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(total),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    h.poolSize(h.meters),
		Metrics: map[string]float64{
			"meters":           float64(h.meters),
			"slots":            float64(h.slots),
			"shards":           float64(h.shards),
			"batch":            float64(h.batch),
			"readings_per_sec": rate,
			"frames_per_sec":   frameRate,
		},
	}
	quantiles := []struct {
		metric, key string
		q           float64
	}{
		{"fdeta_ami_ingest_latency_seconds", "ingest_p50_us", 0.50},
		{"fdeta_ami_ingest_latency_seconds", "ingest_p99_us", 0.99},
		{metricSendLatency, "send_p50_us", 0.50},
		{metricSendLatency, "send_p99_us", 0.99},
	}
	for _, qq := range quantiles {
		if m := merged.Find(qq.metric); m != nil {
			res.Metrics[qq.key] = 1e6 * obs.Quantile(m, qq.q)
		}
	}
	if baselineRate > 0 {
		res.Metrics["baseline_readings_per_sec"] = baselineRate
		res.Metrics["speedup_vs_single"] = rate / baselineRate
	}

	fmt.Printf("collect: %d meters delivered %d readings in %d frames over %s\n",
		h.meters, total, frames.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("collect: %.0f readings/s, %.0f frames/s; ingest p50 %.1fµs p99 %.1fµs; send p50 %.1fµs p99 %.1fµs\n",
		rate, frameRate,
		res.Metrics["ingest_p50_us"], res.Metrics["ingest_p99_us"],
		res.Metrics["send_p50_us"], res.Metrics["send_p99_us"])
	if baselineRate > 0 {
		fmt.Printf("collect: %.1fx the v1 one-frame-per-reading baseline (%.0f readings/s)\n",
			res.Metrics["speedup_vs_single"], baselineRate)
	}
	fmt.Printf("collect: conns %d total, %d limit-rejected; readings %d rejected, %d auth-failed; %d forced closes\n",
		st.TotalConns, st.LimitRejected, st.Rejected, st.AuthFailed, st.ForcedCloses)
	return res, nil
}

// poolSize caps the connection pool at the fleet size.
func (h *harness) poolSize(fleet int) int {
	if h.concurrency < fleet {
		return h.concurrency
	}
	return fleet
}

// pool fans the fleet [0, fleet) over the worker pool: worker w owns the
// meters congruent to w, visiting each with a readings buffer rebuilt from
// the meter's profile template. Stops at the first error or cancellation.
func (h *harness) pool(ctx context.Context, fleet int,
	visit func(worker int, meterID string, readings []meter.Reading) error,
	profiles []timeseries.Series) error {
	workers := h.poolSize(fleet)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]meter.Reading, h.slots)
			for i := w; i < fleet; i += workers {
				if err := ctx.Err(); err != nil {
					errc <- err
					return
				}
				id := fmt.Sprintf("meter-%06d", i)
				prof := profiles[i%len(profiles)]
				for s := 0; s < h.slots; s++ {
					buf[s] = meter.Reading{MeterID: id, Slot: timeseries.Slot(s), KW: prof[s]}
				}
				if err := visit(w, id, buf); err != nil {
					errc <- fmt.Errorf("collect: meter %s: %w", id, err)
					return
				}
			}
			errc <- nil
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return err
		}
	}
	return nil
}

// spotCheck verifies stored-series density on a deterministic sample of
// the fleet (every meter up to 1024, then a fixed stride), so validation
// cost does not scale with fleet size.
func (h *harness) spotCheck(head collectHead) error {
	stride := h.meters / 1024
	if stride < 1 {
		stride = 1
	}
	checked := 0
	for i := 0; i < h.meters; i += stride {
		id := fmt.Sprintf("meter-%06d", i)
		if _, err := head.Series(id, h.slots); err != nil {
			return err
		}
		checked++
	}
	fmt.Printf("collect: spot-checked %d/%d series dense\n", checked, h.meters)
	return nil
}
