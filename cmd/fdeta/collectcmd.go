package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ami"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// cmdCollect exercises the hardened AMI ingestion path end to end: it
// starts an in-process head-end with explicit lifecycle limits, streams a
// synthetic neighbourhood's readings from concurrent reliable meter
// clients over real TCP, then prints the ingestion counters and verifies
// that every collected series is dense.
func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	rf := bindRunFlags(fs)
	meters := fs.Int("meters", 8, "number of concurrent meter clients")
	slots := fs.Int("slots", timeseries.SlotsPerDay, "readings per meter")
	seed := fs.Int64("seed", 2016, "synthetic neighbourhood seed")
	maxConns := fs.Int("max-conns", ami.DefaultMaxConns, "head-end connection limit")
	idleTimeout := fs.Duration("idle-timeout", ami.DefaultIdleTimeout, "head-end idle read deadline")
	drain := fs.Duration("drain", time.Second, "shutdown grace before force-closing connections")
	retries := fs.Int("retries", 3, "delivery attempts per reading")
	faultSpec := fs.String("fault", "", "inject meter faults into the collected stream, e.g. 'dropout:0.1+spike:0.01,20' (dropped slots are never sent)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *meters < 1 {
		return fmt.Errorf("collect: -meters must be >= 1")
	}
	if *slots < 1 || *slots > timeseries.SlotsPerWeek {
		return fmt.Errorf("collect: -slots must be in [1, %d]", timeseries.SlotsPerWeek)
	}
	scens, err := fault.Parse(*faultSpec)
	if err != nil {
		return fmt.Errorf("collect: %w", err)
	}
	plan := fault.Plan{Seed: *seed, Scenarios: scens}

	ds, err := dataset.Generate(dataset.Config{Residential: *meters, Weeks: 2, Seed: *seed})
	if err != nil {
		return err
	}

	headOpts := []ami.Option{
		ami.WithMaxConns(*maxConns),
		ami.WithIdleTimeout(*idleTimeout),
		ami.WithDrainTimeout(*drain),
	}
	if rf.metricsAddr != "" {
		// The admin endpoint serves the process default registry; point the
		// head-end's ingest counters at it so they are scrapeable live.
		headOpts = append(headOpts, ami.WithMetrics(obs.Default()))
	}
	head := ami.New(headOpts...)
	return rf.run(func() error {
		return runCollect(head, ds, plan, *meters, *slots, *retries, *maxConns, *idleTimeout, *drain)
	})
}

// runCollect is the collection harness body; the shared run wrapper keeps
// the admin endpoint alive for exactly the collection's duration.
func runCollect(head *ami.HeadEnd, ds *dataset.Dataset, plan fault.Plan,
	meterCount, slotCount, retries, maxConns int, idleTimeout, drain time.Duration) error {
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("collect: head-end on %s (max-conns %d, idle-timeout %s, drain %s)\n",
		addr, maxConns, idleTimeout, drain)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	start := time.Now()
	errc := make(chan error, meterCount)
	var dropped, corrupted atomic.Int64
	var wg sync.WaitGroup
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("meter-%d", c.ID)
			// Faults hit the reported stream: the realization rewrites the
			// register values (spikes, stuck windows) and marks the slots
			// the backhaul lost, which the client then never sends.
			series := c.Demand[:slotCount]
			mask := timeseries.Mask(nil)
			if plan.Enabled() {
				r, err := plan.Realize(int64(c.ID), slotCount)
				if err != nil {
					errc <- err
					return
				}
				series, mask, err = r.Apply(series)
				if err != nil {
					errc <- err
					return
				}
			}
			m, err := meter.New(id, series, meter.Config{})
			if err != nil {
				errc <- err
				return
			}
			rc, err := ami.NewReliableClient(addr, id, nil, 5*time.Second, retries, 50*time.Millisecond)
			if err != nil {
				errc <- err
				return
			}
			defer func() { _ = rc.Close() }()
			readings, err := m.ReportRange(0, slotCount)
			if err != nil {
				errc <- err
				return
			}
			if len(mask) > 0 {
				kept := readings[:0]
				for _, r := range readings {
					switch mask[r.Slot] {
					case timeseries.StatusMissing:
						dropped.Add(1)
						continue
					case timeseries.StatusCorrupt:
						corrupted.Add(1)
					}
					kept = append(kept, r)
				}
				readings = kept
			}
			errc <- rc.SendAllContext(ctx, readings)
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			_ = head.Close()
			return err
		}
	}
	elapsed := time.Since(start)

	// Every collected series must be dense — a gap is a lost reading.
	// Injected dropouts are intentional gaps, so the density check only
	// applies on the fault-free path.
	if !plan.Enabled() {
		for _, id := range head.Meters() {
			if _, err := head.Series(id, slotCount); err != nil {
				_ = head.Close()
				return err
			}
		}
	}
	if err := head.Close(); err != nil {
		return err
	}

	st := head.Stats()
	total := int64(meterCount)*int64(slotCount) - dropped.Load()
	fmt.Printf("collect: %d meters delivered %d/%d readings in %s (%.0f readings/s)\n",
		meterCount, st.Accepted, total, elapsed.Round(time.Millisecond),
		float64(st.Accepted)/elapsed.Seconds())
	fmt.Printf("collect: conns %d total, %d limit-rejected; readings %d rejected, %d auth-failed; %d idle-timeouts, %d forced closes\n",
		st.TotalConns, st.LimitRejected, st.Rejected, st.AuthFailed, st.IdleTimeouts, st.ForcedCloses)
	if st.Accepted != total {
		return fmt.Errorf("collect: accepted %d of %d readings", st.Accepted, total)
	}
	if plan.Enabled() {
		fmt.Printf("collect: fault plan %s dropped %d readings and corrupted %d in flight\n",
			plan, dropped.Load(), corrupted.Load())
		return nil
	}
	fmt.Println("collect: all series dense — clean shutdown, no forced closes expected on this path")
	return nil
}
