package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the chaos harness re-exec this test binary as its server
// child: cmdChaos spawns os.Executable() with ["chaos", "-serve", ...], and
// when invoked that way the binary must behave as the fdeta CLI rather than
// run the test suite.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// TestRunChaosInvariant is the automated form of the durability claim: the
// chaos harness kill -9s a real WAL-backed head-end process mid-load twice
// and exits non-zero if any acknowledged reading is missing after recovery.
func TestRunChaosInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns and SIGKILLs server processes")
	}
	walDir := t.TempDir()
	args := []string{"chaos",
		"-meters", "8", "-rounds", "2", "-shards", "2", "-batch", "4",
		"-round-len", "400ms", "-wal-dir", walDir, "-wal-sync", "interval"}
	if got := run(args); got != 0 {
		t.Fatalf("chaos exited %d; the durability invariant did not hold", got)
	}
}

func TestRunChaosFlagValidation(t *testing.T) {
	if got := run([]string{"chaos", "-wal-sync", "sometimes"}); got != 1 {
		t.Errorf("bad -wal-sync exited %d, want 1", got)
	}
	if got := run([]string{"chaos", "-meters", "0"}); got != 1 {
		t.Errorf("-meters 0 exited %d, want 1", got)
	}
	if got := run([]string{"chaos", "-serve"}); got != 1 {
		t.Errorf("-serve without -wal-dir exited %d, want 1", got)
	}
}

func TestRunDispatcher(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown", []string{"bogus"}, 2},
		{"help", []string{"help"}, 0},
		{"table1", []string{"table1"}, 0},
		{"fig1", []string{"fig1"}, 0},
		{"fig2", []string{"fig2"}, 0},
		{"validate", []string{"validate"}, 0},
		{"investigate", []string{"investigate", "-consumers", "10"}, 0},
		{"investigate compromised", []string{"investigate", "-consumers", "10", "-compromise-path"}, 0},
		{"bill", []string{"bill", "-consumers", "3", "-theft", "0.5"}, 0},
		{"bill bad theft", []string{"bill", "-theft", "2"}, 1},
		{"collect", []string{"collect", "-meters", "4", "-slots", "16"}, 0},
		{"collect faulty", []string{"collect", "-meters", "4", "-slots", "48", "-fault", "dropout:0.25"}, 0},
		{"collect bad meters", []string{"collect", "-meters", "0"}, 1},
		{"collect bad slots", []string{"collect", "-slots", "999"}, 1},
		{"collect bad fault", []string{"collect", "-meters", "2", "-fault", "sparks:1"}, 1},
		{"faults bad rates", []string{"faults", "-rates", "0,zero"}, 1},
		{"faults bad spec", []string{"faults", "-rates", "0", "-fault", "sparks:1"}, 1},
		{"table2 bad fault spec", []string{"table2", "-fault", "dropout:2"}, 1},
		{"bad flag", []string{"table1", "-nope"}, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}

func TestRunGenerateAndDetect(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "ds.csv")
	if got := run([]string{"generate", "-o", csv}); got != 0 {
		t.Fatalf("generate exited %d", got)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatalf("dataset not written: %v", err)
	}
	if got := run([]string{"detect", "-data", csv, "-train", "18"}); got != 0 {
		t.Fatalf("detect exited %d", got)
	}
	// Single-consumer filter path.
	if got := run([]string{"detect", "-data", csv, "-train", "18", "-consumer", "1000"}); got != 0 {
		t.Fatalf("detect -consumer exited %d", got)
	}
	// Missing -data is an error.
	if got := run([]string{"detect"}); got != 1 {
		t.Error("detect without -data should fail")
	}
	// Unreadable file is an error.
	if got := run([]string{"detect", "-data", filepath.Join(dir, "missing.csv")}); got != 1 {
		t.Error("missing dataset should fail")
	}
}

func TestRunFigureOutputs(t *testing.T) {
	dir := t.TempDir()
	fig3 := filepath.Join(dir, "fig3.csv")
	if got := run([]string{"fig3", "-consumers", "3", "-o", fig3}); got != 0 {
		t.Fatalf("fig3 exited nonzero")
	}
	data, err := os.ReadFile(fig3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,actual_kw") {
		t.Error("fig3 CSV header missing")
	}
	fig4 := filepath.Join(dir, "fig4.csv")
	if got := run([]string{"fig4", "-consumers", "3", "-o", fig4}); got != 0 {
		t.Fatalf("fig4 exited nonzero")
	}
	data, err = os.ReadFile(fig4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "attack_kld") {
		t.Error("fig4 CSV missing KLD block")
	}
}

func TestRunSimulateAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI path")
	}
	if got := run([]string{"simulate", "-consumers", "5", "-train", "12", "-weeks", "5"}); got != 0 {
		t.Error("simulate exited nonzero")
	}
	dir := t.TempDir()
	report := filepath.Join(dir, "r.md")
	if got := run([]string{"report", "-consumers", "6", "-trials", "3", "-o", report}); got != 0 {
		t.Fatal("report exited nonzero")
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Table I", "## Table II", "## Table III", "Headline", "Multi-victim"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunTable2Checkpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI path")
	}
	cp := filepath.Join(t.TempDir(), "eval.ckpt")
	args := []string{"table2", "-consumers", "4", "-trials", "2", "-checkpoint", cp}
	if got := run(args); got != 0 {
		t.Fatalf("checkpointed run exited %d", got)
	}
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if !strings.Contains(string(data), "\"Fingerprint\"") {
		t.Error("checkpoint missing fingerprint")
	}
	// A rerun with the same settings resumes from the checkpoint and still
	// prints the same table.
	if got := run(args); got != 0 {
		t.Errorf("resumed run exited %d", got)
	}
}

func TestRunEvalCommandsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI path")
	}
	for _, args := range [][]string{
		{"table2", "-consumers", "5", "-trials", "3"},
		{"faults", "-consumers", "4", "-trials", "2", "-rates", "0,0.3"},
		{"table2", "-consumers", "4", "-trials", "2", "-fault", "dropout:0.1"},
		{"table3", "-consumers", "5", "-trials", "3", "-summary"},
		{"ttd", "-consumers", "5", "-trials", "3"},
		{"fp-profile", "-consumers", "5"},
		{"baselines", "-consumers", "5", "-trials", "3"},
		{"spread", "-consumers", "8", "-kwh", "100"},
		{"ablate-divergence", "-consumers", "5", "-trials", "3"},
	} {
		if got := run(args); got != 0 {
			t.Errorf("run(%v) exited nonzero", args)
		}
	}
}

func TestRunServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve smoke streams 13 weeks over TCP")
	}
	dir := t.TempDir()
	alerts := filepath.Join(dir, "alerts.jsonl")
	if got := run([]string{"serve", "-smoke", "-alerts-out", alerts}); got != 0 {
		t.Fatalf("serve -smoke exited %d", got)
	}
	buf, err := os.ReadFile(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"tier":"HIGH"`) {
		t.Errorf("alert JSONL lacks a HIGH event:\n%s", buf)
	}
}

func TestRunServeFlagValidation(t *testing.T) {
	if got := run([]string{"serve", "-weeks", "3", "-train", "4"}); got != 1 {
		t.Errorf("-weeks < train+2 exited %d, want 1", got)
	}
	if got := run([]string{"serve", "-meters", "1", "-weeks", "13", "-train", "4"}); got != 1 {
		t.Errorf("-meters 1 exited %d, want 1", got)
	}
}
