package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/arima"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// BenchResult is one benchmark's record in a BENCH_<date>.json report.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries headline numbers reported via b.ReportMetric (e.g.
	// detection rates), so a perf regression that also changes results is
	// visible in the same file.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable benchmark-trajectory record. One file
// is written per `fdeta bench` run; committing them under results/bench
// gives the repo a perf history that future PRs extend.
type BenchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Protocol   string        `json:"protocol"` // "quick" or "full"
	Label      string        `json:"label,omitempty"`
	Results    []BenchResult `json:"results"`
}

// cmdBench runs the component and table benchmarks in-process (via
// testing.Benchmark) and writes a BENCH_<date>.json trajectory record.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	rf := bindRunFlags(fs)
	full := fs.Bool("full", false, "benchmark the paper's full protocol (500 consumers, 50 trials)")
	label := fs.String("label", "", "free-form label recorded in the report (e.g. a commit id)")
	dir := fs.String("dir", "results/bench", "directory for the default output path")
	out := fs.String("o", "", "explicit output path (default <dir>/BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.QuickOptions()
	protocol := "quick"
	if *full {
		opts = experiments.PaperOptions()
		protocol = "full"
	}

	// One consumer's series for the component benchmarks — the same fixture
	// bench_test.go uses.
	ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: 30, Seed: 5})
	if err != nil {
		return err
	}
	train, test, err := ds.Consumers[0].Demand.Split(28)
	if err != nil {
		return err
	}
	week := test.MustWeek(0)
	tierFn := func(slot int) int { return int(opts.Scheme.TierOf(timeseries.Slot(slot))) }
	suiteCfg := detect.SuiteConfig{
		KLD:      detect.KLDConfig{Significance: 0.05},
		PriceKLD: detect.PriceKLDConfig{NTiers: 2, Tier: tierFn, Significance: 0.05},
	}

	type bench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := []bench{
		{"TableII", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev, err := experiments.RunEvaluation(opts)
				if err != nil {
					b.Fatal(err)
				}
				cell, err := ev.Cell(experiments.DetKLD5, experiments.Scen1B)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*cell.DetectionRate(), "kld5-1B-%")
			}
		}},
		{"TableIII", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev, err := experiments.RunEvaluation(opts)
				if err != nil {
					b.Fatal(err)
				}
				_, kv, err := experiments.Headline(ev)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(kv, "kld-reduction-%")
			}
		}},
		{"SelectOrder", func(b *testing.B) {
			candidates := arima.DefaultCandidates()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arima.SelectOrder(train, candidates); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ARIMADetectorTrain", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := detect.NewARIMADetector(train, detect.ARIMAConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TrainedSuite", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := detect.NewTrainedSuite(train, suiteCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"KLDTrain", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := detect.NewKLDDetector(train, detect.KLDConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"KLDDetect", func(b *testing.B) {
			det, err := detect.NewKLDDetector(train, detect.KLDConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Detect(week); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PriceKLDDetect", func(b *testing.B) {
			det, err := detect.NewPriceKLDDetector(train, detect.PriceKLDConfig{NTiers: 2, Tier: tierFn})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Detect(week); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ARIMADetect", func(b *testing.B) {
			det, err := detect.NewARIMADetector(train, detect.ARIMAConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Detect(week); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"IntegratedARIMAAttack", func(b *testing.B) {
			det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
			if err != nil {
				b.Fatal(err)
			}
			rng := stats.NewRand(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := attack.IntegratedARIMAAttack(det, attack.Up, attack.IntegratedARIMAConfig{}, rng); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	report := BenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Protocol:   protocol,
		Label:      *label,
	}
	err = rf.run(func() error {
		for _, bm := range benches {
			fmt.Printf("benchmarking %-22s ", bm.name)
			r := testing.Benchmark(bm.fn)
			res := BenchResult{
				Name:        bm.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if len(r.Extra) > 0 {
				res.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					res.Metrics[k] = v
				}
			}
			report.Results = append(report.Results, res)
			fmt.Printf("%12.0f ns/op  %8d allocs/op  %10d B/op\n",
				res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
		return nil
	})
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		path = filepath.Join(*dir, "BENCH_"+report.Date+".json")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s protocol, %s)\n", path, protocol, report.GoVersion)
	return nil
}
