package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/arima"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// BenchResult is one benchmark's record in a BENCH_<date>.json report.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// GOMAXPROCS and Workers record the parallelism each entry actually
	// ran with: GOMAXPROCS at measurement time, and the worker-pool size
	// used (1 for single-threaded component benchmarks). The seed snapshots
	// pinned gomaxprocs only at report level, which made parallel wins
	// invisible in the trajectory.
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// Metrics carries headline numbers reported via b.ReportMetric (e.g.
	// detection rates), so a perf regression that also changes results is
	// visible in the same file.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable benchmark-trajectory record. One file
// is written per `fdeta bench` run; committing them under results/bench
// gives the repo a perf history that future PRs extend.
type BenchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Protocol   string        `json:"protocol"` // "quick" or "full"
	Label      string        `json:"label,omitempty"`
	Results    []BenchResult `json:"results"`
}

// bench is one entry in a benchmark suite: the worker-pool size it runs
// with (recorded per result) and an optional post hook that derives extra
// metrics — e.g. consumers-per-second — from the raw BenchmarkResult.
type bench struct {
	name    string
	workers int
	fn      func(b *testing.B)
	post    func(r testing.BenchmarkResult, res *BenchResult)
}

// cmdBench runs the component and table benchmarks in-process (via
// testing.Benchmark) and writes a BENCH_<date>.json trajectory record.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	rf := bindRunFlags(fs)
	full := fs.Bool("full", false, "benchmark the paper's full protocol (500 consumers, 50 trials)")
	population := fs.Bool("population", false, "benchmark population-scale training (consumers-per-second) instead of the component suite")
	popConsumers := fs.Int("consumers", 10000, "population size for -population")
	popWeeks := fs.Int("trainweeks", 28, "training weeks per consumer for -population")
	label := fs.String("label", "", "free-form label recorded in the report (e.g. a commit id)")
	dir := fs.String("dir", "results/bench", "directory for the default output path")
	out := fs.String("o", "", "explicit output path (default <dir>/BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.QuickOptions()
	protocol := "quick"
	if *full {
		opts = experiments.PaperOptions()
		protocol = "full"
	}

	// One consumer's series for the component benchmarks — the same fixture
	// bench_test.go uses.
	ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: 30, Seed: 5})
	if err != nil {
		return err
	}
	train, test, err := ds.Consumers[0].Demand.Split(28)
	if err != nil {
		return err
	}
	week := test.MustWeek(0)
	tierFn := func(slot int) int { return int(opts.Scheme.TierOf(timeseries.Slot(slot))) }
	suiteCfg := detect.SuiteConfig{
		KLD:      detect.KLDConfig{Significance: 0.05},
		PriceKLD: detect.PriceKLDConfig{NTiers: 2, Tier: tierFn, Significance: 0.05},
	}

	// Table benchmarks run the evaluation worker pool; everything else in
	// the component suite is single-threaded.
	evalWorkers := runtime.GOMAXPROCS(0)
	if opts.MaxConsumers > 0 && opts.MaxConsumers < evalWorkers {
		evalWorkers = opts.MaxConsumers
	}
	benches := []bench{
		{name: "TableII", workers: evalWorkers, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev, err := experiments.RunEvaluation(opts)
				if err != nil {
					b.Fatal(err)
				}
				cell, err := ev.Cell(experiments.DetKLD5, experiments.Scen1B)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*cell.DetectionRate(), "kld5-1B-%")
			}
		}},
		{name: "TableIII", workers: evalWorkers, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev, err := experiments.RunEvaluation(opts)
				if err != nil {
					b.Fatal(err)
				}
				_, kv, err := experiments.Headline(ev)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(kv, "kld-reduction-%")
			}
		}},
		{name: "SelectOrder", workers: 1, fn: func(b *testing.B) {
			candidates := arima.DefaultCandidates()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arima.SelectOrder(train, candidates); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "ARIMADetectorTrain", workers: 1, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := detect.NewARIMADetector(train, detect.ARIMAConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "TrainedSuite", workers: 1, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := detect.NewTrainedSuite(train, suiteCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "KLDTrain", workers: 1, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := detect.NewKLDDetector(train, detect.KLDConfig{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "KLDDetect", workers: 1, fn: func(b *testing.B) {
			det, err := detect.NewKLDDetector(train, detect.KLDConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Detect(week); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "PriceKLDDetect", workers: 1, fn: func(b *testing.B) {
			det, err := detect.NewPriceKLDDetector(train, detect.PriceKLDConfig{NTiers: 2, Tier: tierFn})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Detect(week); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "ARIMADetect", workers: 1, fn: func(b *testing.B) {
			det, err := detect.NewARIMADetector(train, detect.ARIMAConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Detect(week); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "IntegratedARIMAAttack", workers: 1, fn: func(b *testing.B) {
			det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
			if err != nil {
				b.Fatal(err)
			}
			rng := stats.NewRand(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := attack.IntegratedARIMAAttack(det, attack.Up, attack.IntegratedARIMAConfig{}, rng); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	if *population {
		protocol = "population"
		benches, err = populationBenches(*popConsumers, *popWeeks)
		if err != nil {
			return err
		}
	}

	report := BenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Protocol:   protocol,
		Label:      *label,
	}
	err = rf.run(func() error {
		for _, bm := range benches {
			fmt.Printf("benchmarking %-22s ", bm.name)
			r := testing.Benchmark(bm.fn)
			res := BenchResult{
				Name:        bm.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				Workers:     bm.workers,
			}
			if len(r.Extra) > 0 {
				res.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					res.Metrics[k] = v
				}
			}
			if bm.post != nil {
				bm.post(r, &res)
			}
			report.Results = append(report.Results, res)
			fmt.Printf("%12.0f ns/op  %8d allocs/op  %10d B/op\n",
				res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
		return nil
	})
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		path = filepath.Join(*dir, "BENCH_"+report.Date+".json")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s protocol, %s)\n", path, protocol, report.GoVersion)
	return nil
}

// populationBenches builds the -population suite: the naive baseline (a
// serial per-consumer NewTrainedSuite loop — how callers trained fleets
// before the batch trainer existed) and the PopulationTrainer in warm-start
// and exact modes. Every entry reports consumers_per_sec; the trainer
// entries add clustering/warm-start stats and their speedup over naive.
// Dataset generation and matrix packing happen once, outside the timed
// regions — the benchmark measures training, not synthesis.
func populationBenches(consumers, weeks int) ([]bench, error) {
	if consumers < 1 {
		return nil, fmt.Errorf("bench: -consumers must be >= 1, got %d", consumers)
	}
	// The paper's population mix: ~80% residential, ~10% SMEs, remainder
	// unclassified.
	res := consumers * 8 / 10
	smes := consumers / 10
	ds, err := dataset.Generate(dataset.Config{
		Residential:  res,
		SMEs:         smes,
		Unclassified: consumers - res - smes,
		Weeks:        weeks,
		Seed:         2016,
	})
	if err != nil {
		return nil, err
	}
	series := make([]timeseries.Series, len(ds.Consumers))
	for i := range ds.Consumers {
		series[i] = ds.Consumers[i].Demand
	}
	pop, err := timeseries.PopulationFromSeries(series, weeks)
	if err != nil {
		return nil, err
	}
	// KLD-only suite: the naive comparator is the plain per-consumer
	// constructor, which this config keeps identical in work done.
	suiteCfg := detect.SuiteConfig{KLD: detect.KLDConfig{Significance: 0.05}}
	workers := runtime.GOMAXPROCS(0)

	var naiveNs float64
	perSec := func(_ testing.BenchmarkResult, r *BenchResult) {
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics["consumers_per_sec"] = float64(consumers) * 1e9 / r.NsPerOp
		if naiveNs > 0 && r.Name != "PopulationNaive" {
			r.Metrics["speedup_vs_naive"] = naiveNs / r.NsPerOp
		}
	}
	trainerBench := func(name string, mode detect.TrainMode) bench {
		var stats detect.PopulationStats
		return bench{name: name, workers: workers, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := detect.NewPopulationTrainer(detect.PopulationConfig{
					Suite:   suiteCfg,
					Workers: workers,
					Mode:    mode,
				})
				out, err := tr.Train(pop)
				if err != nil {
					b.Fatal(err)
				}
				if out.Stats.Failed > 0 {
					b.Fatalf("%d consumers failed to train", out.Stats.Failed)
				}
				stats = out.Stats
			}
		}, post: func(r testing.BenchmarkResult, res *BenchResult) {
			perSec(r, res)
			res.Metrics["clusters"] = float64(stats.Clusters)
			res.Metrics["warm_hits"] = float64(stats.WarmHits)
			res.Metrics["warm_misses"] = float64(stats.WarmMisses)
			res.Metrics["grid_fits_skipped"] = float64(stats.GridFitsSkipped)
		}}
	}

	return []bench{
		{name: "PopulationNaive", workers: 1, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for c := 0; c < pop.Consumers(); c++ {
					if _, err := detect.NewTrainedSuite(pop.Series(c), suiteCfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		}, post: func(r testing.BenchmarkResult, res *BenchResult) {
			perSec(r, res)
			naiveNs = res.NsPerOp
		}},
		trainerBench("PopulationTrainWarm", detect.WarmStartMargin),
		trainerBench("PopulationTrainExact", detect.WarmStartExact),
	}, nil
}
