package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// runFlags holds the flags every long-running fdeta subcommand shares:
// CPU/heap profiling and the opt-in HTTP admin endpoint. Evaluation-driven
// commands compose it into evalFlags; `detect`, `collect`, and `bench` bind
// it directly.
type runFlags struct {
	cpuprofile  string
	memprofile  string
	metricsAddr string
}

func bindRunFlags(fs *flag.FlagSet) *runFlags {
	rf := &runFlags{}
	fs.StringVar(&rf.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	fs.StringVar(&rf.memprofile, "memprofile", "", "write a post-run heap profile to this file (inspect with `go tool pprof`)")
	fs.StringVar(&rf.metricsAddr, "metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address for the duration of the run (e.g. 127.0.0.1:9090; empty = no listener)")
	return rf
}

// run executes body with the admin endpoint and optional CPU/heap profiling
// wrapped around it. With -metrics-addr unset no listener is started and
// body runs exactly as before. Everything fdeta instruments — detector
// verdicts, evaluation stages, an opted-in head-end — lands on the process
// default registry, which is what the endpoint serves.
func (rf *runFlags) run(body func() error) error {
	if rf.metricsAddr != "" {
		srv, err := obs.ServeAdmin(rf.metricsAddr, obs.Default())
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "metrics: admin endpoint on http://%s/metrics\n", srv.Addr())
	}
	if rf.cpuprofile != "" {
		f, err := os.Create(rf.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := body(); err != nil {
		return err
	}
	if rf.memprofile != "" {
		f, err := os.Create(rf.memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() { _ = f.Close() }()
		runtime.GC() // flush dead objects so the profile shows live memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
