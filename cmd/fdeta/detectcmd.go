package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/topology"
)

// cmdDetect runs the F-DETA detection pipeline over a CER-format CSV file:
// every consumer is enrolled on the first -train weeks and each remaining
// complete week is evaluated.
func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	rf := bindRunFlags(fs)
	path := fs.String("data", "", "CER-format CSV file (required; see `fdeta generate`)")
	trainWeeks := fs.Int("train", 0, "training weeks (default: all but the last week)")
	significance := fs.Float64("significance", 0.05, "KLD significance level α")
	consumer := fs.Int("consumer", 0, "evaluate only this meter ID (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-data is required")
	}
	return rf.run(func() error {
		return runDetect(*path, *trainWeeks, *significance, *consumer)
	})
}

// runDetect is the detect pipeline body, separated so the shared run
// wrapper (profiling, admin endpoint) brackets exactly the detection work.
func runDetect(path string, trainWeeks int, significance float64, consumer int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	ds, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}
	if ds.Weeks < 3 {
		return fmt.Errorf("dataset has %d complete weeks; need >= 3 (train + evaluate)", ds.Weeks)
	}
	tw := trainWeeks
	if tw <= 0 {
		tw = ds.Weeks - 1
	}
	if tw >= ds.Weeks {
		return fmt.Errorf("training weeks %d must leave at least one evaluation week of %d", tw, ds.Weeks)
	}

	framework, err := core.New(core.Config{Factory: core.DefaultDetectorFactory(significance)})
	if err != nil {
		return err
	}

	evaluated, flagged := 0, 0
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		if consumer != 0 && c.ID != consumer {
			continue
		}
		id := fmt.Sprintf("%d", c.ID)
		train, test, err := c.Demand.Split(tw)
		if err != nil {
			return fmt.Errorf("consumer %d: %w", c.ID, err)
		}
		if err := framework.Enroll(id, train); err != nil {
			return fmt.Errorf("consumer %d: %w", c.ID, err)
		}
		for w := 0; w < test.Weeks(); w++ {
			a, err := framework.Evaluate(id, tw+w, test.MustWeek(w))
			if err != nil {
				return fmt.Errorf("consumer %d week %d: %w", c.ID, tw+w, err)
			}
			evaluated++
			if a.Anomalous {
				flagged++
				fmt.Printf("ALERT consumer %d week %d: %v", c.ID, tw+w, a.Kind)
				for name, v := range a.Verdicts {
					if v.Anomalous {
						fmt.Printf("  [%s score=%.4g threshold=%.4g]", name, v.Score, v.Threshold)
					}
				}
				fmt.Println()
			}
		}
	}
	fmt.Printf("evaluated %d consumer-weeks, flagged %d\n", evaluated, flagged)
	return nil
}

// cmdInvestigate demonstrates step 5 on a generated feeder: a hidden thief,
// the balance-check sweep, meter alarms, and both localization procedures.
func cmdInvestigate(args []string) error {
	fs := flag.NewFlagSet("investigate", flag.ContinueOnError)
	consumers := fs.Int("consumers", 30, "feeder size")
	seed := fs.Int64("seed", 4, "feeder seed")
	compromiseMeters := fs.Bool("compromise-path", false, "let the thief compromise the balance meters on her path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := topology.DefaultBuilderConfig()
	cfg.Consumers = *consumers
	cfg.Seed = *seed
	tree, err := topology.BuildRandom(cfg)
	if err != nil {
		return err
	}
	snap := topology.NewSnapshot()
	for _, c := range tree.Consumers() {
		snap.ConsumerActual[c.ID] = 2
		snap.ConsumerReported[c.ID] = 2
	}
	for _, n := range tree.Internals() {
		for _, ch := range n.Children {
			if ch.Kind == topology.Loss {
				snap.LossCalc[ch.ID] = 0.05
			}
		}
	}
	all := tree.Consumers()
	thief := all[len(all)/2].ID
	snap.ConsumerActual[thief] = 7
	snap.ConsumerReported[thief] = 1
	fmt.Printf("feeder: %d consumers; hidden thief: %s (consuming 7 kW, reporting 1 kW)\n", len(all), thief)

	if *compromiseMeters {
		node, err := tree.Node(thief)
		if err != nil {
			return err
		}
		var compromised []string
		for cur := node.Parent; cur != nil && cur.Parent != nil; cur = cur.Parent {
			if cur.Metered {
				snap.CompromisedMeters[cur.ID] = true
				compromised = append(compromised, cur.ID)
			}
		}
		sort.Strings(compromised)
		fmt.Printf("thief compromised balance meters: %v\n", compromised)
	}

	framework, err := core.New(core.Config{Factory: core.DefaultDetectorFactory(0.05)})
	if err != nil {
		return err
	}
	report, err := framework.Investigate(tree, snap)
	if err != nil {
		return err
	}
	fmt.Printf("\nfailing balance checks: %v\n", report.FailingChecks)
	for _, a := range report.Alarms {
		fmt.Printf("ALARM %s: %s\n", a.NodeID, a.Reason)
	}
	if report.Escalated {
		fmt.Println("meter-driven localization inconclusive — escalated to the serviceman search")
	}
	fmt.Printf("localization (%d nodes examined): suspects %v\n",
		report.Investigation.NodesVisited, report.Investigation.Suspects)
	if len(report.Investigation.DeepestFailures) > 0 {
		fmt.Printf("deepest failing meters: %v\n", report.Investigation.DeepestFailures)
	}
	return nil
}
