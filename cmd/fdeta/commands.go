package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/meter"
	"repro/internal/timeseries"
	"repro/internal/topology"
)

// evalFlags holds the flags shared by the evaluation-driven subcommands,
// composing the profiling/metrics flags every long-running command binds.
type evalFlags struct {
	*runFlags
	full        bool
	consumers   int
	trials      int
	seed        int64
	parallelism int
	warmStart   bool
	strict      bool
	checkpoint  string
	faultSpec   string
}

func bindEvalFlags(fs *flag.FlagSet) *evalFlags {
	ef := &evalFlags{runFlags: bindRunFlags(fs)}
	fs.BoolVar(&ef.full, "full", false, "run the paper's full protocol (500 consumers, 74 weeks, 50 trials)")
	fs.IntVar(&ef.consumers, "consumers", 0, "cap the number of consumers evaluated (0 = all)")
	fs.IntVar(&ef.trials, "trials", 0, "override the attack trial count")
	fs.Int64Var(&ef.seed, "seed", 2016, "experiment seed")
	fs.IntVar(&ef.parallelism, "parallelism", 0, "worker goroutines for per-consumer evaluation (0 = GOMAXPROCS); results are identical at any setting")
	fs.BoolVar(&ef.warmStart, "warmstart", false, "pre-train detector suites with the population trainer (clustered warm-start order selection; metrics stay within the pinned tolerance of cold training)")
	fs.BoolVar(&ef.strict, "strict", false, "abort on the first consumer evaluation failure instead of quarantining it")
	fs.StringVar(&ef.checkpoint, "checkpoint", "", "JSON checkpoint path: per-consumer results are flushed as they finish, and rerunning with the same settings resumes from them")
	fs.StringVar(&ef.faultSpec, "fault", "", "inject meter faults into the monitored weeks, e.g. 'dropout:0.1+spike:0.01,20' (kinds: dropout, outage, stuckat, spike, clockslip)")
	return ef
}

func (ef *evalFlags) options() (experiments.Options, error) {
	opts := experiments.QuickOptions()
	if ef.full {
		opts = experiments.PaperOptions()
	}
	if ef.consumers > 0 {
		opts.MaxConsumers = ef.consumers
	}
	if ef.trials > 0 {
		opts.Trials = ef.trials
	}
	opts.Seed = ef.seed
	opts.Parallelism = ef.parallelism
	opts.WarmStart = ef.warmStart
	opts.Strict = ef.strict
	opts.Checkpoint = ef.checkpoint
	if ef.faultSpec != "" {
		scens, err := fault.Parse(ef.faultSpec)
		if err != nil {
			return opts, err
		}
		opts.Fault = fault.Plan{
			// Offset the seed so per-meter fault streams never replay the
			// per-meter attack streams (both split on (seed, meterID)).
			Seed:      opts.Seed + experiments.FaultSeedOffset,
			Scenarios: scens,
			FromWeek:  opts.TrainWeeks,
		}
	}
	return opts, nil
}

// evalRun runs the compute step of an evaluation command under the shared
// run wrapper, so profiles (and the admin endpoint's lifetime) cover the
// evaluation itself rather than result formatting.
func evalRun[T any](ef *evalFlags, f func() (T, error)) (T, error) {
	var out T
	err := ef.run(func() error {
		var err error
		out, err = f()
		return err
	})
	return out, err
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	out := fs.String("o", "dataset.csv", "output path")
	full := fs.Bool("full", false, "generate the paper-scale population (500 consumers, 74 weeks)")
	seed := fs.Int64("seed", 2016, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := dataset.SmallConfig()
	if *full {
		cfg = dataset.PaperConfig()
	}
	cfg.Seed = *seed
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := dataset.WriteCSV(f, ds); err != nil {
		return err
	}
	fmt.Printf("wrote %d consumers x %d weeks to %s\n", len(ds.Consumers), ds.Weeks, *out)
	return f.Close()
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	full := fs.Bool("full", false, "validate the paper-scale population")
	seed := fs.Int64("seed", 2016, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := dataset.SmallConfig()
	if *full {
		cfg = dataset.PaperConfig()
	}
	cfg.Seed = *seed
	rep, err := experiments.ValidateDataset(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("consumers:            %d\n", rep.Consumers)
	fmt.Printf("weeks:                %d\n", rep.Weeks)
	fmt.Printf("mean demand:          %.3f kW\n", rep.MeanDemandKW)
	fmt.Printf("total energy:         %.0f kWh\n", rep.TotalEnergyKWh)
	fmt.Printf("peak-heavy fraction:  %.1f%%  (paper reports 94.4%% for the CER data)\n",
		100*rep.PeakHeavyFraction)
	return nil
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "construction seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.VerifyTableI(*seed)
	if err != nil {
		return err
	}
	fmt.Println("TABLE I: Attack Classification (verified by construction)")
	fmt.Print(experiments.FormatTableI(rows))
	return nil
}

func cmdTables(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	summary := fs.Bool("summary", false, "also print the Section VIII-F1 headline reductions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	ev, err := evalRun(ef, func() (*experiments.Evaluation, error) {
		return experiments.RunEvaluation(opts)
	})
	if err != nil {
		return err
	}
	switch cmd {
	case "table2":
		out, err := experiments.FormatTableII(ev)
		if err != nil {
			return err
		}
		fmt.Println("TABLE II: Metric 1 — % of consumers for whom the detector succeeded")
		fmt.Printf("(%d consumers, %d trials)\n", ev.Consumers, ev.Options.Trials)
		fmt.Print(out)
	case "table3":
		out, err := experiments.FormatTableIII(ev)
		if err != nil {
			return err
		}
		fmt.Println("TABLE III: Metric 2 — maximum attacker gains in one week")
		fmt.Printf("(%d consumers, %d trials; 1B column totals across consumers)\n",
			ev.Consumers, ev.Options.Trials)
		fmt.Print(out)
	}
	if *summary {
		iv, kv, err := experiments.Headline(ev)
		if err != nil {
			return err
		}
		fmt.Printf("\nheadline: Integrated-ARIMA cuts 1B theft %.1f%% vs ARIMA (paper: ~78%%);\n", iv)
		fmt.Printf("          KLD cuts a further %.1f%% vs Integrated-ARIMA (paper: 94.8%%)\n", kv)
	}
	return nil
}

func cmdFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fig. 1: a line tap upstream of the meter. The meter is honest but
	// only sees the downstream load, so it under-reports total consumption.
	household := timeseries.Series{1.2, 1.0, 1.4, 1.1}
	tap := timeseries.Series{2.0, 2.0, 2.0, 2.0} // Mallory's tapped load
	m, err := meter.New("honest-meter", household, meter.Config{})
	if err != nil {
		return err
	}
	fmt.Println("FIG. 1: upstream tap — the meter is honest, the report is still low")
	fmt.Println("slot  true_total_kW  metered_kW  unaccounted_kW")
	for s := range household {
		r, err := m.Report(timeseries.Slot(s))
		if err != nil {
			return err
		}
		total := household[s] + tap[s]
		fmt.Printf("%4d  %13.2f  %10.2f  %14.2f\n", s, total, r.KW, total-r.KW)
	}
	fmt.Println("\nthe tapped 2 kW never passes the meter: D'(t) < D(t) without any compromise (Prop. 1)")
	return nil
}

func cmdFig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tree, err := topology.BuildFig2()
	if err != nil {
		return err
	}
	fmt.Println("FIG. 2: radial power network as an n-ary tree")
	err = tree.Walk(func(n *topology.Node) error {
		indent := ""
		for i := 0; i < n.Depth(); i++ {
			indent += "  "
		}
		metered := ""
		if n.Kind == topology.Internal && n.Metered {
			metered = " [balance meter]"
		}
		fmt.Printf("%s%s (%s)%s\n", indent, n.ID, n.Kind, metered)
		return nil
	})
	if err != nil {
		return err
	}
	// Demonstrate additivity and the balance check.
	snap := topology.NewSnapshot()
	demand := map[string]float64{"C1": 1, "C2": 2, "C3": 3, "C4": 4, "C5": 5}
	for id, d := range demand {
		snap.ConsumerActual[id] = d
		snap.ConsumerReported[id] = d
	}
	for i, id := range []string{"L1", "L2", "L3"} {
		snap.LossCalc[id] = 0.1 * float64(i+1)
	}
	n3, err := tree.Node("N3")
	if err != nil {
		return err
	}
	fmt.Printf("\nadditivity (Eq. 4): D_N3 = D_C4 + D_C5 + D_L3 = %.1f kW\n", snap.ActualDemand(n3))
	results, err := topology.DefaultChecker().CheckAll(tree, snap)
	if err != nil {
		return err
	}
	for _, id := range []string{"N1", "N2", "N3"} {
		fmt.Printf("balance check at %s: pass=%v (mismatch %.3f kW)\n",
			id, results[id].Pass, results[id].Mismatch)
	}
	return nil
}

func cmdFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	consumer := fs.Int("consumer", 1000, "subject consumer ID")
	out := fs.String("o", "fig3.csv", "output CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	data, err := evalRun(ef, func() (*experiments.Fig3Data, error) {
		return experiments.GenerateFig3(opts, *consumer)
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := data.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote Fig. 3 series for consumer %d to %s\n", *consumer, *out)
	return f.Close()
}

func cmdFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	consumer := fs.Int("consumer", 1000, "subject consumer ID")
	bins := fs.Int("bins", 10, "histogram bin count B")
	out := fs.String("o", "fig4.csv", "output CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	data, err := evalRun(ef, func() (*experiments.Fig4Data, error) {
		return experiments.GenerateFig4(opts, *consumer, *bins)
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := data.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote Fig. 4 data for consumer %d to %s\n", *consumer, *out)
	fmt.Printf("attack-week KL divergence: %.3f bits (95th percentile of training: %.3f)\n",
		data.AttackKLD, data.Pct95)
	return f.Close()
}

func cmdAblateBins(args []string) error {
	fs := flag.NewFlagSet("ablate-bins", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	bins := []int{4, 6, 8, 10, 15, 20, 30, 40}
	points, err := evalRun(ef, func() ([]experiments.BinSweepPoint, error) {
		return experiments.BinSweep(opts, bins)
	})
	if err != nil {
		return err
	}
	fmt.Println("KLD bin-count ablation (Attack Class 1B, 5% significance)")
	fmt.Println("bins  detection  false-pos  success")
	for _, p := range points {
		fmt.Printf("%4d  %8.1f%%  %8.1f%%  %6.1f%%\n",
			p.Bins, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
	}
	return nil
}

func cmdAblateTrain(args []string) error {
	fs := flag.NewFlagSet("ablate-train", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	weeks := []int{}
	for _, w := range []int{6, 10, 16, 22, 28, 40, 60} {
		if w < opts.Dataset.Weeks {
			weeks = append(weeks, w)
		}
	}
	points, err := evalRun(ef, func() ([]experiments.TrainLengthPoint, error) {
		return experiments.TrainLengthSweep(opts, weeks)
	})
	if err != nil {
		return err
	}
	fmt.Println("KLD training-length ablation (Attack Class 1B, 5% significance)")
	fmt.Println("train-weeks  success")
	for _, p := range points {
		fmt.Printf("%11d  %6.1f%%\n", p.TrainWeeks, 100*p.SuccessRate)
	}
	return nil
}
