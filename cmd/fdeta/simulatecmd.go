package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/sim"
)

// cmdSimulate runs a scripted multi-week feeder simulation: honest weeks, a
// Class-2A thief, a balance-evading Class-2B pair, and an over-consuming
// Class-1A tap, with the full utility stack scoring each week.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	consumers := fs.Int("consumers", 8, "feeder population")
	trainWeeks := fs.Int("train", 20, "training weeks")
	liveWeeks := fs.Int("weeks", 5, "live weeks to simulate")
	seed := fs.Int64("seed", 90, "population seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *consumers < 4 {
		return fmt.Errorf("need at least 4 consumers for the default script")
	}
	if *liveWeeks < 5 {
		return fmt.Errorf("need at least 5 live weeks for the default script")
	}

	sc := sim.Scenario{
		Consumers:  *consumers,
		TrainWeeks: *trainWeeks,
		LiveWeeks:  *liveWeeks,
		Seed:       *seed,
		Attacks: []sim.AttackScript{
			// Week 0 is clean.
			{Week: 1, Class: attack.Class2A, Attacker: 1, Magnitude: 0.8},
			{Week: 2, Class: attack.Class2B, Attacker: 2, Victim: 3, Magnitude: 0.7},
			{Week: 3, Class: attack.Class1A, Attacker: 0, Magnitude: 2.5},
			{Week: 4, Class: attack.Class3A, Attacker: 1},
		},
	}
	res, err := sim.Run(sc)
	if err != nil {
		return err
	}

	fmt.Printf("simulated %d consumers, %d live weeks\n\n", *consumers, *liveWeeks)
	fmt.Println("week  balance  unaccounted(kWh)  revenue($)  flags / ground truth")
	for _, w := range res.Weeks {
		balance := "PASS"
		if !w.RootBalanced {
			balance = "FAIL"
		}
		fmt.Printf("%4d  %7s  %16.1f  %10.2f  ", w.Week, balance, w.UnaccountedKWh, w.RevenueUSD)
		if len(w.Flags) == 0 {
			fmt.Print("none")
		}
		for i, f := range w.Flags {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s(%v)", f.ConsumerID, f.Kind)
		}
		fmt.Printf("  /  %v\n", w.AttackActive)
	}
	fmt.Printf("\nstolen: %.1f kWh total\n", res.StolenKWh)
	fmt.Printf("consumer-week detection: TP=%d FP=%d FN=%d (precision %.0f%%, recall %.0f%%)\n",
		res.TruePositives, res.FalsePositives, res.FalseNegatives,
		100*res.Precision(), 100*res.Recall())
	fmt.Println("\nnotes: week 3's Class-1A tap is invisible to data-driven detection by design")
	fmt.Println("(the report is perfectly normal) — the balance-check FAIL is what catches it;")
	fmt.Println("week 4's Class-3A swap fails the per-slot balance check yet leaves ZERO")
	fmt.Println("unaccounted energy — only time was lied about, not quantity (Table I row 2).")
	return nil
}
