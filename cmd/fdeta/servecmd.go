package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ami"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/timeseries"
)

// cmdServe runs the always-on streaming detection service: a sharded AMI
// head-end taps every accepted reading into a serve.Server holding compact
// per-consumer detector state, with tiered alerts on JSONL, SSE, and the
// admin endpoint. The default mode demonstrates the full loop on a
// synthetic fleet (driven over real TCP) until the data runs out or
// SIGTERM; -smoke is the CI assertion variant; -bench-consumers measures
// per-consumer memory and observation throughput at fleet scale.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	rf := bindRunFlags(fs)
	meters := fs.Int("meters", 8, "synthetic fleet size")
	weeks := fs.Int("weeks", 13, "weeks of data per meter (>= train+2)")
	trainWeeks := fs.Int("train", 11, "training-history weeks per re-train; thin histories produce tight, false-positive-prone thresholds")
	seed := fs.Int64("seed", 2026, "synthetic fleet seed")
	shards := fs.Int("shards", 4, "head-end store shards")
	theftFrac := fs.Float64("theft", 0.25, "fraction of the fleet switching to total theft in the final week")
	alertOut := fs.String("alerts-out", "", "append alert events to this JSONL file (empty = stdout summary only)")
	retrainEvery := fs.Duration("retrain-interval", 0, "rolling re-train cadence for the live loop (0 = re-train once after the history phase)")
	smoke := fs.Bool("smoke", false, "CI smoke: one honest + one tampered meter; exit non-zero unless exactly the tampered meter raises a HIGH alert")
	benchConsumers := fs.Int("bench-consumers", 0, "register this many compact streams and report bytes/consumer and observations/s instead of serving")
	benchOut := fs.String("bench-out", "", "write a BENCH_*.json record of the -bench-consumers run")
	adminAddr := fs.String("admin-addr", "127.0.0.1:0", "address for the admin endpoint serving /alerts, /consumers/{id}, /dashboard.json and /metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchConsumers > 0 {
		return rf.run(func() error { return serveBench(*benchConsumers, *seed, *benchOut) })
	}
	if *weeks < *trainWeeks+2 {
		return fmt.Errorf("serve: -weeks must be >= train+2 (%d)", *trainWeeks+2)
	}
	if *smoke {
		*meters = 2
		*theftFrac = 0.5 // exactly meter 1
	}
	if *meters < 2 {
		return fmt.Errorf("serve: -meters must be >= 2")
	}
	return rf.run(func() error {
		return runServe(*meters, *weeks, *trainWeeks, *seed, *shards, *theftFrac,
			*alertOut, *retrainEvery, *adminAddr, *smoke)
	})
}

// runServe drives the service end to end: history weeks stream in live
// (over real TCP, through the sharded head-end's sink), the fleet
// re-trains from the accumulated store without stopping, and the final
// week carries a theft on part of the fleet. Shutdown is the production
// order — head-end first, then the service — so every acked reading is
// observed before exit.
func runServe(meters, weeks, trainWeeks int, seed int64, shards int, theftFrac float64,
	alertOut string, retrainEvery time.Duration, adminAddr string, smoke bool) error {
	ds, err := dataset.Generate(dataset.Config{Residential: meters, Weeks: weeks, Seed: seed})
	if err != nil {
		return err
	}

	// The service pins a strict significance and long persistence gates:
	// honest weekly drift produces threshold excursions of a few dozen
	// slots even on a well-calibrated detector, so nothing alerts below a
	// day-long streak — while a real theft holds its streak for the whole
	// week (and escalates faster still on the score/threshold ratio).
	cfg := detect.KLDConfig{Significance: 0.01}
	policy := serve.AlertPolicy{MinStreak: 48, MediumStreak: 96, HighStreak: 144}

	var alertW *os.File
	if alertOut != "" {
		alertW, err = os.OpenFile(alertOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer func() { _ = alertW.Close() }()
	}

	// The head-end is built first (the service re-trains from its store)
	// with an indirected sink: the service attaches itself before Listen,
	// so no accepted reading can miss the tap. The pointer is published
	// atomically because shard workers read it concurrently.
	var sinkPtr atomic.Pointer[ami.ReadingSink]
	head := ami.NewSharded(shards, ami.WithMetrics(obs.Default()),
		ami.WithDrainTimeout(2*time.Second),
		ami.WithSink(func(meterID string, readings []ami.BatchReading) {
			if f := sinkPtr.Load(); f != nil {
				(*f)(meterID, readings)
			}
		}))

	opts := []serve.Option{
		serve.WithAlertPolicy(policy),
		serve.WithMetrics(obs.Default()),
		serve.WithStore(head),
		serve.WithRetrain(serve.KLDRetrainer(trainWeeks, cfg)),
	}
	if alertW != nil {
		opts = append(opts, serve.WithAlertLog(alertW))
	}
	if retrainEvery > 0 {
		opts = append(opts, serve.WithRetrainInterval(retrainEvery))
	}
	srv, err := serve.New(opts...)
	if err != nil {
		_ = head.Close()
		return err
	}
	sink := srv.Sink()
	sinkPtr.Store(&sink)

	// Seed per-consumer state: detectors trained on the first trainWeeks
	// weeks, compact streams expecting the live feed to start at slot 0
	// (the history weeks stream through like any other reading).
	ids := make([]string, meters)
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		ids[i] = fmt.Sprintf("meter-%d", c.ID)
		train, _, err := c.Demand.Split(trainWeeks)
		if err != nil {
			return err
		}
		d, err := detect.NewKLDDetector(train, cfg)
		if err != nil {
			return err
		}
		sd, err := d.NewCompactStream(train.MustWeek(trainWeeks - 1))
		if err != nil {
			return err
		}
		if err := srv.Register(ids[i], sd, 0); err != nil {
			return err
		}
	}

	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		_ = srv.Close()
		_ = head.Close()
		return err
	}
	fmt.Printf("serve: head-end on %s (%d shards), %d consumers registered\n", addr, shards, meters)

	admin, err := obs.ServeAdmin(adminAddr, obs.Default())
	if err != nil {
		_ = srv.Close()
		_ = head.Close()
		return err
	}
	defer func() { _ = admin.Close() }()
	srv.Mount(admin)
	fmt.Printf("serve: admin endpoint on http://%s — /alerts, /alerts/stream, /consumers/{id}, /dashboard.json, /metrics\n", admin.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Phase 1 — history: every meter streams its honest weeks (all but the
	// last) through the wire; the service observes them live.
	honest := (weeks - 1) * timeseries.SlotsPerWeek
	if err := streamFleet(ctx, addr, ds, ids, 0, honest, nil); err != nil {
		_ = srv.Close()
		_ = head.Close()
		return err
	}
	head.Flush()
	srv.Flush()
	if smoke {
		if n := len(srv.Alerts(0)); n != 0 {
			_ = srv.Close()
			_ = head.Close()
			return fmt.Errorf("serve: smoke: %d alert(s) during the honest history phase, want 0", n)
		}
	}

	// Rolling re-train: rebuild every detector from the store's freshest
	// history and swap it in behind the live stream.
	ok, failed := srv.RetrainAll()
	fmt.Printf("serve: re-trained %d consumers (%d failed) from %d stored weeks\n", ok, failed, weeks-1)
	if failed > 0 {
		_ = srv.Close()
		_ = head.Close()
		return fmt.Errorf("serve: %d re-trains failed", failed)
	}

	// Phase 2 — the final week: the first theftFrac of the fleet under-
	// reports everything to zero (Table I's total-theft vector); the rest
	// stay honest.
	nTheft := int(theftFrac * float64(meters))
	tampered := func(i int) bool { return smoke && i == 1 || !smoke && i < nTheft }
	if err := streamFleet(ctx, addr, ds, ids, honest, weeks*timeseries.SlotsPerWeek, tampered); err != nil {
		_ = srv.Close()
		_ = head.Close()
		return err
	}
	head.Flush()
	srv.Flush()

	// Graceful drain: close the head-end (acks stop, queues drain into the
	// sink), then the service (workers finish every delivered reading).
	if err := head.Close(); err != nil {
		_ = srv.Close()
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}

	st := srv.Stats()
	fmt.Printf("serve: observed %d readings (%d missing, %d stale, %d dropped); verdicts %d normal / %d anomalous / %d inconclusive\n",
		st.Observed, st.Missing, st.Stale, st.Dropped, st.Normal, st.Anomalous, st.Inconclusive)
	fmt.Printf("serve: alerts %d LOW / %d MEDIUM / %d HIGH / %d cleared\n",
		st.AlertsLow, st.AlertsMedium, st.AlertsHigh, st.AlertsClear)
	events := srv.Alerts(0)
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		fmt.Printf("serve:   [%s] %s slot %d score %.3g threshold %.3g streak %d\n",
			e.Tier, e.Consumer, e.Slot, e.Score, e.Threshold, e.Streak)
	}

	if smoke {
		return smokeVerdict(srv, head, admin, ids, st)
	}
	return nil
}

// smokeVerdict is the CI assertion set: the tampered meter (and only it)
// must reach HIGH, the alert must be visible over HTTP, and the drain must
// have observed every acked reading.
func smokeVerdict(srv *serve.Server, head *ami.ShardedHeadEnd, admin *obs.AdminServer, ids []string, st serve.Stats) error {
	var honestAlerts, tamperedHigh int
	for _, e := range srv.Alerts(0) {
		switch e.Consumer {
		case ids[0]:
			honestAlerts++
		case ids[1]:
			if e.Tier == "HIGH" {
				tamperedHigh++
			}
		}
	}
	if honestAlerts != 0 {
		return fmt.Errorf("serve: smoke: honest meter %s raised %d alert(s), want 0", ids[0], honestAlerts)
	}
	if tamperedHigh == 0 {
		return fmt.Errorf("serve: smoke: tampered meter %s never reached HIGH", ids[1])
	}
	cs, okc := srv.ConsumerState(ids[1])
	if !okc || cs.Tier != "HIGH" {
		return fmt.Errorf("serve: smoke: tampered consumer state = %+v, want tier HIGH", cs)
	}

	// The alert must be served over the admin mux, not just in memory.
	resp, err := http.Get("http://" + admin.Addr() + "/alerts")
	if err != nil {
		return fmt.Errorf("serve: smoke: GET /alerts: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var got []serve.AlertEvent
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		return fmt.Errorf("serve: smoke: decode /alerts: %w", err)
	}
	found := false
	for _, e := range got {
		if e.Consumer == ids[1] && e.Tier == "HIGH" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("serve: smoke: /alerts lacks the HIGH event for %s", ids[1])
	}

	// Drain accounting: everything the head-end acked was observed (live or
	// as a gap-filled missing slot) and nothing was dropped.
	accepted := head.Stats().Accepted
	if st.Dropped != 0 {
		return fmt.Errorf("serve: smoke: %d sink deliveries dropped during drain", st.Dropped)
	}
	if st.Observed != accepted {
		return fmt.Errorf("serve: smoke: observed %d of %d acked readings", st.Observed, accepted)
	}
	fmt.Printf("serve: smoke OK — tampered meter HIGH, honest meter silent, %d/%d acked readings observed\n",
		st.Observed, accepted)
	return nil
}

// streamFleet sends slots [from, to) for every meter over batched wire-v2
// connections; tampered meters report zero in place of their demand.
func streamFleet(ctx context.Context, addr string, ds *dataset.Dataset, ids []string,
	from, to int, tampered func(i int) bool) error {
	const batch = timeseries.SlotsPerDay
	for i := range ds.Consumers {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := ami.DialBatch(addr, ids[i], nil, 5*time.Second)
		if err != nil {
			return err
		}
		demand := ds.Consumers[i].Demand
		rs := make([]meter.Reading, 0, batch)
		for s := from; s < to; s += batch {
			end := s + batch
			if end > to {
				end = to
			}
			rs = rs[:0]
			for slot := s; slot < end; slot++ {
				kw := demand[slot]
				if tampered != nil && tampered(i) {
					kw = 0
				}
				rs = append(rs, meter.Reading{MeterID: ids[i], Slot: timeseries.Slot(slot), KW: kw})
			}
			if err := c.SendBatch(rs); err != nil {
				_ = c.Close()
				return fmt.Errorf("serve: %s: %w", ids[i], err)
			}
		}
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// serveBench measures the service's fleet-scale footprint: bytes of heap
// per registered consumer (the ~1KB/consumer contract) and observation
// throughput through the sink path, without the wire.
func serveBench(consumers int, seed int64, benchOut string) error {
	const templates = 64
	fmt.Printf("serve: bench — registering %d consumers over %d detector templates\n", consumers, templates)
	ds, err := dataset.Generate(dataset.Config{Residential: templates, Weeks: 4, Seed: seed})
	if err != nil {
		return err
	}
	type tmpl struct {
		d    *detect.KLDDetector
		seed timeseries.Series
	}
	tmpls := make([]tmpl, templates)
	for i := range tmpls {
		d, err := detect.NewKLDDetector(ds.Consumers[i].Demand, detect.KLDConfig{})
		if err != nil {
			return err
		}
		tmpls[i] = tmpl{d: d, seed: ds.Consumers[i].Demand.MustWeek(3)}
	}

	srv, err := serve.New(serve.WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	before := heap()
	start := time.Now()
	for i := 0; i < consumers; i++ {
		tm := tmpls[i%templates]
		sd, err := tm.d.NewCompactStream(tm.seed)
		if err != nil {
			return err
		}
		if err := srv.Register(fmt.Sprintf("meter-%07d", i), sd, 0); err != nil {
			return err
		}
	}
	regElapsed := time.Since(start)
	perConsumer := float64(heap()-before) / float64(consumers)

	// Throughput: one day of readings for a rotating slice of the fleet,
	// delivered through the sink exactly as the head-end would.
	sink := srv.Sink()
	feed := consumers
	if feed > 20000 {
		feed = 20000
	}
	day := make([]ami.BatchReading, timeseries.SlotsPerDay)
	start = time.Now()
	for i := 0; i < feed; i++ {
		prof := tmpls[i%templates].seed
		for s := range day {
			day[s] = ami.BatchReading{Slot: int64(s), KW: prof[s]}
		}
		sink(fmt.Sprintf("meter-%07d", i), day)
	}
	srv.Flush()
	obsElapsed := time.Since(start)
	observed := srv.Stats().Observed
	rate := float64(observed) / obsElapsed.Seconds()

	fmt.Printf("serve: bench — %d consumers registered in %s, %.0f B/consumer heap\n",
		consumers, regElapsed.Round(time.Millisecond), perConsumer)
	fmt.Printf("serve: bench — %d observations in %s (%.0f obs/s)\n",
		observed, obsElapsed.Round(time.Millisecond), rate)
	if perConsumer > 1024 {
		return fmt.Errorf("serve: bench: %.0f B/consumer exceeds the 1KB budget", perConsumer)
	}

	if benchOut == "" {
		return nil
	}
	report := BenchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Protocol:   "serve",
		Results: []BenchResult{{
			Name:       "ServeFleetFootprint",
			Iterations: consumers,
			NsPerOp:    float64(regElapsed.Nanoseconds()) / float64(consumers),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers:    runtime.GOMAXPROCS(0),
			Metrics: map[string]float64{
				"consumers":          float64(consumers),
				"bytes_per_consumer": perConsumer,
			},
		}, {
			Name:       "ServeObservePath",
			Iterations: int(observed),
			NsPerOp:    float64(obsElapsed.Nanoseconds()) / float64(observed),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers:    runtime.GOMAXPROCS(0),
			Metrics: map[string]float64{
				"observations_per_sec": rate,
				"fed_consumers":        float64(feed),
			},
		}},
	}
	if err := os.MkdirAll(filepath.Dir(benchOut), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(benchOut, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("serve: wrote %s\n", benchOut)
	return nil
}
