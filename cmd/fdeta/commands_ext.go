package main

import (
	"flag"
	"fmt"

	"repro/internal/billing"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/pricing"
	"repro/internal/timeseries"
)

func cmdTimeToDetect(args []string) error {
	fs := flag.NewFlagSet("ttd", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	sum, err := evalRun(ef, func() (*experiments.TTDSummary, error) {
		return experiments.TimeToDetection(opts)
	})
	if err != nil {
		return err
	}
	fmt.Println("Time-to-detection for Attack Class 1B (streaming KLD, Section VII-D)")
	fmt.Printf("consumers:          %d\n", len(sum.Outcomes))
	fmt.Printf("detected in-week:   %.1f%%\n", 100*sum.DetectedFrac)
	fmt.Printf("median latency:     %.0f slots (%.1f hours)\n", sum.MedianSlots, sum.MedianHours)
	fmt.Printf("mean latency:       %.0f slots (%.1f hours)\n", sum.MeanSlots, sum.MeanSlots*timeseries.DeltaHours)
	fmt.Println("(the paper's week-long bound is 336 slots; detection typically comes far sooner)")
	return nil
}

func cmdAblateDivergence(args []string) error {
	fs := flag.NewFlagSet("ablate-divergence", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	points, err := evalRun(ef, func() ([]experiments.DivergencePoint, error) {
		return experiments.DivergenceSweep(opts)
	})
	if err != nil {
		return err
	}
	fmt.Println("Divergence-measure ablation (Attack Class 1B, 5% significance)")
	fmt.Println("measure         detection  false-pos  success")
	for _, p := range points {
		fmt.Printf("%-15s %8.1f%%  %8.1f%%  %6.1f%%\n",
			p.Kind, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
	}
	return nil
}

func cmdBaselines(args []string) error {
	fs := flag.NewFlagSet("baselines", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	points, err := evalRun(ef, func() ([]experiments.BaselinePoint, error) {
		return experiments.BaselineComparison(opts)
	})
	if err != nil {
		return err
	}
	fmt.Println("Detector-family comparison on Attack Class 1B (KLD vs PCA of ref [3])")
	fmt.Println("detector            detection  false-pos  success")
	for _, p := range points {
		fmt.Printf("%-18s  %8.1f%%  %8.1f%%  %6.1f%%\n",
			p.Detector, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
	}
	return nil
}

func cmdSpread(args []string) error {
	fs := flag.NewFlagSet("spread", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	total := fs.Float64("kwh", 200, "total weekly energy to steal (kWh)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	counts := []int{1, 2, 4, 8}
	points, err := evalRun(ef, func() ([]experiments.SpreadPoint, error) {
		return experiments.SpreadSweep(opts, *total, counts)
	})
	if err != nil {
		return err
	}
	fmt.Printf("Multi-victim spreading of %g kWh/week (Attack Class 1B, KLD 5%%)\n", *total)
	fmt.Println("victims  kWh/victim  victim-detection  scheme-caught")
	for _, p := range points {
		fmt.Printf("%7d  %10.1f  %15.1f%%  %12.1f%%\n",
			p.Victims, p.PerVictimKWh, 100*p.VictimDetectionRate, 100*p.SchemeCaughtRate)
	}
	return nil
}

func cmdAblateBinStrategy(args []string) error {
	fs := flag.NewFlagSet("ablate-binning", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	points, err := evalRun(ef, func() ([]experiments.BinStrategyPoint, error) {
		return experiments.BinStrategySweep(opts)
	})
	if err != nil {
		return err
	}
	fmt.Println("Bin-placement ablation (Attack Class 1B, 5% significance, B=10)")
	fmt.Println("strategy          detection  false-pos  success")
	for _, p := range points {
		fmt.Printf("%-16s  %8.1f%%  %8.1f%%  %6.1f%%\n",
			p.Strategy, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
	}
	return nil
}

func cmdFPProfile(args []string) error {
	fs := flag.NewFlagSet("fp-profile", flag.ContinueOnError)
	ef := bindEvalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := ef.options()
	if err != nil {
		return err
	}
	points, err := evalRun(ef, func() ([]experiments.FPPoint, error) {
		return experiments.FalsePositiveProfile(opts)
	})
	if err != nil {
		return err
	}
	fmt.Println("False-positive calibration over all normal test weeks (Section VIII-E)")
	fmt.Println("detector          nominal-α  measured-FP  consumer-weeks")
	for _, p := range points {
		nominal := "   —"
		if p.Significance > 0 {
			nominal = fmt.Sprintf("%4.0f%%", 100*p.Significance)
		}
		fmt.Printf("%-16s  %9s  %10.1f%%  %14d\n",
			p.Detector, nominal, 100*p.FPRate, p.ConsumerWeeks)
	}
	return nil
}

func cmdBill(args []string) error {
	fs := flag.NewFlagSet("bill", flag.ContinueOnError)
	seed := fs.Int64("seed", 8, "population seed")
	consumers := fs.Int("consumers", 5, "number of consumers")
	theft := fs.Float64("theft", 0, "fraction of consumption the last consumer hides (0 = honest grid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *theft < 0 || *theft >= 1 {
		return fmt.Errorf("theft fraction must be in [0, 1)")
	}
	ds, err := dataset.Generate(dataset.Config{Residential: *consumers, Weeks: 2, Seed: *seed})
	if err != nil {
		return err
	}
	scheme := pricing.Nightsaver()
	cycle := billing.WeekCycle(0)
	reported := make(map[string]timeseries.Series, *consumers)
	delivered := make(timeseries.Series, cycle.Slots)
	var lossKWh float64
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		week := c.Demand.MustWeek(0)
		rep := week
		if *theft > 0 && i == len(ds.Consumers)-1 {
			rep = week.Scale(1 - *theft) // Class 2A under-report
		}
		reported[fmt.Sprintf("meter-%d", c.ID)] = rep
		for s, v := range week {
			delivered[s] += v
		}
	}
	for s := range delivered {
		loss := delivered[s] * 0.02
		delivered[s] += loss
		lossKWh += loss * timeseries.DeltaHours
	}
	rep, err := billing.RevenueAssurance(scheme, cycle, delivered, reported, lossKWh)
	if err != nil {
		return err
	}
	fmt.Println("Weekly statements (Nightsaver TOU):")
	for _, st := range rep.Statements {
		fmt.Printf("  %-12s %8.1f kWh  $%7.2f", st.ConsumerID, st.EnergyKWh, st.AmountUSD)
		for _, it := range st.Items {
			fmt.Printf("   [%s: %.1f kWh $%.2f]", it.Label, it.EnergyKWh, it.AmountUSD)
		}
		fmt.Println()
	}
	fmt.Println("\nRevenue assurance:")
	fmt.Printf("  delivered at root:  %10.1f kWh\n", rep.DeliveredKWh)
	fmt.Printf("  billed:             %10.1f kWh\n", rep.BilledKWh)
	fmt.Printf("  calculated losses:  %10.1f kWh\n", rep.CalculatedLossKWh)
	fmt.Printf("  UNACCOUNTED:        %10.1f kWh (%.1f%% of delivery)\n",
		rep.UnaccountedKWh, 100*rep.LossFraction())
	fmt.Printf("  revenue:            $%9.2f\n", rep.RevenueUSD)
	fmt.Printf("  estimated leakage:  $%9.2f\n", rep.EstimatedLeakageUSD)
	return nil
}
