package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/ami"
	"repro/internal/meter"
	"repro/internal/timeseries"
)

// chaosBanner is the line the server child prints once it is accepting;
// the parent scans child stdout for it to learn the bound address.
const chaosBanner = "chaos-server: listening on "

// cmdChaos proves the durability contract on the real TCP path: it
// re-execs this binary as a WAL-backed sharded head-end, drives a meter
// fleet against it while injecting connection resets, partial writes, and
// slow-loris sessions, kills the server with SIGKILL mid-load, restarts
// it, and repeats. After the last kill it replays the WAL in-process and
// asserts the chaos invariant — every reading the clients saw acknowledged
// is present in the recovered store. Readings in flight when the process
// died may or may not survive; acknowledged ones must.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	meters := fs.Int("meters", 16, "meter fleet size")
	rounds := fs.Int("rounds", 3, "kill -9 / restart rounds")
	shards := fs.Int("shards", 2, "head-end shard count")
	batch := fs.Int("batch", 8, "readings per wire-v2 batch frame")
	roundLen := fs.Duration("round-len", 700*time.Millisecond, "load duration per round before the kill")
	walDir := fs.String("wal-dir", "", "WAL directory (empty = a temp dir, removed when the invariant holds)")
	walSync := fs.String("wal-sync", "interval", "WAL sync policy for the server child: always, interval, or off")
	resets := fs.Int("resets", 2, "concurrent connection-reset injectors (partial frame, then RST)")
	loris := fs.Int("loris", 2, "concurrent slow-loris sessions (one hello byte at a time)")
	serve := fs.Bool("serve", false, "run as the server child (internal; the harness re-execs itself with this flag)")
	addr := fs.String("addr", "127.0.0.1:0", "server child listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := ami.ParseWALSyncPolicy(*walSync)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if *serve {
		return chaosServe(*addr, *shards, *walDir, policy)
	}
	if *meters < 1 || *rounds < 1 || *shards < 1 || *batch < 1 {
		return fmt.Errorf("chaos: -meters, -rounds, -shards, and -batch must all be >= 1")
	}

	dir := *walDir
	ephemeral := false
	if dir == "" {
		dir, err = os.MkdirTemp("", "fdeta-chaos-")
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		ephemeral = true
	}

	h := &chaosHarness{
		meters:   *meters,
		shards:   *shards,
		batch:    *batch,
		roundLen: *roundLen,
		walDir:   dir,
		walSync:  policy,
		resets:   *resets,
		loris:    *loris,
		nextSlot: make([]int64, *meters),
		acked:    make(map[chaosKey]float64),
	}
	if err := h.run(*rounds); err != nil {
		return err
	}
	if ephemeral {
		_ = os.RemoveAll(dir)
	}
	return nil
}

// chaosServe is the server child: a WAL-backed sharded head-end that runs
// until it is killed (the harness path) or SIGTERMed (a tidy exit for
// manual use).
func chaosServe(addr string, shards int, walDir string, policy ami.WALSyncPolicy) error {
	if walDir == "" {
		return fmt.Errorf("chaos: -serve requires -wal-dir")
	}
	head := ami.NewSharded(shards,
		ami.WithWAL(walDir),
		ami.WithWALSync(policy),
		ami.WithDrainTimeout(2*time.Second))
	bound, err := head.Listen(addr)
	if err != nil {
		return fmt.Errorf("chaos: server: %w", err)
	}
	w := head.WALStats()
	fmt.Printf("%s%s (shards %d, wal %s, sync %s, recovered %d)\n",
		chaosBanner, bound, shards, walDir, policy, w.Recovered)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	return head.Close()
}

// chaosKey identifies one acknowledged reading.
type chaosKey struct {
	meterID string
	slot    int64
}

// chaosHarness holds the state that survives across kill/restart rounds:
// the per-meter slot cursors and the set of acknowledged readings.
type chaosHarness struct {
	meters, shards, batch int
	roundLen              time.Duration
	walDir                string
	walSync               ami.WALSyncPolicy
	resets, loris         int

	mu       sync.Mutex
	nextSlot []int64
	acked    map[chaosKey]float64
}

// chaosKW derives a reading's value from its identity, so verification can
// check content, not just presence.
func chaosKW(m int, slot int64) float64 {
	return float64(m) + float64(slot%96)/4
}

func (h *chaosHarness) meterID(m int) string { return fmt.Sprintf("chaos-%04d", m) }

func (h *chaosHarness) run(rounds int) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	for round := 1; round <= rounds; round++ {
		if err := h.round(exe, round); err != nil {
			return err
		}
	}
	return h.verify()
}

// round starts a fresh server child, drives load and chaos against it for
// roundLen, then kills it with SIGKILL mid-load.
func (h *chaosHarness) round(exe string, round int) error {
	cmd := exec.Command(exe, "chaos", "-serve",
		"-addr", "127.0.0.1:0",
		"-shards", strconv.Itoa(h.shards),
		"-wal-dir", h.walDir,
		"-wal-sync", string(h.walSync))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: starting server child: %w", err)
	}

	// The child prints its banner once the listener (and WAL recovery) is
	// up. Anything else on stdout is unexpected.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if len(line) > len(chaosBanner) && line[:len(chaosBanner)] == chaosBanner {
				rest := line[len(chaosBanner):]
				for i := 0; i < len(rest); i++ {
					if rest[i] == ' ' {
						rest = rest[:i]
						break
					}
				}
				addrCh <- rest
				return
			}
		}
		close(addrCh)
	}()
	var addr string
	select {
	case a, ok := <-addrCh:
		if !ok {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return fmt.Errorf("chaos: round %d: server child exited before reporting its address", round)
		}
		addr = a
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("chaos: round %d: server child never reported its address", round)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for m := 0; m < h.meters; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.driveMeter(ctx, addr, m)
		}()
	}
	for i := 0; i < h.resets; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			injectResets(ctx, addr)
		}()
	}
	for i := 0; i < h.loris; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			injectSlowLoris(ctx, addr)
		}()
	}

	// Mid-load, pull the plug: SIGKILL gives the server no chance to flush
	// anything it did not already make durable before acking.
	time.Sleep(h.roundLen)
	killErr := cmd.Process.Kill()
	cancel()
	wg.Wait()
	_ = cmd.Wait()
	if killErr != nil {
		return fmt.Errorf("chaos: round %d: kill: %w", round, killErr)
	}
	h.mu.Lock()
	ackedSoFar := len(h.acked)
	h.mu.Unlock()
	fmt.Printf("chaos: round %d: killed server on %s mid-load; %d readings acked so far\n",
		round, addr, ackedSoFar)
	return nil
}

// driveMeter sends batch frames as fast as the head-end acks them,
// redialing on every failure, until the round ends. Only acknowledged
// batches are recorded — an error mid-send makes no durability claim.
func (h *chaosHarness) driveMeter(ctx context.Context, addr string, m int) {
	id := h.meterID(m)
	var c *ami.Client
	defer func() {
		if c != nil {
			_ = c.Close()
		}
	}()
	for ctx.Err() == nil {
		if c == nil {
			var err error
			c, err = ami.DialBatch(addr, id, nil, 2*time.Second)
			if err != nil {
				c = nil
				sleepCtx(ctx, 20*time.Millisecond)
				continue
			}
		}
		h.mu.Lock()
		start := h.nextSlot[m]
		h.mu.Unlock()
		rs := make([]meter.Reading, h.batch)
		for i := range rs {
			slot := start + int64(i)
			rs[i] = meter.Reading{MeterID: id, Slot: timeseries.Slot(slot), KW: chaosKW(m, slot)}
		}
		if err := c.SendBatch(rs); err != nil {
			_ = c.Close()
			c = nil
			continue
		}
		h.mu.Lock()
		for _, r := range rs {
			h.acked[chaosKey{id, int64(r.Slot)}] = r.KW
		}
		h.nextSlot[m] = start + int64(h.batch)
		h.mu.Unlock()
	}
}

// injectResets loops half-written hellos followed by an abortive close
// (SO_LINGER 0 → RST), exercising the head-end's handling of peers that
// vanish mid-frame.
func injectResets(ctx context.Context, addr string) {
	for ctx.Err() == nil {
		d := net.Dialer{Timeout: time.Second}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return
		}
		_, _ = conn.Write([]byte(`{"type":"hello","hello":{"meter_`)) // partial frame
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // close() now sends RST, not FIN
		}
		_ = conn.Close()
		sleepCtx(ctx, 10*time.Millisecond)
	}
}

// injectSlowLoris holds a session open while dribbling a hello one byte at
// a time — the idle-deadline path under real load.
func injectSlowLoris(ctx context.Context, addr string) {
	d := net.Dialer{Timeout: time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return
	}
	defer func() { _ = conn.Close() }()
	frame := []byte(`{"type":"hello","hello":{"meter_id":"loris"}}` + "\n")
	for i := 0; i < len(frame); i++ {
		if _, err := conn.Write(frame[i : i+1]); err != nil {
			return
		}
		if !sleepCtx(ctx, 25*time.Millisecond) {
			return
		}
	}
}

// sleepCtx pauses for d or until ctx is done, whichever comes first,
// reporting whether the full pause elapsed. One timer per call, stopped on
// early wake — unlike time.After in a loop, which leaks a timer per
// iteration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// verify replays the WAL in-process after the final kill and asserts the
// chaos invariant: the acked set is a subset of the recovered store.
func (h *chaosHarness) verify() error {
	head := ami.NewSharded(h.shards, ami.WithWAL(h.walDir), ami.WithWALSync(h.walSync))
	if err := head.WALError(); err != nil {
		return fmt.Errorf("chaos: recovery: %w", err)
	}
	defer func() { _ = head.Close() }()

	h.mu.Lock()
	defer h.mu.Unlock()
	missing, wrong := 0, 0
	for key, kw := range h.acked {
		got, ok := head.Reading(key.meterID, timeseries.Slot(key.slot))
		switch {
		case !ok:
			missing++
		//lint:ignore floatcmp the wire's shortest-float JSON and the WAL's raw float64 bits both round-trip exactly; any difference is corruption
		case got != kw:
			wrong++
		}
	}
	w := head.WALStats()
	fmt.Printf("chaos: recovered %d readings from the WAL (%d torn tails truncated)\n",
		w.Recovered, w.TornTails)
	if missing > 0 || wrong > 0 {
		return fmt.Errorf("chaos: INVARIANT VIOLATED: %d acked readings missing, %d corrupted, of %d acked",
			missing, wrong, len(h.acked))
	}
	if len(h.acked) == 0 {
		return fmt.Errorf("chaos: no readings were acked; the harness never exercised the invariant (round-len too short?)")
	}
	fmt.Printf("chaos: invariant holds — all %d acked readings survived %s\n",
		len(h.acked), "kill -9, resets, partial writes, and slow-loris sessions")
	return nil
}
