// Command amiserver runs a standalone AMI head-end: it listens for meter
// connections, collects readings over the wire protocol, and periodically
// prints collection statistics. It is the server half of the
// examples/utilitypipeline scenario, runnable on its own for manual
// experimentation with cmd/amimeter.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ami"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("amiserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7425", "listen address")
	statsEvery := fs.Duration("stats", 5*time.Second, "statistics print interval")
	duration := fs.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	head := ami.NewHeadEnd()
	bound, err := head.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amiserver:", err)
		return 1
	}
	fmt.Fprintf(out, "amiserver: head-end listening on %s\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	var deadline <-chan time.Time
	if *duration > 0 {
		timer := time.NewTimer(*duration)
		defer timer.Stop()
		deadline = timer.C
	}

	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			meters := head.Meters()
			total := 0
			for _, id := range meters {
				total += head.Count(id)
			}
			fmt.Fprintf(out, "amiserver: %d meters, %d readings collected\n", len(meters), total)
		case <-stop:
			fmt.Fprintln(out, "amiserver: shutting down")
			if err := head.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "amiserver: close:", err)
				return 1
			}
			return 0
		case <-deadline:
			meters := head.Meters()
			total := 0
			for _, id := range meters {
				total += head.Count(id)
			}
			fmt.Fprintf(out, "amiserver: done — %d meters, %d readings collected\n", len(meters), total)
			if err := head.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "amiserver: close:", err)
				return 1
			}
			return 0
		}
	}
}
