// Command amiserver runs a standalone AMI head-end: it listens for meter
// connections, collects readings over the wire protocol, and periodically
// prints collection statistics. It is the server half of the
// examples/utilitypipeline scenario, runnable on its own for manual
// experimentation with cmd/amimeter.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ami"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// headEnd is the lifecycle-and-stats surface shared by the plain and
// sharded head-end flavours.
type headEnd interface {
	Listen(addr string) (string, error)
	Close() error
	Stats() ami.HeadEndStats
	Meters() []string
	Metrics() *obs.Registry
}

// statsLine renders the head-end's ingestion counters for the periodic and
// final report lines, with the durability counters appended when a WAL is
// configured.
func statsLine(head headEnd) string {
	st := head.Stats()
	line := fmt.Sprintf("%d meters, %d readings accepted (%d rejected, %d auth-failed) — conns %d active / %d total, %d limit-rejected, %d idle-timeouts, %d forced closes",
		len(head.Meters()), st.Accepted, st.Rejected, st.AuthFailed,
		st.ActiveConns, st.TotalConns, st.LimitRejected, st.IdleTimeouts, st.ForcedCloses)
	if d, ok := head.(interface{ WALStats() ami.WALStats }); ok {
		if w := d.WALStats(); w.Enabled {
			line += fmt.Sprintf(" — wal %d appended, %d recovered, %d torn tails, %d errors",
				w.Appended, w.Recovered, w.TornTails, w.Errors)
		}
	}
	return line
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("amiserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7425", "listen address")
	statsEvery := fs.Duration("stats", 5*time.Second, "statistics print interval")
	duration := fs.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	maxConns := fs.Int("max-conns", ami.DefaultMaxConns, "concurrent meter connection limit")
	idleTimeout := fs.Duration("idle-timeout", ami.DefaultIdleTimeout, "per-connection idle read deadline")
	drain := fs.Duration("drain", ami.DefaultDrainTimeout, "shutdown grace before force-closing connections")
	shards := fs.Int("shards", 0, "shard the readings store N ways with async ingest queues (0 = single synchronous store, -1 = one shard per core)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9090; empty = no listener)")
	walDir := fs.String("wal-dir", "", "per-shard write-ahead log directory: readings are logged before ack and replayed on startup (requires -shards; empty = no durability)")
	walSync := fs.String("wal-sync", "", "WAL sync policy: always (fsync before every ack), interval (background fsync cadence), off (sync on close only); empty = interval")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	walPolicy, err := ami.ParseWALSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amiserver:", err)
		return 2
	}
	if *walDir != "" && *shards == 0 {
		// The WAL is per-shard, and the shard count is pinned into the log
		// directory; an implicit per-core default would break recovery the
		// first time the server moved to different hardware.
		fmt.Fprintln(os.Stderr, "amiserver: -wal-dir requires -shards (the WAL is per-shard and the count is pinned into the log)")
		return 2
	}

	// Register the signal handler before the listener comes up, so a
	// SIGTERM arriving the instant the bound address is printed is caught.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	opts := []ami.Option{
		ami.WithMaxConns(*maxConns),
		ami.WithIdleTimeout(*idleTimeout),
		ami.WithDrainTimeout(*drain),
	}
	if *walDir != "" {
		opts = append(opts, ami.WithWAL(*walDir), ami.WithWALSync(walPolicy))
	}
	var head headEnd
	if *shards != 0 {
		sharded := ami.NewSharded(*shards, opts...)
		if *walDir != "" {
			if err := sharded.WALError(); err != nil {
				fmt.Fprintln(os.Stderr, "amiserver:", err)
				return 1
			}
			w := sharded.WALStats()
			fmt.Fprintf(out, "amiserver: wal recovered %d readings from %s (%d torn tails truncated, sync=%s)\n",
				w.Recovered, *walDir, w.TornTails, walPolicy)
		}
		head = sharded
	} else {
		head = ami.New(opts...)
	}
	if *metricsAddr != "" {
		// Export the head-end's own registry: /metrics counters are exactly
		// the ones behind head.Stats().
		srv, err := obs.ServeAdmin(*metricsAddr, head.Metrics())
		if err != nil {
			fmt.Fprintln(os.Stderr, "amiserver:", err)
			return 1
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(out, "amiserver: admin endpoint on http://%s/metrics\n", srv.Addr())
	}
	bound, err := head.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amiserver:", err)
		return 1
	}
	fmt.Fprintf(out, "amiserver: head-end listening on %s (max-conns %d, idle-timeout %s, drain %s)\n",
		bound, *maxConns, *idleTimeout, *drain)

	var deadline <-chan time.Time
	if *duration > 0 {
		timer := time.NewTimer(*duration)
		defer timer.Stop()
		deadline = timer.C
	}

	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Fprintf(out, "amiserver: %s\n", statsLine(head))
		case <-stop:
			fmt.Fprintln(out, "amiserver: shutting down")
			if err := head.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "amiserver: close:", err)
				return 1
			}
			fmt.Fprintf(out, "amiserver: done — %s\n", statsLine(head))
			return 0
		case <-deadline:
			if err := head.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "amiserver: close:", err)
				return 1
			}
			fmt.Fprintf(out, "amiserver: done — %s\n", statsLine(head))
			return 0
		}
	}
}
