package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/ami"
	"repro/internal/meter"
	ts "repro/internal/timeseries"
)

// syncBuffer guards the capture buffer: the test polls it while the server
// goroutine is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestAmiserverCollectsAndExits(t *testing.T) {
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-duration", "500ms", "-stats", "100ms"}, &out)
	}()

	// Wait for the bound address to appear in the output.
	var addr string
	re := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.After(5 * time.Second)
	for addr == "" {
		select {
		case <-deadline:
			t.Fatalf("server never reported its address: %q", out.String())
		default:
		}
		if m := re.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A meter reports a few readings while the server is up.
	c, err := ami.Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if err := c.Send(meter.Reading{MeterID: "m1", Slot: ts.Slot(s), KW: 1}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exited %d: %s", code, out.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit on schedule")
	}
	if !strings.Contains(out.String(), "1 meters, 5 readings accepted") {
		t.Errorf("final stats missing: %q", out.String())
	}
}

// The acceptance scenario for this PR: with a meter connected and *idle*,
// SIGTERM must bring the server down within the drain timeout instead of
// deadlocking in HeadEnd.Close.
func TestAmiserverSIGTERMWithIdleConnExitsWithinDrain(t *testing.T) {
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "200ms", "-stats", "1h"}, &out)
	}()

	var addr string
	re := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.After(5 * time.Second)
	for addr == "" {
		select {
		case <-deadline:
			t.Fatalf("server never reported its address: %q", out.String())
		default:
		}
		if m := re.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A meter connects, reports once, then holds the connection idle — the
	// exact state that used to hang wg.Wait() forever.
	c, err := ami.Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1}); err != nil {
		t.Fatal(err)
	}

	// run registered signal.Notify before printing the address, so the
	// self-delivered SIGTERM is guaranteed to be caught, not fatal.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exited %d: %s", code, out.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("server did not exit after SIGTERM with an idle meter connected: %q", out.String())
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown took %v, want bounded by the 200ms drain", elapsed)
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("shutdown banner missing: %q", out.String())
	}
	if !strings.Contains(out.String(), "forced closes") {
		t.Errorf("final stats line missing: %q", out.String())
	}
}

// TestAmiserverMetricsEndpoint is the PR's acceptance scenario: with
// -metrics-addr set the server exposes /metrics, and its ingest counters
// agree with the HeadEnd.Stats() line printed on exit.
func TestAmiserverMetricsEndpoint(t *testing.T) {
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-duration", "600ms", "-stats", "1h"}, &out)
	}()

	var addr, metricsAddr string
	reAddr := regexp.MustCompile(`listening on (\S+)`)
	reMetrics := regexp.MustCompile(`admin endpoint on http://(\S+)/metrics`)
	deadline := time.After(5 * time.Second)
	for addr == "" || metricsAddr == "" {
		select {
		case <-deadline:
			t.Fatalf("server never reported its addresses: %q", out.String())
		default:
		}
		if m := reAddr.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		}
		if m := reMetrics.FindStringSubmatch(out.String()); m != nil {
			metricsAddr = m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}

	c, err := ami.Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 7; s++ {
		if err := c.Send(meter.Reading{MeterID: "m1", Slot: ts.Slot(s), KW: 1}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()

	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d: %s", resp.StatusCode, body)
	}
	if want := "fdeta_ami_readings_accepted_total 7"; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q:\n%s", want, body)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exited %d: %s", code, out.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit on schedule")
	}
	// The stats line on exit reads from the same registry.
	if !strings.Contains(out.String(), "7 readings accepted") {
		t.Errorf("final stats disagree with /metrics: %q", out.String())
	}
}

func TestAmiserverBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-bogus"}, &out); code != 2 {
		t.Error("unknown flag should exit 2")
	}
	// Unbindable address.
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &out); code != 1 {
		t.Error("bad address should exit 1")
	}
}

// waitForAddr polls the capture buffer until the listening banner appears.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	re := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.After(5 * time.Second)
	for {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		select {
		case <-deadline:
			t.Fatalf("server never reported its address: %q", out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// The durability regression for this PR: a reading acked just before
// SIGTERM must survive into the next server run. The first run's shutdown
// has to drain the session, flush the shard queues, and sync the WAL in
// that order; the second run replays the log and reports the reading
// recovered.
func TestAmiserverWALAckedReadingSurvivesSIGTERMRestart(t *testing.T) {
	walDir := t.TempDir()
	serve := func() *syncBuffer {
		var out syncBuffer
		done := make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-shards", "2",
				"-wal-dir", walDir, "-wal-sync", "interval", "-stats", "1h"}, &out)
		}()
		addr := waitForAddr(t, &out)

		c, err := ami.Dial(addr, "m1", time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Send returns only after the head-end's ack — from here on the
		// reading is covered by the durability contract.
		if err := c.Send(meter.Reading{MeterID: "m1", Slot: 7, KW: 3.25}); err != nil {
			t.Fatal(err)
		}
		_ = c.Close()

		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("server exited %d: %s", code, out.String())
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("server did not exit after SIGTERM: %q", out.String())
		}
		return &out
	}

	first := serve()
	if !strings.Contains(first.String(), "wal recovered 0 readings") {
		t.Fatalf("first run should start from an empty log: %q", first.String())
	}
	if !strings.Contains(first.String(), "wal 1 appended") {
		t.Fatalf("final stats missing the WAL append: %q", first.String())
	}

	second := serve()
	if !strings.Contains(second.String(), "wal recovered 1 readings") {
		t.Fatalf("acked reading did not survive the restart: %q", second.String())
	}
}

// -wal-dir without -shards must refuse at flag time, and a bad sync
// policy must never reach the listener.
func TestAmiserverWALFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-wal-dir", t.TempDir()}, &out); code != 2 {
		t.Errorf("-wal-dir without -shards exited %d, want 2", code)
	}
	if code := run([]string{"-shards", "2", "-wal-dir", t.TempDir(), "-wal-sync", "sometimes"}, &out); code != 2 {
		t.Errorf("bad -wal-sync exited %d, want 2", code)
	}
}

// Reopening a WAL directory with a different shard count must refuse to
// serve rather than misroute replayed readings.
func TestAmiserverWALShardCountMismatchRefuses(t *testing.T) {
	walDir := t.TempDir()
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-shards", "2",
			"-wal-dir", walDir, "-duration", "100ms", "-stats", "1h"}, &out)
	}()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("first run exited %d: %s", code, out.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first run did not exit")
	}

	var out2 bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-shards", "4",
		"-wal-dir", walDir, "-duration", "100ms"}, &out2); code != 1 {
		t.Fatalf("shard-count mismatch exited %d, want 1", code)
	}
}
