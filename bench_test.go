// Package repro_test is the benchmark harness that regenerates every table
// and figure of the paper (see DESIGN.md's per-experiment index):
//
//	BenchmarkTableI            — Table I (attack-class feasibility)
//	BenchmarkTableII           — Table II (Metric 1, detection percentages)
//	BenchmarkTableIII          — Table III (Metric 2, attacker gains)
//	BenchmarkFig3              — Fig. 3 attack-vector series
//	BenchmarkFig4              — Fig. 4 distributions + KLD thresholds
//	BenchmarkDatasetValidation — the Section VIII-B3 peak-heavy statistic
//	BenchmarkAblationBins      — KLD bin-count sweep (paper future work)
//	BenchmarkAblationTrainLen  — training-length sweep
//
// plus component microbenchmarks for the hot paths (KLD scoring, ARIMA
// fitting, attack generation, balance checking).
//
// Benchmarks default to the scaled-down Quick protocol so `go test -bench=.`
// terminates promptly; set FDETA_BENCH_FULL=1 to run the paper's full
// 500-consumer, 50-trial protocol.
package repro_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/arima"
	"repro/internal/attack"
	"repro/internal/billing"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/topology"
)

// benchOptions selects the evaluation protocol for table benchmarks.
func benchOptions() experiments.Options {
	if os.Getenv("FDETA_BENCH_FULL") != "" {
		return experiments.PaperOptions()
	}
	return experiments.QuickOptions()
}

// printOnce guards the one-time table printouts so repeated benchmark
// iterations do not spam the log.
var printOnce sync.Map

func printTable(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n=== %s ===\n%s\n", key, text)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.VerifyTableI(1)
		if err != nil {
			b.Fatal(err)
		}
		printTable("TABLE I", experiments.FormatTableI(rows))
	}
}

func runEvaluation(b *testing.B) *experiments.Evaluation {
	b.Helper()
	ev, err := experiments.RunEvaluation(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := runEvaluation(b)
		out, err := experiments.FormatTableII(ev)
		if err != nil {
			b.Fatal(err)
		}
		printTable("TABLE II (Metric 1)", out)
		// Report the KLD-5% 1B success rate as the headline metric.
		cell, err := ev.Cell(experiments.DetKLD5, experiments.Scen1B)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*cell.DetectionRate(), "kld5-1B-%")
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := runEvaluation(b)
		out, err := experiments.FormatTableIII(ev)
		if err != nil {
			b.Fatal(err)
		}
		printTable("TABLE III (Metric 2)", out)
		iv, kv, err := experiments.Headline(ev)
		if err != nil {
			b.Fatal(err)
		}
		printTable("HEADLINE", fmt.Sprintf(
			"Integrated-ARIMA cuts 1B theft %.1f%% vs ARIMA (paper: ~78%%)\nKLD cuts a further %.1f%% (paper: 94.8%%)\n", iv, kv))
		b.ReportMetric(kv, "kld-reduction-%")
	}
}

func BenchmarkFig3(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		data, err := experiments.GenerateFig3(opts, 1000)
		if err != nil {
			b.Fatal(err)
		}
		printTable("FIG 3", fmt.Sprintf(
			"consumer %d: actual %.1f kWh/wk, 1B vector %.1f kWh/wk, 2A vector %.1f kWh/wk (series: fdeta fig3 -o fig3.csv)",
			data.ConsumerID, data.Actual.Energy(), data.Attack1B.Energy(), data.Attack2A.Energy()))
	}
}

func BenchmarkFig4(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		data, err := experiments.GenerateFig4(opts, 1000, 10)
		if err != nil {
			b.Fatal(err)
		}
		printTable("FIG 4", fmt.Sprintf(
			"consumer %d: attack KLD %.3f bits vs 95th-pct threshold %.3f (paper: 0.765 vs 0.144)",
			data.ConsumerID, data.AttackKLD, data.Pct95))
		b.ReportMetric(data.AttackKLD, "attack-KLD-bits")
	}
}

func BenchmarkDatasetValidation(b *testing.B) {
	cfg := benchOptions().Dataset
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ValidateDataset(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("VIII-B3 VALIDATION", fmt.Sprintf(
			"peak-heavy fraction %.1f%% (paper: 94.4%%)", 100*rep.PeakHeavyFraction))
		b.ReportMetric(100*rep.PeakHeavyFraction, "peak-heavy-%")
	}
}

func BenchmarkAblationBins(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	bins := []int{4, 10, 20, 40}
	for i := 0; i < b.N; i++ {
		points, err := experiments.BinSweep(opts, bins)
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("B=%-3d detection %.0f%%  FP %.0f%%  success %.0f%%\n",
				p.Bins, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
		}
		printTable("ABLATION: KLD bin count", out)
	}
}

func BenchmarkAblationTrainLen(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	weeks := []int{8, 16, opts.TrainWeeks}
	for i := 0; i < b.N; i++ {
		points, err := experiments.TrainLengthSweep(opts, weeks)
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("train=%-3d success %.0f%%\n", p.TrainWeeks, 100*p.SuccessRate)
		}
		printTable("ABLATION: training length", out)
	}
}

func BenchmarkTimeToDetection(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		sum, err := experiments.TimeToDetection(opts)
		if err != nil {
			b.Fatal(err)
		}
		printTable("TIME TO DETECTION (streaming KLD)", fmt.Sprintf(
			"detected in-week %.0f%%, median %.0f slots (%.1f h) — week bound is 336 slots",
			100*sum.DetectedFrac, sum.MedianSlots, sum.MedianHours))
		b.ReportMetric(sum.MedianSlots, "median-slots")
	}
}

func BenchmarkAblationDivergence(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		points, err := experiments.DivergenceSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("%-15s detection %.0f%%  FP %.0f%%  success %.0f%%\n",
				p.Kind, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
		}
		printTable("ABLATION: divergence measure", out)
	}
}

func BenchmarkFalsePositiveProfile(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		points, err := experiments.FalsePositiveProfile(opts)
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("%-16s nominal %.0f%%  measured FP %.1f%% over %d consumer-weeks\n",
				p.Detector, 100*p.Significance, 100*p.FPRate, p.ConsumerWeeks)
		}
		printTable("CALIBRATION: false-positive profile", out)
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		points, err := experiments.BaselineComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("%-18s detection %.0f%%  FP %.0f%%  success %.0f%%\n",
				p.Detector, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
		}
		printTable("EXTENSION: detector-family comparison (KLD vs PCA ref [3])", out)
	}
}

func BenchmarkSpreadSweep(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		points, err := experiments.SpreadSweep(opts, 200, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("victims=%-2d per-victim %.0f kWh  victim-detection %.0f%%  scheme-caught %.0f%%\n",
				p.Victims, p.PerVictimKWh, 100*p.VictimDetectionRate, 100*p.SchemeCaughtRate)
		}
		printTable("EXTENSION: multi-victim spreading", out)
	}
}

func BenchmarkAblationBinStrategy(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		points, err := experiments.BinStrategySweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, p := range points {
			out += fmt.Sprintf("%-16s detection %.0f%%  FP %.0f%%  success %.0f%%\n",
				p.Strategy, 100*p.DetectionRate, 100*p.FalsePosRate, 100*p.SuccessRate)
		}
		printTable("ABLATION: bin placement (equal-width vs equal-frequency)", out)
	}
}

func BenchmarkCIRidingComparison(b *testing.B) {
	opts := benchOptions()
	opts.MaxConsumers = 12
	for i := 0; i < b.N; i++ {
		res, err := experiments.CIRidingComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		printTable("EXTENSION: band-riding hauls (poisonable ARIMA vs frozen seasonal-naive)",
			fmt.Sprintf("ARIMA %.0f kWh vs seasonal-naive %.0f kWh (median per-consumer ratio %.1fx)",
				res.ARIMAHaulKWh, res.NaiveHaulKWh, res.MedianRatio))
		b.ReportMetric(res.MedianRatio, "haul-ratio")
	}
}

// --- Component microbenchmarks -------------------------------------------

// benchSeries caches one consumer's series for the microbenchmarks.
var (
	benchSeriesOnce sync.Once
	benchTrain      timeseries.Series
	benchWeek       timeseries.Series
)

func loadBenchSeries(b *testing.B) (timeseries.Series, timeseries.Series) {
	b.Helper()
	benchSeriesOnce.Do(func() {
		ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: 30, Seed: 5})
		if err != nil {
			panic(err)
		}
		train, test, err := ds.Consumers[0].Demand.Split(28)
		if err != nil {
			panic(err)
		}
		benchTrain, benchWeek = train, test.MustWeek(0)
	})
	return benchTrain, benchWeek
}

func BenchmarkKLDTrain(b *testing.B) {
	train, _ := loadBenchSeries(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := detect.NewKLDDetector(train, detect.KLDConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKLDDetect(b *testing.B) {
	train, week := loadBenchSeries(b)
	det, err := detect.NewKLDDetector(train, detect.KLDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(week); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkARIMAFit(b *testing.B) {
	train, _ := loadBenchSeries(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := detect.NewARIMADetector(train, detect.ARIMAConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectOrder(b *testing.B) {
	train, _ := loadBenchSeries(b)
	candidates := arima.DefaultCandidates()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arima.SelectOrder(train, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainedSuite trains every Table II/III detector row from one
// series — the fit-once path evaluateConsumer uses. Compare with the sum of
// BenchmarkARIMAFit (×2 in the seed pipeline) + 2×BenchmarkKLDTrain + the
// price-KLD constructions to see what sharing saves.
func BenchmarkTrainedSuite(b *testing.B) {
	train, _ := loadBenchSeries(b)
	scheme := benchOptions().Scheme
	tierFn := func(slot int) int { return int(scheme.TierOf(timeseries.Slot(slot))) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := detect.NewTrainedSuite(train, detect.SuiteConfig{
			KLD:      detect.KLDConfig{Significance: 0.05},
			PriceKLD: detect.PriceKLDConfig{NTiers: 2, Tier: tierFn, Significance: 0.05},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegratedARIMAAttack(b *testing.B) {
	train, _ := loadBenchSeries(b)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.IntegratedARIMAAttack(det, attack.Up, attack.IntegratedARIMAConfig{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalSwap(b *testing.B) {
	_, week := loadBenchSeries(b)
	scheme := benchOptions().Scheme
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := attack.OptimalSwap(week, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalanceCheckAll(b *testing.B) {
	cfg := topology.DefaultBuilderConfig()
	cfg.Consumers = 100
	tree, err := topology.BuildRandom(cfg)
	if err != nil {
		b.Fatal(err)
	}
	snap := topology.NewSnapshot()
	for _, c := range tree.Consumers() {
		snap.ConsumerActual[c.ID] = 2
		snap.ConsumerReported[c.ID] = 2
	}
	for _, n := range tree.Internals() {
		for _, ch := range n.Children {
			if ch.Kind == topology.Loss {
				snap.LossCalc[ch.ID] = 0.05
			}
		}
	}
	bc := topology.DefaultChecker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.CheckAll(tree, snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetGenerate(b *testing.B) {
	cfg := dataset.SmallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingKLDObserve(b *testing.B) {
	train, week := loadBenchSeries(b)
	det, err := detect.NewKLDDetector(train, detect.KLDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	stream, err := det.NewStream(train[:timeseries.SlotsPerWeek])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Observe(week[i%timeseries.SlotsPerWeek]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRevenueAssurance(b *testing.B) {
	ds, err := dataset.Generate(dataset.Config{Residential: 20, Weeks: 2, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	cycle := billing.WeekCycle(0)
	reported := make(map[string]timeseries.Series, len(ds.Consumers))
	delivered := make(timeseries.Series, cycle.Slots)
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		week := c.Demand.MustWeek(0)
		reported[fmt.Sprintf("m%d", c.ID)] = week
		for s, v := range week {
			delivered[s] += v
		}
	}
	scheme := benchOptions().Scheme
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := billing.RevenueAssurance(scheme, cycle, delivered, reported, 0); err != nil {
			b.Fatal(err)
		}
	}
}
