GO ?= go

.PHONY: build test vet race bench bench-quick fuzz faults-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench-quick: one pass over the hot-path microbenchmarks — enough to catch
# a gross perf/allocation regression without a full benchmark session.
bench-quick:
	$(GO) test -run=NONE -bench 'BenchmarkSelectOrder|BenchmarkTrainedSuite|BenchmarkKLDDetect|BenchmarkIntegratedARIMAAttack' -benchtime=1x -benchmem .

# bench: record the full benchmark trajectory into results/bench/BENCH_<date>.json.
bench:
	$(GO) run ./cmd/fdeta bench

# fuzz: short fuzz passes over the AMI wire codec and the dataset CSV
# parser so envelope-validation and parser regressions are caught pre-merge.
fuzz:
	$(GO) test -run='^$$' -fuzz=Fuzz -fuzztime=5s ./internal/ami
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=5s ./internal/dataset

# faults-smoke: the fault-injection path end to end on a tiny population —
# the degradation curve must come out, and rate 0 must match the clean run.
faults-smoke:
	$(GO) run ./cmd/fdeta faults -consumers 4 -trials 2 -rates 0,0.3

# verify: the gate for every PR — build, vet, the race detector across the
# parallel order selection and evaluation pool, the quick benchmarks, the
# fuzz passes, and the fault-injection smoke run.
verify: build vet race bench-quick fuzz faults-smoke
