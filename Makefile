GO ?= go

.PHONY: build test vet fmt-check lint lint-suppressions race race-hot bench bench-quick bench-population collect-smoke chaos-smoke serve-smoke fuzz faults-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check: fail on gofmt drift without rewriting anything.
fmt-check:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi

# lint: the F-DETA domain linter — determinism, metric namespace, float
# comparison hygiene, goroutine tracking, wire-error wrapping, plus the
# call-summary concurrency checks (lockhold, chanbound, blockctx). Prints
# one summary line per analyzer (packages / findings / suppressions); exits
# non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/fdetalint

# lint-suppressions: audit every //lint:ignore directive with its reason.
lint-suppressions:
	$(GO) run ./cmd/fdetalint -suppressions

race:
	$(GO) test -race ./...

# race-hot: targeted race pass over the concurrency-heavy packages — the
# lock-free obs registry, the AMI head-end connection pool, the evaluation
# worker pool, the streaming detection service, and the population-training
# pool. Fast enough to run on every iteration; `race` covers the whole
# tree.
race-hot:
	$(GO) test -race -count=1 ./internal/obs ./internal/ami ./internal/experiments ./internal/serve ./internal/detect

# bench-quick: one pass over the hot-path microbenchmarks — enough to catch
# a gross perf/allocation regression without a full benchmark session.
bench-quick:
	$(GO) test -run=NONE -bench 'BenchmarkSelectOrder|BenchmarkTrainedSuite|BenchmarkKLDDetect|BenchmarkIntegratedARIMAAttack' -benchtime=1x -benchmem .

# bench: record the full benchmark trajectory into results/bench/BENCH_<date>.json.
bench:
	$(GO) run ./cmd/fdeta bench

# bench-population: smoke the population-training benchmark on a small
# fleet and assert the report carries a positive consumers-per-second and
# the trainer metrics (no jq in CI, so plain grep over the JSON).
bench-population:
	$(GO) run ./cmd/fdeta bench -population -consumers 100 -trainweeks 8 -o /tmp/fdeta-bench-population.json
	@grep -q '"consumers_per_sec": [1-9]' /tmp/fdeta-bench-population.json || \
		{ echo "bench-population: consumers_per_sec missing or zero"; exit 1; }
	@for key in speedup_vs_naive warm_hits grid_fits_skipped; do \
		grep -q "\"$$key\"" /tmp/fdeta-bench-population.json || \
			{ echo "bench-population: $$key missing from report"; exit 1; }; done

# collect-smoke: the ingestion tier end to end under the race detector — a
# sharded head-end, a persistent-connection pool multiplexing a 1k-meter
# fleet over wire-v2 batch frames, plus a small v1 baseline for the speedup
# figure. Exercises negotiation, rebinding, batching, shard queues, flush,
# and drain on every PR.
collect-smoke:
	$(GO) run -race ./cmd/fdeta collect -meters 1000 -shards 4 -batch 48 -concurrency 16 -baseline-meters 100

# chaos-smoke: the durability invariant under the race detector — the
# chaos harness kill -9s a real WAL-backed head-end process mid-load
# (with connection resets, partial writes, and slow-loris sessions
# running), restarts it, and fails unless every acked reading is
# recovered from the WAL.
chaos-smoke:
	$(GO) run -race ./cmd/fdeta chaos -meters 12 -rounds 2 -shards 2 -batch 8 -round-len 400ms

# fuzz: short fuzz passes over the AMI wire codec, the WAL replay path,
# and the dataset CSV parser so envelope-validation, recovery, and parser
# regressions are caught pre-merge. (The ami package holds two targets, so
# each needs its own -fuzz run.)
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodecRecv -fuzztime=5s ./internal/ami
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=5s ./internal/ami
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=5s ./internal/dataset
	$(GO) test -run='^$$' -fuzz=FuzzParseDirective -fuzztime=5s ./internal/analysis

# faults-smoke: the fault-injection path end to end on a tiny population —
# the degradation curve must come out, and rate 0 must match the clean run.
faults-smoke:
	$(GO) run ./cmd/fdeta faults -consumers 4 -trials 2 -rates 0,0.3

# serve-smoke: the always-on streaming detection service under the race
# detector — an in-process sharded head-end taps accepted readings into
# compact per-consumer streams over real TCP, re-trains mid-stream, then
# one meter zeroes its reports. Fails unless the tampered meter raises a
# HIGH alert (visible over GET /alerts), the honest meter stays silent,
# and every acked reading is observed through the SIGTERM-style drain.
serve-smoke:
	$(GO) run -race ./cmd/fdeta serve -smoke

# verify: the gate for every PR — build, vet, gofmt drift, the domain
# linter, the targeted race pass over the obs/ami/experiments concurrency
# surfaces plus the full-tree race detector, the quick benchmarks, the
# population-training smoke, the race-enabled ingestion-tier,
# kill-and-recover, and streaming-service smokes, the fuzz passes, and the
# fault-injection smoke run.
verify: build vet fmt-check lint race-hot race bench-quick bench-population collect-smoke chaos-smoke serve-smoke fuzz faults-smoke
