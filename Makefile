GO ?= go

.PHONY: build test vet race bench bench-quick fuzz verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench-quick: one pass over the hot-path microbenchmarks — enough to catch
# a gross perf/allocation regression without a full benchmark session.
bench-quick:
	$(GO) test -run=NONE -bench 'BenchmarkSelectOrder|BenchmarkTrainedSuite|BenchmarkKLDDetect|BenchmarkIntegratedARIMAAttack' -benchtime=1x -benchmem .

# bench: record the full benchmark trajectory into results/bench/BENCH_<date>.json.
bench:
	$(GO) run ./cmd/fdeta bench

# fuzz: a short fuzz pass over the AMI wire codec so envelope-validation
# regressions are caught pre-merge.
fuzz:
	$(GO) test -run='^$$' -fuzz=Fuzz -fuzztime=5s ./internal/ami

# verify: the gate for every PR — build, vet, the race detector across the
# parallel order selection and evaluation pool, the quick benchmarks, and
# the wire-codec fuzz pass.
verify: build vet race bench-quick fuzz
