package billing

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/pricing"
	"repro/internal/timeseries"
)

func TestCycleValidate(t *testing.T) {
	if err := (Cycle{Start: 0, Slots: 10}).Validate(); err != nil {
		t.Errorf("valid cycle rejected: %v", err)
	}
	if err := (Cycle{Start: -1, Slots: 10}).Validate(); err == nil {
		t.Error("negative start should error")
	}
	if err := (Cycle{Start: 0, Slots: 0}).Validate(); err == nil {
		t.Error("empty cycle should error")
	}
}

func TestWeekCycle(t *testing.T) {
	c := WeekCycle(2)
	if c.Start != 2*timeseries.SlotsPerWeek || c.Slots != timeseries.SlotsPerWeek {
		t.Errorf("WeekCycle(2) = %+v", c)
	}
}

func TestGenerateStatementFlat(t *testing.T) {
	// 4 slots at 2 kW, flat 0.2 $/kWh: 4 kWh, $0.80.
	reported := timeseries.Series{2, 2, 2, 2}
	st, err := GenerateStatement(pricing.Flat{Rate: 0.2}, "c1", reported, Cycle{Start: 0, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.EnergyKWh-4) > 1e-12 {
		t.Errorf("energy = %g, want 4", st.EnergyKWh)
	}
	if math.Abs(st.AmountUSD-0.8) > 1e-12 {
		t.Errorf("amount = %g, want 0.8", st.AmountUSD)
	}
	if len(st.Items) != 1 || st.Items[0].Label != "flat" {
		t.Errorf("items = %+v", st.Items)
	}
}

func TestGenerateStatementTOUSplitsTiers(t *testing.T) {
	// One full day at 1 kW under Nightsaver: 18 off-peak slots (0:00-9:00)
	// and 30 peak slots (9:00-24:00).
	reported := make(timeseries.Series, timeseries.SlotsPerDay)
	for i := range reported {
		reported[i] = 1
	}
	st, err := GenerateStatement(pricing.Nightsaver(), "c1", reported,
		Cycle{Start: 0, Slots: timeseries.SlotsPerDay})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Items) != 2 {
		t.Fatalf("items = %+v", st.Items)
	}
	var peak, off LineItem
	for _, it := range st.Items {
		switch it.Label {
		case "peak":
			peak = it
		case "off-peak":
			off = it
		}
	}
	if math.Abs(off.EnergyKWh-9) > 1e-9 { // 18 slots * 0.5 h
		t.Errorf("off-peak energy = %g, want 9", off.EnergyKWh)
	}
	if math.Abs(peak.EnergyKWh-15) > 1e-9 { // 30 slots * 0.5 h
		t.Errorf("peak energy = %g, want 15", peak.EnergyKWh)
	}
	wantTotal := 9*0.18 + 15*0.21
	if math.Abs(st.AmountUSD-wantTotal) > 1e-9 {
		t.Errorf("amount = %g, want %g", st.AmountUSD, wantTotal)
	}
}

func TestGenerateStatementRTP(t *testing.T) {
	rtp, err := pricing.NewRTP([]float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := GenerateStatement(rtp, "c1", timeseries.Series{2, 2}, Cycle{Start: 0, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Items) != 1 || st.Items[0].Label != "real-time" {
		t.Errorf("items = %+v", st.Items)
	}
	want := 1*0.1 + 1*0.3
	if math.Abs(st.AmountUSD-want) > 1e-12 {
		t.Errorf("amount = %g, want %g", st.AmountUSD, want)
	}
}

func TestGenerateStatementErrors(t *testing.T) {
	good := timeseries.Series{1, 1}
	cycle := Cycle{Start: 0, Slots: 2}
	if _, err := GenerateStatement(pricing.Flat{Rate: 0.2}, "", good, cycle); err == nil {
		t.Error("empty ID should error")
	}
	if _, err := GenerateStatement(pricing.Flat{Rate: 0.2}, "c", good, Cycle{Slots: 3}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := GenerateStatement(pricing.Flat{Rate: 0.2}, "c", timeseries.Series{-1, 1}, cycle); err == nil {
		t.Error("invalid readings should error")
	}
	if _, err := GenerateStatement(pricing.Flat{Rate: 0.2}, "c", good, Cycle{Start: -1, Slots: 2}); err == nil {
		t.Error("invalid cycle should error")
	}
}

func TestRevenueAssuranceHonestGrid(t *testing.T) {
	// Two honest consumers, root delivery = consumption + losses.
	reported := map[string]timeseries.Series{
		"c1": {2, 2},
		"c2": {1, 3},
	}
	losses := 0.2 // kWh over the cycle
	delivered := timeseries.Series{3.2, 5.2}
	// delivered energy = (3.2+5.2)*0.5 = 4.2; billed = (2+2+1+3)*0.5 = 4.0;
	// unaccounted = 4.2 - 4.0 - 0.2 = 0.
	rep, err := RevenueAssurance(pricing.Flat{Rate: 0.2}, Cycle{Start: 0, Slots: 2}, delivered, reported, losses)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.UnaccountedKWh) > 1e-9 {
		t.Errorf("honest grid unaccounted = %g, want 0", rep.UnaccountedKWh)
	}
	if math.Abs(rep.RevenueUSD-4.0*0.2) > 1e-9 {
		t.Errorf("revenue = %g", rep.RevenueUSD)
	}
	if len(rep.Statements) != 2 {
		t.Errorf("statements = %d", len(rep.Statements))
	}
	if rep.LossFraction() > 1e-9 {
		t.Errorf("loss fraction = %g, want ~0", rep.LossFraction())
	}
}

func TestRevenueAssuranceExposesTheft(t *testing.T) {
	// A Class-2A thief under-reports 2 kWh over the cycle: the energy still
	// physically flowed through the root meter.
	reported := map[string]timeseries.Series{
		"honest": {2, 2},
		"thief":  {0, 0}, // actually consumed {2, 2}
	}
	delivered := timeseries.Series{4, 4} // 4 kWh total
	rep, err := RevenueAssurance(pricing.Flat{Rate: 0.25}, Cycle{Start: 0, Slots: 2}, delivered, reported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.UnaccountedKWh-2) > 1e-9 {
		t.Errorf("unaccounted = %g, want 2", rep.UnaccountedKWh)
	}
	if math.Abs(rep.LossFraction()-0.5) > 1e-9 {
		t.Errorf("loss fraction = %g, want 0.5", rep.LossFraction())
	}
	if math.Abs(rep.EstimatedLeakageUSD-2*0.25) > 1e-9 {
		t.Errorf("leakage = %g, want 0.5", rep.EstimatedLeakageUSD)
	}
}

func TestRevenueAssuranceBlindToBalancedTheft(t *testing.T) {
	// Class 2B: the thief's under-report is over-reported onto a neighbour.
	// Revenue assurance (like the balance check) sees nothing — documenting
	// why data-driven detection is required.
	reported := map[string]timeseries.Series{
		"thief":  {0, 0}, // actually {2, 2}
		"victim": {4, 4}, // actually {2, 2}
	}
	delivered := timeseries.Series{4, 4}
	rep, err := RevenueAssurance(pricing.Flat{Rate: 0.25}, Cycle{Start: 0, Slots: 2}, delivered, reported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.UnaccountedKWh) > 1e-9 {
		t.Errorf("balanced theft should leave zero unaccounted energy, got %g", rep.UnaccountedKWh)
	}
}

func TestRevenueAssuranceErrors(t *testing.T) {
	delivered := timeseries.Series{1, 1}
	reported := map[string]timeseries.Series{"c": {1, 1}}
	cycle := Cycle{Start: 0, Slots: 2}
	if _, err := RevenueAssurance(pricing.Flat{}, Cycle{Slots: 3}, delivered, reported, 0); err == nil {
		t.Error("delivered length mismatch should error")
	}
	if _, err := RevenueAssurance(pricing.Flat{}, cycle, delivered, nil, 0); err == nil {
		t.Error("no consumers should error")
	}
	if _, err := RevenueAssurance(pricing.Flat{}, cycle, delivered, reported, -1); err == nil {
		t.Error("negative losses should error")
	}
	if _, err := RevenueAssurance(pricing.Flat{}, cycle, delivered,
		map[string]timeseries.Series{"c": {1}}, 0); err == nil {
		t.Error("consumer length mismatch should error")
	}
}

func TestRevenueAssuranceRealisticCycle(t *testing.T) {
	// End-to-end over a synthetic week: honest consumers + engineering
	// losses reconcile to ~zero unaccounted energy.
	ds, err := dataset.Generate(dataset.Config{Residential: 5, Weeks: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cycle := WeekCycle(0)
	reported := make(map[string]timeseries.Series)
	delivered := make(timeseries.Series, cycle.Slots)
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		week := c.Demand.MustWeek(0)
		reported[c2id(c.ID)] = week
		for s, v := range week {
			delivered[s] += v
		}
	}
	// Feeder losses: 2% on top of consumption.
	var lossKWh float64
	for s := range delivered {
		loss := delivered[s] * 0.02
		delivered[s] += loss
		lossKWh += loss * timeseries.DeltaHours
	}
	rep, err := RevenueAssurance(pricing.Nightsaver(), cycle, delivered, reported, lossKWh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.UnaccountedKWh) > 1e-6 {
		t.Errorf("unaccounted = %g, want ~0", rep.UnaccountedKWh)
	}
	if rep.RevenueUSD <= 0 || rep.DeliveredKWh <= rep.BilledKWh {
		t.Error("report totals implausible")
	}
}

func c2id(id int) string { return "meter-" + strconv.Itoa(id) }
