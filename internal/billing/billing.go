// Package billing implements the utility-side monetization layer on top of
// the pricing schemes: per-consumer statements for a billing cycle (the
// B'_Utility of Eq. 2) and revenue-assurance reports that compare energy
// delivered at the trusted root meter against energy billed — the
// aggregate-level symptom of Attack Classes 1A-3A, and the quantity the
// World Bank loss percentages cited in the paper's introduction are
// computed from.
package billing

import (
	"fmt"
	"sort"

	"repro/internal/pricing"
	"repro/internal/timeseries"
)

// Cycle identifies a billing cycle: a contiguous range of polling slots.
type Cycle struct {
	// Start is the first slot of the cycle on the global timeline.
	Start timeseries.Slot
	// Slots is the cycle length (the paper's T).
	Slots int
}

// Validate checks the cycle.
func (c Cycle) Validate() error {
	if c.Start < 0 {
		return fmt.Errorf("billing: negative cycle start %d", c.Start)
	}
	if c.Slots <= 0 {
		return fmt.Errorf("billing: cycle must span at least one slot, got %d", c.Slots)
	}
	return nil
}

// WeekCycle returns the cycle covering week w of the global timeline.
func WeekCycle(w int) Cycle {
	return Cycle{Start: timeseries.Slot(w * timeseries.SlotsPerWeek), Slots: timeseries.SlotsPerWeek}
}

// LineItem is one tier of a statement.
type LineItem struct {
	Label     string  // e.g. "peak (9:00-24:00)"
	EnergyKWh float64 // energy billed in this tier
	AmountUSD float64 // λ-weighted charge
}

// Statement is one consumer's bill for a cycle, computed from *reported*
// readings (the utility cannot bill what it cannot see).
type Statement struct {
	ConsumerID string
	Cycle      Cycle
	EnergyKWh  float64
	AmountUSD  float64
	Items      []LineItem
}

// GenerateStatement bills the reported readings for the cycle. The reported
// series must cover exactly the cycle (Slots readings, the first aligned
// with Cycle.Start).
func GenerateStatement(scheme pricing.Scheme, consumerID string, reported timeseries.Series, cycle Cycle) (*Statement, error) {
	if consumerID == "" {
		return nil, fmt.Errorf("billing: consumer ID is required")
	}
	if err := cycle.Validate(); err != nil {
		return nil, err
	}
	if len(reported) != cycle.Slots {
		return nil, fmt.Errorf("billing: reported series has %d readings, cycle needs %d", len(reported), cycle.Slots)
	}
	if err := reported.Validate(); err != nil {
		return nil, fmt.Errorf("billing: reported series: %w", err)
	}

	st := &Statement{ConsumerID: consumerID, Cycle: cycle}
	type bucket struct {
		kwh, usd float64
	}
	buckets := make(map[string]*bucket)
	for i, d := range reported {
		slot := cycle.Start + timeseries.Slot(i)
		rate := scheme.Price(slot)
		kwh := d * timeseries.DeltaHours
		usd := kwh * rate
		st.EnergyKWh += kwh
		st.AmountUSD += usd

		label := tierLabel(scheme, slot)
		b, ok := buckets[label]
		if !ok {
			b = &bucket{}
			buckets[label] = b
		}
		b.kwh += kwh
		b.usd += usd
	}
	labels := make([]string, 0, len(buckets))
	for l := range buckets {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		st.Items = append(st.Items, LineItem{Label: l, EnergyKWh: buckets[l].kwh, AmountUSD: buckets[l].usd})
	}
	return st, nil
}

// tierLabel names the price tier a slot belongs to for statement line items.
func tierLabel(scheme pricing.Scheme, slot timeseries.Slot) string {
	switch s := scheme.(type) {
	case pricing.TOU:
		if s.InPeak(slot) {
			return "peak"
		}
		return "off-peak"
	case pricing.Flat:
		return "flat"
	default:
		return "real-time"
	}
}

// RevenueReport is the cycle-level revenue-assurance view.
type RevenueReport struct {
	Cycle Cycle
	// DeliveredKWh is the energy measured at the trusted root balance
	// meter: what physically entered the feeder.
	DeliveredKWh float64
	// BilledKWh is the energy summed over consumer statements.
	BilledKWh float64
	// CalculatedLossKWh is the engineering loss estimate (line impedances,
	// transformer losses — Section V-A).
	CalculatedLossKWh float64
	// UnaccountedKWh = Delivered − Billed − CalculatedLoss. Persistent
	// positive values are the classic electricity-theft signal; the
	// balance check (Eq. 5) is its per-slot refinement.
	UnaccountedKWh float64
	// RevenueUSD is the total billed amount.
	RevenueUSD float64
	// EstimatedLeakageUSD prices the unaccounted energy at the cycle's
	// average realized rate.
	EstimatedLeakageUSD float64
	// Statements are the per-consumer bills backing the report.
	Statements []*Statement
}

// RevenueAssurance computes the report. deliveredAtRoot must cover the
// cycle; reported maps consumer IDs to their cycle-aligned reported series;
// calculatedLossKWh is the engineering loss estimate for the cycle.
func RevenueAssurance(scheme pricing.Scheme, cycle Cycle, deliveredAtRoot timeseries.Series,
	reported map[string]timeseries.Series, calculatedLossKWh float64) (*RevenueReport, error) {
	if err := cycle.Validate(); err != nil {
		return nil, err
	}
	if len(deliveredAtRoot) != cycle.Slots {
		return nil, fmt.Errorf("billing: delivered series has %d readings, cycle needs %d",
			len(deliveredAtRoot), cycle.Slots)
	}
	if calculatedLossKWh < 0 {
		return nil, fmt.Errorf("billing: negative calculated loss %g", calculatedLossKWh)
	}
	if len(reported) == 0 {
		return nil, fmt.Errorf("billing: no consumer series supplied")
	}

	rep := &RevenueReport{
		Cycle:             cycle,
		DeliveredKWh:      deliveredAtRoot.Energy(),
		CalculatedLossKWh: calculatedLossKWh,
	}
	ids := make([]string, 0, len(reported))
	for id := range reported {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st, err := GenerateStatement(scheme, id, reported[id], cycle)
		if err != nil {
			return nil, fmt.Errorf("billing: consumer %s: %w", id, err)
		}
		rep.BilledKWh += st.EnergyKWh
		rep.RevenueUSD += st.AmountUSD
		rep.Statements = append(rep.Statements, st)
	}
	rep.UnaccountedKWh = rep.DeliveredKWh - rep.BilledKWh - rep.CalculatedLossKWh
	if rep.BilledKWh > 0 {
		avgRate := rep.RevenueUSD / rep.BilledKWh
		rep.EstimatedLeakageUSD = rep.UnaccountedKWh * avgRate
	}
	return rep, nil
}

// LossFraction returns unaccounted energy as a fraction of delivered energy
// — directly comparable to the World Bank country-level loss figures the
// paper opens with (over 25% in India, ~6% in the U.S., 16% in Brazil).
func (r *RevenueReport) LossFraction() float64 {
	if r.DeliveredKWh <= 0 {
		return 0
	}
	return r.UnaccountedKWh / r.DeliveredKWh
}
