package billing_test

import (
	"fmt"

	"repro/internal/billing"
	"repro/internal/pricing"
	"repro/internal/timeseries"
)

// ExampleGenerateStatement bills one day of constant 1 kW consumption under
// the paper's Nightsaver tariff.
func ExampleGenerateStatement() {
	reported := make(timeseries.Series, timeseries.SlotsPerDay)
	for i := range reported {
		reported[i] = 1
	}
	st, err := billing.GenerateStatement(pricing.Nightsaver(), "meter-1330", reported,
		billing.Cycle{Start: 0, Slots: timeseries.SlotsPerDay})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.1f kWh, $%.2f\n", st.ConsumerID, st.EnergyKWh, st.AmountUSD)
	for _, item := range st.Items {
		fmt.Printf("  %s: %.1f kWh $%.2f\n", item.Label, item.EnergyKWh, item.AmountUSD)
	}
	// Output:
	// meter-1330: 24.0 kWh, $4.77
	//   off-peak: 9.0 kWh $1.62
	//   peak: 15.0 kWh $3.15
}
