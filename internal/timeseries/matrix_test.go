package timeseries

import (
	"math"
	"testing"
)

func TestNewWeekMatrix(t *testing.T) {
	s := ramp(SlotsPerWeek * 3)
	m, err := NewWeekMatrix(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != SlotsPerWeek {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.Row(1)[0] != SlotsPerWeek {
		t.Error("row content wrong")
	}
	if len(m.Flat()) != 2*SlotsPerWeek {
		t.Error("Flat length wrong")
	}

	// weeks <= 0 selects all complete weeks.
	all, err := NewWeekMatrix(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if all.Rows() != 3 {
		t.Errorf("Rows = %d, want 3", all.Rows())
	}

	if _, err := NewWeekMatrix(s, 4); err == nil {
		t.Error("too many weeks should error")
	}
	if _, err := NewWeekMatrix(ramp(10), 0); err == nil {
		t.Error("no complete weeks should error")
	}
}

func TestWeekMatrixCopiesData(t *testing.T) {
	s := ramp(SlotsPerWeek)
	m, _ := NewWeekMatrix(s, 1)
	s[0] = 12345
	if m.Row(0)[0] != 0 {
		t.Error("matrix must copy the series at construction")
	}
}

func TestColumn(t *testing.T) {
	s := ramp(SlotsPerWeek * 2)
	m, _ := NewWeekMatrix(s, 2)
	col := m.Column(5)
	if len(col) != 2 {
		t.Fatalf("column length = %d", len(col))
	}
	if col[0] != 5 || col[1] != float64(SlotsPerWeek+5) {
		t.Error("column content wrong")
	}
	if m.Column(-1) != nil || m.Column(SlotsPerWeek) != nil {
		t.Error("out-of-range column should be nil")
	}
}

func TestRowMeansAndVariances(t *testing.T) {
	// Week 0 all 2s, week 1 alternating 0/4: same mean, different variance.
	s := make(Series, SlotsPerWeek*2)
	for i := 0; i < SlotsPerWeek; i++ {
		s[i] = 2
	}
	for i := SlotsPerWeek; i < 2*SlotsPerWeek; i++ {
		if i%2 == 0 {
			s[i] = 4
		}
	}
	m, _ := NewWeekMatrix(s, 2)
	means := m.RowMeans()
	if means[0] != 2 || means[1] != 2 {
		t.Errorf("means = %v, want [2 2]", means)
	}
	vars := m.RowVariances()
	if vars[0] != 0 {
		t.Errorf("var of constant week = %g, want 0", vars[0])
	}
	wantVar := 4.0 * SlotsPerWeek / (SlotsPerWeek - 1) // E[(x-2)^2] = 4, unbiased
	if math.Abs(vars[1]-wantVar) > 1e-9 {
		t.Errorf("var = %g, want %g", vars[1], wantVar)
	}
}

func TestSeasonalProfile(t *testing.T) {
	// Two identical weeks: profile equals the week itself.
	week := make(Series, SlotsPerWeek)
	for i := range week {
		week[i] = math.Sin(float64(i)) + 2
	}
	s := append(week.Clone(), week.Clone()...)
	m, _ := NewWeekMatrix(s, 2)
	profile := m.SeasonalProfile()
	for j := range profile {
		if math.Abs(profile[j]-week[j]) > 1e-12 {
			t.Fatalf("profile[%d] = %g, want %g", j, profile[j], week[j])
		}
	}
}
