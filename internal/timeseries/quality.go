package timeseries

import (
	"fmt"
)

// ReadingStatus classifies the quality of one half-hour reading. Real AMI
// feeds are not pristine: meters go dark (outages, battery failures), links
// drop reports, and firmware faults freeze or corrupt values. The paper's
// Section V-B explicitly distinguishes *faulty* meters from *compromised*
// ones; the status mask is how that distinction enters the data pipeline.
type ReadingStatus uint8

// Reading quality states.
const (
	// StatusOK marks a reading that was received and passed plausibility
	// screening — the only state detectors may treat as trusted evidence.
	StatusOK ReadingStatus = iota
	// StatusMissing marks a slot for which no reading arrived (dropout or
	// outage). The stored value carries no information.
	StatusMissing
	// StatusCorrupt marks a reading that arrived but failed plausibility
	// screening (stuck-at meter, spike, clock slip). The stored value is the
	// corrupt observation, kept for diagnostics; detectors must not use it.
	StatusCorrupt
	// StatusImputed marks a slot whose value was filled by an imputation
	// policy. The value is plausible but synthetic: it must not count toward
	// coverage.
	StatusImputed
)

// String names the status.
func (s ReadingStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusMissing:
		return "missing"
	case StatusCorrupt:
		return "corrupt"
	case StatusImputed:
		return "imputed"
	default:
		return fmt.Sprintf("ReadingStatus(%d)", uint8(s))
	}
}

// Usable reports whether the slot's stored value may be fed to a detector:
// either a trusted observation or an imputed fill.
func (s ReadingStatus) Usable() bool { return s == StatusOK || s == StatusImputed }

// Trusted reports whether the slot holds an actual trusted observation.
func (s ReadingStatus) Trusted() bool { return s == StatusOK }

// Mask is a per-slot quality annotation aligned with a Series. A nil Mask
// means every reading is StatusOK (the pristine fast path costs nothing).
type Mask []ReadingStatus

// NewMask returns an all-OK mask of length n.
func NewMask(n int) Mask { return make(Mask, n) }

// Clone returns an independent copy of the mask. Cloning a nil mask returns
// nil.
func (m Mask) Clone() Mask {
	if m == nil {
		return nil
	}
	out := make(Mask, len(m))
	copy(out, m)
	return out
}

// Coverage returns the fraction of slots holding trusted observations
// (StatusOK). Imputed slots do not count: they are synthetic fills, and
// counting them would let an imputation policy launder a dead meter into
// full coverage. An empty mask has coverage 1 by convention (nothing is
// known to be bad).
func (m Mask) Coverage() float64 {
	if len(m) == 0 {
		return 1
	}
	ok := 0
	for _, s := range m {
		if s == StatusOK {
			ok++
		}
	}
	return float64(ok) / float64(len(m))
}

// CountBad returns the number of slots that are neither trusted nor imputed.
func (m Mask) CountBad() int {
	bad := 0
	for _, s := range m {
		if !s.Usable() {
			bad++
		}
	}
	return bad
}

// AllOK reports whether every slot is a trusted observation (vacuously true
// for a nil mask).
func (m Mask) AllOK() bool {
	for _, s := range m {
		if s != StatusOK {
			return false
		}
	}
	return true
}

// Week returns the i-th complete week of the mask as a subslice, mirroring
// Series.Week.
func (m Mask) Week(i int) (Mask, error) {
	if i < 0 || (i+1)*SlotsPerWeek > len(m) {
		return nil, fmt.Errorf("timeseries: mask week %d out of range (mask has %d complete weeks)",
			i, len(m)/SlotsPerWeek)
	}
	return m[i*SlotsPerWeek : (i+1)*SlotsPerWeek], nil
}

// MustWeek is Week for indices already known to be valid.
func (m Mask) MustWeek(i int) Mask {
	w, err := m.Week(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Split partitions the mask to align with Series.Split: a training prefix of
// trainWeeks complete weeks and the remaining complete weeks.
func (m Mask) Split(trainWeeks int) (train, test Mask, err error) {
	total := len(m) / SlotsPerWeek
	if trainWeeks <= 0 || trainWeeks > total {
		return nil, nil, fmt.Errorf("timeseries: cannot take %d training weeks from %d-week mask", trainWeeks, total)
	}
	cut := trainWeeks * SlotsPerWeek
	end := total * SlotsPerWeek
	return m[:cut], m[cut:end], nil
}

// ImputePolicy selects how non-usable slots are filled before detection.
type ImputePolicy int

// Imputation policies.
const (
	// ImputeSeasonalNaive fills a bad slot with the reading at the same
	// weekly slot of the trusted reference week — exactly the seasonal-naive
	// forecast of detect/seasonal_naive.go with a one-week season. This is
	// the default: consumption is strongly weekly-periodic, so the seasonal
	// anchor is the least-surprising fill.
	ImputeSeasonalNaive ImputePolicy = iota
	// ImputeCarryForward carries the most recent usable reading within the
	// candidate week forward (last-observation-carried-forward), seeding
	// from the trusted reference week when the week opens with bad slots.
	ImputeCarryForward
)

// String names the policy.
func (p ImputePolicy) String() string {
	switch p {
	case ImputeSeasonalNaive:
		return "seasonal-naive"
	case ImputeCarryForward:
		return "carry-forward"
	default:
		return fmt.Sprintf("ImputePolicy(%d)", int(p))
	}
}

// ImputeWeek returns a copy of week with every non-usable slot filled
// according to the policy, plus the updated mask with those slots marked
// StatusImputed. ref is a trusted reference week (typically the final
// training week); it must be a full week. A week with no bad slots is
// returned as (week, mask) unchanged, alias-free copies are made only when
// filling happens.
func ImputeWeek(week Series, mask Mask, ref Series, policy ImputePolicy) (Series, Mask, error) {
	if len(week) != SlotsPerWeek {
		return nil, nil, fmt.Errorf("timeseries: impute needs a full week, got %d readings", len(week))
	}
	if len(mask) != len(week) {
		return nil, nil, fmt.Errorf("timeseries: mask length %d does not match week length %d", len(mask), len(week))
	}
	if mask.CountBad() == 0 {
		return week, mask, nil
	}
	if len(ref) != SlotsPerWeek {
		return nil, nil, fmt.Errorf("timeseries: impute reference must be a full week, got %d readings", len(ref))
	}
	out := week.Clone()
	outMask := mask.Clone()
	last := -1 // index of the most recent usable reading, for carry-forward
	for s := range out {
		if mask[s].Usable() {
			last = s
			continue
		}
		switch policy {
		case ImputeCarryForward:
			if last >= 0 {
				out[s] = out[last]
			} else {
				out[s] = ref[s]
			}
		case ImputeSeasonalNaive:
			out[s] = ref[s]
		default:
			return nil, nil, fmt.Errorf("timeseries: unknown impute policy %v", policy)
		}
		outMask[s] = StatusImputed
	}
	return out, outMask, nil
}

// ImputeSeries fills every non-usable slot of a multi-week series, used to
// repair a training history before detectors are fitted on it. Seasonal-
// naive looks back week by week for a usable reading at the same weekly
// slot (then forward); carry-forward takes the most recent usable reading
// at any earlier slot (then the next usable one). A slot with no usable
// donor anywhere falls back to zero. The returned series and mask are
// copies when any filling happens.
func ImputeSeries(s Series, mask Mask, policy ImputePolicy) (Series, Mask, error) {
	if len(mask) != len(s) {
		return nil, nil, fmt.Errorf("timeseries: mask length %d does not match series length %d", len(mask), len(s))
	}
	if mask.CountBad() == 0 {
		return s, mask, nil
	}
	out := s.Clone()
	outMask := mask.Clone()
	for i := range out {
		if mask[i].Usable() {
			continue
		}
		donor := -1
		switch policy {
		case ImputeSeasonalNaive:
			for j := i - SlotsPerWeek; j >= 0; j -= SlotsPerWeek {
				if mask[j].Usable() {
					donor = j
					break
				}
			}
			if donor < 0 {
				for j := i + SlotsPerWeek; j < len(out); j += SlotsPerWeek {
					if mask[j].Usable() {
						donor = j
						break
					}
				}
			}
		case ImputeCarryForward:
			for j := i - 1; j >= 0; j-- {
				if mask[j].Usable() {
					donor = j
					break
				}
			}
			if donor < 0 {
				for j := i + 1; j < len(out); j++ {
					if mask[j].Usable() {
						donor = j
						break
					}
				}
			}
		default:
			return nil, nil, fmt.Errorf("timeseries: unknown impute policy %v", policy)
		}
		if donor >= 0 {
			out[i] = out[donor]
		} else {
			out[i] = 0
		}
		outMask[i] = StatusImputed
	}
	return out, outMask, nil
}
