package timeseries

import (
	"math"
	"testing"
)

func popTestSeries(weeks int, base float64) Series {
	s := make(Series, weeks*SlotsPerWeek)
	for i := range s {
		s[i] = base + float64(i%SlotsPerWeek)/100
	}
	return s
}

func TestPopulationMatrixViews(t *testing.T) {
	series := []Series{
		popTestSeries(4, 1),
		popTestSeries(5, 10), // longer than stored: truncated to 4
		popTestSeries(4, 100),
	}
	p, err := PopulationFromSeries(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Consumers() != 3 || p.Weeks() != 4 {
		t.Fatalf("dims %d x %d, want 3 x 4", p.Consumers(), p.Weeks())
	}
	if len(p.Flat()) != 3*4*SlotsPerWeek {
		t.Fatalf("flat length %d", len(p.Flat()))
	}
	for i := range series {
		view := p.Series(i)
		if len(view) != 4*SlotsPerWeek {
			t.Fatalf("consumer %d view length %d", i, len(view))
		}
		for j, v := range view {
			if v != series[i][j] {
				t.Fatalf("consumer %d slot %d: %v != %v", i, j, series[i][j], v)
			}
		}
	}

	// Matrix view must be bit-identical to a copied NewWeekMatrix.
	for i := range series {
		got := p.Matrix(i)
		want, err := NewWeekMatrix(series[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != want.Rows() {
			t.Fatalf("consumer %d rows %d != %d", i, got.Rows(), want.Rows())
		}
		gf, wf := got.Flat(), want.Flat()
		for j := range wf {
			if math.Float64bits(gf[j]) != math.Float64bits(wf[j]) {
				t.Fatalf("consumer %d flat[%d]: %v != %v", i, j, gf[j], wf[j])
			}
		}
		gp, wp := got.SeasonalProfile(), want.SeasonalProfile()
		for j := range wp {
			if math.Float64bits(gp[j]) != math.Float64bits(wp[j]) {
				t.Fatalf("consumer %d profile[%d]: %v != %v", i, j, gp[j], wp[j])
			}
		}
	}

	// Views alias storage: a write through Series(i) is visible in Flat.
	p.Series(1)[0] = -7
	if p.Flat()[4*SlotsPerWeek] != -7 {
		t.Error("Series view does not alias flat storage")
	}
}

func TestPopulationMatrixShortestWeeks(t *testing.T) {
	p, err := PopulationFromSeries([]Series{popTestSeries(6, 1), popTestSeries(3, 2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Weeks() != 3 {
		t.Fatalf("weeks = %d, want shortest = 3", p.Weeks())
	}
}

func TestPopulationMatrixErrors(t *testing.T) {
	if _, err := NewPopulationMatrix(0, 4); err == nil {
		t.Error("0 consumers accepted")
	}
	if _, err := NewPopulationMatrix(2, 0); err == nil {
		t.Error("0 weeks accepted")
	}
	if _, err := PopulationFromSeries(nil, 4); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := PopulationFromSeries([]Series{popTestSeries(2, 1)}, 4); err == nil {
		t.Error("short series accepted")
	}
	p, _ := NewPopulationMatrix(1, 4)
	if err := p.SetSeries(0, popTestSeries(3, 1)); err == nil {
		t.Error("SetSeries with short series accepted")
	}
}

func TestColumnInto(t *testing.T) {
	m, err := NewWeekMatrix(popTestSeries(5, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, m.Rows())
	for _, j := range []int{0, 1, 100, SlotsPerWeek - 1} {
		want := m.Column(j)
		got := m.ColumnInto(dst, j)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("col %d row %d: %v != %v", j, i, got[i], want[i])
			}
		}
	}
	if m.Column(-1) != nil || m.Column(SlotsPerWeek) != nil {
		t.Error("out-of-range Column should return nil")
	}
}

func TestSeasonalProfileInto(t *testing.T) {
	// Use noisy-ish values so summation order matters if it were changed.
	s := make(Series, 7*SlotsPerWeek)
	for i := range s {
		s[i] = math.Sin(float64(i)*0.7)*3.1 + float64(i%13)/7
	}
	m, err := NewWeekMatrix(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SeasonalProfile()
	got := m.SeasonalProfileInto(make(Series, SlotsPerWeek))
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("profile[%d]: %v != %v", j, got[j], want[j])
		}
	}
	// Reuse must re-zero the buffer.
	again := m.SeasonalProfileInto(got)
	for j := range want {
		if math.Float64bits(again[j]) != math.Float64bits(want[j]) {
			t.Fatalf("reused profile[%d]: %v != %v", j, again[j], want[j])
		}
	}
}
