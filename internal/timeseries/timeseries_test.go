package timeseries

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ramp(n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = float64(i)
	}
	return s
}

func TestConstants(t *testing.T) {
	if SlotsPerWeek != 336 {
		t.Fatalf("SlotsPerWeek = %d, want 336 (paper Section VII-D)", SlotsPerWeek)
	}
	if SlotsPerDay != 48 || DaysPerWeek != 7 || DeltaHours != 0.5 {
		t.Fatal("temporal constants drifted from the paper's data model")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := ramp(10)
	c := s.Clone()
	c[0] = 999
	if s[0] != 0 {
		t.Error("Clone must not alias the original")
	}
}

func TestWeekAccess(t *testing.T) {
	s := ramp(SlotsPerWeek*2 + 10) // 2 complete weeks + partial
	if s.Weeks() != 2 {
		t.Fatalf("Weeks = %d, want 2", s.Weeks())
	}
	w0, err := s.Week(0)
	if err != nil {
		t.Fatal(err)
	}
	if w0[0] != 0 || len(w0) != SlotsPerWeek {
		t.Error("week 0 content wrong")
	}
	w1, err := s.Week(1)
	if err != nil {
		t.Fatal(err)
	}
	if w1[0] != SlotsPerWeek {
		t.Error("week 1 content wrong")
	}
	if _, err := s.Week(2); err == nil {
		t.Error("incomplete week 2 should be out of range")
	}
	if _, err := s.Week(-1); err == nil {
		t.Error("negative week should error")
	}
}

func TestMustWeekPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustWeek should panic out of range")
		}
	}()
	ramp(10).MustWeek(0)
}

func TestDayAccess(t *testing.T) {
	s := ramp(SlotsPerDay * 3)
	d, err := s.Day(2)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != float64(2*SlotsPerDay) {
		t.Error("day slice wrong")
	}
	if _, err := s.Day(3); err == nil {
		t.Error("day out of range should error")
	}
}

func TestEnergy(t *testing.T) {
	// 4 slots at 2 kW = 2 kWh·4·0.5 = 4 kWh.
	s := Series{2, 2, 2, 2}
	if got := s.Energy(); got != 4 {
		t.Errorf("Energy = %g, want 4", got)
	}
	if got := (Series{}).Energy(); got != 0 {
		t.Errorf("empty energy = %g, want 0", got)
	}
}

func TestAddSub(t *testing.T) {
	a := Series{1, 2, 3}
	b := Series{4, 5, 6}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum[2] != 9 {
		t.Error("Add wrong")
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if diff[0] != 3 {
		t.Error("Sub wrong")
	}
	if _, err := a.Add(Series{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch should yield ErrLengthMismatch")
	}
	if _, err := a.Sub(Series{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch should yield ErrLengthMismatch")
	}
}

func TestScaleAndClamp(t *testing.T) {
	s := Series{1, -2, 3}
	if got := s.Scale(2); got[1] != -4 {
		t.Error("Scale wrong")
	}
	c := s.ClampNonNegative()
	if c[1] != 0 || c[0] != 1 {
		t.Error("ClampNonNegative wrong")
	}
	if s[1] != -2 {
		t.Error("ClampNonNegative must not mutate the receiver")
	}
}

func TestValidate(t *testing.T) {
	if err := (Series{1, 2}).Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	for _, bad := range []Series{{math.NaN()}, {math.Inf(1)}, {-1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("series %v should be invalid", bad)
		}
	}
}

func TestSplit(t *testing.T) {
	s := ramp(SlotsPerWeek*5 + 7) // 5 complete weeks + stray readings
	train, test, err := s.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if train.Weeks() != 3 || test.Weeks() != 2 {
		t.Fatalf("split = %d/%d weeks, want 3/2", train.Weeks(), test.Weeks())
	}
	if len(test) != 2*SlotsPerWeek {
		t.Error("trailing partial week must be dropped")
	}
	if _, _, err := s.Split(0); err == nil {
		t.Error("zero training weeks should error")
	}
	if _, _, err := s.Split(6); err == nil {
		t.Error("oversized training split should error")
	}
}

func TestSlotArithmetic(t *testing.T) {
	tests := []struct {
		slot      Slot
		week, dow int
		sod       int
		hour      float64
		weekend   bool
	}{
		{0, 0, 0, 0, 0, false},
		{47, 0, 0, 47, 23.5, false},
		{48, 0, 1, 0, 0, false},
		{SlotsPerWeek - 1, 0, 6, 47, 23.5, true},
		{SlotsPerWeek, 1, 0, 0, 0, false},
		{5*SlotsPerDay + 18, 0, 5, 18, 9, true}, // Saturday 09:00
	}
	for _, tt := range tests {
		if tt.slot.Week() != tt.week {
			t.Errorf("slot %d Week = %d, want %d", tt.slot, tt.slot.Week(), tt.week)
		}
		if tt.slot.DayOfWeek() != tt.dow {
			t.Errorf("slot %d DayOfWeek = %d, want %d", tt.slot, tt.slot.DayOfWeek(), tt.dow)
		}
		if tt.slot.SlotOfDay() != tt.sod {
			t.Errorf("slot %d SlotOfDay = %d, want %d", tt.slot, tt.slot.SlotOfDay(), tt.sod)
		}
		if tt.slot.HourOfDay() != tt.hour {
			t.Errorf("slot %d HourOfDay = %g, want %g", tt.slot, tt.slot.HourOfDay(), tt.hour)
		}
		if tt.slot.IsWeekend() != tt.weekend {
			t.Errorf("slot %d IsWeekend = %v, want %v", tt.slot, tt.slot.IsWeekend(), tt.weekend)
		}
	}
	if !strings.Contains(Slot(48).String(), "day 1") {
		t.Errorf("Slot.String = %q", Slot(48).String())
	}
}

func TestSlotOfWeek(t *testing.T) {
	if Slot(SlotsPerWeek+5).SlotOfWeek() != 5 {
		t.Error("SlotOfWeek wrong")
	}
}

func TestEnergyLinearityProperty(t *testing.T) {
	f := func(k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) || math.Abs(k) > 1e6 {
			return true
		}
		s := Series{1, 2, 3, 4}
		return math.Abs(s.Scale(k).Energy()-k*s.Energy()) < 1e-6*math.Max(1, math.Abs(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
