package timeseries

import "fmt"

// PopulationMatrix is the struct-of-arrays training store for
// population-scale work: every consumer's training weeks live in one
// contiguous []float64, consumer-major. Consumer i's block is
// data[i*weeks*336 : (i+1)*weeks*336], itself laid out exactly like a
// WeekMatrix backing array, so per-consumer Series and WeekMatrix views
// alias the flat storage with zero copying. One allocation backs the whole
// population; the residual and histogram loops walk it sequentially.
type PopulationMatrix struct {
	consumers int
	weeks     int
	data      []float64
}

// NewPopulationMatrix allocates storage for `consumers` consumers of
// `weeks` training weeks each, zero-filled.
func NewPopulationMatrix(consumers, weeks int) (*PopulationMatrix, error) {
	if consumers <= 0 {
		return nil, fmt.Errorf("timeseries: population needs at least one consumer, got %d", consumers)
	}
	if weeks <= 0 {
		return nil, fmt.Errorf("timeseries: population needs at least one week, got %d", weeks)
	}
	return &PopulationMatrix{
		consumers: consumers,
		weeks:     weeks,
		data:      make([]float64, consumers*weeks*SlotsPerWeek),
	}, nil
}

// PopulationFromSeries packs the first `weeks` complete weeks of each
// series into a fresh PopulationMatrix. Every series must cover at least
// `weeks` complete weeks; weeks <= 0 selects the shortest series' count.
func PopulationFromSeries(series []Series, weeks int) (*PopulationMatrix, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("timeseries: population needs at least one series")
	}
	if weeks <= 0 {
		weeks = series[0].Weeks()
		for _, s := range series[1:] {
			if w := s.Weeks(); w < weeks {
				weeks = w
			}
		}
	}
	p, err := NewPopulationMatrix(len(series), weeks)
	if err != nil {
		return nil, err
	}
	for i, s := range series {
		if err := p.SetSeries(i, s); err != nil {
			return nil, fmt.Errorf("consumer %d: %w", i, err)
		}
	}
	return p, nil
}

// Consumers returns the number of consumers in the population.
func (p *PopulationMatrix) Consumers() int { return p.consumers }

// Weeks returns the number of training weeks stored per consumer.
func (p *PopulationMatrix) Weeks() int { return p.weeks }

// block returns consumer i's slice of the flat storage.
func (p *PopulationMatrix) block(i int) []float64 {
	n := p.weeks * SlotsPerWeek
	return p.data[i*n : (i+1)*n : (i+1)*n]
}

// Series returns consumer i's training series as a view aliasing the flat
// storage. Mutating the returned slice mutates the population.
func (p *PopulationMatrix) Series(i int) Series { return Series(p.block(i)) }

// Matrix returns consumer i's WeekMatrix view aliasing the flat storage —
// the same rows-by-336 layout NewWeekMatrix would copy into, without the
// copy.
func (p *PopulationMatrix) Matrix(i int) *WeekMatrix {
	return &WeekMatrix{rows: p.weeks, data: p.block(i)}
}

// SetSeries copies the first Weeks() complete weeks of s into consumer i's
// block. s must cover at least Weeks() complete weeks.
func (p *PopulationMatrix) SetSeries(i int, s Series) error {
	if avail := s.Weeks(); avail < p.weeks {
		return fmt.Errorf("timeseries: series has %d complete weeks, population stores %d", avail, p.weeks)
	}
	copy(p.block(i), s[:p.weeks*SlotsPerWeek])
	return nil
}

// Flat returns the entire population's values as one slice aliasing the
// backing array, consumer-major then week-major.
func (p *PopulationMatrix) Flat() []float64 { return p.data }
