package timeseries

import (
	"fmt"
)

// WeekMatrix is the training matrix X of Section VII-D: one row per training
// week, one column per half-hour of the week (336 columns). Rows share a
// single backing array for locality.
type WeekMatrix struct {
	rows int
	data []float64
}

// NewWeekMatrix builds the matrix from the first `weeks` complete weeks of
// the series. weeks <= 0 selects every complete week.
func NewWeekMatrix(s Series, weeks int) (*WeekMatrix, error) {
	avail := s.Weeks()
	if weeks <= 0 {
		weeks = avail
	}
	if weeks == 0 {
		return nil, fmt.Errorf("timeseries: series has no complete weeks")
	}
	if weeks > avail {
		return nil, fmt.Errorf("timeseries: requested %d weeks but series has %d", weeks, avail)
	}
	m := &WeekMatrix{
		rows: weeks,
		data: make([]float64, weeks*SlotsPerWeek),
	}
	copy(m.data, s[:weeks*SlotsPerWeek])
	return m, nil
}

// Rows returns M, the number of training weeks.
func (m *WeekMatrix) Rows() int { return m.rows }

// Cols returns the number of columns, always SlotsPerWeek.
func (m *WeekMatrix) Cols() int { return SlotsPerWeek }

// Row returns week i as a subslice of the backing array (X_i in the paper).
func (m *WeekMatrix) Row(i int) Series {
	return Series(m.data[i*SlotsPerWeek : (i+1)*SlotsPerWeek])
}

// Flat returns all values of X as a single slice, the sample the paper's
// X distribution histogram is built from. The slice aliases the matrix.
func (m *WeekMatrix) Flat() []float64 { return m.data }

// Column returns a copy of column j across all weeks: the M readings taken
// at the same half-hour-of-week, used by seasonal models.
func (m *WeekMatrix) Column(j int) []float64 {
	if j < 0 || j >= SlotsPerWeek {
		return nil
	}
	return m.ColumnInto(make([]float64, m.rows), j)
}

// ColumnInto is Column writing into a caller-provided buffer of length
// Rows(), so per-column gathers in hot loops reuse one slice instead of
// allocating M floats per call. j must be in [0, SlotsPerWeek).
func (m *WeekMatrix) ColumnInto(dst []float64, j int) []float64 {
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*SlotsPerWeek+j]
	}
	return dst
}

// RowMeans returns the mean of each week, used by the Integrated ARIMA
// detector's historic-mean threshold.
func (m *WeekMatrix) RowMeans() []float64 {
	means := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			sum += v
		}
		means[i] = sum / SlotsPerWeek
	}
	return means
}

// RowVariances returns the unbiased sample variance of each week.
func (m *WeekMatrix) RowVariances() []float64 {
	vars := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum / SlotsPerWeek
		var ss float64
		for _, v := range row {
			d := v - mean
			ss += d * d
		}
		vars[i] = ss / (SlotsPerWeek - 1)
	}
	return vars
}

// SeasonalProfile returns the across-week mean of each half-hour-of-week
// column: the expected weekly shape of the consumer.
func (m *WeekMatrix) SeasonalProfile() Series {
	return m.SeasonalProfileInto(make(Series, SlotsPerWeek))
}

// SeasonalProfileInto is SeasonalProfile writing into a caller-provided
// buffer of length SlotsPerWeek. The accumulation walks the matrix
// row-major — one sequential pass instead of 336 strided column scans —
// while each column's partial sums still add in week order, so the result
// is bit-identical to the column-at-a-time computation.
func (m *WeekMatrix) SeasonalProfileInto(dst Series) Series {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*SlotsPerWeek : (i+1)*SlotsPerWeek]
		for j, v := range row {
			dst[j] += v
		}
	}
	inv := float64(m.rows)
	for j := range dst {
		dst[j] /= inv
	}
	return dst
}
