package timeseries

import (
	"fmt"
)

// WeekMatrix is the training matrix X of Section VII-D: one row per training
// week, one column per half-hour of the week (336 columns). Rows share a
// single backing array for locality.
type WeekMatrix struct {
	rows int
	data []float64
}

// NewWeekMatrix builds the matrix from the first `weeks` complete weeks of
// the series. weeks <= 0 selects every complete week.
func NewWeekMatrix(s Series, weeks int) (*WeekMatrix, error) {
	avail := s.Weeks()
	if weeks <= 0 {
		weeks = avail
	}
	if weeks == 0 {
		return nil, fmt.Errorf("timeseries: series has no complete weeks")
	}
	if weeks > avail {
		return nil, fmt.Errorf("timeseries: requested %d weeks but series has %d", weeks, avail)
	}
	m := &WeekMatrix{
		rows: weeks,
		data: make([]float64, weeks*SlotsPerWeek),
	}
	copy(m.data, s[:weeks*SlotsPerWeek])
	return m, nil
}

// Rows returns M, the number of training weeks.
func (m *WeekMatrix) Rows() int { return m.rows }

// Cols returns the number of columns, always SlotsPerWeek.
func (m *WeekMatrix) Cols() int { return SlotsPerWeek }

// Row returns week i as a subslice of the backing array (X_i in the paper).
func (m *WeekMatrix) Row(i int) Series {
	return Series(m.data[i*SlotsPerWeek : (i+1)*SlotsPerWeek])
}

// Flat returns all values of X as a single slice, the sample the paper's
// X distribution histogram is built from. The slice aliases the matrix.
func (m *WeekMatrix) Flat() []float64 { return m.data }

// Column returns a copy of column j across all weeks: the M readings taken
// at the same half-hour-of-week, used by seasonal models.
func (m *WeekMatrix) Column(j int) []float64 {
	if j < 0 || j >= SlotsPerWeek {
		return nil
	}
	col := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		col[i] = m.data[i*SlotsPerWeek+j]
	}
	return col
}

// RowMeans returns the mean of each week, used by the Integrated ARIMA
// detector's historic-mean threshold.
func (m *WeekMatrix) RowMeans() []float64 {
	means := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			sum += v
		}
		means[i] = sum / SlotsPerWeek
	}
	return means
}

// RowVariances returns the unbiased sample variance of each week.
func (m *WeekMatrix) RowVariances() []float64 {
	vars := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum / SlotsPerWeek
		var ss float64
		for _, v := range row {
			d := v - mean
			ss += d * d
		}
		vars[i] = ss / (SlotsPerWeek - 1)
	}
	return vars
}

// SeasonalProfile returns the across-week mean of each half-hour-of-week
// column: the expected weekly shape of the consumer.
func (m *WeekMatrix) SeasonalProfile() Series {
	profile := make(Series, SlotsPerWeek)
	for j := 0; j < SlotsPerWeek; j++ {
		var sum float64
		for i := 0; i < m.rows; i++ {
			sum += m.data[i*SlotsPerWeek+j]
		}
		profile[j] = sum / float64(m.rows)
	}
	return profile
}
