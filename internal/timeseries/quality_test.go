package timeseries

import (
	"math"
	"testing"
)

func TestReadingStatusPredicates(t *testing.T) {
	cases := []struct {
		st      ReadingStatus
		usable  bool
		trusted bool
		name    string
	}{
		{StatusOK, true, true, "ok"},
		{StatusMissing, false, false, "missing"},
		{StatusCorrupt, false, false, "corrupt"},
		{StatusImputed, true, false, "imputed"},
	}
	for _, c := range cases {
		if c.st.Usable() != c.usable {
			t.Errorf("%v.Usable() = %v, want %v", c.st, c.st.Usable(), c.usable)
		}
		if c.st.Trusted() != c.trusted {
			t.Errorf("%v.Trusted() = %v, want %v", c.st, c.st.Trusted(), c.trusted)
		}
		if c.st.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.st, c.st.String(), c.name)
		}
	}
}

func TestMaskCoverage(t *testing.T) {
	if c := (Mask)(nil).Coverage(); c != 1 {
		t.Errorf("nil mask coverage = %g, want 1", c)
	}
	m := NewMask(4)
	if c := m.Coverage(); c != 1 {
		t.Errorf("all-OK coverage = %g, want 1", c)
	}
	m[0] = StatusMissing
	m[1] = StatusImputed // synthetic fill must not count toward coverage
	if c := m.Coverage(); c != 0.5 {
		t.Errorf("coverage = %g, want 0.5", c)
	}
	if bad := m.CountBad(); bad != 1 {
		t.Errorf("CountBad = %d, want 1 (imputed is usable)", bad)
	}
	if m.AllOK() {
		t.Error("AllOK true for a mask with bad slots")
	}
}

func TestMaskWeekAndSplit(t *testing.T) {
	m := NewMask(3 * SlotsPerWeek)
	m[SlotsPerWeek] = StatusCorrupt
	w1 := m.MustWeek(1)
	if w1[0] != StatusCorrupt {
		t.Error("Week(1) does not alias the underlying mask")
	}
	if _, err := m.Week(3); err == nil {
		t.Error("expected out-of-range error")
	}
	train, test, err := m.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 2*SlotsPerWeek || len(test) != SlotsPerWeek {
		t.Errorf("split sizes %d/%d", len(train), len(test))
	}
	if _, _, err := m.Split(4); err == nil {
		t.Error("expected split error for too many training weeks")
	}
}

func maskedWeek() (Series, Mask, Series) {
	week := make(Series, SlotsPerWeek)
	ref := make(Series, SlotsPerWeek)
	for i := range week {
		week[i] = 2 + float64(i%10)
		ref[i] = 100 + float64(i)
	}
	mask := NewMask(SlotsPerWeek)
	return week, mask, ref
}

func TestImputeWeekSeasonalNaive(t *testing.T) {
	week, mask, ref := maskedWeek()
	mask[5] = StatusMissing
	mask[6] = StatusCorrupt
	filled, fm, err := ImputeWeek(week, mask, ref, ImputeSeasonalNaive)
	if err != nil {
		t.Fatal(err)
	}
	if filled[5] != ref[5] || filled[6] != ref[6] {
		t.Errorf("seasonal-naive fill = %g,%g, want %g,%g", filled[5], filled[6], ref[5], ref[6])
	}
	if fm[5] != StatusImputed || fm[6] != StatusImputed {
		t.Error("filled slots not marked imputed")
	}
	// Untouched slots keep their values and statuses.
	if filled[4] != week[4] || fm[4] != StatusOK {
		t.Error("imputation touched a good slot")
	}
	// The inputs are not mutated.
	if week[5] == ref[5] || mask[5] != StatusMissing {
		t.Error("ImputeWeek mutated its inputs")
	}
}

func TestImputeWeekCarryForward(t *testing.T) {
	week, mask, ref := maskedWeek()
	mask[0] = StatusMissing // week opens bad: must seed from the reference
	mask[10] = StatusMissing
	mask[11] = StatusMissing // contiguous gap carries the same donor
	filled, _, err := ImputeWeek(week, mask, ref, ImputeCarryForward)
	if err != nil {
		t.Fatal(err)
	}
	if filled[0] != ref[0] {
		t.Errorf("opening gap filled with %g, want reference %g", filled[0], ref[0])
	}
	if filled[10] != week[9] || filled[11] != week[9] {
		t.Errorf("carry-forward fill = %g,%g, want %g", filled[10], filled[11], week[9])
	}
}

func TestImputeWeekNoBadSlotsIsNoCopy(t *testing.T) {
	week, mask, ref := maskedWeek()
	filled, fm, err := ImputeWeek(week, mask, ref, ImputeSeasonalNaive)
	if err != nil {
		t.Fatal(err)
	}
	if &filled[0] != &week[0] || &fm[0] != &mask[0] {
		t.Error("pristine week should be returned without copying")
	}
}

func TestImputeWeekErrors(t *testing.T) {
	week, mask, ref := maskedWeek()
	if _, _, err := ImputeWeek(week[:10], mask[:10], ref, ImputeSeasonalNaive); err == nil {
		t.Error("expected short-week error")
	}
	if _, _, err := ImputeWeek(week, mask[:10], ref, ImputeSeasonalNaive); err == nil {
		t.Error("expected mask-mismatch error")
	}
	mask[3] = StatusMissing
	if _, _, err := ImputeWeek(week, mask, ref[:10], ImputeSeasonalNaive); err == nil {
		t.Error("expected short-reference error")
	}
}

func TestImputeSeriesSeasonalNaive(t *testing.T) {
	s := make(Series, 3*SlotsPerWeek)
	for i := range s {
		s[i] = float64(i)
	}
	mask := NewMask(len(s))
	// Bad slot in week 1 takes the same weekly slot from week 0.
	mask[SlotsPerWeek+7] = StatusMissing
	// Bad slot in week 0 has no earlier week: takes it from week 1.
	mask[3] = StatusCorrupt
	out, om, err := ImputeSeries(s, mask, ImputeSeasonalNaive)
	if err != nil {
		t.Fatal(err)
	}
	if out[SlotsPerWeek+7] != s[7] {
		t.Errorf("backward seasonal fill = %g, want %g", out[SlotsPerWeek+7], s[7])
	}
	if out[3] != s[SlotsPerWeek+3] {
		t.Errorf("forward seasonal fill = %g, want %g", out[3], s[SlotsPerWeek+3])
	}
	if om[3] != StatusImputed || om[SlotsPerWeek+7] != StatusImputed {
		t.Error("filled slots not marked imputed")
	}
	if s[3] != 3 {
		t.Error("ImputeSeries mutated its input")
	}
}

func TestImputeSeriesCarryForward(t *testing.T) {
	s := Series{1, 2, 3, 4}
	mask := Mask{StatusMissing, StatusOK, StatusMissing, StatusMissing}
	out, _, err := ImputeSeries(s, mask, ImputeCarryForward)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{2, 2, 2, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestImputeSeriesAllBadFallsBackToZero(t *testing.T) {
	s := Series{math.NaN(), math.NaN()}
	mask := Mask{StatusMissing, StatusMissing}
	out, om, err := ImputeSeries(s, mask, ImputeSeasonalNaive)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("all-bad series filled with %v, want zeros", out)
	}
	if om.CountBad() != 0 {
		t.Error("all slots should be usable after imputation")
	}
	if err := out.Validate(); err != nil {
		t.Errorf("imputed series invalid: %v", err)
	}
}
