// Package timeseries models discrete-time electricity demand series at the
// paper's half-hour resolution. A reading is the average demand (kW) over one
// polling period Δt = 30 minutes; a week is 336 consecutive readings, which
// is the window size standardized by the KLD detector (Section VII-D).
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Temporal constants of the paper's data model.
const (
	// SlotsPerDay is the number of half-hour polling periods in one day.
	SlotsPerDay = 48
	// DaysPerWeek is the number of days in one week.
	DaysPerWeek = 7
	// SlotsPerWeek is the number of half-hour readings in one week (336).
	SlotsPerWeek = SlotsPerDay * DaysPerWeek
	// DeltaHours is the polling period Δt expressed in hours. Multiplying an
	// average demand (kW) by DeltaHours yields energy (kWh) for billing.
	DeltaHours = 0.5
)

// ErrLengthMismatch indicates two series that were expected to align do not.
var ErrLengthMismatch = errors.New("timeseries: series length mismatch")

// Series is a sequence of average-demand readings (kW), one per half-hour
// slot, beginning at slot 0 = Monday 00:00-00:30 by convention.
type Series []float64

// Clone returns an independent copy of the series.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Weeks returns the number of complete weeks in the series.
func (s Series) Weeks() int { return len(s) / SlotsPerWeek }

// Week returns the i-th complete week as a subslice (not a copy). The caller
// must not grow the result. It returns an error when the series does not
// contain week i in full.
func (s Series) Week(i int) (Series, error) {
	if i < 0 || (i+1)*SlotsPerWeek > len(s) {
		return nil, fmt.Errorf("timeseries: week %d out of range (series has %d complete weeks)", i, s.Weeks())
	}
	return s[i*SlotsPerWeek : (i+1)*SlotsPerWeek], nil
}

// MustWeek is Week for indices already known to be valid; it panics on a
// range violation, which always indicates a programming error.
func (s Series) MustWeek(i int) Series {
	w, err := s.Week(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Day returns the d-th complete day as a subslice.
func (s Series) Day(d int) (Series, error) {
	if d < 0 || (d+1)*SlotsPerDay > len(s) {
		return nil, fmt.Errorf("timeseries: day %d out of range", d)
	}
	return s[d*SlotsPerDay : (d+1)*SlotsPerDay], nil
}

// Energy returns the total energy (kWh) represented by the series: the sum
// of average demands multiplied by Δt.
func (s Series) Energy() float64 {
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum * DeltaHours
}

// Add returns s + t elementwise.
func (s Series) Add(t Series) (Series, error) {
	if len(s) != len(t) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s), len(t))
	}
	out := make(Series, len(s))
	for i := range s {
		out[i] = s[i] + t[i]
	}
	return out, nil
}

// Sub returns s - t elementwise.
func (s Series) Sub(t Series) (Series, error) {
	if len(s) != len(t) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s), len(t))
	}
	out := make(Series, len(s))
	for i := range s {
		out[i] = s[i] - t[i]
	}
	return out, nil
}

// Scale returns the series multiplied by the scalar k.
func (s Series) Scale(k float64) Series {
	out := make(Series, len(s))
	for i := range s {
		out[i] = s[i] * k
	}
	return out
}

// ClampNonNegative returns a copy with negative readings replaced by zero.
// Demand is physically nonnegative (D ∈ R≥0, Section III), so synthetic
// generators and attack injectors clamp through this.
func (s Series) ClampNonNegative() Series {
	out := make(Series, len(s))
	for i, v := range s {
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Validate reports an error when the series contains NaN, Inf, or negative
// readings, which would violate the paper's demand model.
func (s Series) Validate() error {
	for i, v := range s {
		if math.IsNaN(v) {
			return fmt.Errorf("timeseries: NaN reading at slot %d", i)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("timeseries: infinite reading at slot %d", i)
		}
		if v < 0 {
			return fmt.Errorf("timeseries: negative reading %g at slot %d", v, i)
		}
	}
	return nil
}

// Split partitions the series into a training prefix of trainWeeks complete
// weeks and a test suffix containing the remaining complete weeks, mirroring
// the paper's 60-week/14-week split. Incomplete trailing data is dropped.
func (s Series) Split(trainWeeks int) (train, test Series, err error) {
	total := s.Weeks()
	if trainWeeks <= 0 || trainWeeks > total {
		return nil, nil, fmt.Errorf("timeseries: cannot take %d training weeks from %d-week series", trainWeeks, total)
	}
	cut := trainWeeks * SlotsPerWeek
	end := total * SlotsPerWeek
	return s[:cut], s[cut:end], nil
}

// Slot identifies one half-hour period within the global timeline.
type Slot int

// Week returns the zero-based week index containing the slot.
func (t Slot) Week() int { return int(t) / SlotsPerWeek }

// DayOfWeek returns 0 (Monday) through 6 (Sunday).
func (t Slot) DayOfWeek() int { return (int(t) % SlotsPerWeek) / SlotsPerDay }

// SlotOfDay returns 0..47, the half-hour index within the day.
func (t Slot) SlotOfDay() int { return int(t) % SlotsPerDay }

// SlotOfWeek returns 0..335, the half-hour index within the week.
func (t Slot) SlotOfWeek() int { return int(t) % SlotsPerWeek }

// HourOfDay returns the fractional hour of day in [0, 24).
func (t Slot) HourOfDay() float64 { return float64(t.SlotOfDay()) * DeltaHours }

// IsWeekend reports whether the slot falls on Saturday or Sunday.
func (t Slot) IsWeekend() bool { return t.DayOfWeek() >= 5 }

// String renders the slot as "week W, day D, HH:MM".
func (t Slot) String() string {
	h := t.SlotOfDay() / 2
	m := (t.SlotOfDay() % 2) * 30
	return fmt.Sprintf("week %d, day %d, %02d:%02d", t.Week(), t.DayOfWeek(), h, m)
}
