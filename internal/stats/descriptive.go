package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It returns NaN when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// PopVariance returns the population (n denominator) variance of xs.
// It returns NaN for an empty slice.
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MeanStd returns the mean and unbiased standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean(), acc.StdDev()
}

// Min returns the smallest value in xs. It returns NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It returns NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinMax returns both extremes of xs in a single pass.
// It returns NaNs for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the sample median using linear interpolation between the
// two central order statistics for even-length samples.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using the
// linear-interpolation definition (R-7, the numpy default). The input is
// not modified. It returns NaN for an empty slice or p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data already in ascending order.
// It avoids the copy-and-sort cost when many percentiles are taken from
// the same sample.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Accumulator computes running mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every observation in xs into the accumulator.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations seen so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or NaN if no observations were added.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the running unbiased sample variance, or NaN when fewer
// than two observations were added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation seen, or NaN if none were added.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation seen, or NaN if none were added.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// String summarizes the accumulator for debugging output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Autocorrelation returns the sample autocorrelation of xs at the given
// nonnegative lag, using the biased (1/n) covariance estimator that
// guarantees the autocorrelation sequence is positive semi-definite.
// It returns NaN if the lag is out of range or the series is constant.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return math.NaN()
	}
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return math.NaN()
	}
	var num float64
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / denom
}

// AutocorrelationFunc returns autocorrelations for lags 0..maxLag inclusive.
func AutocorrelationFunc(xs []float64, maxLag int) []float64 {
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	if maxLag < 0 {
		return nil
	}
	acf := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		acf[lag] = Autocorrelation(xs, lag)
	}
	return acf
}

// LjungBox returns the Ljung-Box portmanteau statistic over lags 1..h for
// residual whiteness testing. Larger values indicate stronger remaining
// autocorrelation; under the null the statistic is approximately chi-squared
// with h degrees of freedom.
func LjungBox(xs []float64, h int) float64 {
	n := float64(len(xs))
	if n == 0 || h <= 0 {
		return math.NaN()
	}
	var q float64
	for k := 1; k <= h; k++ {
		r := Autocorrelation(xs, k)
		if math.IsNaN(r) {
			return math.NaN()
		}
		q += r * r / (n - float64(k))
	}
	return n * (n + 2) * q
}
