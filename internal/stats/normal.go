package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// NormalPDF returns the density of the normal distribution with the given
// mean and standard deviation at x. Sigma must be positive.
func NormalPDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	z := (x - mean) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns the cumulative distribution function of the normal
// distribution with the given mean and standard deviation at x.
func NormalCDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	return 0.5 * math.Erfc(-(x-mean)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns the standard normal CDF Φ(z).
func StdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// StdNormalQuantile returns Φ⁻¹(p), the inverse of the standard normal CDF.
// It returns ±Inf at p ∈ {0, 1} and NaN outside [0, 1].
//
// The implementation uses Peter Acklam's rational approximation (relative
// error below 1.15e-9 across the full domain) followed by one step of
// Halley refinement using math.Erfc, which brings the result to within a
// few ULPs — more than sufficient for confidence-interval construction.
func StdNormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow = 0.02425
	const pHigh = 1 - pLow

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalQuantile returns the p-quantile of the normal distribution with the
// given mean and standard deviation.
func NormalQuantile(p, mean, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	return mean + sigma*StdNormalQuantile(p)
}

// TruncNormal is a normal distribution restricted to the interval [Lo, Hi].
// The paper injects Integrated-ARIMA attack vectors from a truncated normal
// so that the false readings respect both the ARIMA confidence band and the
// historic mean/variance checks (Section VIII-B).
type TruncNormal struct {
	Mean  float64
	Sigma float64
	Lo    float64
	Hi    float64
}

// NewTruncNormal validates and constructs a truncated normal distribution.
// Sigma must be positive and Lo < Hi.
func NewTruncNormal(mean, sigma, lo, hi float64) (TruncNormal, error) {
	if sigma <= 0 || math.IsNaN(sigma) {
		return TruncNormal{}, fmt.Errorf("stats: truncated normal requires sigma > 0, got %g", sigma)
	}
	if !(lo < hi) {
		return TruncNormal{}, fmt.Errorf("stats: truncated normal requires lo < hi, got [%g, %g]", lo, hi)
	}
	return TruncNormal{Mean: mean, Sigma: sigma, Lo: lo, Hi: hi}, nil
}

// alphaBeta returns the standardized truncation bounds.
func (t TruncNormal) alphaBeta() (alpha, beta float64) {
	return (t.Lo - t.Mean) / t.Sigma, (t.Hi - t.Mean) / t.Sigma
}

// massZ returns Φ(alpha), Φ(beta) and the probability mass Z between them.
func (t TruncNormal) massZ() (phiA, phiB, z float64) {
	alpha, beta := t.alphaBeta()
	phiA = StdNormalCDF(alpha)
	phiB = StdNormalCDF(beta)
	return phiA, phiB, phiB - phiA
}

// Sample draws one value using inverse-CDF sampling, which is exact and
// needs exactly one uniform variate — important for reproducibility because
// the number of RNG draws per sample is constant (rejection sampling would
// make downstream draws depend on acceptance history).
func (t TruncNormal) Sample(rng *rand.Rand) float64 {
	phiA, _, z := t.massZ()
	if z <= 0 {
		// Degenerate truncation: all mass collapses numerically; return the
		// nearest bound to the mean.
		if t.Mean < t.Lo {
			return t.Lo
		}
		return t.Hi
	}
	u := rng.Float64()
	x := t.Mean + t.Sigma*StdNormalQuantile(phiA+u*z)
	// Guard against floating-point excursions just outside the interval.
	if x < t.Lo {
		x = t.Lo
	}
	if x > t.Hi {
		x = t.Hi
	}
	return x
}

// SampleN draws n values.
func (t TruncNormal) SampleN(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = t.Sample(rng)
	}
	return out
}

// TruncatedMean returns the analytic mean of the truncated distribution,
// which differs from Mean whenever the truncation is asymmetric.
func (t TruncNormal) TruncatedMean() float64 {
	alpha, beta := t.alphaBeta()
	_, _, z := t.massZ()
	if z <= 0 {
		return math.NaN()
	}
	return t.Mean + t.Sigma*(NormalPDF(alpha, 0, 1)-NormalPDF(beta, 0, 1))/z
}

// TruncatedVariance returns the analytic variance of the truncated
// distribution.
func (t TruncNormal) TruncatedVariance() float64 {
	alpha, beta := t.alphaBeta()
	_, _, z := t.massZ()
	if z <= 0 {
		return math.NaN()
	}
	phiAlpha := NormalPDF(alpha, 0, 1)
	phiBeta := NormalPDF(beta, 0, 1)
	var aTerm, bTerm float64
	if !math.IsInf(alpha, 0) {
		aTerm = alpha * phiAlpha
	}
	if !math.IsInf(beta, 0) {
		bTerm = beta * phiBeta
	}
	ratio := (phiAlpha - phiBeta) / z
	return t.Sigma * t.Sigma * (1 + (aTerm-bTerm)/z - ratio*ratio)
}

// CDF returns the cumulative distribution function of the truncated normal.
func (t TruncNormal) CDF(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 0
	case x >= t.Hi:
		return 1
	}
	phiA, _, z := t.massZ()
	if z <= 0 {
		return math.NaN()
	}
	return (NormalCDF(x, t.Mean, t.Sigma) - phiA) / z
}
