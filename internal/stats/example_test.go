package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleKLDivergence computes Eq. 12 of the paper for two simple
// distributions.
func ExampleKLDivergence() {
	// A fair coin against a biased one, in bits (log2).
	fair := []float64{0.5, 0.5}
	biased := []float64{0.9, 0.1}
	d, err := stats.KLDivergence(fair, biased, stats.KLOptions{Base: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("D(fair || biased) = %.4f bits\n", d)
	// Output:
	// D(fair || biased) = 0.7370 bits
}

// ExampleHistogram shows the frozen-edge histogram workflow behind the KLD
// detector: edges come from the full training sample and are reused to bin
// any candidate week.
func ExampleHistogram() {
	training := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := stats.NewHistogramFromData(training, 5)
	if err != nil {
		panic(err)
	}
	candidate := []float64{0.5, 0.7, 8.5}
	fmt.Println("baseline:", h.Probabilities())
	fmt.Println("candidate:", h.Distribution(candidate))
	// Output:
	// baseline: [0.2 0.2 0.2 0.2 0.2]
	// candidate: [0.6666666666666666 0 0 0 0.3333333333333333]
}

// ExampleTruncNormal draws the paper's Integrated-ARIMA-attack readings:
// normal noise confined to a confidence band.
func ExampleTruncNormal() {
	tn, err := stats.NewTruncNormal(2.0, 0.5, 1.0, 3.0)
	if err != nil {
		panic(err)
	}
	rng := stats.NewRand(1)
	x := tn.Sample(rng)
	fmt.Printf("sample in [1, 3]: %v\n", x >= 1 && x <= 3)
	// Output:
	// sample in [1, 3]: true
}
