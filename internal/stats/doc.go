// Package stats provides the statistical primitives that F-DETA's detectors
// and attack generators are built on: descriptive statistics, percentiles,
// fixed-edge histograms, Kullback-Leibler divergence (Eq. 12 of the paper),
// the normal and truncated-normal distributions, and deterministic random
// number generation.
//
// Everything in this package is hand-rolled on top of the Go standard
// library; there are no external numerical dependencies. All stochastic
// helpers take an explicit *rand.Rand so that experiments are reproducible
// bit-for-bit from a seed.
package stats
