package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Error("single edge should be rejected")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges should be rejected")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing edges should be rejected")
	}
	if _, err := NewHistogram([]float64{0, 1, 2}); err != nil {
		t.Errorf("valid edges rejected: %v", err)
	}
}

func TestLinearEdges(t *testing.T) {
	edges := LinearEdges(0, 10, 5)
	want := []float64{0, 2, 4, 6, 8, 10}
	if len(edges) != len(want) {
		t.Fatalf("len = %d, want %d", len(edges), len(want))
	}
	for i := range want {
		if !almostEqual(edges[i], want[i], 1e-12) {
			t.Errorf("edge[%d] = %g, want %g", i, edges[i], want[i])
		}
	}
	// Reversed bounds are normalized.
	edges = LinearEdges(10, 0, 2)
	if edges[0] != 0 || edges[2] != 10 {
		t.Error("reversed bounds should be swapped")
	}
	// Degenerate range still yields increasing edges.
	edges = LinearEdges(5, 5, 3)
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			t.Fatal("degenerate-range edges must still increase")
		}
	}
	// bins < 1 clamps to 1.
	if got := LinearEdges(0, 1, 0); len(got) != 2 {
		t.Errorf("clamped bins edges len = %d, want 2", len(got))
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want int
	}{
		{-5, 0},  // below range clamps to first bin
		{0, 0},   // left edge
		{0.5, 0}, //
		{1, 1},   // interior edge belongs to the right bin
		{1.5, 1}, //
		{2.999, 2},
		{3, 2},   // top edge belongs to last bin
		{100, 2}, // above range clamps to last bin
	}
	for _, tt := range tests {
		if got := h.BinIndex(tt.x); got != tt.want {
			t.Errorf("BinIndex(%g) = %d, want %d", tt.x, got, tt.want)
		}
	}
	if h.BinIndex(math.NaN()) != -1 {
		t.Error("NaN should map to -1")
	}
	h.Add(math.NaN())
	if h.Total() != 0 {
		t.Error("NaN must not be counted")
	}
}

func TestHistogramCountsAndProbabilities(t *testing.T) {
	h, err := NewHistogramFromData([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d, want 5", h.Bins())
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d, want 10", h.Total())
	}
	counts := h.Counts()
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 10 {
		t.Errorf("counts sum = %d, want 10", sum)
	}
	probs := h.Probabilities()
	var psum float64
	for _, p := range probs {
		psum += p
	}
	if !almostEqual(psum, 1, 1e-12) {
		t.Errorf("probabilities sum = %g, want 1", psum)
	}
	// Per-bin count accessor agrees with the slice copy.
	for i, c := range counts {
		if h.Count(i) != c {
			t.Errorf("Count(%d) = %d, want %d", i, h.Count(i), c)
		}
	}
}

func TestHistogramFromDataEmpty(t *testing.T) {
	if _, err := NewHistogramFromData(nil, 5); err == nil {
		t.Error("empty data should be rejected")
	}
}

func TestHistogramCloneAndReset(t *testing.T) {
	h, _ := NewHistogramFromData([]float64{1, 2, 3}, 3)
	c := h.Clone()
	if c.Total() != 0 {
		t.Error("clone should start empty")
	}
	if c.Bins() != h.Bins() {
		t.Error("clone must share bin structure")
	}
	c.Add(2)
	if h.Total() != 3 {
		t.Error("adding to clone must not affect original")
	}
	h.Reset()
	if h.Total() != 0 {
		t.Error("Reset should zero counts")
	}
	for _, n := range h.Counts() {
		if n != 0 {
			t.Error("Reset should zero every bin")
		}
	}
}

func TestHistogramDistribution(t *testing.T) {
	h, _ := NewHistogramFromData([]float64{0, 10}, 10)
	d := h.Distribution([]float64{1, 1, 9})
	var sum float64
	for _, p := range d {
		sum += p
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("distribution sums to %g, want 1", sum)
	}
	// Original histogram counts untouched.
	if h.Total() != 2 {
		t.Errorf("Distribution must not mutate source histogram (total=%d)", h.Total())
	}
	// Value 1 sits on an interior edge and belongs to the right bin.
	if d[1] != 2.0/3.0 {
		t.Errorf("d[1] = %g, want 2/3", d[1])
	}
}

func TestHistogramProbabilitiesEmpty(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1})
	for _, p := range h.Probabilities() {
		if p != 0 {
			t.Error("empty histogram probabilities should be zero")
		}
	}
}

func TestHistogramEdgesCopied(t *testing.T) {
	orig := []float64{0, 1, 2}
	h, _ := NewHistogram(orig)
	orig[0] = -100 // mutating the caller's slice must not affect the histogram
	if h.Edges()[0] != 0 {
		t.Error("histogram must copy edges at construction")
	}
	e := h.Edges()
	e[0] = -100
	if h.Edges()[0] != 0 {
		t.Error("Edges must return a copy")
	}
	if h.String() == "" {
		t.Error("String should be nonempty")
	}
}

func TestQuantileEdges(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	edges, err := QuantileEdges(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(edges))
	}
	if edges[0] != 1 || edges[4] != 8 {
		t.Errorf("outer edges = %g, %g", edges[0], edges[4])
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			t.Fatal("edges must strictly increase")
		}
	}
	if _, err := QuantileEdges(nil, 3); err == nil {
		t.Error("empty data should error")
	}
	// Heavy ties (many zeros) still produce strictly increasing edges.
	ties := []float64{0, 0, 0, 0, 0, 0, 1, 2}
	edges, err = QuantileEdges(ties, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			t.Fatal("tied edges must be separated")
		}
	}
	// bins < 1 clamps.
	if e, _ := QuantileEdges(data, 0); len(e) != 2 {
		t.Error("bins should clamp to 1")
	}
	// Constant data degrades gracefully.
	if _, err := QuantileEdges([]float64{5, 5, 5}, 3); err != nil {
		t.Errorf("constant data: %v", err)
	}
}

func TestNewHistogramFromDataQuantile(t *testing.T) {
	// Skewed data: equal-frequency bins hold ~equal mass.
	data := make([]float64, 1000)
	rng := NewRand(9)
	for i := range data {
		v := rng.NormFloat64()
		data[i] = v * v * v // heavy tails
	}
	h, err := NewHistogramFromDataQuantile(data, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1000 {
		t.Fatalf("total = %d", h.Total())
	}
	for i, c := range h.Counts() {
		if c < 50 || c > 200 {
			t.Errorf("bin %d count = %d; equal-frequency bins should hold ~100 each", i, c)
		}
	}
	if _, err := NewHistogramFromDataQuantile(nil, 5); err == nil {
		t.Error("empty data should error")
	}
}

func TestHistogramMassConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := SplitRand(seed, 3)
		n := 1 + rng.Intn(200)
		xs := NormalSample(rng, n, 10, 5)
		h, err := NewHistogramFromData(xs, 1+rng.Intn(20))
		if err != nil {
			return false
		}
		// All mass is captured even with values at the extremes.
		return h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinIndexConsistencyProperty(t *testing.T) {
	h, _ := NewHistogram(LinearEdges(-3, 3, 12))
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return h.BinIndex(x) == -1
		}
		i := h.BinIndex(x)
		if i < 0 || i >= h.Bins() {
			return false
		}
		edges := h.Edges()
		// For in-range values the bin must bracket x.
		if x >= edges[0] && x <= edges[len(edges)-1] {
			hi := edges[i+1]
			if i == h.Bins()-1 {
				return x >= edges[i]-1e-12 && x <= hi+1e-12
			}
			return x >= edges[i]-1e-12 && x < hi+1e-12
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
