package stats

import (
	"fmt"
	"math"
)

// KLOptions configures the Kullback-Leibler divergence computation.
type KLOptions struct {
	// Epsilon, when positive, is added to every bin of both distributions
	// before renormalization. This "smoothing" keeps the divergence finite
	// when the candidate distribution places mass in a bin the baseline
	// assigns zero probability — which is exactly what a cleverly crafted
	// attack vector that strays outside historic consumption does. The
	// paper's detector needs such weeks to score as *highly* anomalous
	// rather than producing non-comparable infinities, so the F-DETA
	// detector uses a small positive epsilon by default.
	Epsilon float64

	// Base selects the logarithm base. The paper's Eq. 12 uses log2 (bits);
	// zero or 2 selects bits, math.E selects nats, 10 selects bans.
	Base float64
}

// DefaultKLOptions matches the paper: log base 2 with light smoothing.
func DefaultKLOptions() KLOptions {
	return KLOptions{Epsilon: 1e-10, Base: 2}
}

func (o KLOptions) logBase() float64 {
	if o.Base == 0 {
		return 2
	}
	return o.Base
}

// KLDivergence computes D(p || q) = sum_j p_j * log(p_j / q_j) per Eq. 12 of
// the paper, in the units selected by opts.Base. Both p and q must be the
// same length; they are treated as discrete distributions and renormalized
// internally so raw counts may be passed directly.
//
// Terms with p_j == 0 contribute zero (the standard 0·log 0 = 0 convention).
// With opts.Epsilon == 0, a bin with p_j > 0 and q_j == 0 yields +Inf.
func KLDivergence(p, q []float64, opts KLOptions) (float64, error) {
	return KLDivergenceWith(p, q, opts, nil)
}

// KLScratch holds reusable normalization buffers for KLDivergenceWith, so
// hot scoring loops avoid two allocations per divergence.
type KLScratch struct {
	pn, qn []float64
}

// KLDivergenceWith is KLDivergence using the scratch buffers in s (which may
// be nil). The arithmetic is identical to KLDivergence, so results are
// bit-for-bit the same.
func KLDivergenceWith(p, q []float64, opts KLOptions, s *KLScratch) (float64, error) {
	if len(p) != len(q) {
		return math.NaN(), fmt.Errorf("stats: distribution length mismatch %d vs %d", len(p), len(q))
	}
	if len(p) == 0 {
		return math.NaN(), ErrEmpty
	}
	var pBuf, qBuf []float64
	if s != nil {
		s.pn = grow(s.pn, len(p))
		s.qn = grow(s.qn, len(q))
		pBuf, qBuf = s.pn, s.qn
	} else {
		pBuf = make([]float64, len(p))
		qBuf = make([]float64, len(q))
	}
	pn, err := normalizeInto(pBuf, p, opts.Epsilon)
	if err != nil {
		return math.NaN(), fmt.Errorf("stats: p: %w", err)
	}
	qn, err := normalizeInto(qBuf, q, opts.Epsilon)
	if err != nil {
		return math.NaN(), fmt.Errorf("stats: q: %w", err)
	}
	logDenom := math.Log(opts.logBase())
	var d float64
	for j := range pn {
		if pn[j] == 0 {
			continue
		}
		if qn[j] == 0 {
			return math.Inf(1), nil
		}
		d += pn[j] * math.Log(pn[j]/qn[j]) / logDenom
	}
	// Floating-point cancellation can produce a tiny negative result for
	// near-identical distributions; clamp since KL divergence is >= 0.
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d, nil
}

// MustKLDivergence is KLDivergence for callers that have already validated
// their inputs (equal-length, nonempty, nonnegative). It panics on error and
// exists for hot loops in the benchmark harness.
func MustKLDivergence(p, q []float64, opts KLOptions) float64 {
	d, err := KLDivergence(p, q, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// SymmetricKLDivergence returns D(p||q) + D(q||p), a symmetric dissimilarity
// sometimes preferred when neither distribution is a privileged baseline.
func SymmetricKLDivergence(p, q []float64, opts KLOptions) (float64, error) {
	d1, err := KLDivergence(p, q, opts)
	if err != nil {
		return math.NaN(), err
	}
	d2, err := KLDivergence(q, p, opts)
	if err != nil {
		return math.NaN(), err
	}
	return d1 + d2, nil
}

// JensenShannonDivergence returns the Jensen-Shannon divergence between p
// and q in the units of opts.Base. It is symmetric, finite, and bounded by
// 1 when using log2; provided as a robustness alternative for the detector
// ablation study.
func JensenShannonDivergence(p, q []float64, opts KLOptions) (float64, error) {
	if len(p) != len(q) {
		return math.NaN(), fmt.Errorf("stats: distribution length mismatch %d vs %d", len(p), len(q))
	}
	pn, err := normalize(p, opts.Epsilon)
	if err != nil {
		return math.NaN(), fmt.Errorf("stats: p: %w", err)
	}
	qn, err := normalize(q, opts.Epsilon)
	if err != nil {
		return math.NaN(), fmt.Errorf("stats: q: %w", err)
	}
	mid := make([]float64, len(pn))
	for j := range pn {
		mid[j] = 0.5 * (pn[j] + qn[j])
	}
	// The mixture cannot introduce zeros where p or q has mass, so no
	// further smoothing is needed.
	noSmooth := KLOptions{Base: opts.Base}
	d1, err := KLDivergence(pn, mid, noSmooth)
	if err != nil {
		return math.NaN(), err
	}
	d2, err := KLDivergence(qn, mid, noSmooth)
	if err != nil {
		return math.NaN(), err
	}
	return 0.5*d1 + 0.5*d2, nil
}

// normalize returns xs scaled to sum to one after adding eps to every
// element. It rejects negative entries and all-zero inputs.
func normalize(xs []float64, eps float64) ([]float64, error) {
	return normalizeInto(make([]float64, len(xs)), xs, eps)
}

// normalizeInto is normalize writing into out, which must have length
// len(xs). The arithmetic order matches normalize exactly.
func normalizeInto(out, xs []float64, eps float64) ([]float64, error) {
	var sum float64
	for i, x := range xs {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("invalid probability mass %g at index %d", x, i)
		}
		out[i] = x + eps
		sum += out[i]
	}
	if sum == 0 {
		return nil, fmt.Errorf("distribution has zero total mass")
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// grow returns buf resized to length n, reallocating only when capacity is
// insufficient.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
