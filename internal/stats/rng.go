package stats

import "math/rand"

// NewRand returns a deterministic *rand.Rand seeded with the given seed.
// All stochastic code in this repository threads RNGs created here so that
// every experiment, test, and benchmark is reproducible from its seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitRand derives an independent child RNG from a parent seed and a
// stream index. Experiments that fan out per-consumer work use one stream
// per consumer so that changing the trial count for one consumer never
// perturbs another consumer's draws.
func SplitRand(seed int64, stream int64) *rand.Rand {
	// SplitMix64-style mixing keeps nearby (seed, stream) pairs decorrelated.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// NormalSample draws n i.i.d. normal variates with the given mean and
// standard deviation.
func NormalSample(rng *rand.Rand, n int, mean, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sigma*rng.NormFloat64()
	}
	return out
}

// Shuffle permutes xs in place using the supplied RNG.
func Shuffle(rng *rand.Rand, xs []float64) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
