package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins observations against a frozen set of edges. The paper's KLD
// detector (Section VII-D) requires that the bin edges computed from the full
// training matrix X be reused exactly when binning each training week X_i and
// each candidate week, so edges are fixed at construction time.
//
// A histogram with B bins has B+1 edges. Values equal to the last edge fall
// into the last bin (matching the numpy/matplotlib convention the paper's
// evaluation tooling would have used); values outside [edges[0], edges[B]]
// are clamped into the first or last bin so that probability mass is never
// silently dropped — an attack vector that pushes readings outside the
// training range must make the week look more anomalous, not invisible.
type Histogram struct {
	edges  []float64
	counts []int
	total  int
}

// NewHistogram creates a histogram from explicit, strictly increasing bin
// edges. At least two edges (one bin) are required.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("stats: edges must be strictly increasing (edge[%d]=%g, edge[%d]=%g)",
				i-1, edges[i-1], i, edges[i])
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{
		edges:  e,
		counts: make([]int, len(e)-1),
	}, nil
}

// LinearEdges returns bins+1 equally spaced edges spanning [lo, hi].
// If lo == hi the span is widened symmetrically by a small amount so the
// histogram remains usable for constant data.
func LinearEdges(lo, hi float64, bins int) []float64 {
	if bins < 1 {
		bins = 1
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	//lint:ignore floatcmp exact degeneracy test: only a truly empty range needs the synthetic pad, near-equal bounds bin fine
	if lo == hi {
		pad := math.Abs(lo) * 1e-9
		if pad == 0 {
			pad = 1e-9
		}
		lo -= pad
		hi += pad
	}
	edges := make([]float64, bins+1)
	step := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*step
	}
	edges[bins] = hi // avoid accumulated floating-point error at the top edge
	return edges
}

// NewHistogramFromData builds a histogram whose edges span the range of the
// supplied data with the given number of equal-width bins, mirroring the
// paper's "histogram of all values of X using B bins" construction.
func NewHistogramFromData(data []float64, bins int) (*Histogram, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	lo, hi := MinMax(data)
	h, err := NewHistogram(LinearEdges(lo, hi, bins))
	if err != nil {
		return nil, err
	}
	h.AddAll(data)
	return h, nil
}

// QuantileEdges returns bins+1 edges placed at equally spaced quantiles of
// the data, so each bin holds (approximately) the same number of training
// observations. Duplicate quantiles (heavy ties, e.g. many zero readings)
// are nudged apart by the smallest increment that keeps the edges strictly
// increasing. This is the equal-frequency alternative to LinearEdges for
// the KLD detector's bin-strategy ablation.
func QuantileEdges(data []float64, bins int) ([]float64, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if bins < 1 {
		bins = 1
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	edges := make([]float64, bins+1)
	for i := 0; i <= bins; i++ {
		p := 100 * float64(i) / float64(bins)
		edges[i] = PercentileSorted(sorted, p)
	}
	// Separate ties: each edge must strictly exceed its predecessor.
	span := sorted[len(sorted)-1] - sorted[0]
	eps := span * 1e-9
	if eps == 0 {
		eps = 1e-9
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			edges[i] = edges[i-1] + eps
		}
	}
	return edges, nil
}

// NewHistogramFromDataQuantile is NewHistogramFromData with equal-frequency
// (quantile) bin edges.
func NewHistogramFromDataQuantile(data []float64, bins int) (*Histogram, error) {
	edges, err := QuantileEdges(data, bins)
	if err != nil {
		return nil, err
	}
	h, err := NewHistogram(edges)
	if err != nil {
		return nil, err
	}
	h.AddAll(data)
	return h, nil
}

// Clone returns a histogram with the same edges and zeroed counts, for
// binning a different sample against identical edges.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		edges:  h.edges, // edges are immutable after construction
		counts: make([]int, len(h.counts)),
	}
}

// Reset zeroes all counts, keeping the edges.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Edges returns a copy of the bin edges.
func (h *Histogram) Edges() []float64 {
	e := make([]float64, len(h.edges))
	copy(e, h.edges)
	return e
}

// Total returns the number of observations added.
func (h *Histogram) Total() int { return h.total }

// BinIndex returns the bin a value falls into. Values below the first edge
// map to bin 0 and values at or above the last edge map to the last bin.
// NaN values map to -1 and are not counted by Add.
func (h *Histogram) BinIndex(x float64) int {
	return BinIndexEdges(h.edges, x)
}

// BinIndexEdges is BinIndex over a bare edge slice (len(edges)-1 bins), for
// callers that keep frozen edges without a full Histogram — the compact
// streaming detector state bins each live reading against edges it carries
// itself. Semantics are identical to Histogram.BinIndex: clamped at both
// ends, NaN maps to -1.
func BinIndexEdges(edges []float64, x float64) int {
	if math.IsNaN(x) {
		return -1
	}
	if x <= edges[0] {
		return 0
	}
	last := len(edges) - 2
	if x >= edges[len(edges)-1] {
		return last
	}
	// Binary search for the rightmost edge <= x.
	lo, hi := 0, len(edges)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if edges[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Add bins a single observation. NaN observations are ignored.
func (h *Histogram) Add(x float64) {
	i := h.BinIndex(x)
	if i < 0 {
		return
	}
	h.counts[i]++
	h.total++
}

// AddAll bins every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// AddBin counts one observation directly into bin i, for callers that have
// already computed BinIndex to feed a second tally in the same pass (the
// population trainer bins each training value once for both the global X
// histogram and its week's distribution). Negative indices — BinIndex's NaN
// sentinel — are ignored, matching Add.
func (h *Histogram) AddBin(i int) {
	if i < 0 {
		return
	}
	h.counts[i]++
	h.total++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	c := make([]int, len(h.counts))
	copy(c, h.counts)
	return c
}

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Probabilities returns the relative frequency of each bin: the count
// normalized by the total number of observations (the p(X^(j)) of Eq. 12).
// If no observations were added, every probability is zero.
func (h *Histogram) Probabilities() []float64 {
	p := make([]float64, len(h.counts))
	if h.total == 0 {
		return p
	}
	n := float64(h.total)
	for i, c := range h.counts {
		p[i] = float64(c) / n
	}
	return p
}

// Distribution bins the sample xs against this histogram's edges and returns
// the resulting relative frequencies without disturbing the histogram's own
// counts. This is the operation used to form each X_i distribution from the
// frozen X edges.
func (h *Histogram) Distribution(xs []float64) []float64 {
	return h.DistributionInto(make([]float64, len(h.counts)), xs)
}

// DistributionInto is Distribution writing into a caller-provided slice,
// which must have length Bins(). Counts below 2^53 are exact in float64, so
// accumulating them directly in dst yields bit-identical probabilities to
// the integer-count path. NaN observations are ignored, matching Add.
func (h *Histogram) DistributionInto(dst []float64, xs []float64) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	var total int
	for _, x := range xs {
		i := h.BinIndex(x)
		if i < 0 {
			continue
		}
		dst[i]++
		total++
	}
	if total == 0 {
		return dst
	}
	n := float64(total)
	for i := range dst {
		dst[i] /= n
	}
	return dst
}

// String renders a compact textual summary of the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram{bins=%d, range=[%g,%g], n=%d}",
		h.Bins(), h.edges[0], h.edges[len(h.edges)-1], h.total)
}
