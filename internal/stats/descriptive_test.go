package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed", []float64{1, -2, 3.5}, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.in); got != tt.want {
				t.Errorf("Sum(%v) = %g, want %g", tt.in, got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
}

func TestVariance(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single value should be NaN")
	}
	// Known value: var([2,4,4,4,5,5,7,9]) with n-1 = 4.571428...
	got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
}

func TestPopVariance(t *testing.T) {
	got := PopVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %g, want 4", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("MinMax(nil) should be NaNs")
	}
	if Min([]float64{5}) != 5 || Max([]float64{5}) != 5 {
		t.Error("Min/Max of singleton")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{40, 29}, // rank 1.6 -> 20 + 0.6*(35-20) = 29
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("Percentile out of range should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 15 || xs[2] != 35 {
		t.Error("Percentile must not mutate its input")
	}
}

func TestPercentileSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := PercentileSorted(sorted, 50); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("PercentileSorted(50) = %g, want 2.5", got)
	}
	if got := PercentileSorted([]float64{7}, 90); got != 7 {
		t.Errorf("singleton percentile = %g, want 7", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median even = %g, want 2.5", got)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := NewRand(42)
	xs := NormalSample(rng, 1000, 5, 2)
	var acc Accumulator
	acc.AddAll(xs)
	if acc.N() != 1000 {
		t.Fatalf("N = %d, want 1000", acc.N())
	}
	if !almostEqual(acc.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Accumulator mean %g != batch mean %g", acc.Mean(), Mean(xs))
	}
	if !almostEqual(acc.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Accumulator variance %g != batch variance %g", acc.Variance(), Variance(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Error("Accumulator min/max disagree with batch")
	}
	if acc.String() == "" {
		t.Error("String should be nonempty")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if !math.IsNaN(acc.Mean()) || !math.IsNaN(acc.Variance()) ||
		!math.IsNaN(acc.Min()) || !math.IsNaN(acc.Max()) {
		t.Error("empty accumulator should report NaNs")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	m, s := MeanStd(xs)
	if !almostEqual(m, 3, 1e-12) {
		t.Errorf("mean = %g, want 3", m)
	}
	if !almostEqual(s, math.Sqrt(2.5), 1e-12) {
		t.Errorf("std = %g, want sqrt(2.5)", s)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Lag 0 autocorrelation is always 1 for non-constant data.
	xs := []float64{1, 2, 3, 4, 5, 4, 3, 2}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 autocorrelation = %g, want 1", got)
	}
	// Constant series has undefined autocorrelation.
	if !math.IsNaN(Autocorrelation([]float64{2, 2, 2}, 1)) {
		t.Error("constant series autocorrelation should be NaN")
	}
	// Out of range lags.
	if !math.IsNaN(Autocorrelation(xs, -1)) || !math.IsNaN(Autocorrelation(xs, len(xs))) {
		t.Error("out-of-range lag should be NaN")
	}
	// A strongly periodic signal should show positive autocorrelation at
	// its period and negative at half its period.
	period := 10
	var signal []float64
	for i := 0; i < 200; i++ {
		signal = append(signal, math.Sin(2*math.Pi*float64(i)/float64(period)))
	}
	if r := Autocorrelation(signal, period); r < 0.8 {
		t.Errorf("autocorrelation at period = %g, want > 0.8", r)
	}
	if r := Autocorrelation(signal, period/2); r > -0.8 {
		t.Errorf("autocorrelation at half period = %g, want < -0.8", r)
	}
}

func TestAutocorrelationFunc(t *testing.T) {
	xs := []float64{1, 2, 1, 2, 1, 2}
	acf := AutocorrelationFunc(xs, 3)
	if len(acf) != 4 {
		t.Fatalf("len(acf) = %d, want 4", len(acf))
	}
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Errorf("acf[0] = %g, want 1", acf[0])
	}
	if AutocorrelationFunc(xs, -1) != nil {
		t.Error("negative maxLag should return nil")
	}
	// maxLag clamped to len-1.
	if got := AutocorrelationFunc([]float64{1, 2, 3}, 100); len(got) != 3 {
		t.Errorf("clamped acf length = %d, want 3", len(got))
	}
}

func TestLjungBoxWhiteNoiseSmall(t *testing.T) {
	rng := NewRand(7)
	white := NormalSample(rng, 500, 0, 1)
	q := LjungBox(white, 10)
	// Under the null, Q ~ chi2(10); its 99.9th percentile is ~29.6.
	if q > 35 {
		t.Errorf("LjungBox on white noise = %g, implausibly large", q)
	}
	if !math.IsNaN(LjungBox(nil, 5)) || !math.IsNaN(LjungBox(white, 0)) {
		t.Error("degenerate LjungBox inputs should be NaN")
	}
}

func TestVariancePropertyNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		return Variance(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	rng := NewRand(99)
	f := func(seed int64) bool {
		r := SplitRand(seed, 1)
		n := 1 + r.Intn(50)
		xs := NormalSample(rng, n, 0, 10)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := SplitRand(seed, 2)
		n := 1 + r.Intn(100)
		xs := NormalSample(r, n, 0, 5)
		lo, hi := MinMax(xs)
		for _, p := range []float64{0, 10, 50, 90, 100} {
			v := Percentile(xs, p)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
