package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKLDivergenceIdentical(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	d, err := KLDivergence(p, p, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KL(p||p) = %g, want 0", d)
	}
}

func TestKLDivergenceKnownValue(t *testing.T) {
	// KL([1,0] || [0.5,0.5]) in bits = 1*log2(1/0.5) = 1.
	p := []float64{1, 0}
	q := []float64{0.5, 0.5}
	d, err := KLDivergence(p, q, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("KL = %g, want 1 bit", d)
	}
	// Same in nats.
	d, err = KLDivergence(p, q, KLOptions{Base: math.E})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, math.Ln2, 1e-12) {
		t.Errorf("KL = %g nats, want ln 2", d)
	}
}

func TestKLDivergenceAsymmetry(t *testing.T) {
	p := []float64{0.9, 0.1}
	q := []float64{0.1, 0.9}
	d1, _ := KLDivergence(p, q, KLOptions{Base: 2})
	d2, _ := KLDivergence(q, p, KLOptions{Base: 2})
	if !almostEqual(d1, d2, 1e-15) {
		// expected for this symmetric swap they are equal; use a different q
		t.Logf("d1=%g d2=%g", d1, d2)
	}
	p = []float64{0.5, 0.5}
	q = []float64{0.9, 0.1}
	d1, _ = KLDivergence(p, q, KLOptions{Base: 2})
	d2, _ = KLDivergence(q, p, KLOptions{Base: 2})
	if almostEqual(d1, d2, 1e-9) {
		t.Errorf("KL should be asymmetric in general: %g vs %g", d1, d2)
	}
}

func TestKLDivergenceUnnormalizedCounts(t *testing.T) {
	// Raw counts should be internally normalized.
	p := []float64{10, 30}
	q := []float64{1, 3}
	d, err := KLDivergence(p, q, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("proportional counts should give KL 0, got %g", d)
	}
}

func TestKLDivergenceZeroHandling(t *testing.T) {
	// p has mass where q has none: without smoothing, +Inf.
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	d, err := KLDivergence(p, q, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("unsmoothed KL with empty q-bin = %g, want +Inf", d)
	}
	// With smoothing it is finite and large.
	d, err = KLDivergence(p, q, DefaultKLOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 0) || d < 1 {
		t.Errorf("smoothed KL = %g, want large finite value", d)
	}
}

func TestKLDivergenceErrors(t *testing.T) {
	if _, err := KLDivergence([]float64{1}, []float64{0.5, 0.5}, KLOptions{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := KLDivergence(nil, nil, KLOptions{}); err == nil {
		t.Error("empty distributions should error")
	}
	if _, err := KLDivergence([]float64{-1, 2}, []float64{0.5, 0.5}, KLOptions{}); err == nil {
		t.Error("negative mass should error")
	}
	if _, err := KLDivergence([]float64{0, 0}, []float64{0.5, 0.5}, KLOptions{}); err == nil {
		t.Error("zero-mass p should error")
	}
}

func TestMustKLDivergencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKLDivergence should panic on invalid input")
		}
	}()
	MustKLDivergence([]float64{1}, []float64{1, 2}, KLOptions{})
}

func TestSymmetricKL(t *testing.T) {
	p := []float64{0.7, 0.3}
	q := []float64{0.3, 0.7}
	s, err := SymmetricKLDivergence(p, q, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := KLDivergence(p, q, KLOptions{Base: 2})
	d2, _ := KLDivergence(q, p, KLOptions{Base: 2})
	if !almostEqual(s, d1+d2, 1e-12) {
		t.Errorf("symmetric KL = %g, want %g", s, d1+d2)
	}
	if _, err := SymmetricKLDivergence([]float64{1}, []float64{1, 1}, KLOptions{}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestJensenShannonBounds(t *testing.T) {
	// JSD in bits is bounded by [0, 1]; maximal for disjoint distributions.
	p := []float64{1, 0}
	q := []float64{0, 1}
	d, err := JensenShannonDivergence(p, q, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-9) {
		t.Errorf("JSD of disjoint distributions = %g, want 1", d)
	}
	d, err = JensenShannonDivergence(p, p, KLOptions{Base: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-9) {
		t.Errorf("JSD(p,p) = %g, want 0", d)
	}
	if _, err := JensenShannonDivergence([]float64{1}, []float64{1, 1}, KLOptions{}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestKLNonNegativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := SplitRand(seed, 4)
		n := 2 + rng.Intn(20)
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		d, err := KLDivergence(p, q, DefaultKLOptions())
		if err != nil {
			return false
		}
		return d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJSDSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := SplitRand(seed, 5)
		n := 2 + rng.Intn(10)
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		d1, err1 := JensenShannonDivergence(p, q, DefaultKLOptions())
		d2, err2 := JensenShannonDivergence(q, p, DefaultKLOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(d1, d2, 1e-9) && d1 >= -1e-12 && d1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
