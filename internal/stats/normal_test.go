package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalPDF(t *testing.T) {
	// Peak of the standard normal.
	if got := NormalPDF(0, 0, 1); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("pdf(0) = %g", got)
	}
	if !math.IsNaN(NormalPDF(0, 0, 0)) || !math.IsNaN(NormalPDF(0, 0, -1)) {
		t.Error("nonpositive sigma should yield NaN")
	}
	// Symmetry.
	if NormalPDF(1.3, 0, 1) != NormalPDF(-1.3, 0, 1) {
		t.Error("pdf should be symmetric about the mean")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1.2815515655446004, 0.9},
	}
	for _, tt := range tests {
		if got := StdNormalCDF(tt.z); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Φ(%g) = %g, want %g", tt.z, got, tt.want)
		}
	}
	if !math.IsNaN(NormalCDF(0, 0, -2)) {
		t.Error("nonpositive sigma should yield NaN")
	}
	if got := NormalCDF(7, 5, 2); !almostEqual(got, StdNormalCDF(1), 1e-12) {
		t.Errorf("shifted CDF = %g", got)
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 1 - 1e-4} {
		z := StdNormalQuantile(p)
		back := StdNormalCDF(z)
		if !almostEqual(back, p, 1e-10) {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, back)
		}
	}
}

func TestStdNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("quantile(0) should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("quantile(1) should be +Inf")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) || !math.IsNaN(StdNormalQuantile(1.1)) || !math.IsNaN(StdNormalQuantile(math.NaN())) {
		t.Error("out-of-domain quantile should be NaN")
	}
	if got := StdNormalQuantile(0.5); !almostEqual(got, 0, 1e-12) {
		t.Errorf("median quantile = %g, want 0", got)
	}
	// The 97.5% quantile is the ubiquitous 1.96.
	if got := StdNormalQuantile(0.975); !almostEqual(got, 1.959963984540054, 1e-8) {
		t.Errorf("q(0.975) = %g", got)
	}
}

func TestNormalQuantileShiftScale(t *testing.T) {
	got := NormalQuantile(0.975, 10, 2)
	want := 10 + 2*1.959963984540054
	if !almostEqual(got, want, 1e-7) {
		t.Errorf("NormalQuantile = %g, want %g", got, want)
	}
	if !math.IsNaN(NormalQuantile(0.5, 0, 0)) {
		t.Error("nonpositive sigma should yield NaN")
	}
}

func TestNewTruncNormalValidation(t *testing.T) {
	if _, err := NewTruncNormal(0, 0, -1, 1); err == nil {
		t.Error("zero sigma should be rejected")
	}
	if _, err := NewTruncNormal(0, 1, 1, 1); err == nil {
		t.Error("lo == hi should be rejected")
	}
	if _, err := NewTruncNormal(0, 1, 2, 1); err == nil {
		t.Error("lo > hi should be rejected")
	}
	if _, err := NewTruncNormal(0, 1, -1, 1); err != nil {
		t.Error("valid parameters rejected")
	}
}

func TestTruncNormalSampleBounds(t *testing.T) {
	tn, err := NewTruncNormal(5, 3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(1)
	for i := 0; i < 10000; i++ {
		x := tn.Sample(rng)
		if x < tn.Lo || x > tn.Hi {
			t.Fatalf("sample %g outside [%g, %g]", x, tn.Lo, tn.Hi)
		}
	}
}

func TestTruncNormalSampleMoments(t *testing.T) {
	tn, _ := NewTruncNormal(0, 1, -0.5, 2) // asymmetric truncation
	rng := NewRand(2)
	xs := tn.SampleN(rng, 200000)
	wantMean := tn.TruncatedMean()
	wantVar := tn.TruncatedVariance()
	gotMean := Mean(xs)
	gotVar := Variance(xs)
	if !almostEqual(gotMean, wantMean, 0.01) {
		t.Errorf("sample mean %g vs analytic %g", gotMean, wantMean)
	}
	if !almostEqual(gotVar, wantVar, 0.01) {
		t.Errorf("sample variance %g vs analytic %g", gotVar, wantVar)
	}
	// Asymmetric truncation shifts the mean away from the untruncated mean.
	if wantMean <= 0 {
		t.Errorf("truncated mean %g should exceed 0 for this truncation", wantMean)
	}
}

func TestTruncNormalCDF(t *testing.T) {
	tn, _ := NewTruncNormal(0, 1, -1, 1)
	if got := tn.CDF(-2); got != 0 {
		t.Errorf("CDF below lo = %g, want 0", got)
	}
	if got := tn.CDF(2); got != 1 {
		t.Errorf("CDF above hi = %g, want 1", got)
	}
	if got := tn.CDF(0); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("CDF at center of symmetric truncation = %g, want 0.5", got)
	}
	// CDF is monotone.
	prev := -1.0
	for x := -1.0; x <= 1.0; x += 0.05 {
		v := tn.CDF(x)
		if v < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = v
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	// Truncation interval far in the tail: mass underflows to zero, sampling
	// should degrade gracefully to the nearest bound rather than NaN.
	tn, _ := NewTruncNormal(0, 1, 50, 51)
	rng := NewRand(3)
	x := tn.Sample(rng)
	if math.IsNaN(x) || x < tn.Lo || x > tn.Hi {
		t.Errorf("degenerate sample = %g, want value in [50, 51]", x)
	}
}

func TestTruncNormalSampleDeterminism(t *testing.T) {
	tn, _ := NewTruncNormal(1, 2, 0, 5)
	a := tn.SampleN(NewRand(42), 10)
	b := tn.SampleN(NewRand(42), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling must be deterministic for a fixed seed")
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(pa) || math.IsNaN(pb) || pa == 0 || pb == 0 {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return StdNormalQuantile(pa) <= StdNormalQuantile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitRandStreamsIndependent(t *testing.T) {
	r1 := SplitRand(7, 1)
	r2 := SplitRand(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Float64() == r2.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams produced %d identical draws; expected decorrelated streams", same)
	}
	// Same (seed, stream) reproduces.
	a := SplitRand(9, 3).Float64()
	b := SplitRand(9, 3).Float64()
	if a != b {
		t.Error("SplitRand must be deterministic")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	orig := make([]float64, len(xs))
	copy(orig, xs)
	Shuffle(NewRand(11), xs)
	if len(xs) != len(orig) {
		t.Fatal("length changed")
	}
	sum := Sum(xs)
	if !almostEqual(sum, Sum(orig), 1e-12) {
		t.Error("shuffle must preserve multiset")
	}
}
