package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// chanbound enforces explicit capacity decisions on channels and timers:
//
//   - every `make(chan T)` must state a capacity. An unbuffered channel is
//     a rendezvous — the sender parks until a receiver arrives — which is
//     how the PR-7 shard queues and PR-9 worker queues apply backpressure
//     *by design*, with a chosen bound. Writing the capacity (including an
//     explicit 0 for a deliberate rendezvous) makes that choice visible at
//     the make site. Close-only signal channels (`chan struct{}`) are
//     exempt: their idiom is close-to-broadcast and a capacity would be
//     noise.
//   - `time.After`/`time.Tick` are banned inside loop bodies: each call
//     allocates a timer that fires on its own schedule, so a hot loop
//     leaks timers until they expire (and time.Tick's never do). Hoist a
//     time.NewTimer/NewTicker outside the loop and reuse it.
func newChanbound() *Analyzer {
	return &Analyzer{
		Name: "chanbound",
		Doc:  "make(chan T) needs an explicit capacity; time.After/Tick banned in loops",
		Applies: func(mod *Module, pkg *Package) bool {
			return true
		},
		Run: runChanbound,
	}
}

func runChanbound(mod *Module, pkg *Package, report func(pos token.Pos, msg string)) {
	for _, file := range pkg.Files {
		walkChanbound(pkg.Info, file, 0, report)
	}
}

// walkChanbound recurses with an explicit loop depth so timer calls know
// whether they execute per iteration.
func walkChanbound(info *types.Info, n ast.Node, loopDepth int, report func(pos token.Pos, msg string)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			walkChanbound(info, n.Body, loopDepth+1, report)
			if n.Init != nil {
				walkChanbound(info, n.Init, loopDepth, report)
			}
			if n.Cond != nil {
				walkChanbound(info, n.Cond, loopDepth+1, report)
			}
			if n.Post != nil {
				walkChanbound(info, n.Post, loopDepth+1, report)
			}
			return false
		case *ast.RangeStmt:
			// The range expression evaluates once, outside the loop.
			walkChanbound(info, n.X, loopDepth, report)
			walkChanbound(info, n.Body, loopDepth+1, report)
			return false
		case *ast.CallExpr:
			checkChanboundCall(info, n, loopDepth, report)
		}
		return true
	})
}

func checkChanboundCall(info *types.Info, call *ast.CallExpr, loopDepth int, report func(pos token.Pos, msg string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
			if t := info.TypeOf(call); t != nil {
				if ch, ok := t.Underlying().(*types.Chan); ok && !isEmptyStruct(ch.Elem()) {
					elem := types.TypeString(ch.Elem(), func(p *types.Package) string { return p.Name() })
					report(call.Lparen, fmt.Sprintf(
						"make(chan %s) without an explicit capacity: a silent rendezvous hides the backpressure decision — state the bound (0 for a deliberate rendezvous) or suppress with the reasoning",
						elem))
				}
			}
		}
		return
	}
	if loopDepth == 0 {
		return
	}
	fn := calleeOf(info, call)
	for _, name := range []string{"After", "Tick"} {
		if isPkgFunc(fn, "time", name) {
			report(call.Lparen, fmt.Sprintf(
				"time.%s inside a loop allocates a timer every iteration; hoist a time.NewTimer/NewTicker outside the loop and reuse it", name))
		}
	}
}

// isEmptyStruct reports whether t is struct{} — the close-only signal
// channel element type.
func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
