package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		name   string
		text   string
		checks []string
		reason string
		ok     bool
		bad    bool // ok && err != nil: a directive, but malformed
	}{
		{name: "not a comment directive", text: "// plain comment", ok: false},
		{name: "other tool namespace", text: "//lint:ignoreXYZ stuff", ok: false},
		{name: "file directive not ours", text: "//lint:file-ignore foo", ok: false},
		{name: "valid", text: "//lint:ignore floatcmp exact sentinel compare",
			checks: []string{"floatcmp"}, reason: "exact sentinel compare", ok: true},
		{name: "multi check", text: "//lint:ignore floatcmp,determinism shared scratch path",
			checks: []string{"floatcmp", "determinism"}, reason: "shared scratch path", ok: true},
		{name: "all wildcard", text: "//lint:ignore all generated compatibility shim",
			checks: []string{"all"}, reason: "generated compatibility shim", ok: true},
		{name: "tab separated", text: "//lint:ignore\tgoroutines\treaped by the conn registry",
			checks: []string{"goroutines"}, reason: "reaped by the conn registry", ok: true},
		{name: "missing reason", text: "//lint:ignore floatcmp", ok: true, bad: true},
		{name: "missing everything", text: "//lint:ignore", ok: true, bad: true},
		{name: "empty check in list", text: "//lint:ignore floatcmp,, double comma", ok: true, bad: true},
		{name: "one word reason", text: "//lint:ignore floatcmp ok", ok: true, bad: true},
		{name: "two word reason", text: "//lint:ignore lockhold known issue", ok: true, bad: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checks, reason, ok, err := ParseDirective(tc.text)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if !tc.ok {
				if err != nil {
					t.Fatalf("non-directive returned error %v", err)
				}
				return
			}
			if tc.bad {
				if err == nil {
					t.Fatalf("malformed directive accepted: checks=%v reason=%q", checks, reason)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if strings.Join(checks, "|") != strings.Join(tc.checks, "|") {
				t.Errorf("checks = %v, want %v", checks, tc.checks)
			}
			if reason != tc.reason {
				t.Errorf("reason = %q, want %q", reason, tc.reason)
			}
		})
	}
}

// parseOne builds a single-file module around src for index tests.
func parseOne(t *testing.T, src string) *Module {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := &Package{Path: "scratch/x", Dir: ".",
		Source: map[string][]byte{"x.go": []byte(src)}}
	p.Files = append(p.Files, f)
	return &Module{Dir: ".", ModPath: "scratch", Fset: fset,
		Pkgs: []*Package{p}, byPath: map[string]*Package{"scratch/x": p}}
}

func TestSuppressionTargeting(t *testing.T) {
	src := `package x

func a() {
	//lint:ignore floatcmp standalone covers the next line
	_ = 1
	_ = 2 //lint:ignore goroutines trailing covers its own line
}
`
	mod := parseOne(t, src)
	idx := newSuppressionIndex(mod)
	if len(idx.malformed) != 0 {
		t.Fatalf("malformed: %v", idx.malformed)
	}
	if len(idx.directives) != 2 {
		t.Fatalf("got %d directives, want 2", len(idx.directives))
	}
	if _, ok := idx.match(token.Position{Filename: "x.go", Line: 5}, "floatcmp"); !ok {
		t.Error("standalone directive does not cover the following line")
	}
	if _, ok := idx.match(token.Position{Filename: "x.go", Line: 4}, "floatcmp"); ok {
		t.Error("standalone directive wrongly covers its own line")
	}
	if _, ok := idx.match(token.Position{Filename: "x.go", Line: 6}, "goroutines"); !ok {
		t.Error("trailing directive does not cover its own line")
	}
	if _, ok := idx.match(token.Position{Filename: "x.go", Line: 6}, "floatcmp"); ok {
		t.Error("directive matches a check it does not name")
	}
}

func TestSuppressionMalformedIsFinding(t *testing.T) {
	src := `package x

//lint:ignore floatcmp
func a() {}
`
	mod := parseOne(t, src)
	idx := newSuppressionIndex(mod)
	if len(idx.directives) != 0 {
		t.Fatalf("malformed directive still indexed: %v", idx.directives)
	}
	if len(idx.malformed) != 1 {
		t.Fatalf("got %d malformed findings, want 1", len(idx.malformed))
	}
	f := idx.malformed[0]
	if f.Check != "lint" || f.Pos.Line != 3 {
		t.Errorf("malformed finding misreported: %s", f)
	}
}

func FuzzParseDirective(f *testing.F) {
	f.Add("// plain comment")
	f.Add("//lint:ignore floatcmp exact sentinel compare")
	f.Add("//lint:ignore floatcmp,determinism shared scratch path")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore ,, ")
	f.Add("//lint:ignoreXYZ stuff")
	f.Add("//lint:ignore\t\tall\t\t")
	f.Fuzz(func(t *testing.T, text string) {
		checks, reason, ok, err := ParseDirective(text)
		if !ok {
			if err != nil {
				t.Fatalf("not-a-directive with error: %v", err)
			}
			if checks != nil || reason != "" {
				t.Fatal("non-directive returned content")
			}
			return
		}
		if err == nil {
			// A well-formed directive always has at least one non-empty
			// check and a substantive reason: the format's core guarantee.
			if len(checks) == 0 {
				t.Fatal("well-formed directive with no checks")
			}
			for _, c := range checks {
				if strings.TrimSpace(c) == "" || c != strings.TrimSpace(c) {
					t.Fatalf("unnormalized check %q", c)
				}
			}
			if strings.TrimSpace(reason) == "" || reason != strings.TrimSpace(reason) {
				t.Fatalf("unnormalized reason %q", reason)
			}
			if len(strings.Fields(reason)) < minReasonWords {
				t.Fatalf("accepted reason %q has fewer than %d words", reason, minReasonWords)
			}
		}
	})
}

// suppressionBudget is the number of //lint:ignore directives currently in
// the tree. The audit test pins it so suppressions cannot accumulate
// silently: adding one is a deliberate act that updates this constant (and
// should update DESIGN.md §10 if it establishes a new pattern).
const suppressionBudget = 17

func TestSuppressionBudget(t *testing.T) {
	mod, err := ParseModule(".")
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	directives, malformed := Suppressions(mod)
	for _, f := range malformed {
		t.Errorf("malformed directive: %s", f)
	}
	if len(directives) != suppressionBudget {
		var list []string
		for _, d := range directives {
			list = append(list, "  "+d.String())
		}
		t.Errorf("module has %d suppression directives, budget is %d; "+
			"if the new suppression is justified, update suppressionBudget:\n%s",
			len(directives), suppressionBudget, strings.Join(list, "\n"))
	}
	for _, d := range directives {
		if len(strings.Fields(d.Reason)) < minReasonWords {
			t.Errorf("%s: reason %q is too thin to justify a suppression", d.Pos, d.Reason)
		}
	}
}
