package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the module packages whose outputs must be
// bit-reproducible from a seed: everything feeding the Table II/III
// regression suite. internal/obs (timing instruments, admin uptime) and the
// cmd layer (profiles, bench recorder) legitimately read wall clocks and
// are deliberately absent.
var deterministicPkgs = map[string]bool{
	"repro/internal/arima":       true,
	"repro/internal/detect":      true,
	"repro/internal/attack":      true,
	"repro/internal/fault":       true,
	"repro/internal/stats":       true,
	"repro/internal/experiments": true,
	"repro/internal/timeseries":  true,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandPkgs are the process-global PRNG namespaces. Constructors
// (New, NewSource, NewPCG, ...) are fine — they produce seeded, threadable
// generators; package-scope draws are not.
var globalRandPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// newDeterminism builds the determinism analyzer: no wall clocks, no global
// math/rand, no output emitted in map-iteration order inside the packages
// behind the byte-identical evaluation tables.
func newDeterminism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "evaluation packages must be bit-reproducible: no wall clock, global rand, or map-ordered output",
		Applies: func(_ *Module, pkg *Package) bool {
			return deterministicPkgs[pkg.Path] || testdataScoped(pkg, "determinism")
		},
		Run: runDeterminism,
	}
}

func runDeterminism(mod *Module, pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pkg.Info, n, report)
			case *ast.RangeStmt:
				checkMapRangeOutput(pkg.Info, n, report)
			}
			return true
		})
	}
}

func checkNondeterministicCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn on a seeded RNG) are fine
	}
	switch path := fn.Pkg().Path(); {
	case path == "time" && wallClockFuncs[fn.Name()]:
		report(call.Pos(), fmt.Sprintf(
			"time.%s reads the wall clock; thread an injected obs.Clock instead", fn.Name()))
	case globalRandPkgs[path] && !globalRandAllowed[fn.Name()]:
		report(call.Pos(), fmt.Sprintf(
			"%s.%s draws from the process-global PRNG; thread a seeded *rand.Rand (stats.SplitRand) instead",
			path, fn.Name()))
	}
}

// checkMapRangeOutput flags range-over-map loops whose body emits output
// directly (fmt printing, Write/WriteString calls): the emission order is
// the map's iteration order, which Go randomizes per run. Loops that merely
// accumulate and sort afterwards are fine and not flagged.
func checkMapRangeOutput(info *types.Info, rng *ast.RangeStmt, report func(token.Pos, string)) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if emitsOutput(fn) {
			report(call.Pos(), fmt.Sprintf(
				"%s inside a map-range loop emits output in map-iteration order; collect and sort keys first",
				fn.Name()))
			return false
		}
		return true
	})
}

// emitsOutput recognizes ordered-output sinks: the fmt printing family and
// io-style Write/WriteString methods.
func emitsOutput(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
