package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// blockctx requires every exported entry point of the runtime packages
// (ami, serve, obs) that can block indefinitely — channel ops, network IO,
// sleeps, waits, directly or through callees — to give its caller a way to
// bound the wait. Bounded means any of:
//
//   - a context.Context parameter,
//   - a time.Duration parameter named like a timeout or deadline
//     (ami.DialBatch's explicit `timeout` argument),
//   - an exported sibling named <Name>Context on the same receiver — the
//     convenience form delegates to the bounded one
//     (ReliableClient.Send / SendContext),
//   - a timeout/deadline/drain knob of type time.Duration on the receiver
//     struct or one of its struct-typed config fields
//     (ShardedHeadEnd.cfg.DrainTimeout), set at construction,
//   - the method is named Close: the io.Closer contract is itself the
//     bounded-shutdown entry, and every Close here drains under a
//     configured deadline.
//
// File and stream IO are deliberately outside the trigger set — they are
// bounded by a device the process owns, and a context could not interrupt
// them anyway.
func newBlockctx() *Analyzer {
	return &Analyzer{
		Name: "blockctx",
		Doc:  "exported blocking entry points in ami/serve/obs must accept a context or deadline",
		Applies: func(mod *Module, pkg *Package) bool {
			switch strings.TrimPrefix(pkg.Path, mod.ModPath+"/") {
			case "internal/ami", "internal/serve", "internal/obs":
				return true
			}
			return testdataScoped(pkg, "blockctx")
		},
		Run: runBlockctx,
	}
}

func runBlockctx(mod *Module, pkg *Package, report func(pos token.Pos, msg string)) {
	cs := mod.Summaries()
	siblings := exportedDeclIndex(pkg)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || fd.Name.Name == "Close" {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recvName, recvType, exportedRecv := receiverInfo(fn)
			if fd.Recv != nil && !exportedRecv {
				continue // methods on unexported types are not entry points
			}
			sum := cs.Lookup(fn)
			if sum == nil || !sum.CanBlockIndefinitely() {
				continue
			}
			if hasContextParam(fn) || hasDeadlineParam(fn) ||
				siblings[recvName][fd.Name.Name+"Context"] ||
				hasDeadlineKnob(recvType, 2) {
				continue
			}
			k, _ := sum.firstKind(indefiniteBlocking)
			report(fd.Name.Pos(), fmt.Sprintf(
				"exported %s can block indefinitely (%s) but accepts no context.Context or deadline option; add a %sContext variant, a timeout parameter, or a deadline knob on the receiver",
				entryName(recvName, fd.Name.Name), sum.Explain(k), fd.Name.Name))
		}
	}
}

// entryName renders "(*Server).Flush" or "Dial" for diagnostics.
func entryName(recvName, fnName string) string {
	if recvName == "" {
		return fnName
	}
	return fmt.Sprintf("(%s).%s", recvName, fnName)
}

// exportedDeclIndex maps receiver type name ("" for package functions) to
// the set of exported function names declared on it — the sibling lookup.
func exportedDeclIndex(pkg *Package) map[string]map[string]bool {
	idx := make(map[string]map[string]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recvName, _, _ := receiverInfo(fn)
			if idx[recvName] == nil {
				idx[recvName] = make(map[string]bool)
			}
			idx[recvName][fd.Name.Name] = true
		}
	}
	return idx
}

// receiverInfo resolves a method's receiver: its named-type name, the
// pointer-stripped type, and whether that type is exported. Package
// functions return ("", nil, true).
func receiverInfo(fn *types.Func) (name string, t types.Type, exported bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, true
	}
	t = sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", t, false
	}
	return named.Obj().Name(), t, named.Obj().Exported()
}

// hasContextParam reports a context.Context anywhere in the signature.
func hasContextParam(fn *types.Func) bool {
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if types.TypeString(params.At(i).Type(), nil) == "context.Context" {
			return true
		}
	}
	return false
}

// hasDeadlineParam reports a time.Duration parameter whose name marks it
// as a bound on the call.
func hasDeadlineParam(fn *types.Func) bool {
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if types.TypeString(p.Type(), nil) == "time.Duration" && isDeadlineName(p.Name()) {
			return true
		}
	}
	return false
}

// hasDeadlineKnob reports a timeout-named time.Duration field on the
// receiver struct, looking through struct-typed config fields up to depth
// levels (HeadEndConfig sits one level down from ShardedHeadEnd).
func hasDeadlineKnob(t types.Type, depth int) bool {
	if t == nil || depth < 0 {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if types.TypeString(f.Type(), nil) == "time.Duration" && isDeadlineName(f.Name()) {
			return true
		}
		if hasDeadlineKnob(f.Type(), depth-1) {
			return true
		}
	}
	return false
}

// isDeadlineName matches identifiers that promise a bound: timeout,
// deadline, or drain in any casing.
func isDeadlineName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "timeout") || strings.Contains(l, "deadline") ||
		strings.Contains(l, "drain")
}
