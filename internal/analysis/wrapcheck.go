package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// amiPkgPath is the wire-boundary package whose errors must stay machine
// classifiable: callers branch on errors.Is(ami.ErrBusy) and
// errors.As(*ami.AuthError), never on message text.
const amiPkgPath = "repro/internal/ami"

// newWrapCheck builds the wrapcheck analyzer. In internal/ami and every
// package importing it, it flags the two ways a typed wire error decays
// into a string:
//
//   - fmt.Errorf formatting an error operand without %w — the chain breaks
//     and errors.Is/As stop seeing the sentinel;
//   - matching err.Error() text (strings.Contains & friends, or ==/!= on
//     the message) — the stringly matching PR 2 removed;
//   - discarding the error from (*os.File).Sync — the WAL's ack is a
//     durability promise, and a dropped fsync failure silently converts
//     that promise into a lie.
func newWrapCheck() *Analyzer {
	return &Analyzer{
		Name: "wrapcheck",
		Doc:  "errors crossing the ami wire boundary stay typed or %w-wrapped, never stringly matched",
		Applies: func(_ *Module, pkg *Package) bool {
			if pkg.Path == amiPkgPath || testdataScoped(pkg, "wrapcheck") {
				return true
			}
			if pkg.Types == nil {
				return false
			}
			for _, imp := range pkg.Types.Imports() {
				if imp.Path() == amiPkgPath {
					return true
				}
			}
			return false
		},
		Run: runWrapCheck,
	}
}

func runWrapCheck(mod *Module, pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pkg.Info, n, report)
				checkStringMatchCall(pkg.Info, n, report)
			case *ast.BinaryExpr:
				checkErrorTextCompare(pkg.Info, n, report)
			case *ast.ExprStmt:
				checkDiscardedSync(pkg.Info, n.X, "result of", report)
			case *ast.DeferStmt:
				checkDiscardedSync(pkg.Info, n.Call, "deferred", report)
			case *ast.GoStmt:
				checkDiscardedSync(pkg.Info, n.Call, "goroutine", report)
			case *ast.AssignStmt:
				checkBlankSync(pkg.Info, n, report)
			}
			return true
		})
	}
}

// checkDiscardedSync flags a (*os.File).Sync call whose error result never
// reaches a variable: a bare statement, defer, or go statement.
func checkDiscardedSync(info *types.Info, expr ast.Expr, how string, report func(token.Pos, string)) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || !isMethodOn(calleeOf(info, call), "os", "File", "Sync") {
		return
	}
	report(call.Pos(), fmt.Sprintf(
		"%s (*os.File).Sync ignored; a lost fsync error breaks the WAL durability promise — handle it or record it on the instruments", how))
}

// checkBlankSync flags `_ = f.Sync()`: an explicit discard is still a
// discard when the call is the durability barrier behind an ack.
func checkBlankSync(info *types.Info, as *ast.AssignStmt, report func(token.Pos, string)) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isMethodOn(calleeOf(info, call), "os", "File", "Sync") {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	report(call.Pos(), "error from (*os.File).Sync assigned to _; a lost fsync error breaks the WAL durability promise — handle it or record it on the instruments")
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument without enough %w verbs to keep every error in the chain.
func checkErrorfWrap(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := calleeOf(info, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	errArgs := 0
	for _, arg := range call.Args[1:] {
		if isErrorType(info.TypeOf(arg)) {
			errArgs++
		}
	}
	if errArgs == 0 {
		return
	}
	wraps := strings.Count(strings.ReplaceAll(lit.Value, "%%", ""), "%w")
	if wraps < errArgs {
		report(call.Pos(), fmt.Sprintf(
			"fmt.Errorf formats %d error value(s) with only %d %%w verb(s); non-%%w verbs flatten the chain and break errors.Is/As",
			errArgs, wraps))
	}
}

// stringMatchFuncs are the strings-package predicates that turn an error
// message into a control-flow decision.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

// checkStringMatchCall flags strings.Contains(err.Error(), ...) shapes.
func checkStringMatchCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorMessageCall(info, arg) {
			report(call.Pos(), fmt.Sprintf(
				"strings.%s on err.Error() matches message text; use errors.Is/errors.As against the typed ami errors",
				fn.Name()))
			return
		}
	}
}

// checkErrorTextCompare flags err.Error() == "..." comparisons.
func checkErrorTextCompare(info *types.Info, be *ast.BinaryExpr, report func(token.Pos, string)) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isErrorMessageCall(info, be.X) || isErrorMessageCall(info, be.Y) {
		report(be.OpPos, fmt.Sprintf(
			"%s on err.Error() compares message text; use errors.Is/errors.As against the typed ami errors", be.Op))
	}
}

// isErrorMessageCall reports whether expr is a call of the Error() method
// on an error-typed receiver.
func isErrorMessageCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(info.TypeOf(sel.X))
}
