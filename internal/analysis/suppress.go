package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive is one parsed //lint:ignore suppression.
type Directive struct {
	// Pos is where the directive comment starts.
	Pos token.Position
	// Checks are the analyzer names the directive silences.
	Checks []string
	// Reason is the mandatory justification.
	Reason string
	// TargetLine is the source line the directive covers: its own line for
	// a trailing comment, the next line for a standalone one.
	TargetLine int
}

func (d Directive) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, strings.Join(d.Checks, ","), d.Reason)
}

const directivePrefix = "//lint:ignore"

// ParseDirective parses one comment line. It returns ok=false when the
// comment is not a lint directive at all, and a non-nil error when it is
// one but malformed: the format is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// where both the check list and the reason are mandatory — a suppression
// without a recorded reason is exactly the folklore this suite replaces.
func ParseDirective(text string) (checks []string, reason string, ok bool, err error) {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil, "", false, nil
	}
	rest := text[len(directivePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //lint:ignoreXYZ — some other tool's namespace.
		return nil, "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true, fmt.Errorf("missing check name and reason")
	}
	for _, c := range strings.Split(fields[0], ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return nil, "", true, fmt.Errorf("empty check name in %q", fields[0])
		}
		checks = append(checks, c)
	}
	reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		return nil, "", true, fmt.Errorf("missing reason after check %q", fields[0])
	}
	// A real justification names the invariant and why it holds here; one
	// or two words ("ok", "known issue") is a label, not a reason.
	if len(fields)-1 < minReasonWords {
		return nil, "", true, fmt.Errorf(
			"reason %q has %d words, need >= %d: explain why the invariant holds anyway",
			reason, len(fields)-1, minReasonWords)
	}
	return checks, reason, true, nil
}

// minReasonWords is the floor on a suppression reason's word count.
const minReasonWords = 3

// suppressionIndex resolves findings against the module's directives.
type suppressionIndex struct {
	// byTarget maps file → target line → directives covering that line.
	byTarget   map[string]map[int][]*Directive
	directives []Directive
	malformed  []Finding
}

func newSuppressionIndex(mod *Module) *suppressionIndex {
	idx := &suppressionIndex{byTarget: make(map[string]map[int][]*Directive)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			name := mod.Fset.Position(f.Package).Filename
			idx.addFile(mod.Fset, f, pkg.Source[name])
		}
	}
	sort.Slice(idx.directives, func(i, j int) bool {
		a, b := idx.directives[i].Pos, idx.directives[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return idx
}

// addFile scans one file's comments for directives. src is the raw file
// content, used to decide whether a directive trails code on its own line
// (covers that line) or stands alone (covers the next line).
func (idx *suppressionIndex) addFile(fset *token.FileSet, f *ast.File, src []byte) {
	var lines [][]byte
	if src != nil {
		lines = bytes.Split(src, []byte("\n"))
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			checks, reason, ok, err := ParseDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if err != nil {
				idx.malformed = append(idx.malformed, Finding{
					Check: "lint", Pos: pos,
					Message: fmt.Sprintf("malformed %s directive: %v", directivePrefix, err),
				})
				continue
			}
			target := pos.Line + 1
			if pos.Line-1 < len(lines) {
				before := lines[pos.Line-1]
				if pos.Column-1 <= len(before) && len(bytes.TrimSpace(before[:pos.Column-1])) > 0 {
					target = pos.Line // trailing comment: covers its own line
				}
			}
			d := Directive{Pos: pos, Checks: checks, Reason: reason, TargetLine: target}
			idx.directives = append(idx.directives, d)
			file := idx.byTarget[pos.Filename]
			if file == nil {
				file = make(map[int][]*Directive)
				idx.byTarget[pos.Filename] = file
			}
			stored := d
			file[target] = append(file[target], &stored)
		}
	}
}

// match reports whether a finding at pos for the named check is covered.
func (idx *suppressionIndex) match(pos token.Position, check string) (reason string, ok bool) {
	for _, d := range idx.byTarget[pos.Filename][pos.Line] {
		for _, c := range d.Checks {
			if c == check || c == "all" {
				return d.Reason, true
			}
		}
	}
	return "", false
}

// Suppressions lists every //lint:ignore directive in the loaded module,
// plus malformed ones as findings — the -suppressions audit mode. It only
// needs parsed files, so callers may use a Module from LoadModule or the
// lighter parse produced by ParseModule.
func Suppressions(mod *Module) ([]Directive, []Finding) {
	idx := newSuppressionIndex(mod)
	return idx.directives, idx.malformed
}
