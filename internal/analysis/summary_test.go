package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// summariesFor loads a one-package scratch module and returns its summary
// index plus a name → summary view of that package's declarations.
func summariesFor(t *testing.T, src string) (*callSummaries, map[string]*FuncSummary) {
	t.Helper()
	root := writeModule(t, map[string]string{
		"go.mod":   "module scratch\n\ngo 1.24\n",
		"p/src.go": src,
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if terrs := TypeErrorFindings(mod); len(terrs) > 0 {
		t.Fatalf("scratch source has type errors: %s", terrs[0])
	}
	cs := mod.Summaries()
	byName := make(map[string]*FuncSummary)
	for _, fs := range cs.ordered {
		byName[fs.Fn.Name()] = fs
	}
	return cs, byName
}

func TestSummaryPropagation(t *testing.T) {
	_, fns := summariesFor(t, `package p

func leaf(ch chan int) { ch <- 1 }

func mid(ch chan int) { leaf(ch) }

func top(ch chan int) { mid(ch) }

func pure(a, b int) int { return a + b }
`)
	for _, name := range []string{"leaf", "mid", "top"} {
		fs := fns[name]
		if fs == nil {
			t.Fatalf("no summary for %s", name)
		}
		if !fs.Can(maskOf(opChan)) {
			t.Errorf("%s does not reach the channel send transitively", name)
		}
		if !fs.CanBlockIndefinitely() {
			t.Errorf("%s not marked indefinitely blocking", name)
		}
	}
	if fns["pure"].mask != 0 {
		t.Errorf("pure function has ops %b", fns["pure"].mask)
	}

	// The witness chain explains the whole path, innermost cause last.
	got := fns["top"].Explain(opChan)
	for _, part := range []string{"calls p.mid", "calls p.leaf", "does a channel send"} {
		if !strings.Contains(got, part) {
			t.Errorf("Explain(%q) = %q, missing %q", "top", got, part)
		}
	}
}

func TestSummaryGoroutinesExcluded(t *testing.T) {
	_, fns := summariesFor(t, `package p

// Spawn never blocks: the send happens on the new goroutine.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// Inline blocks: the literal is invoked on the caller's goroutine.
func Inline(ch chan int) {
	func() { ch <- 1 }()
}
`)
	if fns["Spawn"].Can(maskOf(opChan)) {
		t.Error("goroutine body leaked into the spawner's summary")
	}
	if !fns["Inline"].Can(maskOf(opChan)) {
		t.Error("invoked-at-definition literal not folded into the caller")
	}
}

func TestSummaryNonBlockingSelect(t *testing.T) {
	_, fns := summariesFor(t, `package p

// TryPut never parks: the select has a default.
func TryPut(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// Put parks until a receiver arrives.
func Put(ch chan int, v int) {
	select {
	case ch <- v:
	}
}
`)
	if fns["TryPut"].Can(maskOf(opChan)) {
		t.Error("select-with-default counted as a blocking channel op")
	}
	if !fns["Put"].Can(maskOf(opChan)) {
		t.Error("defaultless select not counted as a channel op")
	}
}

func TestSummaryCallbackAndStdlib(t *testing.T) {
	_, fns := summariesFor(t, `package p

import (
	"os"
	"time"
)

func Hook(f func() error) error { return f() }

func Nap() { time.Sleep(time.Millisecond) }

func Persist(f *os.File, b []byte) error {
	_, err := f.Write(b)
	return err
}

// Convert only converts and calls builtins: no ops.
func Convert(v int) string { return string(rune(v)) }
`)
	if !fns["Hook"].Can(maskOf(opCallback)) {
		t.Error("func-typed parameter invocation not classified as a callback")
	}
	if fns["Hook"].CanBlockIndefinitely() {
		t.Error("a callback alone must not count as indefinite blocking")
	}
	if !fns["Nap"].Can(maskOf(opSleep)) || !fns["Nap"].CanBlockIndefinitely() {
		t.Error("time.Sleep not classified as an indefinitely blocking sleep")
	}
	if !fns["Persist"].Can(maskOf(opFileIO)) {
		t.Error("os.File.Write not classified as file IO")
	}
	if fns["Persist"].CanBlockIndefinitely() {
		t.Error("file IO wrongly counted as indefinite blocking")
	}
	if fns["Convert"].mask != 0 {
		t.Errorf("conversions/builtins produced ops %b", fns["Convert"].mask)
	}

	// firstKind picks the lowest-numbered kind within the filter.
	if k, ok := fns["Persist"].firstKind(lockholdBanned); !ok || k != opFileIO {
		t.Errorf("firstKind = %v,%v, want opFileIO,true", k, ok)
	}
	if _, ok := fns["Persist"].firstKind(indefiniteBlocking); ok {
		t.Error("file IO matched the indefinite-blocking filter")
	}
}

func TestSummaryLookupMissesForeign(t *testing.T) {
	cs, fns := summariesFor(t, `package p

import "strings"

func Use(s string) string { return strings.ToUpper(s) }
`)
	if fns["Use"].mask != 0 {
		t.Errorf("strings.ToUpper produced ops %b", fns["Use"].mask)
	}
	// Stdlib functions have no summaries: Lookup must return nil, not a
	// zero-value entry.
	for _, pkg := range cs.mod.Pkgs {
		for _, obj := range pkg.Info.Uses {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "strings" {
				if cs.Lookup(fn) != nil {
					t.Fatalf("Lookup(%s) returned a summary for a foreign function", fn.Name())
				}
			}
		}
	}
}

func TestOpMaskConstants(t *testing.T) {
	// lockhold bans everything except listener binds.
	for k := opKind(0); k < numOpKinds; k++ {
		want := k != opNetBind
		if lockholdBanned.has(k) != want {
			t.Errorf("lockholdBanned.has(%v) = %v, want %v", k, !want, want)
		}
	}
	// blockctx triggers only on waits with no bound the function controls.
	wantIndef := map[opKind]bool{opChan: true, opNetIO: true, opSleep: true, opWait: true}
	for k := opKind(0); k < numOpKinds; k++ {
		if indefiniteBlocking.has(k) != wantIndef[k] {
			t.Errorf("indefiniteBlocking.has(%v) = %v, want %v", k, !wantIndef[k], wantIndef[k])
		}
	}
}
