package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// obsPkgPath is the module's metrics package; registrations are calls to
// (*obs.Registry).Counter/Gauge/Histogram.
const obsPkgPath = "repro/internal/obs"

// metricNameRE is the module's metric namespace: fdeta_-prefixed
// snake_case with the conventional unit/kind suffixes.
var metricNameRE = regexp.MustCompile(`^fdeta_[a-z0-9_]+(_total|_seconds|_bytes|_ratio)?$`)

// registration records one instrument-name use for the cross-module
// uniqueness verdict.
type registration struct {
	pkg      string // registering package path
	constPos token.Pos
	callPos  token.Pos
}

// newMetricNames builds the metricnames analyzer: every obs instrument
// name is a package-level constant matching the fdeta_* namespace, and no
// two packages (or two constants) claim the same name.
func newMetricNames() *Analyzer {
	// byName accumulates registrations across packages for Finish.
	byName := make(map[string][]registration)

	a := &Analyzer{
		Name: "metricnames",
		Doc:  "obs instrument names are fdeta_* package-level constants, unique across the module",
	}
	a.Applies = func(_ *Module, pkg *Package) bool {
		// The obs package itself registers nothing in production code and
		// its tests use scratch names by design.
		return pkg.Path != obsPkgPath
	}
	a.Run = func(mod *Module, pkg *Package, report func(token.Pos, string)) {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if !isRegistryRegistration(fn) || len(call.Args) == 0 {
					return true
				}
				nameArg := ast.Unparen(call.Args[0])
				cnst := packageLevelConst(pkg.Info, nameArg)
				if cnst == nil {
					report(nameArg.Pos(), fmt.Sprintf(
						"obs.%s name must be a package-level constant, not %s",
						fn.Name(), describeExpr(pkg.Info, nameArg)))
					return true
				}
				val := constant.StringVal(cnst.Val())
				if !metricNameRE.MatchString(val) {
					report(nameArg.Pos(), fmt.Sprintf(
						"metric name %q does not match %s", val, metricNameRE))
				}
				byName[val] = append(byName[val], registration{
					pkg: pkg.Path, constPos: cnst.Pos(), callPos: nameArg.Pos(),
				})
				return true
			})
		}
	}
	a.Finish = func(mod *Module, report func(token.Pos, string)) {
		names := make([]string, 0, len(byName))
		for name := range byName {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			regs := byName[name]
			owners := make(map[string]bool)
			consts := make(map[token.Pos]bool)
			for _, r := range regs {
				owners[r.pkg] = true
				consts[r.constPos] = true
			}
			// One constant, one owning package: re-registration with
			// different labels is the same metric family and is fine.
			if len(owners) > 1 {
				report(regs[0].callPos, fmt.Sprintf(
					"metric name %q is registered by %d packages (%s); names are owned by exactly one package",
					name, len(owners), sortedKeys(owners)))
			} else if len(consts) > 1 {
				report(regs[0].callPos, fmt.Sprintf(
					"metric name %q is declared by %d distinct constants; declare it once", name, len(consts)))
			}
		}
	}
	return a
}

// isRegistryRegistration reports whether fn is one of the obs.Registry
// instrument constructors.
func isRegistryRegistration(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	return isMethodOn(fn, obsPkgPath, "Registry", fn.Name())
}

// packageLevelConst resolves expr to a package-level string constant (an
// identifier or pkg.Name selector); nil if it is anything else.
func packageLevelConst(info *types.Info, expr ast.Expr) *types.Const {
	var obj types.Object
	switch e := expr.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	cnst, ok := obj.(*types.Const)
	if !ok || cnst.Pkg() == nil {
		return nil
	}
	if cnst.Parent() != cnst.Pkg().Scope() {
		return nil // function-local const: invisible to reviewers scanning the namespace
	}
	if cnst.Val().Kind() != constant.String {
		return nil
	}
	return cnst
}

// describeExpr names the offending expression kind for the diagnostic.
func describeExpr(info *types.Info, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return fmt.Sprintf("the string literal %s", e.Value)
	case *ast.Ident:
		if _, ok := info.Uses[e].(*types.Const); ok {
			return fmt.Sprintf("the function-local constant %q", e.Name)
		}
		return fmt.Sprintf("the variable %q", e.Name)
	case *ast.BinaryExpr:
		return "a computed string"
	default:
		return "a non-constant expression"
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
