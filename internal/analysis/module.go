package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked module package. Test files
// (_test.go) are excluded: the analyzers enforce invariants on production
// code, and tests legitimately use literals, wall clocks, and string
// matching on errors.
type Package struct {
	// Path is the import path ("repro/internal/detect").
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Source holds each file's raw bytes, keyed by absolute file name (the
	// suppression scanner needs line text to tell trailing directives from
	// standalone ones).
	Source map[string][]byte
	// Types and Info are the go/types results. On type-check failure Types
	// is still non-nil (partial) and TypeErrors records what went wrong.
	Types *types.Package
	Info  *types.Info
	// TypeErrors are the type-checker's complaints, empty on a healthy
	// package. Analyzers are not run on packages with type errors; the
	// driver reports the errors themselves instead.
	TypeErrors []error
}

// Module is a fully loaded Go module: every non-testdata package parsed and
// type-checked against one shared FileSet.
type Module struct {
	// Dir is the absolute module root (the directory holding go.mod).
	Dir string
	// ModPath is the module path from go.mod ("repro").
	ModPath string
	Fset    *token.FileSet
	// Pkgs are the loaded packages sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package
	// summaries is the lazily built call-summary index (Summaries).
	summaries *callSummaries
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// errNoGoFiles marks a directory with no buildable (non-test) Go files;
// the parse-only module walk skips such directories silently.
var errNoGoFiles = errors.New("no buildable Go files")

// loader type-checks module packages on demand, resolving module-internal
// imports recursively and delegating everything else to the stdlib source
// importer (go/importer "source"), which needs nothing but GOROOT sources —
// keeping the whole driver dependency-free.
type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(modDir, modPath string) *loader {
	// The source importer type-checks stdlib packages from GOROOT source
	// through go/build's default context. Force cgo off so packages like
	// net resolve to their pure-Go variants regardless of whether a C
	// toolchain is installed; type information is identical for our
	// purposes.
	build.Default.CgoEnabled = false
	return &loader{
		fset:    token.NewFileSet(),
		modDir:  modDir,
		modPath: modPath,
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer for the checker's import resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.modDir
	}
	return filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	pkg, err := l.parseDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.typeCheck(pkg)
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory.
func (l *loader) parseDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading package dir: %w", err)
	}
	pkg := &Package{Path: path, Dir: dir, Source: make(map[string][]byte)}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Honor build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes): a file excluded from the build is excluded from the
		// analysis — type-checking it against the included files would only
		// manufacture false redeclaration errors.
		if match, merr := build.Default.MatchFile(dir, name); merr == nil && !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%w in %s", errNoGoFiles, dir)
	}
	pkgName := ""
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", full, err)
		}
		if isGeneratedFile(src) {
			continue // machine-written; its style is the generator's problem
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", full, err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: package %s conflicts with %s in the same directory",
				full, f.Name.Name, pkgName)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Source[full] = src
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("%w in %s", errNoGoFiles, dir)
	}
	return pkg, nil
}

// isGeneratedFile implements the Go convention for generated code: a line
// `// Code generated <tool> DO NOT EDIT.` before the package clause.
func isGeneratedFile(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.HasPrefix(line, "package ") {
			return false
		}
		if strings.HasPrefix(line, "// Code generated ") && strings.HasSuffix(line, " DO NOT EDIT.") {
			return true
		}
	}
	return false
}

// typeCheck runs go/types over a parsed package, collecting (not aborting
// on) type errors so the driver can report them with positions.
func (l *loader) typeCheck(pkg *Package) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("go.mod declares no module path")
}

// skipDir reports directories the module walk never descends into:
// testdata trees (analyzer fixtures contain seeded violations), VCS and
// tool metadata, and the results archive.
func skipDir(name string) bool {
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return true
	}
	switch name {
	case "testdata", "results", "vendor", "node_modules":
		return true
	}
	return false
}

// LoadModule parses and type-checks every package of the module rooted at
// (or above) dir. Packages that fail to parse abort the load — a module
// that does not parse cannot be meaningfully analyzed — while type errors
// are collected per package and reported by the driver.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(gomod)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)

	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") &&
				!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
				pkgDirs = append(pkgDirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	mod := &Module{Dir: root, ModPath: modPath, Fset: l.fset, byPath: make(map[string]*Package)}
	for _, dir := range pkgDirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			if errors.Is(err, errNoGoFiles) {
				continue // every file excluded by build tags or generated
			}
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
		mod.byPath[path] = pkg
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// ParseModule parses (without type-checking) every package of the module
// rooted at or above dir. It is the fast path for the -suppressions audit,
// which only needs comments.
func ParseModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(gomod)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	mod := &Module{Dir: root, ModPath: modPath, Fset: l.fset, byPath: make(map[string]*Package)}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.parseDir(ipath, path)
		if err != nil {
			if errors.Is(err, errNoGoFiles) {
				return nil
			}
			return err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
		mod.byPath[ipath] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// LoadPackage loads a single directory as a package of the module that
// contains it, resolving module-internal imports from source. The golden
// tests use it to type-check analyzer fixtures under testdata/ (which the
// module walk deliberately skips).
func LoadPackage(dir string) (*Module, *Package, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	modPath, err := modulePath(gomod)
	if err != nil {
		return nil, nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return nil, nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	l := newLoader(root, modPath)
	pkg, err := l.load(path)
	if err != nil {
		return nil, nil, err
	}
	mod := &Module{Dir: root, ModPath: modPath, Fset: l.fset,
		Pkgs: []*Package{pkg}, byPath: map[string]*Package{path: pkg}}
	return mod, pkg, nil
}
