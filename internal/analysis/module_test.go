package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadModuleParseError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":  "module scratch\n\ngo 1.24\n",
		"main.go": "package main\n\nfunc main() {\n", // unclosed brace
	})
	if _, err := LoadModule(root); err == nil {
		t.Fatal("LoadModule succeeded on a module that does not parse")
	}
}

func TestLoadModuleTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		"lib/lib.go": "package lib\n\n" +
			"func Broken() int { return \"not an int\" }\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v (type errors must load, not abort)", err)
	}
	pkg := mod.Lookup("scratch/lib")
	if pkg == nil {
		t.Fatal("scratch/lib not loaded")
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("no TypeErrors recorded for a package that does not type-check")
	}
	findings := TypeErrorFindings(mod)
	if len(findings) == 0 {
		t.Fatal("TypeErrorFindings returned nothing")
	}
	f := findings[0]
	if f.Check != "typecheck" {
		t.Errorf("check = %q, want typecheck", f.Check)
	}
	if f.Pos.Line == 0 || !strings.HasSuffix(f.Pos.Filename, "lib.go") {
		t.Errorf("finding has no usable position: %s", f)
	}
	// Analyzers must skip the broken package rather than crash on partial
	// type info.
	res := Run(mod, Analyzers())
	for _, sum := range res.Summaries {
		if sum.Packages != 0 {
			t.Errorf("%s analyzed %d packages; type-error packages must be skipped", sum.Check, sum.Packages)
		}
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":   "module scratch\n\ngo 1.24\n",
		"a/a.go":   "package a\n\nimport \"scratch/b\"\n\nvar X = b.Y\n",
		"b/b.go":   "package b\n\nimport \"scratch/a\"\n\nvar Y = a.X\n",
		"b/doc.go": "// Package b participates in a deliberate cycle.\npackage b\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		// The loader may surface the cycle as a hard error; that is an
		// acceptable outcome as long as the message names it.
		if !strings.Contains(err.Error(), "import cycle") {
			t.Fatalf("LoadModule failed without naming the cycle: %v", err)
		}
		return
	}
	// Or it may load with type errors recording the cycle per package.
	for _, path := range []string{"scratch/a", "scratch/b"} {
		pkg := mod.Lookup(path)
		if pkg != nil && len(pkg.TypeErrors) > 0 {
			return
		}
	}
	t.Fatal("import cycle neither aborted the load nor produced type errors")
}

func TestFindModuleRootMissing(t *testing.T) {
	// /proc has no go.mod anywhere above it on this image; fall back to
	// an empty temp tree to stay hermetic.
	dir := t.TempDir()
	if _, err := os.Stat("/go.mod"); err == nil {
		t.Skip("filesystem root unexpectedly has a go.mod")
	}
	if _, err := FindModuleRoot(dir); err == nil {
		t.Fatal("FindModuleRoot found a go.mod above an empty temp dir")
	}
}

func TestLoadModuleMixedPackageNames(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		"p/a.go": "package one\n",
		"p/b.go": "package two\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("mixed package names not rejected: err=%v", err)
	}
}

// TestModuleClean is the tree gate: the real module must lint clean — zero
// unsuppressed findings, zero malformed directives, zero type errors. A
// regression here means `make lint` would fail too; fix the finding or add
// a reasoned //lint:ignore.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if terrs := TypeErrorFindings(mod); len(terrs) > 0 {
		t.Fatalf("module has type errors: %s", terrs[0])
	}
	res := Run(mod, Analyzers())
	for _, f := range res.BadDirectives {
		t.Errorf("malformed directive: %s", f)
	}
	for _, f := range res.Findings {
		if !f.Suppressed {
			t.Errorf("unsuppressed finding: %s", f)
		}
	}
	// Every suppression must carry a reason (ParseDirective enforces this
	// at parse time; assert the invariant end to end anyway).
	for _, d := range res.Directives {
		if strings.TrimSpace(d.Reason) == "" {
			t.Errorf("directive without reason: %s", d)
		}
	}
}

func TestLoadModuleBuildTags(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module scratch\n\ngo 1.24\n",
		"lib/lib.go": "package lib\n\n// V is the buildable half of the package.\nvar V = 1\n",
		// Excluded by its constraint; redeclares V with a different type, so
		// type-checking it alongside lib.go would fail.
		"lib/ignored.go": "//go:build ignore\n\npackage lib\n\nvar V = \"tool entry point\"\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v (constrained-out files must be skipped)", err)
	}
	pkg := mod.Lookup("scratch/lib")
	if pkg == nil {
		t.Fatal("scratch/lib not loaded")
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("constrained-out file leaked into the type-check: %v", pkg.TypeErrors[0])
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (ignored.go excluded)", len(pkg.Files))
	}
}

func TestLoadModuleGeneratedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module scratch\n\ngo 1.24\n",
		"lib/lib.go": "package lib\n\nvar V = 1\n",
		// Carries a seeded violation (an unbuffered make) that must never be
		// reported: generated code answers to its generator, not the suite.
		"lib/gen.go": "// Code generated by scratchgen. DO NOT EDIT.\n\npackage lib\n\n" +
			"// Q is a generated queue.\nvar Q = make(chan int)\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	pkg := mod.Lookup("scratch/lib")
	if pkg == nil {
		t.Fatal("scratch/lib not loaded")
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (gen.go skipped as generated)", len(pkg.Files))
	}
	res := Run(mod, Analyzers())
	for _, f := range res.Findings {
		t.Errorf("finding inside a generated file: %s", f)
	}
}

func TestLoadModuleAllFilesExcluded(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module scratch\n\ngo 1.24\n",
		"lib/lib.go": "package lib\n\nvar V = 1\n",
		// A directory whose only .go file is constrained out must vanish
		// from the load, not abort it.
		"tools/gen.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v (fully excluded directories must be skipped)", err)
	}
	if mod.Lookup("scratch/tools") != nil {
		t.Fatal("fully excluded directory still loaded as a package")
	}
	if mod.Lookup("scratch/lib") == nil {
		t.Fatal("scratch/lib not loaded")
	}
}

func TestIsGeneratedFile(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"marker before package", "// Code generated by stringer. DO NOT EDIT.\n\npackage x\n", true},
		{"no marker", "// Package x is handwritten.\npackage x\n", false},
		{"marker after package clause", "package x\n\n// Code generated by stringer. DO NOT EDIT.\n", false},
		{"marker without suffix", "// Code generated by hand, feel free to edit\npackage x\n", false},
		{"crlf line endings", "// Code generated by stringer. DO NOT EDIT.\r\npackage x\r\n", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := isGeneratedFile([]byte(tc.src)); got != tc.want {
				t.Errorf("isGeneratedFile = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSummariesSkipTypeErrorPackages pins the engine's safety on partial
// type info: a module with a broken package still yields a summary index,
// holding entries only for the healthy packages.
func TestSummariesSkipTypeErrorPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module scratch\n\ngo 1.24\n",
		"ok/ok.go":   "package ok\n\n// Send forwards v.\nfunc Send(ch chan int, v int) { ch <- v }\n",
		"bad/bad.go": "package bad\n\nfunc Broken() int { return \"not an int\" }\n",
	})
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cs := mod.Summaries()
	var okSummaries, badSummaries int
	for _, fs := range cs.ordered {
		switch fs.Pkg.Path {
		case "scratch/ok":
			okSummaries++
			if !fs.Can(maskOf(opChan)) {
				t.Errorf("%s not marked as a channel op", fs.Fn.Name())
			}
		case "scratch/bad":
			badSummaries++
		}
	}
	if okSummaries != 1 {
		t.Errorf("healthy package yielded %d summaries, want 1", okSummaries)
	}
	if badSummaries != 0 {
		t.Errorf("type-error package yielded %d summaries, want 0", badSummaries)
	}
}
