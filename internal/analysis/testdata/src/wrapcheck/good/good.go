// Package good is the fixed form of the wrapcheck fixture: %w wrapping and
// sentinel classification.
package good

import (
	"errors"
	"fmt"
)

// ErrBusy is the typed sentinel callers branch on.
var ErrBusy = errors.New("busy")

// Wrap keeps the chain intact with %w.
func Wrap(err error) error {
	return fmt.Errorf("collect: %w", err)
}

// IsBusy classifies by sentinel, not message text.
func IsBusy(err error) bool {
	return errors.Is(err, ErrBusy)
}
