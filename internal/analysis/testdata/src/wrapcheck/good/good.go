// Package good is the fixed form of the wrapcheck fixture: %w wrapping,
// sentinel classification, and handled fsync errors.
package good

import (
	"errors"
	"fmt"
	"os"
)

// ErrBusy is the typed sentinel callers branch on.
var ErrBusy = errors.New("busy")

// Wrap keeps the chain intact with %w.
func Wrap(err error) error {
	return fmt.Errorf("collect: %w", err)
}

// IsBusy classifies by sentinel, not message text.
func IsBusy(err error) bool {
	return errors.Is(err, ErrBusy)
}

// Durable propagates the fsync error so the caller can refuse the ack.
func Durable(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	return nil
}

// Checked handles the error even when only logged-and-counted.
func Checked(f *os.File) (failures int) {
	if err := f.Sync(); err != nil {
		failures++
	}
	return failures
}
