// Package bad seeds wire-boundary error violations for the golden test:
// chain-flattening formatting and stringly error matching.
package bad

import (
	"fmt"
	"strings"
)

// Wrap flattens the error chain with %v.
func Wrap(err error) error {
	return fmt.Errorf("collect: %v", err) // want "flatten the chain"
}

// IsBusy string-matches the message.
func IsBusy(err error) bool {
	return strings.Contains(err.Error(), "busy") // want "matches message text"
}

// IsExact compares the message.
func IsExact(err error) bool {
	return err.Error() == "rejected" // want "compares message text"
}
