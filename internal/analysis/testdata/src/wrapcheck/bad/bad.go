// Package bad seeds wire-boundary error violations for the golden test:
// chain-flattening formatting, stringly error matching, and discarded
// fsync errors.
package bad

import (
	"fmt"
	"os"
	"strings"
)

// Wrap flattens the error chain with %v.
func Wrap(err error) error {
	return fmt.Errorf("collect: %v", err) // want "flatten the chain"
}

// IsBusy string-matches the message.
func IsBusy(err error) bool {
	return strings.Contains(err.Error(), "busy") // want "matches message text"
}

// IsExact compares the message.
func IsExact(err error) bool {
	return err.Error() == "rejected" // want "compares message text"
}

// DropSync discards the fsync error three ways: bare statement, blank
// assignment, and defer.
func DropSync(f *os.File) {
	f.Sync()       // want "Sync ignored"
	_ = f.Sync()   // want "assigned to _"
	defer f.Sync() // want "Sync ignored"
	go func() { _ = f.Close() }()
}

// DropSyncInGoroutine loses the error on a concurrent flush path.
func DropSyncInGoroutine(f *os.File) {
	go f.Sync() // want "Sync ignored"
}
