// Package bad seeds blocking-under-lock violations for the golden test,
// reproducing the callback-under-lock shape the ami head-end's sink
// contract exists to prevent: a shard store invoking its accepted-reading
// sink while still holding the shard mutex.
package bad

import (
	"os"
	"sync"
)

// Reading mirrors one accepted meter reading.
type Reading struct {
	Slot int64
	KW   float64
}

// Store is a shard store with a caller-supplied accepted-reading sink —
// the exact shape ami.WithSink documents must run outside the lock.
type Store struct {
	mu       sync.RWMutex
	readings map[string][]Reading
	sink     func(meterID string, rs []Reading)
	jobs     chan Reading
	log      *os.File
	alerts   chan string
}

// ApplyBad invokes the sink while holding the store lock: a slow sink
// stalls every session parked on this shard.
func (s *Store) ApplyBad(meterID string, rs []Reading) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readings[meterID] = append(s.readings[meterID], rs...)
	s.sink(meterID, rs) // want "while s.mu is held"
}

// EnqueueBad sends on the job queue under a read lock.
func (s *Store) EnqueueBad(r Reading) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.jobs <- r // want "while s.mu is held"
}

// LogBad writes the log file inside the critical section.
func (s *Store) LogBad(line string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.log.Write([]byte(line)) // want "while s.mu is held"
	return err
}

// AlertBad reaches a channel send transitively, through emit — the
// interprocedural case a single-function checker cannot see.
func (s *Store) AlertBad(meterID string) {
	s.mu.Lock()
	s.emit(meterID) // want "while s.mu is held"
	s.mu.Unlock()
}

// emit is clean on its own; the bug is calling it under the lock.
func (s *Store) emit(meterID string) {
	s.alerts <- meterID
}

// WaitBad receives under a read lock.
func (s *Store) WaitBad(done chan struct{}) {
	s.mu.RLock()
	<-done // want "while s.mu is held"
	s.mu.RUnlock()
}
