// Package good holds the fixed forms of the lockhold fixture: every
// blocking op, IO call, and callback runs outside the critical section.
package good

import (
	"os"
	"sync"
)

// Reading mirrors one accepted meter reading.
type Reading struct {
	Slot int64
	KW   float64
}

// Store is the same shard-store shape as the bad fixture.
type Store struct {
	mu       sync.RWMutex
	readings map[string][]Reading
	sink     func(meterID string, rs []Reading)
	jobs     chan Reading
	log      *os.File
	alerts   chan string
}

// Apply mutates under the lock and invokes the sink after releasing it —
// the ami.WithSink contract.
func (s *Store) Apply(meterID string, rs []Reading) {
	s.mu.Lock()
	s.readings[meterID] = append(s.readings[meterID], rs...)
	s.mu.Unlock()
	s.sink(meterID, rs)
}

// TryEnqueue uses a select with a default: a full queue drops, the lock
// holder never parks.
func (s *Store) TryEnqueue(r Reading) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	select {
	case s.jobs <- r:
		return true
	default:
		return false
	}
}

// Log snapshots the state under the lock and writes after.
func (s *Store) Log(line string) error {
	s.mu.Lock()
	n := len(s.readings)
	s.mu.Unlock()
	if n == 0 {
		return nil
	}
	_, err := s.log.Write([]byte(line))
	return err
}

// Alert hands delivery to a goroutine, which owns no caller lock.
func (s *Store) Alert(meterID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.alerts <- meterID }()
}

// Drain releases on the early-return path before it would block — the
// branch-sensitive case.
func (s *Store) Drain(done chan struct{}) {
	s.mu.RLock()
	if len(s.readings) == 0 {
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	<-done
}
