// Package good holds the fixed forms of the blockctx fixture: every
// blocking entry point gives its caller a bound, one of each accepted
// kind.
package good

import (
	"context"
	"sync"
	"time"
)

// Hub fans jobs out to a worker pool; drainTimeout bounds shutdown waits.
type Hub struct {
	mu           sync.Mutex
	jobs         chan int
	wg           sync.WaitGroup
	drainTimeout time.Duration
}

// SubmitContext parks only until ctx is done — the context form.
func (h *Hub) SubmitContext(ctx context.Context, job int) error {
	select {
	case h.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain passes because the receiver carries the drainTimeout knob.
func (h *Hub) Drain() {
	h.wg.Wait()
}

// Close is the io.Closer contract: exempt by name.
func (h *Hub) Close() error {
	h.wg.Wait()
	return nil
}

// Await takes an explicit timeout parameter.
func Await(done chan struct{}, timeout time.Duration) bool {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// Feed has no deadline knob on the receiver; its Send passes through the
// Context sibling alone.
type Feed struct {
	ch chan []byte
}

// SendContext is the bounded form.
func (f *Feed) SendContext(ctx context.Context, b []byte) error {
	select {
	case f.ch <- b:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Send delegates the bound to the sibling: callers who want one call
// SendContext.
func (f *Feed) Send(b []byte) {
	f.ch <- b
}

// pump is unexported: not an entry point.
func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}
