// Package bad seeds blocking exported entry points with no way for the
// caller to bound the wait.
package bad

import (
	"sync"
	"time"
)

// Hub fans jobs out to a worker pool.
type Hub struct {
	mu   sync.Mutex
	jobs chan int
	wg   sync.WaitGroup
}

// Submit parks forever when every worker is busy.
func (h *Hub) Submit(job int) { // want "accepts no context.Context or deadline"
	h.jobs <- job
}

// Drain joins the worker pool with no bound on the wait.
func (h *Hub) Drain() { // want "accepts no context.Context or deadline"
	h.wg.Wait()
}

// Await blocks on a caller channel transitively, through recv.
func Await(done chan struct{}) { // want "accepts no context.Context or deadline"
	recv(done)
}

func recv(done chan struct{}) {
	<-done
}

// Retry sleeps between attempts with nothing able to cancel the schedule.
func Retry(attempts int, f func() error) error { // want "accepts no context.Context or deadline"
	var err error
	for i := 0; i < attempts; i++ {
		if err = f(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
