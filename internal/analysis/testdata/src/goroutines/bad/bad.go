// Package bad seeds goroutine-tracking violations for the golden test:
// fire-and-forget spawns nothing can join.
package bad

// Leak spawns an untracked function value.
func Leak(work func()) {
	go work() // want "not tied to a sync.WaitGroup"
}

// LeakLit spawns an untracked literal.
func LeakLit(ch chan<- int) {
	go func() { // want "not tied to a sync.WaitGroup"
		ch <- 1
	}()
}
