// Package good is the fixed form of the goroutines fixture: every spawn
// signals a sync.WaitGroup, directly or one call deep.
package good

import "sync"

// Spawn tracks the worker on wg.
func Spawn(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Watcher is the drain-watcher shape: Wait converted to a channel close.
func Watcher(wg *sync.WaitGroup) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	return done
}

type server struct{ wg sync.WaitGroup }

// Start launches the accept loop, which reaps itself via Done one call
// deep — the `go h.acceptLoop(ln)` shape.
func (s *server) Start() {
	s.wg.Add(1)
	go s.loop()
}

func (s *server) loop() { defer s.wg.Done() }
