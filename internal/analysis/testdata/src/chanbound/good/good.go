// Package good holds the fixed forms of the chanbound fixture: every
// capacity is stated, every timer is hoisted.
package good

import "time"

type event struct{ id int }

// Pipeline bounds each queue explicitly; zero spells out a deliberate
// rendezvous.
func Pipeline(n int) (chan int, chan event) {
	work := make(chan int, n)
	out := make(chan event, 0)
	return work, out
}

// Signal channels carry no data; close-to-broadcast needs no capacity.
func Signal() chan struct{} {
	return make(chan struct{})
}

// Poll reuses one ticker across the whole loop.
func Poll(stop chan struct{}) int {
	polls := 0
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return polls
		case <-tick.C:
			polls++
		}
	}
}

// Deadline uses time.After outside any loop: one timer, bounded life.
func Deadline(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	case <-time.After(time.Second):
		return false
	}
}
