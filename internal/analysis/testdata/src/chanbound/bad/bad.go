// Package bad seeds unbounded-channel and timer-in-loop violations for
// the golden test.
package bad

import "time"

type event struct{ id int }

// Pipeline wires workers through silent rendezvous channels: nothing at
// the make site says whether the senders are allowed to park.
func Pipeline(n int) (chan int, chan event) {
	work := make(chan int)  // want "without an explicit capacity"
	out := make(chan event) // want "without an explicit capacity"
	_ = n
	return work, out
}

// Poll allocates a fresh timer every spin; each one lives until it fires.
func Poll(stop chan struct{}) int {
	polls := 0
	for {
		select {
		case <-stop:
			return polls
		case <-time.After(50 * time.Millisecond): // want "inside a loop"
			polls++
		}
	}
}

// Meter leaks one ticker per reading: time.Tick's timers never stop.
func Meter(readings []float64) float64 {
	total := 0.0
	for _, r := range readings {
		<-time.Tick(time.Millisecond) // want "inside a loop"
		total += r
	}
	return total
}
