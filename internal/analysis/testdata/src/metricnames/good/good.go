// Package good is the fixed form of the metricnames fixture: every name a
// package-level constant in the fdeta_* namespace; one constant reused
// across label sets is one metric family, not a collision.
package good

import "repro/internal/obs"

const (
	metricRequests = "fdeta_good_requests_total"
	metricLatency  = "fdeta_good_latency_seconds"
	// The trainer-metric shapes: a labelled counter family shared across
	// outcomes and a suffix-free gauge, mirroring the fdeta_train_*
	// instruments the population trainer registers.
	metricTrainWarm    = "fdeta_good_train_warm_starts_total"
	metricTrainWorkers = "fdeta_good_train_workers"
	// The sharded-ingestion shapes: a counter family labelled per shard, a
	// suffix-free per-shard queue gauge, and a suffix-free batch-size
	// histogram, mirroring the fdeta_ami_shard_* / fdeta_ami_batch_*
	// instruments the sharded head-end registers.
	metricShardStored = "fdeta_good_shard_readings_total"
	metricShardDepth  = "fdeta_good_shard_queue_depth"
	metricBatchSize   = "fdeta_good_batch_readings"
	// The durability shapes: per-shard WAL counters plus a sync-latency
	// histogram, mirroring the fdeta_ami_wal_* instruments the WAL-backed
	// head-end registers.
	metricWALAppended = "fdeta_good_wal_appended_total"
	metricWALRecover  = "fdeta_good_wal_recovered_total"
	metricWALTorn     = "fdeta_good_wal_torn_tail_total"
	metricWALSync     = "fdeta_good_wal_sync_seconds"
	metricWALSegments = "fdeta_good_wal_segment_bytes"
	// The streaming-service shapes: counter families labelled by result and
	// tier, plus suffix-conformant fleet-aggregate ratio gauges, mirroring
	// the fdeta_serve_* instruments the detection service registers.
	metricServeObserved = "fdeta_good_serve_observed_total"
	metricServeAlerts   = "fdeta_good_serve_alerts_total"
	metricServeCovMin   = "fdeta_good_serve_coverage_min_ratio"
	metricServeFillMean = "fdeta_good_serve_window_fill_mean_ratio"
)

// Register registers a labelled counter family and a histogram.
func Register(reg *obs.Registry) {
	reg.Counter(metricRequests, "requests served", obs.L("result", "ok"))
	reg.Counter(metricRequests, "requests served", obs.L("result", "error"))
	reg.Histogram(metricLatency, "request latency", obs.LatencyBuckets())
}

// RegisterTrainer registers the trainer-shaped instruments.
func RegisterTrainer(reg *obs.Registry) {
	reg.Counter(metricTrainWarm, "warm-start attempts", obs.L("outcome", "hit"))
	reg.Counter(metricTrainWarm, "warm-start attempts", obs.L("outcome", "miss"))
	reg.Gauge(metricTrainWorkers, "trainer worker-pool size")
}

// RegisterShards registers the sharded-ingestion-shaped instruments: one
// counter/gauge pair per shard index plus the batch-size distribution.
func RegisterShards(reg *obs.Registry, shards []string) {
	for _, s := range shards {
		reg.Counter(metricShardStored, "readings stored per shard", obs.L("shard", s))
		reg.Gauge(metricShardDepth, "ingest queue depth per shard", obs.L("shard", s))
	}
	reg.Histogram(metricBatchSize, "readings per batch frame", []float64{1, 2, 4, 8})
}

// RegisterWAL registers the WAL-shaped instruments: per-shard durability
// counters, the fsync latency distribution, and a suffix-conformant bytes
// gauge.
func RegisterWAL(reg *obs.Registry, shards []string) {
	for _, s := range shards {
		reg.Counter(metricWALAppended, "records appended per shard", obs.L("shard", s))
		reg.Counter(metricWALRecover, "readings recovered per shard", obs.L("shard", s))
		reg.Counter(metricWALTorn, "torn tails truncated per shard", obs.L("shard", s))
		reg.Gauge(metricWALSegments, "live segment bytes per shard", obs.L("shard", s))
	}
	reg.Histogram(metricWALSync, "fsync latency", obs.LatencyBuckets())
}

// RegisterServe registers the streaming-service-shaped instruments:
// result- and tier-labelled counter families plus aggregate ratio gauges.
func RegisterServe(reg *obs.Registry) {
	reg.Counter(metricServeObserved, "readings processed", obs.L("result", "ok"))
	reg.Counter(metricServeObserved, "readings processed", obs.L("result", "missing"))
	reg.Counter(metricServeAlerts, "alert events", obs.L("tier", "high"))
	reg.Counter(metricServeAlerts, "alert events", obs.L("tier", "cleared"))
	reg.Gauge(metricServeCovMin, "minimum window coverage across consumers")
	reg.Gauge(metricServeFillMean, "mean live-fill fraction across consumers")
}
