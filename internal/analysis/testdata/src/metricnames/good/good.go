// Package good is the fixed form of the metricnames fixture: every name a
// package-level constant in the fdeta_* namespace; one constant reused
// across label sets is one metric family, not a collision.
package good

import "repro/internal/obs"

const (
	metricRequests = "fdeta_good_requests_total"
	metricLatency  = "fdeta_good_latency_seconds"
)

// Register registers a labelled counter family and a histogram.
func Register(reg *obs.Registry) {
	reg.Counter(metricRequests, "requests served", obs.L("result", "ok"))
	reg.Counter(metricRequests, "requests served", obs.L("result", "error"))
	reg.Histogram(metricLatency, "request latency", obs.LatencyBuckets())
}
