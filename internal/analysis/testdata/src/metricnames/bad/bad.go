// Package bad seeds metric-namespace violations for the golden test:
// literal names, namespace-pattern breaks, duplicate constants, and
// non-constant names.
package bad

import "repro/internal/obs"

const (
	badPattern = "fdeta_Bad-Name"
	dupA       = "fdeta_dup_total"
)

const dupB = "fdeta_dup_total"

// Register registers one instrument per violation class.
func Register(reg *obs.Registry) {
	reg.Counter("fdeta_literal_total", "literal name") // want "must be a package-level constant"
	reg.Gauge(badPattern, "bad pattern")               // want "does not match"
	reg.Counter(dupA, "dup a")                         // want "distinct constants"
	reg.Counter(dupB, "dup b")
	local := "fdeta_var_total"
	reg.Counter(local, "variable name") // want "must be a package-level constant"
}
