// Package bad seeds determinism violations for the golden test: wall-clock
// reads, global-PRNG draws, and map-ordered output.
package bad

import (
	"fmt"
	"math/rand"
	"time"
)

// Timestamp reads the wall clock directly.
func Timestamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

// Elapsed measures with time.Since.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want "time.Since reads the wall clock"
}

// Draw uses the process-global PRNG.
func Draw() int {
	return rand.Intn(6) // want "process-global PRNG"
}

// Dump prints a map in iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "map-iteration order"
	}
}
