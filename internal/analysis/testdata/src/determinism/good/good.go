// Package good is the fixed form of the determinism fixture: injected
// clock, seeded threaded RNG, sorted keys before output.
package good

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clock is the injected timing dependency.
type Clock interface{ Now() time.Time }

// Elapsed reads time only through the injected clock.
func Elapsed(clk Clock, start time.Time) float64 {
	return clk.Now().Sub(start).Seconds()
}

// Draw uses an explicitly threaded, seeded generator.
func Draw(rng *rand.Rand) int { return rng.Intn(6) }

// Seeded constructs a seeded generator — constructors are allowed.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Dump emits map entries in sorted-key order.
func Dump(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
