// Package bad seeds float-comparison violations for the golden test:
// computed-vs-computed equality.
package bad

// Equal compares two computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// Changed compares two computed floats for inequality.
func Changed(prev, next float64) bool {
	return prev != next // want "floating-point != comparison"
}
