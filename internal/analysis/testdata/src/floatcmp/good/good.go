// Package good is the fixed form of the floatcmp fixture: an approved
// epsilon helper, the NaN probe, and constant-operand sentinel checks.
package good

import "math"

const eps = 1e-9

// ApproxEqual is an approved epsilon helper; the exact comparison inside
// it is the short-circuit, the tolerance is the point.
func ApproxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps
}

// IsNaN uses the standard x != x probe.
func IsNaN(x float64) bool { return x != x }

// DefaultSigma applies a zero-value default — a deliberately exact
// constant-operand comparison.
func DefaultSigma(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return sigma
}
