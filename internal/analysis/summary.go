package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The call-summary engine: a dependency-free (stdlib go/types + AST)
// interprocedural layer shared by the concurrency analyzers. It indexes
// every function declaration in the module, computes a local summary per
// function — which concurrency-relevant operations its body performs
// (channel ops, net/file IO, sleeps, waits, caller-supplied callback
// invocations) — and propagates those facts transitively over the static
// call graph, keeping a witness chain so diagnostics can explain *why* a
// callee is considered blocking.
//
// Known, deliberate approximations (each keeps the false-positive rate
// bounded at module scale):
//   - calls through module-defined interfaces are unresolved (no body, no
//     ops); only a curated set of stdlib interface methods (io.Reader/
//     io.Writer, net.Conn, net.Listener) is classified directly,
//   - `go` statements never block their caller, so goroutine bodies are
//     excluded from the spawning function's summary (each function literal
//     is still summarized and lock-checked on its own),
//   - function literals contribute to the enclosing summary only when
//     invoked at their definition site (direct call or defer); literals
//     that escape through variables or fields are summarized separately,
//   - mutex Lock/Unlock acquisition is not itself a blocking op — flagging
//     it would ban all nested locking; lockhold tracks it as lock state
//     instead.

// opKind classifies one concurrency-relevant operation a function can
// reach, directly or through callees.
type opKind uint8

const (
	// opChan is a potentially-blocking channel operation: send, receive,
	// range over a channel, or a select without a default clause.
	opChan opKind = iota
	// opNetIO is network IO that can block for as long as the peer
	// pleases: dial, accept, conn read/write.
	opNetIO
	// opNetBind is listener setup (net.Listen): a pair of quick syscalls,
	// separated from opNetIO so binding a socket does not make every
	// constructor a "blocking entry point".
	opNetBind
	// opFileIO is filesystem IO: reads, writes, syncs, renames. Bounded by
	// the disk, not a peer — excluded from the indefinite-blocking set but
	// still banned while a mutex is held.
	opFileIO
	// opStreamIO is IO through generic stream abstractions (io.Reader/
	// io.Writer methods, bufio, encoding/json encoders): the underlying
	// device is unknown, so it is treated like file IO.
	opStreamIO
	// opSleep is time.Sleep.
	opSleep
	// opWait is sync.WaitGroup.Wait or sync.Cond.Wait.
	opWait
	// opCallback is an invocation of a caller-supplied function value — a
	// func-typed parameter, field, or variable. The callee is unknown, so
	// under a lock it is the most dangerous shape of all.
	opCallback
	numOpKinds
)

func (k opKind) String() string {
	switch k {
	case opChan:
		return "channel op"
	case opNetIO:
		return "network IO"
	case opNetBind:
		return "listener bind"
	case opFileIO:
		return "file IO"
	case opStreamIO:
		return "stream IO"
	case opSleep:
		return "sleep"
	case opWait:
		return "wait"
	case opCallback:
		return "callback invocation"
	default:
		return "unknown op"
	}
}

// opMask is a bit set of opKinds.
type opMask uint16

func maskOf(k opKind) opMask         { return 1 << k }
func (m opMask) has(k opKind) bool   { return m&maskOf(k) != 0 }
func (m opMask) any(o opMask) opMask { return m & o }

// lockholdBanned are the kinds forbidden while a mutex is held: anything
// that can stall every contender of the lock, plus callback invocations
// (whose behavior the lock holder cannot know).
const lockholdBanned = opMask(1<<numOpKinds-1) &^ (1 << opNetBind)

// indefiniteBlocking are the kinds that can block with no bound the
// function itself controls — the blockctx trigger set. File/stream IO is
// excluded (bounded by the device), as is listener binding.
const indefiniteBlocking opMask = 1<<opChan | 1<<opNetIO | 1<<opSleep | 1<<opWait

// opCause records the first witness for one opKind in one function:
// either a local operation (callee nil) or a call into a summarized
// function that transitively reaches the op.
type opCause struct {
	pos    token.Pos
	what   string       // "channel send", "calls (*shardWAL).Append", ...
	callee *FuncSummary // non-nil when reached through a module call
}

// callSite is one static call to a module-internal function.
type callSite struct {
	pos token.Pos
	fn  *types.Func
}

// FuncSummary is the per-function fact sheet the analyzers consume. Ops
// and causes are transitive after buildSummaries returns.
type FuncSummary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declarations
	Pkg  *Package

	mask   opMask
	causes [numOpKinds]opCause
	calls  []callSite
}

// Can reports whether the function can transitively reach any op in m.
func (s *FuncSummary) Can(m opMask) bool { return s.mask&m != 0 }

// CanBlockIndefinitely reports whether the function can block with no
// bound it controls: channel ops, network IO, sleeps, waits.
func (s *FuncSummary) CanBlockIndefinitely() bool { return s.mask&indefiniteBlocking != 0 }

// firstKind returns the lowest-numbered kind present in both the summary
// and the filter — the deterministic representative for diagnostics.
func (s *FuncSummary) firstKind(filter opMask) (opKind, bool) {
	for k := opKind(0); k < numOpKinds; k++ {
		if s.mask.has(k) && filter.has(k) {
			return k, true
		}
	}
	return 0, false
}

// Explain renders the witness chain for kind k: how this function reaches
// the operation, through up to maxHops callees.
func (s *FuncSummary) Explain(k opKind) string {
	const maxHops = 8
	var parts []string
	cur := s
	for hop := 0; cur != nil && hop < maxHops; hop++ {
		c := cur.causes[k]
		parts = append(parts, c.what)
		if c.callee == nil {
			break
		}
		cur = c.callee
	}
	return strings.Join(parts, ", which ")
}

// callSummaries holds the module-wide function index. Build once per
// module via Module.Summaries.
type callSummaries struct {
	mod     *Module
	byFunc  map[*types.Func]*FuncSummary
	ordered []*FuncSummary // deterministic iteration order (source position)
}

// Summaries returns the module's call-summary index, building it on first
// use. Run executes analyzers sequentially, so no locking is needed.
func (m *Module) Summaries() *callSummaries {
	if m.summaries == nil {
		m.summaries = buildSummaries(m)
	}
	return m.summaries
}

// Lookup resolves a callee to its summary, or nil for functions without a
// body in the module (stdlib, interface methods).
func (cs *callSummaries) Lookup(fn *types.Func) *FuncSummary { return cs.byFunc[fn] }

// buildSummaries indexes every function declaration and literal, computes
// local summaries, then propagates ops over the call graph to a fixpoint.
func buildSummaries(mod *Module) *callSummaries {
	cs := &callSummaries{mod: mod, byFunc: make(map[*types.Func]*FuncSummary)}
	for _, pkg := range mod.Pkgs {
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				fs := &FuncSummary{Fn: fn, Decl: fd, Pkg: pkg}
				cs.byFunc[fn] = fs
				cs.ordered = append(cs.ordered, fs)
			}
		}
	}
	sort.Slice(cs.ordered, func(i, j int) bool {
		return cs.ordered[i].bodyPos() < cs.ordered[j].bodyPos()
	})
	for _, fs := range cs.ordered {
		scanBody(fs.Pkg, fs.Decl.Body, fs)
	}
	cs.propagate()
	return cs
}

func (s *FuncSummary) bodyPos() token.Pos {
	if s.Decl != nil {
		return s.Decl.Pos()
	}
	return s.Lit.Pos()
}

// addOp records a local operation (first witness per kind wins).
func (s *FuncSummary) addOp(k opKind, pos token.Pos, what string) {
	if s.mask.has(k) {
		return
	}
	s.mask |= maskOf(k)
	s.causes[k] = opCause{pos: pos, what: what}
}

// scanBody computes one function's local summary: its direct ops, its
// static module-internal call sites, and its dynamic (callback) calls.
// Function literals are descended into only when invoked at their
// definition site; `go` bodies are skipped entirely.
func scanBody(pkg *Package, body *ast.BlockStmt, fs *FuncSummary) {
	info := pkg.Info
	// Pre-pass: select statements with a default clause are non-blocking;
	// their comm clauses' send/recv headers must not count as channel ops.
	nonBlockingComm := make(map[ast.Node]bool)
	// Literals invoked where they are defined run on the caller's
	// goroutine: their ops belong to this summary.
	invokedLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						nonBlockingComm[cc.Comm] = true
					}
				}
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				invokedLits[lit] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // runs concurrently; never blocks the caller
		case *ast.FuncLit:
			return invokedLits[n]
		case *ast.SendStmt:
			if !nonBlockingComm[n] {
				fs.addOp(opChan, n.Arrow, "does a channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isNonBlockingRecv(n, nonBlockingComm) {
				fs.addOp(opChan, n.OpPos, "does a channel receive")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				fs.addOp(opChan, n.Select, "blocks in a select with no default")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					fs.addOp(opChan, n.For, "ranges over a channel")
				}
			}
		case *ast.CallExpr:
			classifyCall(pkg, n, fs)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// isNonBlockingRecv reports whether recv is the comm operation (or its
// assignment wrapper's RHS) of a select clause guarded by a default.
func isNonBlockingRecv(recv *ast.UnaryExpr, nonBlocking map[ast.Node]bool) bool {
	for comm := range nonBlocking {
		switch c := comm.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(c.X) == recv {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if ast.Unparen(rhs) == recv {
					return true
				}
			}
		}
	}
	return false
}

// classifyCall folds one call expression into the summary: a curated
// stdlib op, a module-internal call site, or a dynamic callback.
func classifyCall(pkg *Package, call *ast.CallExpr, fs *FuncSummary) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)
	if _, ok := fun.(*ast.FuncLit); ok {
		return // invoked literal: its body is scanned inline
	}
	if fn := calleeOf(info, call); fn != nil {
		if k, what, ok := classifyStdlibCall(fn); ok {
			fs.addOp(k, call.Lparen, what)
			return
		}
		if fn.Pkg() != nil && isModulePath(fs.Pkg, fn.Pkg().Path()) {
			fs.calls = append(fs.calls, callSite{pos: call.Lparen, fn: fn})
		}
		return
	}
	// Not a *types.Func: a builtin, a conversion, or a func value.
	switch obj := calleeObject(info, fun).(type) {
	case *types.Builtin, *types.TypeName, *types.Nil:
		return
	case nil:
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return
		}
	default:
		_ = obj
	}
	if t := info.TypeOf(fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			fs.addOp(opCallback, call.Lparen,
				fmt.Sprintf("invokes the caller-supplied func %s", types.ExprString(fun)))
		}
	}
}

// calleeObject resolves the object a call's Fun expression names, if any.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch e := fun.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isModulePath reports whether path belongs to the same module as pkg —
// including fixture pseudo-packages under testdata.
func isModulePath(pkg *Package, path string) bool {
	i := strings.Index(pkg.Path, "/")
	root := pkg.Path
	if i >= 0 {
		root = pkg.Path[:i]
	}
	return path == root || strings.HasPrefix(path, root+"/")
}

// classifyStdlibCall maps a resolved callee to an opKind when it is one of
// the curated concurrency-relevant stdlib operations. The set is
// deliberately small and explicit: every entry is an operation whose cost
// is owned by a device or a peer, not the CPU.
func classifyStdlibCall(fn *types.Func) (opKind, string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, "", false
	}
	name := fn.Name()
	display := funcDisplayName(fn)
	switch pkg.Path() {
	case "time":
		if name == "Sleep" && fn.Type().(*types.Signature).Recv() == nil {
			return opSleep, "calls time.Sleep", true
		}
	case "sync":
		if name == "Wait" && (isMethodOn(fn, "sync", "WaitGroup", "Wait") ||
			isMethodOn(fn, "sync", "Cond", "Wait")) {
			return opWait, "calls " + display, true
		}
	case "os":
		if isRecvMethod(fn) {
			switch name {
			case "Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteString",
				"WriteTo", "Sync", "Seek", "Truncate":
				return opFileIO, "calls " + display, true
			}
			return 0, "", false
		}
		switch name {
		case "ReadFile", "WriteFile", "ReadDir", "Open", "OpenFile", "Create",
			"CreateTemp", "Rename", "Remove", "RemoveAll", "MkdirAll", "Truncate":
			return opFileIO, "calls os." + name, true
		}
	case "net":
		if isRecvMethod(fn) {
			switch name {
			case "Read", "Write", "ReadFrom", "WriteTo", "Accept", "AcceptTCP",
				"Dial", "DialContext":
				return opNetIO, "calls " + display, true
			}
			return 0, "", false
		}
		switch name {
		case "Dial", "DialTimeout":
			return opNetIO, "calls net." + name, true
		case "Listen", "ListenTCP", "ListenPacket":
			return opNetBind, "calls net." + name, true
		}
	case "io":
		if isRecvMethod(fn) {
			// io.Reader.Read / io.Writer.Write etc. through the interface.
			switch name {
			case "Read", "Write", "ReadFrom", "WriteTo", "ReadByte", "WriteByte":
				return opStreamIO, "calls " + display, true
			}
			return 0, "", false
		}
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString":
			return opStreamIO, "calls io." + name, true
		}
	case "bufio":
		if isRecvMethod(fn) {
			switch name {
			case "Read", "ReadByte", "ReadBytes", "ReadRune", "ReadSlice",
				"ReadString", "ReadLine", "Peek", "Discard", "Fill",
				"Write", "WriteByte", "WriteRune", "WriteString", "WriteTo",
				"ReadFrom", "Flush", "Scan":
				return opStreamIO, "calls " + display, true
			}
		}
	case "encoding/json":
		if isMethodOn(fn, "encoding/json", "Encoder", "Encode") ||
			isMethodOn(fn, "encoding/json", "Decoder", "Decode") {
			return opStreamIO, "calls " + display, true
		}
	}
	return 0, "", false
}

// isRecvMethod reports whether fn has a receiver (concrete or interface).
func isRecvMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// funcDisplayName renders fn compactly for diagnostics: "(*shardWAL).Append"
// for methods, "ami.NewSharded" for package functions.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		name := "?"
		switch tt := t.(type) {
		case *types.Named:
			name = tt.Obj().Name()
		case *types.Interface:
			name = "interface"
		}
		return fmt.Sprintf("(%s%s).%s", ptr, name, fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// propagate closes the summaries over the call graph: a caller inherits
// every op kind any callee can reach. Plain fixpoint iteration — the
// module has a few thousand functions and at most numOpKinds rounds of
// change per function, so this converges in a handful of passes.
func (cs *callSummaries) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fs := range cs.ordered {
			for _, site := range fs.calls {
				callee := cs.byFunc[site.fn]
				if callee == nil {
					continue
				}
				for k := opKind(0); k < numOpKinds; k++ {
					if callee.mask.has(k) && !fs.mask.has(k) {
						fs.mask |= maskOf(k)
						fs.causes[k] = opCause{
							pos:    site.pos,
							what:   "calls " + funcDisplayName(site.fn),
							callee: callee,
						}
						changed = true
					}
				}
			}
		}
	}
}
