package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// trackedPkgs are the packages whose goroutines must be joinable: the AMI
// head-end (graceful shutdown drains every connection handler) and the
// evaluation worker pool (RunEvaluation must not return while a worker
// still touches the caller's registry or checkpoint file). An untracked
// goroutine here is the exact leak class PR 4 fixed by hand.
var trackedPkgs = map[string]bool{
	"repro/internal/ami":         true,
	"repro/internal/experiments": true,
}

// newGoroutines builds the goroutines analyzer: every go statement in the
// tracked packages signals its completion to a sync.WaitGroup — either the
// spawned function literal calls (*sync.WaitGroup).Done (usually deferred)
// or Wait (drain watchers), or the spawned same-package function's body
// does. Connection-registry bookkeeping rides on the same WaitGroup in
// this codebase; genuinely fire-and-forget goroutines must carry a
// //lint:ignore goroutines directive explaining who reaps them.
func newGoroutines() *Analyzer {
	return &Analyzer{
		Name: "goroutines",
		Doc:  "go statements in ami/experiments must be tied to a sync.WaitGroup-style tracker",
		Applies: func(_ *Module, pkg *Package) bool {
			return trackedPkgs[pkg.Path] || testdataScoped(pkg, "goroutines")
		},
		Run: runGoroutines,
	}
}

func runGoroutines(mod *Module, pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineTracked(pkg, g.Call) {
				report(g.Pos(), "goroutine is not tied to a sync.WaitGroup (no Done/Wait in its body); "+
					"track it or explain its reaper in a //lint:ignore goroutines directive")
			}
			return true
		})
	}
}

// goroutineTracked decides whether the spawned call signals a WaitGroup.
func goroutineTracked(pkg *Package, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodySignalsWaitGroup(pkg, lit.Body, 1)
	}
	// go h.acceptLoop(ln): look one hop into a same-package callee.
	if fn := calleeOf(pkg.Info, call); fn != nil {
		if body := funcBody(pkg, fn); body != nil {
			return bodySignalsWaitGroup(pkg, body, 1)
		}
	}
	return false
}

// bodySignalsWaitGroup walks a function body for a Done or Wait call on a
// sync.WaitGroup. depth allows one hop through same-package helpers (the
// `go h.acceptLoop(ln)` shape, where acceptLoop defers wg.Done itself).
func bodySignalsWaitGroup(pkg *Package, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false // nested goroutines are judged on their own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if fn == nil {
			return true
		}
		if isMethodOn(fn, "sync", "WaitGroup", "Done") || isMethodOn(fn, "sync", "WaitGroup", "Wait") {
			found = true
			return false
		}
		if depth > 0 {
			if inner := funcBody(pkg, fn); inner != nil && bodySignalsWaitGroup(pkg, inner, depth-1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcBody returns the body of a function or method declared in pkg, nil
// for anything out of package (or interface methods).
func funcBody(pkg *Package, fn *types.Func) *ast.BlockStmt {
	if fn.Pkg() == nil || pkg.Types == nil || fn.Pkg().Path() != pkg.Types.Path() {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}
