package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Check names the analyzer ("determinism", "metricnames", ...).
	Check string
	// Pos is the exact source position.
	Pos token.Position
	// Message states the violated invariant.
	Message string
	// Suppressed is set by the driver when a //lint:ignore directive
	// covers the finding; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Analyzer is one domain check. Run inspects the whole module (several
// invariants are cross-package) and reports findings through report; the
// driver owns suppression, sorting, and exit codes.
type Analyzer struct {
	// Name is the check identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Applies filters the packages the analyzer inspects, by import path.
	// Fixture packages under this package's testdata/src/<name>/ are
	// always in scope so golden tests exercise the same code path.
	Applies func(mod *Module, pkg *Package) bool
	// Run reports findings for one in-scope package. Cross-package state
	// lives in the analyzer's closure via newState.
	Run func(mod *Module, pkg *Package, report func(pos token.Pos, msg string))
	// Finish, if non-nil, runs after every package for module-wide
	// verdicts (e.g. metric-name uniqueness).
	Finish func(mod *Module, report func(pos token.Pos, msg string))
}

// Analyzers returns the full suite in stable order. Each call returns
// fresh analyzer instances: analyzers carry cross-package state in their
// closures, so instances must not be shared between runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		newDeterminism(),
		newMetricNames(),
		newFloatCmp(),
		newGoroutines(),
		newWrapCheck(),
		newLockhold(),
		newChanbound(),
		newBlockctx(),
	}
}

// Summary is one analyzer's per-run accounting, printed as a single line
// by the driver so `make verify` output stays scannable.
type Summary struct {
	Check      string
	Packages   int
	Findings   int // unsuppressed
	Suppressed int
}

func (s Summary) String() string {
	return fmt.Sprintf("%-12s %2d pkgs  %2d findings  %2d suppressed",
		s.Check, s.Packages, s.Findings, s.Suppressed)
}

// Result is a full suite run over a module.
type Result struct {
	// Findings holds every diagnostic, suppressed ones included, sorted
	// by position.
	Findings []Finding
	// Summaries holds one entry per analyzer in suite order.
	Summaries []Summary
	// Directives lists every suppression directive found in the module's
	// loaded files (the -suppressions audit).
	Directives []Directive
	// BadDirectives are malformed //lint: comments (missing check or
	// reason); they are findings under the "lint" pseudo-check.
	BadDirectives []Finding
}

// Unsuppressed counts findings not covered by a directive, including
// malformed directives themselves.
func (r *Result) Unsuppressed() int {
	n := len(r.BadDirectives)
	for _, f := range r.Findings {
		if !f.Suppressed {
			n++
		}
	}
	return n
}

// Run executes the given analyzers over the module, applies suppression
// directives, and aggregates summaries. Packages with type errors are not
// analyzed — the driver surfaces the type errors instead, under the
// "typecheck" pseudo-check.
func Run(mod *Module, analyzers []*Analyzer) *Result {
	res := &Result{}
	idx := newSuppressionIndex(mod)
	res.Directives = idx.directives
	res.BadDirectives = idx.malformed

	for _, a := range analyzers {
		sum := Summary{Check: a.Name}
		var found []Finding
		report := func(pos token.Pos, msg string) {
			found = append(found, Finding{Check: a.Name, Pos: mod.Fset.Position(pos), Message: msg})
		}
		for _, pkg := range mod.Pkgs {
			if len(pkg.TypeErrors) > 0 {
				continue
			}
			if a.Applies != nil && !a.Applies(mod, pkg) {
				continue
			}
			sum.Packages++
			a.Run(mod, pkg, report)
		}
		if a.Finish != nil {
			a.Finish(mod, report)
		}
		for i := range found {
			if reason, ok := idx.match(found[i].Pos, a.Name); ok {
				found[i].Suppressed = true
				found[i].Reason = reason
				sum.Suppressed++
			} else {
				sum.Findings++
			}
		}
		res.Findings = append(res.Findings, found...)
		res.Summaries = append(res.Summaries, sum)
	}

	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return res
}

// TypeErrorFindings renders every package's type errors as findings so the
// driver can print them uniformly.
func TypeErrorFindings(mod *Module) []Finding {
	var out []Finding
	for _, pkg := range mod.Pkgs {
		for _, err := range pkg.TypeErrors {
			f := Finding{Check: "typecheck", Message: err.Error()}
			if terr, ok := err.(types.Error); ok {
				f.Pos = terr.Fset.Position(terr.Pos)
				f.Message = terr.Msg
			}
			out = append(out, f)
		}
	}
	return out
}

// --- shared AST/type helpers -----------------------------------------------

// calleeOf resolves the called object of a call expression, for both
// pkg.Func(...) and recv.Method(...) forms. Returns nil for indirect calls
// (function values, conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-scope function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isMethodOn reports whether fn is a method named name whose receiver's
// (pointer-stripped) named type is pkgPath.typeName.
func isMethodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isErrorType reports whether t is the error interface or implements it
// (directly or through a pointer receiver).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// testdataScoped reports whether pkg is a fixture for the named analyzer:
// .../internal/analysis/testdata/src/<name>/... Golden tests load those
// packages explicitly; the module walk never sees them.
func testdataScoped(pkg *Package, name string) bool {
	return strings.Contains(pkg.Path+"/", "/testdata/src/"+name+"/")
}
