package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden tests run each analyzer over seeded-violation fixtures under
// testdata/src/<check>/bad (every finding annotated with a trailing
// `// want "substring"` comment) and their fixed forms under .../good
// (which must produce zero findings). Fixtures are loaded through the same
// loader and Run path as production packages; only the Applies testdata
// escape hatch differs.

// goldenLoader is shared across all fixture loads so GOROOT sources are
// type-checked once per `go test` process, not once per fixture.
var (
	goldenOnce sync.Once
	golden     *loader
	goldenErr  error
)

func goldenLoad(t *testing.T, rel string) (*Module, *Package) {
	t.Helper()
	goldenOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			goldenErr = err
			return
		}
		gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err != nil {
			goldenErr = err
			return
		}
		modPath, err := modulePath(gomod)
		if err != nil {
			goldenErr = err
			return
		}
		golden = newLoader(root, modPath)
	})
	if goldenErr != nil {
		t.Fatalf("locating module: %v", goldenErr)
	}
	path := golden.modPath + "/internal/analysis/testdata/src/" + rel
	pkg, err := golden.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", rel, pkg.TypeErrors)
	}
	mod := &Module{Dir: golden.modDir, ModPath: golden.modPath, Fset: golden.fset,
		Pkgs: []*Package{pkg}, byPath: map[string]*Package{path: pkg}}
	return mod, pkg
}

// analyzerNamed returns a fresh instance of the named analyzer.
func analyzerNamed(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// want is one expected finding, extracted from a `// want "substring"`
// comment: the finding must land on the comment's line and its message
// must contain the substring.
type want struct {
	file string
	line int
	sub  string
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

func extractWants(pkg *Package) []want {
	var out []want
	for file, src := range pkg.Source {
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				out = append(out, want{file: file, line: i + 1, sub: m[1]})
			}
		}
	}
	return out
}

func TestGolden(t *testing.T) {
	for _, name := range []string{"determinism", "metricnames", "floatcmp", "goroutines", "wrapcheck",
		"lockhold", "chanbound", "blockctx"} {
		t.Run(name, func(t *testing.T) {
			t.Run("bad", func(t *testing.T) {
				mod, pkg := goldenLoad(t, name+"/bad")
				res := Run(mod, []*Analyzer{analyzerNamed(t, name)})
				wants := extractWants(pkg)
				if len(wants) == 0 {
					t.Fatalf("fixture %s/bad has no // want annotations", name)
				}
				matched := make([]bool, len(wants))
			findings:
				for _, f := range res.Findings {
					for i, w := range wants {
						if !matched[i] && w.file == f.Pos.Filename && w.line == f.Pos.Line &&
							strings.Contains(f.Message, w.sub) {
							matched[i] = true
							continue findings
						}
					}
					t.Errorf("unexpected finding: %s", f)
				}
				for i, w := range wants {
					if !matched[i] {
						t.Errorf("missing finding at %s:%d containing %q",
							filepath.Base(w.file), w.line, w.sub)
					}
				}
			})
			t.Run("good", func(t *testing.T) {
				mod, _ := goldenLoad(t, name+"/good")
				res := Run(mod, []*Analyzer{analyzerNamed(t, name)})
				for _, f := range res.Findings {
					t.Errorf("fixed form still flagged: %s", f)
				}
			})
		})
	}
}

// TestGoldenSuppression rewrites the floatcmp bad fixture's want comments
// into trailing //lint:ignore directives, reparses, and checks that every
// seeded violation line is now covered, with a reason — the suppression
// path of the same golden fixture.
func TestGoldenSuppression(t *testing.T) {
	mod, pkg := goldenLoad(t, "floatcmp/bad")
	wants := extractWants(pkg)
	if len(wants) == 0 {
		t.Fatal("floatcmp/bad has no annotations to suppress")
	}

	fset := token.NewFileSet()
	clone := &Package{Path: pkg.Path, Dir: pkg.Dir, Source: make(map[string][]byte)}
	for file, src := range pkg.Source {
		text := wantRE.ReplaceAllString(string(src),
			`//lint:ignore floatcmp fixture exercises the suppression path`)
		f, err := parser.ParseFile(fset, file, text, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("reparsing rewritten fixture: %v", err)
		}
		clone.Files = append(clone.Files, f)
		clone.Source[file] = []byte(text)
	}

	cmod := &Module{Dir: mod.Dir, ModPath: mod.ModPath, Fset: fset,
		Pkgs: []*Package{clone}, byPath: map[string]*Package{pkg.Path: clone}}
	idx := newSuppressionIndex(cmod)
	if len(idx.malformed) > 0 {
		t.Fatalf("rewritten directives malformed: %v", idx.malformed[0])
	}
	if len(idx.directives) != len(wants) {
		t.Fatalf("got %d directives, want %d", len(idx.directives), len(wants))
	}
	// The rewrite preserves line structure, so the original want lines are
	// exactly the lines the trailing directives must cover.
	for _, w := range wants {
		reason, ok := idx.match(token.Position{Filename: w.file, Line: w.line}, "floatcmp")
		if !ok {
			t.Errorf("line %d not covered by rewritten directive", w.line)
		} else if reason == "" {
			t.Errorf("line %d suppressed without a reason", w.line)
		}
	}
}

func ExampleFinding() {
	f := Finding{Check: "floatcmp", Message: "floating-point == comparison"}
	f.Pos.Filename = "suite.go"
	f.Pos.Line = 12
	f.Pos.Column = 8
	fmt.Println(f)
	// Output: suite.go:12:8: [floatcmp] floating-point == comparison
}
