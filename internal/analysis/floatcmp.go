package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// newFloatCmp builds the floatcmp analyzer: no ==/!= on floating-point
// operands in production code. Rounding makes exact float equality a
// per-platform, per-optimization-level coin flip — the detectors' verdict
// thresholds and the KLD math must never hinge on one.
//
// Allowed forms:
//   - x != x and x == x (the standard NaN probe),
//   - comparisons where either operand is a compile-time constant —
//     sentinel and boundary semantics (`sigma2 == 0` zero-value defaults,
//     `pivot == 0` singularity guards, `p == 1` domain edges) are
//     deliberately exact and an epsilon would be wrong; the dangerous
//     class is computed-vs-computed equality,
//   - comparisons inside approved epsilon helpers — functions whose name
//     contains "approx" or "almost" (case-insensitive), which exist
//     precisely to centralize the tolerance,
//   - anything carrying a //lint:ignore floatcmp directive with a reason.
func newFloatCmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "no ==/!= on floating-point operands outside approved epsilon helpers",
		Applies: func(mod *Module, pkg *Package) bool {
			return strings.HasPrefix(pkg.Path, mod.ModPath+"/") || pkg.Path == mod.ModPath
		},
		Run: runFloatCmp,
	}
}

func runFloatCmp(mod *Module, pkg *Package, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && isEpsilonHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pkg.Info.TypeOf(be.X)) || !isFloat(pkg.Info.TypeOf(be.Y)) {
					return true
				}
				if sameExpr(be.X, be.Y) {
					return true // x != x: the NaN probe
				}
				if isConstExpr(pkg.Info, be.X) || isConstExpr(pkg.Info, be.Y) {
					return true // sentinel/boundary semantics: deliberately exact
				}
				report(be.OpPos, fmt.Sprintf(
					"floating-point %s comparison; use an epsilon helper (or math.Abs(a-b) <= eps)", be.Op))
				return true
			})
		}
	}
}

// isEpsilonHelper reports whether a function name marks an approved
// tolerance-comparison helper.
func isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "approx") || strings.Contains(lower, "almost")
}

// isConstExpr reports whether the type checker evaluated e to a
// compile-time constant (literals, named constants, constant arithmetic).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports whether two expressions are syntactically identical
// simple operands (identifiers or selector chains) — enough to recognize
// the x != x NaN idiom without a full structural comparison.
func sameExpr(a, b ast.Expr) bool {
	return exprKey(a) != "" && exprKey(a) == exprKey(b)
}

func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
