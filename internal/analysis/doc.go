// Package analysis is the F-DETA domain linter: a self-contained static
// analysis driver (stdlib only — go/parser, go/ast, go/types) that loads the
// whole module and runs a suite of analyzers enforcing invariants no generic
// tool checks.
//
// The invariants are the ones the reproduction's correctness rests on:
//
//   - determinism: evaluation packages never read wall clocks or the global
//     math/rand source, and never emit output in map-iteration order —
//     Tables II/III are regression-tested byte-identical from a seed.
//   - metricnames: every obs instrument name is a package-level constant in
//     the fdeta_* namespace, unique across the module.
//   - floatcmp: no ==/!= on floating-point operands outside approved
//     epsilon helpers (the NaN idiom x != x is allowed).
//   - goroutines: every go statement in the AMI head-end and evaluation
//     worker pool is tied to a sync.WaitGroup-style tracker — the exact
//     leak class PR 4 fixed by hand.
//   - wrapcheck: errors crossing the internal/ami wire boundary are typed
//     or %w-wrapped, never stringly matched.
//
// Findings carry exact positions and can be suppressed in place with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// either trailing on the flagged line or on the line immediately above it.
// The reason is mandatory; a bare directive is itself a finding. The
// cmd/fdetalint driver prints findings plus a one-line per-analyzer summary
// and exits non-zero on any unsuppressed finding; its -suppressions mode
// audits every directive in the tree. DESIGN.md §10 documents each
// invariant and the suppression policy.
package analysis
