package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockhold enforces the sink/SSE contract the concurrent tiers rely on:
// nothing that can block — channel operations, net/file/stream IO, sleeps,
// waits — and no caller-supplied callback may execute while a sync.Mutex
// or sync.RWMutex is held. A blocked lock holder stalls every contender:
// in the head-end that is every session parked on a shard store, in serve
// it is the whole per-consumer observation path. The accepted-reading sink
// (ami.WithSink) documents this contract in prose; lockhold makes the
// machine hold it.
//
// The walk is a sequential source-order approximation of lock state:
//   - X.Lock()/X.RLock() marks the lock named by the receiver expression
//     held; X.Unlock()/X.RUnlock() releases it,
//   - `defer X.Unlock()` leaves the lock held for the rest of the scope
//     (which is exactly the dynamic truth),
//   - if/else branches are walked with cloned state; a branch ending in
//     return/break/continue does not leak its lock changes past the
//     statement, and surviving branches are intersected (a lock must be
//     held on every path to be blamed),
//   - a select with a default clause is non-blocking, and its case bodies
//     are still walked under the current lock state,
//   - `go` and `defer` function literals run outside the walked critical
//     section, so each is checked as an independent scope with no locks
//     held; literals invoked where they are defined are walked inline.
//
// Findings deduplicate to the first site per (scope, lock, op kind): one
// critical section with five file writes is one design decision, not five.
func newLockhold() *Analyzer {
	return &Analyzer{
		Name: "lockhold",
		Doc:  "no blocking op, IO, or caller-supplied callback while a mutex is held",
		Applies: func(mod *Module, pkg *Package) bool {
			return true
		},
		Run: runLockhold,
	}
}

func runLockhold(mod *Module, pkg *Package, report func(pos token.Pos, msg string)) {
	cs := mod.Summaries()
	for _, file := range pkg.Files {
		// Collect every function literal up front; the decl walks mark the
		// ones they reach (inline, go, defer) and the sweep below checks
		// escaping literals — sink closures, stored handlers — as their own
		// scopes.
		var lits []*ast.FuncLit
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
			return true
		})
		walked := make(map[*ast.FuncLit]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pkg: pkg, cs: cs, fset: mod.Fset, report: report, walked: walked}
			w.walkScope(fd.Body)
		}
		for _, lit := range lits {
			if walked[lit] {
				continue
			}
			walked[lit] = true
			w := &lockWalker{pkg: pkg, cs: cs, fset: mod.Fset, report: report, walked: walked}
			w.walkScope(lit.Body)
		}
	}
}

// heldLock is one acquired mutex in the walker's state.
type heldLock struct {
	pos   token.Pos // acquisition site
	rlock bool
	n     int // recursive RLock depth
	seq   int // acquisition order; the newest lock gets the blame
}

// lockState maps a lock's receiver expression ("s.mu") to its hold info.
type lockState map[string]heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held on both paths, at the shallower depth.
func (s lockState) intersect(o lockState) lockState {
	out := make(lockState)
	for k, v := range s {
		if ov, ok := o[k]; ok {
			if ov.n < v.n {
				v = ov
			}
			out[k] = v
		}
	}
	return out
}

// lockWalker carries one scope's walk: a function body analyzed in source
// order with mutable lock state.
type lockWalker struct {
	pkg    *Package
	cs     *callSummaries
	fset   *token.FileSet
	report func(pos token.Pos, msg string)
	walked map[*ast.FuncLit]bool

	held     lockState
	seq      int
	reported map[string]bool // lockKey + kind, first finding wins
}

func (w *lockWalker) walkScope(body *ast.BlockStmt) {
	w.held = make(lockState)
	w.reported = make(map[string]bool)
	w.walkStmts(body.List)
}

func (w *lockWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.SendStmt:
		w.violate(s.Arrow, opChan, "channel send")
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkBranches(s.Body, s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmts(s.Body.List)
		w.walkStmt(s.Post)
	case *ast.RangeStmt:
		if t := w.pkg.Info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.violate(s.For, opChan, "range over a channel")
			}
		}
		w.walkExpr(s.X)
		w.walkStmts(s.Body.List)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.violate(s.Select, opChan, "select with no default clause")
		}
		// Comm headers are covered by the verdict above (or non-blocking
		// when a default exists); the case bodies run under the same locks.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(e)
				}
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		// The goroutine does not block its spawner; its body is a fresh
		// scope (it shares no lock *ownership* with the caller).
		w.walkArgs(s.Call)
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.freshScope(lit)
		}
	case *ast.DeferStmt:
		// Deferred calls run at return, when the walked lock state no
		// longer applies. Deferred unlocks keep the lock held for the rest
		// of the scope — exactly the dynamic behavior. Other deferred work
		// is checked as its own scope.
		if key, locks, _, ok := mutexOp(w.pkg.Info, s.Call); ok && !locks {
			// defer X.Unlock(): intentionally nothing — held to scope end.
			_ = key
		} else {
			w.walkArgs(s.Call)
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				w.freshScope(lit)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	}
}

// walkBranches analyzes if/else with cloned lock state so an early-return
// branch ("if closed { mu.Unlock(); return }") does not leak its unlock
// into the fallthrough path.
func (w *lockWalker) walkBranches(body *ast.BlockStmt, els ast.Stmt) {
	saved := w.held
	bodyState := saved.clone()
	w.held = bodyState
	w.walkStmts(body.List)
	bodyState = w.held
	bodyTerm := terminates(body)

	elseState := saved.clone()
	elseTerm := false
	if els != nil {
		w.held = elseState
		w.walkStmt(els)
		elseState = w.held
		elseTerm = stmtTerminates(els)
	}
	switch {
	case bodyTerm && elseTerm:
		w.held = saved
	case bodyTerm:
		w.held = elseState
	case elseTerm:
		w.held = bodyState
	default:
		w.held = bodyState.intersect(elseState)
	}
}

// terminates reports whether a block's last statement leaves the scope.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.walkCall(e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.violate(e.OpPos, opChan, "channel receive")
		}
		w.walkExpr(e.X)
	case *ast.BinaryExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Y)
	case *ast.ParenExpr:
		w.walkExpr(e.X)
	case *ast.SelectorExpr:
		w.walkExpr(e.X)
	case *ast.IndexExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Index)
	case *ast.SliceExpr:
		w.walkExpr(e.X)
		w.walkExpr(e.Low)
		w.walkExpr(e.High)
		w.walkExpr(e.Max)
	case *ast.StarExpr:
		w.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key)
		w.walkExpr(e.Value)
	case *ast.FuncLit:
		// Escaping literal: checked by the file sweep as its own scope.
	}
}

func (w *lockWalker) walkArgs(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.walkExpr(a)
	}
}

// walkCall handles the four call shapes: mutex ops mutate lock state,
// inline literals are walked under the current state, static callees are
// judged by their transitive summaries, and remaining func-typed values
// are caller-supplied callbacks.
func (w *lockWalker) walkCall(call *ast.CallExpr) {
	info := w.pkg.Info
	if key, locks, rlock, ok := mutexOp(info, call); ok {
		if locks {
			h := w.held[key]
			w.seq++
			w.held[key] = heldLock{pos: call.Lparen, rlock: rlock, n: h.n + 1, seq: w.seq}
		} else {
			h, held := w.held[key]
			if held {
				if h.n <= 1 {
					delete(w.held, key)
				} else {
					h.n--
					w.held[key] = h
				}
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.walkExpr(sel.X)
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Invoked where defined: runs here, under these locks.
		w.walked[lit] = true
		w.walkArgs(call)
		w.walkStmts(lit.Body.List)
		return
	}
	if fn := calleeOf(info, call); fn != nil {
		if k, what, ok := classifyStdlibCall(fn); ok {
			if lockholdBanned.has(k) {
				w.violate(call.Lparen, k, what+" ("+k.String()+")")
			}
		} else if sum := w.cs.Lookup(fn); sum != nil {
			if k, ok := sum.firstKind(lockholdBanned); ok {
				w.violate(call.Lparen, k,
					fmt.Sprintf("call to %s, which %s (%s)", funcDisplayName(fn), sum.Explain(k), k))
			}
		}
		w.walkArgs(call)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.walkExpr(sel.X)
		}
		return
	}
	// Builtin, conversion, or func value.
	switch calleeObject(info, ast.Unparen(call.Fun)).(type) {
	case *types.Builtin, *types.TypeName, *types.Nil:
		w.walkArgs(call)
		return
	}
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		w.walkArgs(call)
		return
	}
	if t := info.TypeOf(call.Fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			w.violate(call.Lparen, opCallback,
				fmt.Sprintf("caller-supplied func %s invoked", types.ExprString(ast.Unparen(call.Fun))))
		}
	}
	w.walkArgs(call)
}

// freshScope checks a go/defer literal as an independent function: no
// caller locks are owned by it, but locks it takes itself are enforced.
func (w *lockWalker) freshScope(lit *ast.FuncLit) {
	w.walked[lit] = true
	sub := &lockWalker{pkg: w.pkg, cs: w.cs, fset: w.fset, report: w.report, walked: w.walked}
	sub.walkScope(lit.Body)
}

// violate reports one banned operation under the newest held lock,
// deduplicated per (lock, kind) within the scope.
func (w *lockWalker) violate(pos token.Pos, k opKind, desc string) {
	if len(w.held) == 0 {
		return
	}
	blameKey := ""
	blame := heldLock{seq: -1}
	for key, h := range w.held {
		if h.seq > blame.seq {
			blameKey, blame = key, h
		}
	}
	dedup := fmt.Sprintf("%s|%d", blameKey, k)
	if w.reported[dedup] {
		return
	}
	w.reported[dedup] = true
	verb := "Lock"
	if blame.rlock {
		verb = "RLock"
	}
	acq := w.fset.Position(blame.pos)
	w.report(pos, fmt.Sprintf(
		"%s while %s is held (%s at %s:%d); blocking ops, IO, and callbacks stall every contender — move this outside the critical section",
		desc, blameKey, verb, shortBase(acq.Filename), acq.Line))
}

// shortBase trims a path to its final element for in-message positions.
func shortBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// mutexOp classifies X.Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex.
// key is the receiver expression's source text ("s.mu"); locks is true for
// acquisition, rlock for the read forms.
func mutexOp(info *types.Info, call *ast.CallExpr) (key string, locks, rlock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false, false, false
	}
	name := fn.Name()
	switch name {
	case "Lock", "Unlock":
		if !isMethodOn(fn, "sync", "Mutex", name) && !isMethodOn(fn, "sync", "RWMutex", name) {
			return "", false, false, false
		}
	case "RLock", "RUnlock":
		if !isMethodOn(fn, "sync", "RWMutex", name) {
			return "", false, false, false
		}
	default:
		return "", false, false, false
	}
	return types.ExprString(sel.X), name == "Lock" || name == "RLock", name[0] == 'R', true
}
