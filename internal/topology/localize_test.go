package topology

import (
	"testing"
)

func TestLocalizeDeepestFindsNeighbourhood(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	s.ConsumerReported["C4"] = 0 // theft under N3
	bc := DefaultChecker()
	inv, err := LocalizeDeepest(tr, bc, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.DeepestFailures) != 1 || inv.DeepestFailures[0] != "N3" {
		t.Fatalf("deepest failures = %v, want [N3]", inv.DeepestFailures)
	}
	// Suspects are exactly N3's consumers; N2's subtree is exonerated.
	want := map[string]bool{"C4": true, "C5": true}
	if len(inv.Suspects) != len(want) {
		t.Fatalf("suspects = %v", inv.Suspects)
	}
	for _, id := range inv.Suspects {
		if !want[id] {
			t.Errorf("unexpected suspect %s", id)
		}
	}
}

func TestLocalizeDeepestHonestGrid(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	inv, err := LocalizeDeepest(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Suspects) != 0 || len(inv.DeepestFailures) != 0 {
		t.Errorf("honest grid should have no suspects: %+v", inv)
	}
	if inv.NodesVisited != 3 {
		t.Errorf("NodesVisited = %d, want 3 metered internals", inv.NodesVisited)
	}
}

func TestLocalizeDeepestWithCompromisedIntermediateMeter(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	s.ConsumerReported["C4"] = 0
	s.CompromisedMeters["N3"] = true // hides the deep check
	inv, err := LocalizeDeepest(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Now the deepest failure is the root N1; since its child N3's check
	// passes (lying meter), suspicion falls on the rest of the subtree.
	if len(inv.DeepestFailures) != 1 || inv.DeepestFailures[0] != "N1" {
		t.Fatalf("deepest failures = %v, want [N1]", inv.DeepestFailures)
	}
	// N3's subtree is (wrongly) exonerated by its lying meter — exactly why
	// the paper pairs localization with the meter alarms of Section V-B.
	for _, id := range inv.Suspects {
		if id == "C4" || id == "C5" {
			t.Errorf("lying meter should have exonerated N3's subtree in this procedure; got suspect %s", id)
		}
	}
}

func TestServicemanSearchFindsThief(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	s.ConsumerReported["C4"] = 0
	s.CompromisedMeters["N3"] = true // cannot fool a portable meter
	inv, err := ServicemanSearch(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Suspects) != 1 || inv.Suspects[0] != "C4" {
		t.Fatalf("suspects = %v, want [C4]", inv.Suspects)
	}
}

func TestServicemanSearchSkipsCleanSubtrees(t *testing.T) {
	// Wide tree: root with 4 internal children, theft only under one.
	tr := NewTree("root")
	for _, id := range []string{"A", "B", "C", "D"} {
		tr.AddNode("root", id, Internal, false)
		tr.AddNode(id, id+"1", Consumer, false)
		tr.AddNode(id, id+"2", Consumer, false)
	}
	s := NewSnapshot()
	for _, id := range []string{"A1", "A2", "B1", "B2", "C1", "C2", "D1", "D2"} {
		s.ConsumerActual[id] = 2
		s.ConsumerReported[id] = 2
	}
	s.ConsumerReported["C1"] = 0.5

	inv, err := ServicemanSearch(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Suspects) != 1 || inv.Suspects[0] != "C1" {
		t.Fatalf("suspects = %v, want [C1]", inv.Suspects)
	}
	// Visited root + only the failing subtree C: 2 internal nodes.
	if inv.NodesVisited != 2 {
		t.Errorf("NodesVisited = %d, want 2 (clean subtrees skipped)", inv.NodesVisited)
	}
}

func TestServicemanSearchHonest(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	inv, err := ServicemanSearch(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Suspects) != 0 {
		t.Errorf("honest grid: suspects = %v", inv.Suspects)
	}
	if inv.NodesVisited != 1 {
		t.Errorf("NodesVisited = %d, want 1 (root only)", inv.NodesVisited)
	}
}

func TestServicemanSearchBalancedTheftInvisible(t *testing.T) {
	// Attack Class 1B: under-report self, over-report neighbour under the
	// same parent. No aggregate check can see it; the serviceman's per-
	// consumer check at the shared parent can.
	tr, _ := BuildFig2()
	s := honestSnapshot()
	s.ConsumerReported["C4"] = 1
	s.ConsumerReported["C5"] = 8
	inv, err := ServicemanSearch(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	// The root-level aggregate passes, so the search never descends to N3:
	// this documents exactly why balance infrastructure alone cannot stop
	// Class-B attacks and data-driven detection is required (Section VI-B).
	if len(inv.Suspects) != 0 {
		t.Errorf("balanced theft should evade aggregate-driven search, got %v", inv.Suspects)
	}
}

func TestLocalizeDeepestRandomTree(t *testing.T) {
	cfg := DefaultBuilderConfig()
	cfg.Consumers = 30
	cfg.Seed = 7
	tr, err := BuildRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshot()
	for _, c := range tr.Consumers() {
		s.ConsumerActual[c.ID] = 2
		s.ConsumerReported[c.ID] = 2
	}
	for _, n := range tr.Internals() {
		for _, ch := range n.Children {
			if ch.Kind == Loss {
				s.LossCalc[ch.ID] = 0.05
			}
		}
	}
	// Thief at the lexically last consumer.
	thief := tr.Consumers()[len(tr.Consumers())-1].ID
	s.ConsumerReported[thief] = 0

	inv, err := LocalizeDeepest(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range inv.Suspects {
		if id == thief {
			found = true
		}
	}
	if !found {
		t.Errorf("thief %s missing from suspects %v", thief, inv.Suspects)
	}
	// The neighbourhood must be smaller than the whole consumer set
	// (that is the value of the tree structure, Section V-C).
	if len(inv.Suspects) >= len(tr.Consumers()) {
		t.Errorf("localization did not narrow the search: %d of %d consumers suspected",
			len(inv.Suspects), len(tr.Consumers()))
	}

	// The serviceman search must find exactly the thief.
	sv, err := ServicemanSearch(tr, DefaultChecker(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Suspects) != 1 || sv.Suspects[0] != thief {
		t.Errorf("serviceman suspects = %v, want [%s]", sv.Suspects, thief)
	}
}
