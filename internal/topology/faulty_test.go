package topology

import (
	"reflect"
	"testing"
)

// fig2Snapshot builds a balanced Fig. 2 snapshot: every consumer draws
// 2 kW and reports honestly, losses are small and calculated exactly.
func fig2Snapshot(t *testing.T, tr *Tree) *Snapshot {
	t.Helper()
	snap := NewSnapshot()
	for _, c := range tr.Consumers() {
		snap.ConsumerActual[c.ID] = 2
		snap.ConsumerReported[c.ID] = 2
	}
	for _, id := range []string{"L1", "L2", "L3"} {
		snap.LossCalc[id] = 0.05
	}
	return snap
}

// TestLocalizeDeepestClassifiesFaultyMeter: a consumer implicated by a
// failing balance check whose meter delivered almost no trusted readings
// must be referred as faulty, not accused as a theft suspect.
func TestLocalizeDeepestClassifiesFaultyMeter(t *testing.T) {
	tr, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	snap := fig2Snapshot(t, tr)
	// C1's meter is mostly dead: it reported only 30% of the week's slots,
	// and the head-end filled the rest with zeros — the balance check at N2
	// fails, but the cause is the fault, not theft.
	snap.ConsumerReported["C1"] = 0.6
	snap.ConsumerCoverage["C1"] = 0.3

	inv, err := LocalizeDeepest(tr, DefaultChecker(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inv.Faulty, []string{"C1"}) {
		t.Errorf("Faulty = %v, want [C1]", inv.Faulty)
	}
	// C2 and C3 share the implicated neighbourhood but have healthy meters:
	// they stay suspects; C1 must not double-count.
	if !reflect.DeepEqual(inv.Suspects, []string{"C2", "C3"}) {
		t.Errorf("Suspects = %v, want [C2 C3]", inv.Suspects)
	}
}

// TestLocalizeDeepestHealthyCoverageStaysSuspect: the same mismatch with a
// healthy meter is a theft suspect — coverage is the only discriminator.
func TestLocalizeDeepestHealthyCoverageStaysSuspect(t *testing.T) {
	tr, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	snap := fig2Snapshot(t, tr)
	snap.ConsumerReported["C1"] = 0.6
	snap.ConsumerCoverage["C1"] = 0.95

	inv, err := LocalizeDeepest(tr, DefaultChecker(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Faulty) != 0 {
		t.Errorf("Faulty = %v, want none at 95%% coverage", inv.Faulty)
	}
	if !reflect.DeepEqual(inv.Suspects, []string{"C1", "C2", "C3"}) {
		t.Errorf("Suspects = %v, want [C1 C2 C3]", inv.Suspects)
	}
}

// TestServicemanSearchClassifiesFaultyMeter: the Case 2 BFS makes the same
// faulty-vs-compromised call at the consumer service drop.
func TestServicemanSearchClassifiesFaultyMeter(t *testing.T) {
	tr, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	snap := fig2Snapshot(t, tr)
	snap.ConsumerReported["C1"] = 0.6
	snap.ConsumerCoverage["C1"] = 0.1
	snap.ConsumerReported["C4"] = 0.6 // healthy meter, real mismatch

	inv, err := ServicemanSearch(tr, DefaultChecker(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inv.Faulty, []string{"C1"}) {
		t.Errorf("Faulty = %v, want [C1]", inv.Faulty)
	}
	if !reflect.DeepEqual(inv.Suspects, []string{"C4"}) {
		t.Errorf("Suspects = %v, want [C4]", inv.Suspects)
	}
}

// TestCoverageGateDisabled: MinCoverage 0 keeps the historical behaviour —
// everyone implicated is a suspect.
func TestCoverageGateDisabled(t *testing.T) {
	tr, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	snap := fig2Snapshot(t, tr)
	snap.ConsumerReported["C1"] = 0.6
	snap.ConsumerCoverage["C1"] = 0.1

	bc := DefaultChecker()
	bc.MinCoverage = 0
	inv, err := LocalizeDeepest(tr, bc, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Faulty) != 0 {
		t.Errorf("Faulty = %v, want none with the gate disabled", inv.Faulty)
	}
	if !reflect.DeepEqual(inv.Suspects, []string{"C1", "C2", "C3"}) {
		t.Errorf("Suspects = %v, want [C1 C2 C3]", inv.Suspects)
	}
}

// TestSnapshotCoverageDefaults: unknown consumers and nil maps read as
// fully covered.
func TestSnapshotCoverageDefaults(t *testing.T) {
	s := NewSnapshot()
	if got := s.Coverage("anyone"); got != 1 {
		t.Errorf("Coverage(unknown) = %g, want 1", got)
	}
	s.ConsumerCoverage["m"] = 0.4
	if got := s.Coverage("m"); got != 0.4 {
		t.Errorf("Coverage(m) = %g, want 0.4", got)
	}
	var bare Snapshot
	if got := bare.Coverage("x"); got != 1 {
		t.Errorf("nil-map Coverage = %g, want 1", got)
	}
}
