package topology

import (
	"fmt"
	"sort"
)

// Investigation is the outcome of a theft-localization procedure: the set of
// consumer IDs that must be manually inspected, and how much of the grid the
// procedure had to touch.
type Investigation struct {
	// Suspects are the consumer IDs in the neighbourhoods implicated by the
	// failing checks, in sorted order.
	Suspects []string
	// Faulty are implicated consumers whose meters delivered too few
	// trusted readings (coverage below BalanceChecker.MinCoverage) to
	// support a theft accusation. Per Section V-B they are referred for
	// meter repair, not manual theft inspection, and are disjoint from
	// Suspects. Sorted order.
	Faulty []string
	// NodesVisited counts the internal nodes whose state the procedure
	// examined (meters read, or serviceman measurements taken).
	NodesVisited int
	// DeepestFailures are the IDs of the deepest failing metered nodes
	// (Case 1 only).
	DeepestFailures []string
}

// classify routes an implicated consumer to the suspect or faulty set
// depending on its reading coverage.
func classify(bc BalanceChecker, s *Snapshot, id string, suspects, faulty map[string]bool) {
	if s.Coverage(id) < bc.MinCoverage {
		faulty[id] = true
	} else {
		suspects[id] = true
	}
}

// LocalizeDeepest implements Case 1 of Section V-C: with every internal node
// metered, find the deepest nodes reporting a balance-check failure whose
// metered internal children (if any) all pass; the consumers directly under
// those nodes form the neighbourhood to inspect manually.
func LocalizeDeepest(t *Tree, bc BalanceChecker, s *Snapshot) (Investigation, error) {
	results, err := bc.CheckAll(t, s)
	if err != nil {
		return Investigation{}, err
	}
	inv := Investigation{NodesVisited: len(results)}
	suspectSet := make(map[string]bool)
	faultySet := make(map[string]bool)
	for id, r := range results {
		if r.Pass {
			continue
		}
		n, err := t.Node(id)
		if err != nil {
			return Investigation{}, err
		}
		// Deepest failure: no metered internal child also fails.
		deepest := true
		for _, c := range n.Children {
			if c.Kind == Internal && c.Metered {
				if cr, ok := results[c.ID]; ok && !cr.Pass {
					deepest = false
					break
				}
			}
		}
		if !deepest {
			continue
		}
		inv.DeepestFailures = append(inv.DeepestFailures, id)
		// The neighbourhood is the consumers under this node that are not
		// already covered by a passing metered child subtree.
		for _, c := range n.Children {
			if c.Kind == Internal && c.Metered {
				if cr, ok := results[c.ID]; ok && cr.Pass {
					continue // exonerated subtree
				}
			}
			for _, cons := range DescendantConsumers(c) {
				classify(bc, s, cons.ID, suspectSet, faultySet)
			}
		}
	}
	for id := range suspectSet {
		inv.Suspects = append(inv.Suspects, id)
	}
	for id := range faultySet {
		inv.Faulty = append(inv.Faulty, id)
	}
	sort.Strings(inv.Suspects)
	sort.Strings(inv.Faulty)
	sort.Strings(inv.DeepestFailures)
	return inv, nil
}

// ServicemanSearch implements Case 2 of Section V-C: starting at the root, a
// serviceman with a portable (trusted) meter measures each child of the
// current node and compares the measurement against the sum of reported
// smart-meter readings and calculated losses beneath it. Only subtrees whose
// check fails are descended into; passing subtrees are exonerated without
// further visits. The portable meter reads physical demand, so compromised
// balance meters cannot mislead it.
func ServicemanSearch(t *Tree, bc BalanceChecker, s *Snapshot) (Investigation, error) {
	inv := Investigation{}
	suspectSet := make(map[string]bool)
	faultySet := make(map[string]bool)

	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		inv.NodesVisited++

		for _, c := range n.Children {
			switch c.Kind {
			case Loss:
				continue
			case Consumer:
				// A consumer is checked directly: portable measurement of
				// the service drop vs the smart-meter report.
				actual := s.ConsumerActual[c.ID]
				reported := s.ConsumerReported[c.ID]
				tol := bc.AbsTol + bc.RelTol*actual
				if diff := actual - reported; diff > tol || diff < -tol {
					classify(bc, s, c.ID, suspectSet, faultySet)
				}
			case Internal:
				actual := s.ActualDemand(c) // portable meter: physical truth
				agg := s.ReportedAggregate(c)
				tol := bc.AbsTol + bc.RelTol*actual
				if diff := actual - agg; diff > tol || diff < -tol {
					queue = append(queue, c)
				}
			}
		}
	}
	for id := range suspectSet {
		inv.Suspects = append(inv.Suspects, id)
	}
	for id := range faultySet {
		inv.Faulty = append(inv.Faulty, id)
	}
	sort.Strings(inv.Suspects)
	sort.Strings(inv.Faulty)
	return inv, nil
}

// MetersToCompromise returns the number of balance meters Mallory at the
// given consumer must compromise so that no uncompromised metered node on
// her supply path fails its check — every metered ancestor except the root,
// which Section VII-A assumes cannot be compromised. It returns an error if
// the ID does not name a consumer.
func MetersToCompromise(t *Tree, consumerID string) (int, error) {
	n, err := t.Node(consumerID)
	if err != nil {
		return 0, err
	}
	if n.Kind != Consumer {
		return 0, fmt.Errorf("topology: %q is a %v node, not a consumer", consumerID, n.Kind)
	}
	count := 0
	for cur := n.Parent; cur != nil && cur.Parent != nil; cur = cur.Parent {
		if cur.Metered {
			count++
		}
	}
	return count, nil
}
