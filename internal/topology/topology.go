// Package topology models the radial electric distribution grid of Section V
// of the paper as an unbalanced n-ary tree: internal nodes are buses or
// transformers (optionally instrumented with balance meters), and leaf nodes
// are either end-consumers or aggregate network losses. Active power is
// additive, so the demand at an internal node is the sum of the demands of
// its children (Eq. 4).
//
// The package implements the industry balance check (Eqs. 5-6) and the two
// investigation procedures of Section V-C: the deepest-failing-meter scan
// when every internal node is metered (Case 1), and the BFS "serviceman"
// search when some are not (Case 2).
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// NodeKind distinguishes the three node types of the tree representation.
type NodeKind int

// Node kinds per Fig. 2 of the paper.
const (
	Internal NodeKind = iota + 1 // bus/transformer, may host a balance meter
	Consumer                     // end-consumer with a smart meter
	Loss                         // aggregate line/transformer losses
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case Internal:
		return "internal"
	case Consumer:
		return "consumer"
	case Loss:
		return "loss"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// ErrNotFound indicates an unknown node ID.
var ErrNotFound = errors.New("topology: node not found")

// Node is one vertex of the distribution tree.
type Node struct {
	ID       string
	Kind     NodeKind
	Parent   *Node
	Children []*Node

	// Metered reports whether an internal node hosts a balance meter
	// (consumers always have smart meters; loss nodes are never metered —
	// losses are calculated from component specifications, Section V-A).
	Metered bool

	// Trusted marks a meter the utility trusts unconditionally. The paper's
	// evaluation assumes only the root balance meter is trusted
	// (Section VII-A).
	Trusted bool
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Depth returns the number of edges from the root to this node.
func (n *Node) Depth() int {
	d := 0
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		d++
	}
	return d
}

// PathToRoot returns the nodes from this node (inclusive) up to the root.
// Its length minus one is the number of balance meters Mallory must
// compromise to hide from every check on her supply path (Section VI-A).
func (n *Node) PathToRoot() []*Node {
	var path []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		path = append(path, cur)
	}
	return path
}

// Tree is a radial distribution grid.
type Tree struct {
	Root  *Node
	nodes map[string]*Node
}

// NewTree creates a tree with a metered, trusted root node of the given ID.
func NewTree(rootID string) *Tree {
	root := &Node{ID: rootID, Kind: Internal, Metered: true, Trusted: true}
	return &Tree{
		Root:  root,
		nodes: map[string]*Node{rootID: root},
	}
}

// AddNode attaches a new node under the named parent. Consumers and losses
// must be leaves; children may only be added beneath internal nodes.
func (t *Tree) AddNode(parentID, id string, kind NodeKind, metered bool) (*Node, error) {
	switch kind {
	case Internal, Consumer, Loss:
	default:
		return nil, fmt.Errorf("topology: invalid node kind %v", kind)
	}
	parent, ok := t.nodes[parentID]
	if !ok {
		return nil, fmt.Errorf("topology: parent %q: %w", parentID, ErrNotFound)
	}
	if parent.Kind != Internal {
		return nil, fmt.Errorf("topology: cannot attach children to %v node %q", parent.Kind, parentID)
	}
	if _, exists := t.nodes[id]; exists {
		return nil, fmt.Errorf("topology: duplicate node ID %q", id)
	}
	if kind == Loss && metered {
		return nil, fmt.Errorf("topology: loss node %q cannot be metered", id)
	}
	n := &Node{
		ID:      id,
		Kind:    kind,
		Parent:  parent,
		Metered: metered || kind == Consumer, // consumers always carry smart meters
	}
	parent.Children = append(parent.Children, n)
	t.nodes[id] = n
	return n, nil
}

// Node looks a node up by ID.
func (t *Tree) Node(id string) (*Node, error) {
	n, ok := t.nodes[id]
	if !ok {
		return nil, fmt.Errorf("topology: %q: %w", id, ErrNotFound)
	}
	return n, nil
}

// Len returns the total number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Consumers returns every consumer node in deterministic (ID-sorted) order.
func (t *Tree) Consumers() []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Kind == Consumer {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Internals returns every internal node in deterministic (ID-sorted) order.
func (t *Tree) Internals() []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Kind == Internal {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Walk visits every node in pre-order, parents before children, children in
// insertion order. The visit function may return an error to stop early.
func (t *Tree) Walk(visit func(*Node) error) error {
	var rec func(*Node) error
	rec = func(n *Node) error {
		if err := visit(n); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(t.Root)
}

// DescendantConsumers returns the consumer leaves in the subtree rooted at
// n — the set C of Eq. 4 — in ID-sorted order.
func DescendantConsumers(n *Node) []*Node {
	var out []*Node
	var rec func(*Node)
	rec = func(cur *Node) {
		if cur.Kind == Consumer {
			out = append(out, cur)
			return
		}
		for _, c := range cur.Children {
			rec(c)
		}
	}
	rec(n)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DescendantLosses returns the loss leaves in the subtree rooted at n — the
// set L of Eq. 4 — in ID-sorted order.
func DescendantLosses(n *Node) []*Node {
	var out []*Node
	var rec func(*Node)
	rec = func(cur *Node) {
		if cur.Kind == Loss {
			out = append(out, cur)
			return
		}
		for _, c := range cur.Children {
			rec(c)
		}
	}
	rec(n)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Validate checks structural invariants: every non-root node has a parent,
// leaves are consumers or losses, and internal nodes have children.
func (t *Tree) Validate() error {
	return t.Walk(func(n *Node) error {
		if n != t.Root && n.Parent == nil {
			return fmt.Errorf("topology: node %q is detached", n.ID)
		}
		switch n.Kind {
		case Internal:
			if n.IsLeaf() && n != t.Root {
				return fmt.Errorf("topology: internal node %q has no children", n.ID)
			}
		case Consumer, Loss:
			if !n.IsLeaf() {
				return fmt.Errorf("topology: %v node %q must be a leaf", n.Kind, n.ID)
			}
		}
		return nil
	})
}
