package topology

import (
	"fmt"
	"math/rand"
)

// BuilderConfig parameterizes random radial feeder generation. The paper
// reports distribution-grid tree depths between 5 and 135 (Section VI-A);
// generated trees fall in the configured depth range.
type BuilderConfig struct {
	Consumers     int     // number of consumer leaves to place
	MaxFanout     int     // maximum children per internal node (the n of n-ary)
	TargetDepth   int     // approximate tree depth to aim for
	MeterFraction float64 // fraction of internal nodes carrying balance meters
	LossFraction  float64 // demand fraction modeled as losses per internal node
	Seed          int64
}

// DefaultBuilderConfig returns a small but structurally interesting feeder.
func DefaultBuilderConfig() BuilderConfig {
	return BuilderConfig{
		Consumers:     40,
		MaxFanout:     4,
		TargetDepth:   6,
		MeterFraction: 1.0,
		LossFraction:  0.02,
		Seed:          1,
	}
}

// BuildRandom generates a random radial feeder with the requested number of
// consumers. Every internal node gets a loss leaf; balance meters are placed
// on internal nodes with probability MeterFraction (the root is always
// metered and trusted).
func BuildRandom(cfg BuilderConfig) (*Tree, error) {
	if cfg.Consumers <= 0 {
		return nil, fmt.Errorf("topology: need at least one consumer, got %d", cfg.Consumers)
	}
	if cfg.MaxFanout < 2 {
		return nil, fmt.Errorf("topology: max fanout must be >= 2, got %d", cfg.MaxFanout)
	}
	if cfg.TargetDepth < 1 {
		return nil, fmt.Errorf("topology: target depth must be >= 1, got %d", cfg.TargetDepth)
	}
	if cfg.MeterFraction < 0 || cfg.MeterFraction > 1 {
		return nil, fmt.Errorf("topology: meter fraction %g outside [0, 1]", cfg.MeterFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := NewTree("root")

	// Grow internal skeleton: a list of "open" internal nodes that can still
	// take children.
	open := []*Node{t.Root}
	internalCount := 0
	placed := 0
	for placed < cfg.Consumers {
		// Pick an open node biased toward deeper nodes until target depth.
		idx := rng.Intn(len(open))
		parent := open[idx]
		if parent.Depth() < cfg.TargetDepth-1 && rng.Float64() < 0.5 {
			// Extend the skeleton downward.
			internalCount++
			metered := rng.Float64() < cfg.MeterFraction
			child, err := t.AddNode(parent.ID, fmt.Sprintf("N%d", internalCount), Internal, metered)
			if err != nil {
				return nil, err
			}
			open = append(open, child)
			continue
		}
		// Attach consumers to this node up to fanout.
		room := cfg.MaxFanout - len(parent.Children)
		if room <= 0 {
			// Node is full; close it.
			open[idx] = open[len(open)-1]
			open = open[:len(open)-1]
			if len(open) == 0 {
				// Reopen by extending from the root.
				internalCount++
				metered := rng.Float64() < cfg.MeterFraction
				child, err := t.AddNode(t.Root.ID, fmt.Sprintf("N%d", internalCount), Internal, metered)
				if err != nil {
					return nil, err
				}
				open = append(open, child)
			}
			continue
		}
		n := rng.Intn(room) + 1
		if n > cfg.Consumers-placed {
			n = cfg.Consumers - placed
		}
		for i := 0; i < n; i++ {
			placed++
			if _, err := t.AddNode(parent.ID, fmt.Sprintf("C%d", placed), Consumer, true); err != nil {
				return nil, err
			}
		}
	}

	// Give every internal node a loss leaf.
	lossID := 0
	var internals []*Node
	_ = t.Walk(func(n *Node) error {
		if n.Kind == Internal {
			internals = append(internals, n)
		}
		return nil
	})
	for _, n := range internals {
		lossID++
		if _, err := t.AddNode(n.ID, fmt.Sprintf("L%d", lossID), Loss, false); err != nil {
			return nil, err
		}
	}
	// Internal nodes that ended up with only a loss child would be
	// degenerate; validation treats loss-only internals as having children,
	// so just validate the final structure.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildIEEE13 constructs a radial tree modeled on the IEEE 13-node test
// feeder, the standard small distribution benchmark. Bus numbering follows
// the IEEE case (650 is the substation); buses that carry spot loads in the
// IEEE case get consumer leaves here, and every bus gets a loss leaf. All
// internal nodes are metered, the root is trusted.
func BuildIEEE13() (*Tree, error) {
	t := NewTree("650")
	type edge struct{ parent, id string }
	buses := []edge{
		{"650", "632"},
		{"632", "633"},
		{"633", "634"},
		{"632", "645"},
		{"645", "646"},
		{"632", "671"},
		{"671", "692"},
		{"692", "675"},
		{"671", "684"},
		{"684", "611"},
		{"684", "652"},
		{"671", "680"},
	}
	for _, e := range buses {
		if _, err := t.AddNode(e.parent, e.id, Internal, true); err != nil {
			return nil, err
		}
	}
	// Spot-load buses in the IEEE 13-node case.
	loadBuses := []string{"634", "645", "646", "652", "671", "675", "692", "611"}
	for _, bus := range loadBuses {
		if _, err := t.AddNode(bus, "load-"+bus, Consumer, true); err != nil {
			return nil, err
		}
	}
	// Distributed load between 632 and 671 is modeled as a consumer on 632.
	if _, err := t.AddNode("632", "load-632-671", Consumer, true); err != nil {
		return nil, err
	}
	// Loss leaves on every bus.
	lossID := 0
	for _, n := range t.Internals() {
		lossID++
		if _, err := t.AddNode(n.ID, fmt.Sprintf("loss-%d", lossID), Loss, false); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildFig2 constructs the exact example tree of Fig. 2 in the paper:
// root N1 with children N2, N3, L1; N2 with consumers C1-C3 and loss L2;
// N3 with consumers C4, C5 and loss L3.
func BuildFig2() (*Tree, error) {
	t := NewTree("N1")
	steps := []struct {
		parent, id string
		kind       NodeKind
	}{
		{"N1", "N2", Internal},
		{"N1", "N3", Internal},
		{"N1", "L1", Loss},
		{"N2", "C1", Consumer},
		{"N2", "C2", Consumer},
		{"N2", "C3", Consumer},
		{"N2", "L2", Loss},
		{"N3", "C4", Consumer},
		{"N3", "C5", Consumer},
		{"N3", "L3", Loss},
	}
	for _, st := range steps {
		if _, err := t.AddNode(st.parent, st.id, st.kind, st.kind == Internal); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
