package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// ExampleBalanceChecker reproduces the paper's Fig. 2 feeder and shows the
// balance check failing exactly where electricity is being stolen.
func ExampleBalanceChecker() {
	tree, err := topology.BuildFig2()
	if err != nil {
		panic(err)
	}
	snap := topology.NewSnapshot()
	demands := map[string]float64{"C1": 1, "C2": 2, "C3": 3, "C4": 4, "C5": 5}
	for id, d := range demands {
		snap.ConsumerActual[id] = d
		snap.ConsumerReported[id] = d
	}
	snap.ConsumerReported["C4"] = 1 // Mallory under-reports (Class 2A)

	results, err := topology.DefaultChecker().CheckAll(tree, snap)
	if err != nil {
		panic(err)
	}
	for _, id := range []string{"N1", "N2", "N3"} {
		fmt.Printf("%s pass=%v\n", id, results[id].Pass)
	}
	// Output:
	// N1 pass=false
	// N2 pass=true
	// N3 pass=false
}

// ExampleLocalizeDeepest narrows a theft investigation to the neighbourhood
// under the deepest failing balance meter (Section V-C, case 1).
func ExampleLocalizeDeepest() {
	tree, _ := topology.BuildFig2()
	snap := topology.NewSnapshot()
	for i, c := range tree.Consumers() {
		snap.ConsumerActual[c.ID] = float64(i + 1)
		snap.ConsumerReported[c.ID] = float64(i + 1)
	}
	snap.ConsumerReported["C4"] = 0

	inv, err := topology.LocalizeDeepest(tree, topology.DefaultChecker(), snap)
	if err != nil {
		panic(err)
	}
	fmt.Println("inspect:", inv.Suspects)
	// Output:
	// inspect: [C4 C5]
}
