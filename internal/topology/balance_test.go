package topology

import (
	"math"
	"testing"
)

// honestSnapshot builds a snapshot for the Fig. 2 tree where everyone
// reports truthfully.
func honestSnapshot() *Snapshot {
	s := NewSnapshot()
	demands := map[string]float64{"C1": 1, "C2": 2, "C3": 3, "C4": 4, "C5": 5}
	for id, d := range demands {
		s.ConsumerActual[id] = d
		s.ConsumerReported[id] = d
	}
	s.LossCalc["L1"] = 0.1
	s.LossCalc["L2"] = 0.2
	s.LossCalc["L3"] = 0.3
	return s
}

func TestActualDemandAdditive(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	n3, _ := tr.Node("N3")
	// D_N3 = C4 + C5 + L3 = 4 + 5 + 0.3 (Fig. 2 caption).
	if got := s.ActualDemand(n3); math.Abs(got-9.3) > 1e-12 {
		t.Errorf("D_N3 = %g, want 9.3", got)
	}
	// D_N1 = all consumers + all losses.
	if got := s.ActualDemand(tr.Root); math.Abs(got-15.6) > 1e-12 {
		t.Errorf("D_N1 = %g, want 15.6", got)
	}
}

func TestBalanceCheckHonestPasses(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	bc := DefaultChecker()
	results, err := bc.CheckAll(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // N1, N2, N3 all metered
		t.Fatalf("expected 3 checks, got %d", len(results))
	}
	for id, r := range results {
		if !r.Pass {
			t.Errorf("honest grid: check at %s failed with mismatch %g", id, r.Mismatch)
		}
	}
}

func TestBalanceCheckDetectsUnderReport(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	// Mallory at C4 under-reports (Attack Class 2A).
	s.ConsumerReported["C4"] = 1
	bc := DefaultChecker()
	results, _ := bc.CheckAll(tr, s)
	if results["N3"].Pass {
		t.Error("check at N3 must fail when C4 under-reports")
	}
	if results["N1"].Pass {
		t.Error("check at ancestors must fail too (Section V-B)")
	}
	if results["N2"].Pass == false {
		t.Error("check at unrelated subtree N2 must still pass")
	}
	// The mismatch equals the stolen demand.
	if math.Abs(results["N3"].Mismatch-3) > 1e-9 {
		t.Errorf("mismatch = %g, want 3", results["N3"].Mismatch)
	}
}

func TestBalanceCheckCircumventedByOverReport(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	// Attack Class 2B: Mallory at C4 under-reports 3 kW and over-reports
	// neighbour C5 by the same amount (Proposition 2).
	s.ConsumerReported["C4"] = 1
	s.ConsumerReported["C5"] = 8
	bc := DefaultChecker()
	results, _ := bc.CheckAll(tr, s)
	for id, r := range results {
		if !r.Pass {
			t.Errorf("balanced theft should pass every check, but %s failed", id)
		}
	}
}

func TestCompromisedBalanceMeterHidesTheft(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	s.ConsumerReported["C4"] = 1 // theft visible at N3 and N1
	s.CompromisedMeters["N3"] = true
	bc := DefaultChecker()
	results, _ := bc.CheckAll(tr, s)
	if !results["N3"].Pass {
		t.Error("compromised meter at N3 should make its own check pass")
	}
	if results["N1"].Pass {
		t.Error("trusted root meter must still expose the theft")
	}
}

func TestCheckErrors(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	bc := DefaultChecker()
	c4, _ := tr.Node("C4")
	if _, err := bc.Check(c4, s); err == nil {
		t.Error("balance check on a consumer should error")
	}
	unmetered := NewTree("root")
	n, _ := unmetered.AddNode("root", "N1", Internal, false)
	if _, err := bc.Check(n, s); err == nil {
		t.Error("balance check on unmetered node should error")
	}
}

func TestCheckToleranceAbsorbsMeasurementError(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	// 1% aggregate error stays under the 2% relative tolerance.
	s.ConsumerReported["C4"] = 4 * 0.99
	bc := DefaultChecker()
	results, _ := bc.CheckAll(tr, s)
	if !results["N3"].Pass {
		t.Error("1% error should pass under the ±2% tolerance (Section VII-A)")
	}
	// 10% error must fail.
	s.ConsumerReported["C4"] = 4 * 0.9
	results, _ = bc.CheckAll(tr, s)
	if results["N3"].Pass {
		t.Error("10% error must fail")
	}
}

func TestMeterAlarms(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	// A faulty balance meter at N3 (reports garbage via compromised-but-
	// inconsistent modeling): simulate by under-reporting C4 AND
	// compromising N1 — then N3 fails while its parent N1 passes.
	s.ConsumerReported["C4"] = 1
	s.CompromisedMeters["N1"] = true
	bc := DefaultChecker()
	results, _ := bc.CheckAll(tr, s)
	if results["N3"].Pass || !results["N1"].Pass {
		t.Fatalf("setup wrong: N3 pass=%v N1 pass=%v", results["N3"].Pass, results["N1"].Pass)
	}
	alarms := MeterAlarms(tr, results)
	if len(alarms) == 0 {
		t.Fatal("child-fails-parent-passes should raise an alarm (Section V-B)")
	}
	found := false
	for _, a := range alarms {
		if a.NodeID == "N3" {
			found = true
		}
	}
	if !found {
		t.Errorf("alarm should implicate N3: %+v", alarms)
	}
}

func TestMeterAlarmsParentFailsChildrenPass(t *testing.T) {
	// Deeper tree: root -> A -> (B, C); theft hidden by compromising B and C
	// but visible at A.
	tr := NewTree("root")
	tr.AddNode("root", "A", Internal, true)
	tr.AddNode("A", "B", Internal, true)
	tr.AddNode("A", "C", Internal, true)
	tr.AddNode("B", "C1", Consumer, false)
	tr.AddNode("C", "C2", Consumer, false)
	s := NewSnapshot()
	s.ConsumerActual["C1"] = 5
	s.ConsumerActual["C2"] = 5
	s.ConsumerReported["C1"] = 1 // theft
	s.ConsumerReported["C2"] = 5
	s.CompromisedMeters["B"] = true

	bc := DefaultChecker()
	results, _ := bc.CheckAll(tr, s)
	if !results["B"].Pass || !results["C"].Pass || results["A"].Pass {
		t.Fatalf("setup wrong: B=%v C=%v A=%v", results["B"].Pass, results["C"].Pass, results["A"].Pass)
	}
	alarms := MeterAlarms(tr, results)
	foundA := false
	for _, a := range alarms {
		if a.NodeID == "A" {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("parent-fails-children-pass should alarm at A: %+v", alarms)
	}
}

func TestBalanceReadingCompromised(t *testing.T) {
	tr, _ := BuildFig2()
	s := honestSnapshot()
	s.ConsumerReported["C4"] = 0
	n3, _ := tr.Node("N3")
	honest := s.BalanceReading(n3)
	s.CompromisedMeters["N3"] = true
	lying := s.BalanceReading(n3)
	if honest == lying {
		t.Error("compromised meter should report the evading value")
	}
	if lying != s.ReportedAggregate(n3) {
		t.Error("compromised meter reports the aggregate of reported readings")
	}
}
