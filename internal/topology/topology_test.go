package topology

import (
	"errors"
	"strings"
	"testing"
)

func TestNodeKindString(t *testing.T) {
	if Internal.String() != "internal" || Consumer.String() != "consumer" || Loss.String() != "loss" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(NodeKind(42).String(), "42") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestNewTreeRoot(t *testing.T) {
	tr := NewTree("root")
	if tr.Root == nil || tr.Root.ID != "root" {
		t.Fatal("root missing")
	}
	if !tr.Root.Metered || !tr.Root.Trusted {
		t.Error("root must be metered and trusted (Section VII-A)")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestAddNodeRules(t *testing.T) {
	tr := NewTree("root")
	if _, err := tr.AddNode("missing", "x", Consumer, false); !errors.Is(err, ErrNotFound) {
		t.Error("unknown parent should yield ErrNotFound")
	}
	c, err := tr.AddNode("root", "C1", Consumer, false)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Metered {
		t.Error("consumers always carry smart meters")
	}
	if _, err := tr.AddNode("root", "C1", Consumer, false); err == nil {
		t.Error("duplicate ID should error")
	}
	if _, err := tr.AddNode("C1", "x", Consumer, false); err == nil {
		t.Error("consumers cannot have children")
	}
	if _, err := tr.AddNode("root", "L1", Loss, true); err == nil {
		t.Error("loss nodes cannot be metered")
	}
	if _, err := tr.AddNode("root", "bad", NodeKind(9), false); err == nil {
		t.Error("invalid kind should error")
	}
}

func TestDepthAndPath(t *testing.T) {
	tr := NewTree("root")
	n1, _ := tr.AddNode("root", "N1", Internal, true)
	n2, _ := tr.AddNode("N1", "N2", Internal, false)
	c, _ := tr.AddNode("N2", "C1", Consumer, false)
	if tr.Root.Depth() != 0 || n1.Depth() != 1 || n2.Depth() != 2 || c.Depth() != 3 {
		t.Error("depths wrong")
	}
	path := c.PathToRoot()
	if len(path) != 4 || path[0] != c || path[3] != tr.Root {
		t.Error("PathToRoot wrong")
	}
}

func TestConsumersAndInternalsSorted(t *testing.T) {
	tr := NewTree("root")
	tr.AddNode("root", "N2", Internal, true)
	tr.AddNode("root", "N1", Internal, true)
	tr.AddNode("N1", "C2", Consumer, false)
	tr.AddNode("N2", "C1", Consumer, false)
	cons := tr.Consumers()
	if len(cons) != 2 || cons[0].ID != "C1" || cons[1].ID != "C2" {
		t.Errorf("Consumers order: %v", ids(cons))
	}
	ints := tr.Internals()
	if len(ints) != 3 || ints[0].ID != "N1" || ints[2].ID != "root" {
		t.Errorf("Internals order: %v", ids(ints))
	}
}

func ids(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	tr, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	var visited []string
	_ = tr.Walk(func(n *Node) error {
		visited = append(visited, n.ID)
		return nil
	})
	if visited[0] != "N1" || len(visited) != tr.Len() {
		t.Errorf("walk order %v", visited)
	}
	// Pre-order: N2 before its children C1-C3.
	idx := map[string]int{}
	for i, id := range visited {
		idx[id] = i
	}
	if idx["N2"] > idx["C1"] {
		t.Error("parents must precede children")
	}
	// Early stop.
	stop := errors.New("stop")
	count := 0
	err = tr.Walk(func(n *Node) error {
		count++
		if count == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || count != 3 {
		t.Error("Walk should stop early on error")
	}
}

func TestDescendantSets(t *testing.T) {
	tr, _ := BuildFig2()
	n3, _ := tr.Node("N3")
	cons := DescendantConsumers(n3)
	if len(cons) != 2 || cons[0].ID != "C4" || cons[1].ID != "C5" {
		t.Errorf("N3 consumers: %v", ids(cons))
	}
	losses := DescendantLosses(n3)
	if len(losses) != 1 || losses[0].ID != "L3" {
		t.Errorf("N3 losses: %v", ids(losses))
	}
	root := tr.Root
	if len(DescendantConsumers(root)) != 5 {
		t.Error("root should see all 5 consumers")
	}
	if len(DescendantLosses(root)) != 3 {
		t.Error("root should see all 3 losses")
	}
}

func TestValidate(t *testing.T) {
	tr, _ := BuildFig2()
	if err := tr.Validate(); err != nil {
		t.Errorf("Fig. 2 tree should validate: %v", err)
	}
	// Internal node without children fails validation.
	bad := NewTree("root")
	bad.AddNode("root", "N1", Internal, false)
	if err := bad.Validate(); err == nil {
		t.Error("childless internal node should fail validation")
	}
}

func TestNodeLookup(t *testing.T) {
	tr, _ := BuildFig2()
	if _, err := tr.Node("C4"); err != nil {
		t.Error("existing node lookup failed")
	}
	if _, err := tr.Node("nope"); !errors.Is(err, ErrNotFound) {
		t.Error("missing node should yield ErrNotFound")
	}
}

func TestBuildFig2Structure(t *testing.T) {
	tr, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	// 1 root + 2 internal + 5 consumers + 3 losses = 11 nodes.
	if tr.Len() != 11 {
		t.Errorf("Len = %d, want 11", tr.Len())
	}
	n1 := tr.Root
	if len(n1.Children) != 3 {
		t.Errorf("N1 should have 3 children, got %d", len(n1.Children))
	}
}

func TestBuildRandomValidation(t *testing.T) {
	bad := DefaultBuilderConfig()
	bad.Consumers = 0
	if _, err := BuildRandom(bad); err == nil {
		t.Error("zero consumers should error")
	}
	bad = DefaultBuilderConfig()
	bad.MaxFanout = 1
	if _, err := BuildRandom(bad); err == nil {
		t.Error("fanout < 2 should error")
	}
	bad = DefaultBuilderConfig()
	bad.TargetDepth = 0
	if _, err := BuildRandom(bad); err == nil {
		t.Error("zero depth should error")
	}
	bad = DefaultBuilderConfig()
	bad.MeterFraction = 1.5
	if _, err := BuildRandom(bad); err == nil {
		t.Error("meter fraction > 1 should error")
	}
}

func TestBuildRandomProperties(t *testing.T) {
	cfg := DefaultBuilderConfig()
	cfg.Consumers = 60
	tr, err := BuildRandom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("random tree invalid: %v", err)
	}
	if got := len(tr.Consumers()); got != 60 {
		t.Errorf("consumer count = %d, want 60", got)
	}
	// Every internal node has a loss leaf.
	for _, n := range tr.Internals() {
		hasLoss := false
		for _, c := range n.Children {
			if c.Kind == Loss {
				hasLoss = true
				break
			}
		}
		if !hasLoss {
			t.Errorf("internal node %s lacks a loss leaf", n.ID)
		}
	}
	// Determinism.
	tr2, _ := BuildRandom(cfg)
	if tr.Len() != tr2.Len() {
		t.Error("random build must be deterministic by seed")
	}
}

func TestBuildIEEE13(t *testing.T) {
	tr, err := BuildIEEE13()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("IEEE 13 tree invalid: %v", err)
	}
	// 13 buses (650 + 12), 9 consumers, 13 losses.
	if got := len(tr.Internals()); got != 13 {
		t.Errorf("internal nodes = %d, want 13", got)
	}
	if got := len(tr.Consumers()); got != 9 {
		t.Errorf("consumers = %d, want 9", got)
	}
	// The substation is the trusted root.
	if tr.Root.ID != "650" || !tr.Root.Trusted {
		t.Error("650 must be the trusted root")
	}
	// Spot check the IEEE topology: 675 hangs off 692 which hangs off 671.
	n675, err := tr.Node("675")
	if err != nil {
		t.Fatal(err)
	}
	if n675.Parent.ID != "692" || n675.Parent.Parent.ID != "671" {
		t.Error("675-692-671 chain wrong")
	}
	// Feeder depth: 650→632→671→684→611 is 4 edges; the load adds one more.
	load611, err := tr.Node("load-611")
	if err != nil {
		t.Fatal(err)
	}
	if load611.Depth() != 5 {
		t.Errorf("load-611 depth = %d, want 5", load611.Depth())
	}
	// A theft at load-675 localizes to bus 675's neighbourhood.
	snap := NewSnapshot()
	for _, c := range tr.Consumers() {
		snap.ConsumerActual[c.ID] = 3
		snap.ConsumerReported[c.ID] = 3
	}
	for _, n := range tr.Internals() {
		for _, ch := range n.Children {
			if ch.Kind == Loss {
				snap.LossCalc[ch.ID] = 0.02
			}
		}
	}
	snap.ConsumerReported["load-675"] = 0.5
	inv, err := LocalizeDeepest(tr, DefaultChecker(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Suspects) != 1 || inv.Suspects[0] != "load-675" {
		t.Errorf("suspects = %v, want [load-675]", inv.Suspects)
	}
	if len(inv.DeepestFailures) != 1 || inv.DeepestFailures[0] != "675" {
		t.Errorf("deepest failures = %v, want [675]", inv.DeepestFailures)
	}
}

func TestMetersToCompromise(t *testing.T) {
	tr, _ := BuildFig2()
	// C4's path: N3 (metered) -> N1 (root, excluded).
	n, err := MetersToCompromise(tr, "C4")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("MetersToCompromise(C4) = %d, want 1", n)
	}
	if _, err := MetersToCompromise(tr, "N3"); err == nil {
		t.Error("non-consumer should error")
	}
	if _, err := MetersToCompromise(tr, "nope"); err == nil {
		t.Error("unknown node should error")
	}
}
