package topology

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot captures one polling period t of the grid: per-consumer actual
// and reported demands, calculated losses, and the set of compromised
// balance meters. Demands are average kW for the period.
type Snapshot struct {
	// ConsumerActual is D_c(t) for every consumer leaf.
	ConsumerActual map[string]float64
	// ConsumerReported is D'_c(t) for every consumer leaf.
	ConsumerReported map[string]float64
	// LossCalc is the utility-calculated loss demand D_l(t) for each loss
	// leaf; losses are never reported by meters (Section V-A).
	LossCalc map[string]float64
	// CompromisedMeters lists balance meters the attacker controls. A
	// compromised balance meter reports whatever value makes its check
	// pass, which is the attacker's optimal play.
	CompromisedMeters map[string]bool
	// ConsumerCoverage is the fraction of trusted readings each consumer's
	// meter delivered over the polling period (a timeseries.Mask.Coverage
	// value). Consumers absent from the map are assumed fully covered.
	// Localization uses it to implement the Section V-B distinction: a
	// meter that barely reports is *faulty* and referred for repair, not
	// treated as evidence of theft.
	ConsumerCoverage map[string]float64
}

// NewSnapshot returns an empty snapshot ready for population.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		ConsumerActual:    make(map[string]float64),
		ConsumerReported:  make(map[string]float64),
		LossCalc:          make(map[string]float64),
		CompromisedMeters: make(map[string]bool),
		ConsumerCoverage:  make(map[string]float64),
	}
}

// Coverage returns the trusted-reading fraction for a consumer, defaulting
// to 1 (fully covered) when unrecorded.
func (s *Snapshot) Coverage(id string) float64 {
	if s.ConsumerCoverage == nil {
		return 1
	}
	if c, ok := s.ConsumerCoverage[id]; ok {
		return c
	}
	return 1
}

// ActualDemand returns the physical demand D_N(t) at the node: for leaves,
// their own demand; for internal nodes, the sum over the subtree (Eq. 4).
// Missing consumers or losses default to zero demand.
func (s *Snapshot) ActualDemand(n *Node) float64 {
	switch n.Kind {
	case Consumer:
		return s.ConsumerActual[n.ID]
	case Loss:
		return s.LossCalc[n.ID]
	default:
		var sum float64
		for _, c := range n.Children {
			sum += s.ActualDemand(c)
		}
		return sum
	}
}

// ReportedAggregate returns Σ_{c∈C} D'_c(t) + Σ_{l∈L} D_l(t), the right-hand
// side of the balance check (Eq. 5) at the node.
func (s *Snapshot) ReportedAggregate(n *Node) float64 {
	var sum float64
	for _, c := range DescendantConsumers(n) {
		sum += s.ConsumerReported[c.ID]
	}
	for _, l := range DescendantLosses(n) {
		sum += s.LossCalc[l.ID]
	}
	return sum
}

// BalanceReading returns D'_N(t), the value the balance meter at the node
// reports to the utility. An uncompromised meter reports the physical
// demand; a compromised one reports the value that satisfies the check.
func (s *Snapshot) BalanceReading(n *Node) float64 {
	if s.CompromisedMeters[n.ID] {
		return s.ReportedAggregate(n)
	}
	return s.ActualDemand(n)
}

// CheckResult is the outcome of the balance check at one metered node.
type CheckResult struct {
	NodeID   string
	Pass     bool
	Mismatch float64 // D'_N - Σ D'_c - Σ D_l, in kW
	Depth    int
}

// BalanceChecker evaluates balance checks with a mismatch tolerance that
// absorbs smart-meter measurement error (the ±2% figure of Section VII-A)
// and floating-point noise.
type BalanceChecker struct {
	// AbsTol is the absolute mismatch (kW) below which a check passes.
	AbsTol float64
	// RelTol is the mismatch tolerance relative to the node's demand.
	RelTol float64
	// MinCoverage is the trusted-reading fraction below which an implicated
	// consumer's meter is classified as faulty rather than compromised
	// (Section V-B): its readings are too sparse to support a theft
	// accusation, so localization routes it to Investigation.Faulty for
	// repair instead of Suspects. Zero disables the distinction.
	MinCoverage float64
}

// DefaultChecker matches the paper's measurement-accuracy assumption and
// the detect package's coverage gate.
func DefaultChecker() BalanceChecker {
	return BalanceChecker{AbsTol: 1e-6, RelTol: 0.02, MinCoverage: 0.75}
}

// Check runs the balance check (Eq. 5) at one node. The node must be an
// internal node with a meter.
func (bc BalanceChecker) Check(n *Node, s *Snapshot) (CheckResult, error) {
	if n.Kind != Internal {
		return CheckResult{}, fmt.Errorf("topology: balance check on %v node %q", n.Kind, n.ID)
	}
	if !n.Metered {
		return CheckResult{}, fmt.Errorf("topology: node %q has no balance meter", n.ID)
	}
	reading := s.BalanceReading(n)
	agg := s.ReportedAggregate(n)
	mismatch := reading - agg
	tol := bc.AbsTol + bc.RelTol*math.Abs(reading)
	return CheckResult{
		NodeID:   n.ID,
		Pass:     math.Abs(mismatch) <= tol,
		Mismatch: mismatch,
		Depth:    n.Depth(),
	}, nil
}

// CheckAll runs the balance check at every metered internal node and
// returns results keyed by node ID.
func (bc BalanceChecker) CheckAll(t *Tree, s *Snapshot) (map[string]CheckResult, error) {
	results := make(map[string]CheckResult)
	err := t.Walk(func(n *Node) error {
		if n.Kind != Internal || !n.Metered {
			return nil
		}
		r, err := bc.Check(n, s)
		if err != nil {
			return err
		}
		results[n.ID] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Alarm flags a meter inconsistency per Section V-B: a node whose check
// fails while its parent's passes (or vice versa with all children passing)
// implies a faulty or compromised meter.
type Alarm struct {
	NodeID string
	Reason string
}

// MeterAlarms applies the Section V-B consistency rules to a full set of
// check results and returns the alarms raised, sorted by node ID.
func MeterAlarms(t *Tree, results map[string]CheckResult) []Alarm {
	var alarms []Alarm
	for id, r := range results {
		n, err := t.Node(id)
		if err != nil {
			continue
		}
		// Rule 1: W true for a node but false for its metered parent.
		if !r.Pass && n.Parent != nil {
			if pr, ok := results[n.Parent.ID]; ok && pr.Pass {
				alarms = append(alarms, Alarm{
					NodeID: id,
					Reason: fmt.Sprintf("check fails at %s but passes at parent %s: meter at %s or %s is faulty or compromised",
						id, n.Parent.ID, id, n.Parent.ID),
				})
			}
		}
		// Rule 2: W true for a parent whose metered internal children all
		// have W false.
		if !r.Pass {
			internalChildren := 0
			passingChildren := 0
			for _, c := range n.Children {
				if c.Kind == Internal && c.Metered {
					internalChildren++
					if cr, ok := results[c.ID]; ok && cr.Pass {
						passingChildren++
					}
				}
			}
			if internalChildren > 0 && internalChildren == passingChildren {
				alarms = append(alarms, Alarm{
					NodeID: id,
					Reason: fmt.Sprintf("check fails at %s but passes at all metered children: a child meter or %s itself is faulty or compromised",
						id, id),
				})
			}
		}
	}
	sort.Slice(alarms, func(i, j int) bool { return alarms[i].NodeID < alarms[j].NodeID })
	return alarms
}
