package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestLocalizationAlwaysContainsThiefProperty: on any honest-metered random
// feeder with a single thief, deepest-failure localization must include the
// thief among the suspects, and the serviceman search must pin exactly the
// thief.
func TestLocalizationAlwaysContainsThiefProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 30)
		cfg := DefaultBuilderConfig()
		cfg.Consumers = 10 + rng.Intn(40)
		cfg.Seed = rng.Int63()
		cfg.TargetDepth = 3 + rng.Intn(5)
		tree, err := BuildRandom(cfg)
		if err != nil {
			return false
		}
		snap := NewSnapshot()
		for _, c := range tree.Consumers() {
			d := 0.5 + 3*rng.Float64()
			snap.ConsumerActual[c.ID] = d
			snap.ConsumerReported[c.ID] = d
		}
		for _, n := range tree.Internals() {
			for _, ch := range n.Children {
				if ch.Kind == Loss {
					snap.LossCalc[ch.ID] = 0.01
				}
			}
		}
		consumers := tree.Consumers()
		thief := consumers[rng.Intn(len(consumers))].ID
		// The theft must clear the checker's ±2% relative tolerance at
		// every aggregation level — a small thief on a large feeder hides
		// inside measurement error (which is itself a finding the package
		// documents). Make the thief's hidden demand dominate the feeder.
		var feederDemand float64
		for _, c := range tree.Consumers() {
			feederDemand += snap.ConsumerActual[c.ID]
		}
		snap.ConsumerActual[thief] = feederDemand // thief doubles the feeder load...
		snap.ConsumerReported[thief] = 0          // ...and reports none of it

		inv, err := LocalizeDeepest(tree, DefaultChecker(), snap)
		if err != nil {
			return false
		}
		found := false
		for _, id := range inv.Suspects {
			if id == thief {
				found = true
			}
		}
		if !found {
			return false
		}
		sv, err := ServicemanSearch(tree, DefaultChecker(), snap)
		if err != nil {
			return false
		}
		return len(sv.Suspects) == 1 && sv.Suspects[0] == thief
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHonestGridNeverAlarmsProperty: no alarms and no suspects on any
// honest random feeder.
func TestHonestGridNeverAlarmsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 31)
		cfg := DefaultBuilderConfig()
		cfg.Consumers = 5 + rng.Intn(30)
		cfg.Seed = rng.Int63()
		tree, err := BuildRandom(cfg)
		if err != nil {
			return false
		}
		snap := NewSnapshot()
		for _, c := range tree.Consumers() {
			d := rng.Float64() * 5
			snap.ConsumerActual[c.ID] = d
			snap.ConsumerReported[c.ID] = d
		}
		for _, n := range tree.Internals() {
			for _, ch := range n.Children {
				if ch.Kind == Loss {
					snap.LossCalc[ch.ID] = 0.01
				}
			}
		}
		bc := DefaultChecker()
		results, err := bc.CheckAll(tree, snap)
		if err != nil {
			return false
		}
		for _, r := range results {
			if !r.Pass {
				return false
			}
		}
		if len(MeterAlarms(tree, results)) != 0 {
			return false
		}
		inv, err := LocalizeDeepest(tree, bc, snap)
		if err != nil {
			return false
		}
		return len(inv.Suspects) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDemandAdditivityProperty: Eq. 4 — a node's actual demand equals the
// sum of its direct children's actual demands, everywhere in any tree.
func TestDemandAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 32)
		cfg := DefaultBuilderConfig()
		cfg.Consumers = 5 + rng.Intn(25)
		cfg.Seed = rng.Int63()
		tree, err := BuildRandom(cfg)
		if err != nil {
			return false
		}
		snap := NewSnapshot()
		for _, c := range tree.Consumers() {
			snap.ConsumerActual[c.ID] = rng.Float64() * 4
		}
		for _, n := range tree.Internals() {
			for _, ch := range n.Children {
				if ch.Kind == Loss {
					snap.LossCalc[ch.ID] = rng.Float64() * 0.1
				}
			}
		}
		ok := true
		_ = tree.Walk(func(n *Node) error {
			if n.Kind != Internal {
				return nil
			}
			var sum float64
			for _, c := range n.Children {
				sum += snap.ActualDemand(c)
			}
			total := snap.ActualDemand(n)
			if diff := total - sum; diff > 1e-9 || diff < -1e-9 {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
