// Package pricing implements the electricity pricing schemes of Section III
// of the paper — flat-rate, time-of-use (TOU), and real-time pricing (RTP) —
// together with the billing, attacker-profit, and neighbour-loss equations
// (Eqs. 1, 2, 10, 11).
//
// Prices are in $/kWh; demands are average kW per half-hour slot; bills are
// in $ and always include the Δt factor that converts demand to energy.
package pricing

import (
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// SchemeKind enumerates the pricing schemes considered by the paper.
type SchemeKind int

// The pricing schemes of Section III.
const (
	FlatRate SchemeKind = iota + 1
	TimeOfUse
	RealTime
)

// String names the scheme kind.
func (k SchemeKind) String() string {
	switch k {
	case FlatRate:
		return "flat-rate"
	case TimeOfUse:
		return "time-of-use"
	case RealTime:
		return "real-time"
	default:
		return fmt.Sprintf("SchemeKind(%d)", int(k))
	}
}

// Scheme yields the electricity price λ(t) for any half-hour slot t.
// Implementations must be deterministic: price signals are published (flat,
// TOU) or recorded (RTP), so replaying a billing cycle must reproduce the
// same prices.
type Scheme interface {
	// Price returns λ(t) in $/kWh for the slot.
	Price(t timeseries.Slot) float64
	// Kind reports which class of scheme this is.
	Kind() SchemeKind
}

// Flat is a flat-rate scheme: λ(t) is constant for the whole billing cycle.
type Flat struct {
	Rate float64 // $/kWh
}

// Price implements Scheme.
func (f Flat) Price(timeseries.Slot) float64 { return f.Rate }

// Kind implements Scheme.
func (f Flat) Kind() SchemeKind { return FlatRate }

// TOU is a two-period time-of-use scheme with a peak window [PeakStartHour,
// PeakEndHour) each day. The paper's evaluation uses the Electric Ireland
// Nightsaver plan: peak 9:00–24:00 at 0.21 $/kWh, off-peak 0:00–9:00 at
// 0.18 $/kWh (Section VIII-C).
type TOU struct {
	PeakRate      float64 // $/kWh during the peak window
	OffPeakRate   float64 // $/kWh outside the peak window
	PeakStartHour float64 // inclusive, hours in [0, 24)
	PeakEndHour   float64 // exclusive, hours in (0, 24]
}

// Nightsaver returns the TOU scheme used throughout the paper's evaluation.
func Nightsaver() TOU {
	return TOU{
		PeakRate:      0.21,
		OffPeakRate:   0.18,
		PeakStartHour: 9,
		PeakEndHour:   24,
	}
}

// Price implements Scheme.
func (p TOU) Price(t timeseries.Slot) float64 {
	if p.InPeak(t) {
		return p.PeakRate
	}
	return p.OffPeakRate
}

// InPeak reports whether the slot falls inside the daily peak window.
func (p TOU) InPeak(t timeseries.Slot) bool {
	h := t.HourOfDay()
	return h >= p.PeakStartHour && h < p.PeakEndHour
}

// Kind implements Scheme.
func (p TOU) Kind() SchemeKind { return TimeOfUse }

// RTP is a real-time pricing scheme backed by a recorded price trace, one
// price per slot. Slots beyond the trace repeat it cyclically so detectors
// and simulations can run past the recorded horizon.
type RTP struct {
	Trace []float64 // $/kWh per slot
}

// NewRTP validates and constructs a real-time scheme from a price trace.
func NewRTP(trace []float64) (RTP, error) {
	if len(trace) == 0 {
		return RTP{}, fmt.Errorf("pricing: RTP trace must be nonempty")
	}
	for i, p := range trace {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return RTP{}, fmt.Errorf("pricing: invalid RTP price %g at slot %d", p, i)
		}
	}
	t := make([]float64, len(trace))
	copy(t, trace)
	return RTP{Trace: t}, nil
}

// Price implements Scheme.
func (r RTP) Price(t timeseries.Slot) float64 {
	if len(r.Trace) == 0 {
		return math.NaN()
	}
	return r.Trace[int(t)%len(r.Trace)]
}

// Kind implements Scheme.
func (r RTP) Kind() SchemeKind { return RealTime }

// Interface compliance checks.
var (
	_ Scheme = Flat{}
	_ Scheme = TOU{}
	_ Scheme = RTP{}
)

// Bill computes what the utility charges for the demand series under the
// scheme, starting at the given slot offset (Eq. 2's B terms):
//
//	B = Δt · Σ_t λ(t) D(t)
func Bill(s Scheme, demand timeseries.Series, start timeseries.Slot) float64 {
	var total float64
	for i, d := range demand {
		total += s.Price(start+timeseries.Slot(i)) * d
	}
	return total * timeseries.DeltaHours
}

// Profit computes Mallory's monetary advantage α (Eq. 2): the bill on actual
// consumption minus the bill on reported consumption. A successful theft
// attack has Profit > 0 (Eq. 1).
func Profit(s Scheme, actual, reported timeseries.Series, start timeseries.Slot) (float64, error) {
	if len(actual) != len(reported) {
		return math.NaN(), fmt.Errorf("pricing: %w", timeseries.ErrLengthMismatch)
	}
	return Bill(s, actual, start) - Bill(s, reported, start), nil
}

// NeighbourLoss computes L_n (Eq. 10): the amount a victimized neighbour is
// overbilled because the attacker over-reported the neighbour's consumption.
func NeighbourLoss(s Scheme, actual, reported timeseries.Series, start timeseries.Slot) (float64, error) {
	if len(actual) != len(reported) {
		return math.NaN(), fmt.Errorf("pricing: %w", timeseries.ErrLengthMismatch)
	}
	return Bill(s, reported, start) - Bill(s, actual, start), nil
}

// PerceivedBenefit computes ΔB (Eq. 11) for Attack Class 4B: the difference
// between the bill the victim expects under the spoofed prices he observed
// and the bill the utility actually sends under true prices. A positive
// value means the victim believes he benefited even though he lost L_n.
func PerceivedBenefit(trueScheme Scheme, spoofedPrices []float64, reported timeseries.Series, start timeseries.Slot) (float64, error) {
	if len(spoofedPrices) != len(reported) {
		return math.NaN(), fmt.Errorf("pricing: spoofed price trace length %d != reported length %d",
			len(spoofedPrices), len(reported))
	}
	var expected float64
	for i, d := range reported {
		expected += spoofedPrices[i] * d
	}
	expected *= timeseries.DeltaHours
	return expected - Bill(trueScheme, reported, start), nil
}

// StolenEnergy returns the energy (kWh) under-reported by the attacker:
// Δt · Σ max(D(t) - D'(t), 0) summed where actual exceeds reported. For
// pure load-shifting attacks (Class 3A/3B) this can be zero while Profit is
// still positive.
func StolenEnergy(actual, reported timeseries.Series) (float64, error) {
	if len(actual) != len(reported) {
		return math.NaN(), fmt.Errorf("pricing: %w", timeseries.ErrLengthMismatch)
	}
	var kwh float64
	for i := range actual {
		if d := actual[i] - reported[i]; d > 0 {
			kwh += d
		}
	}
	return kwh * timeseries.DeltaHours, nil
}

// NetEnergyDelta returns Δt · Σ (D(t) - D'(t)): positive when consumption is
// under-reported on net, zero for pure swaps.
func NetEnergyDelta(actual, reported timeseries.Series) (float64, error) {
	if len(actual) != len(reported) {
		return math.NaN(), fmt.Errorf("pricing: %w", timeseries.ErrLengthMismatch)
	}
	var kwh float64
	for i := range actual {
		kwh += actual[i] - reported[i]
	}
	return kwh * timeseries.DeltaHours, nil
}
