package pricing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func TestSchemeKindString(t *testing.T) {
	if FlatRate.String() != "flat-rate" || TimeOfUse.String() != "time-of-use" || RealTime.String() != "real-time" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(SchemeKind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestFlatPrice(t *testing.T) {
	f := Flat{Rate: 0.2}
	for _, slot := range []timeseries.Slot{0, 100, 5000} {
		if f.Price(slot) != 0.2 {
			t.Fatal("flat price must be constant")
		}
	}
	if f.Kind() != FlatRate {
		t.Error("kind")
	}
}

func TestNightsaverWindows(t *testing.T) {
	p := Nightsaver()
	if p.Kind() != TimeOfUse {
		t.Error("kind")
	}
	tests := []struct {
		slotOfDay int
		wantPeak  bool
	}{
		{0, false},  // 00:00
		{17, false}, // 08:30
		{18, true},  // 09:00 — peak starts
		{30, true},  // 15:00
		{47, true},  // 23:30
	}
	for _, tt := range tests {
		slot := timeseries.Slot(tt.slotOfDay)
		if got := p.InPeak(slot); got != tt.wantPeak {
			t.Errorf("slot %d InPeak = %v, want %v", tt.slotOfDay, got, tt.wantPeak)
		}
		wantPrice := 0.18
		if tt.wantPeak {
			wantPrice = 0.21
		}
		if got := p.Price(slot); got != wantPrice {
			t.Errorf("slot %d price = %g, want %g", tt.slotOfDay, got, wantPrice)
		}
	}
	// Next day repeats the window.
	if !p.InPeak(timeseries.Slot(48 + 20)) {
		t.Error("peak window must repeat daily")
	}
	if p.TierOf(0) != OffPeakTier || p.TierOf(20) != PeakTier {
		t.Error("TierOf wrong")
	}
}

func TestNewRTPValidation(t *testing.T) {
	if _, err := NewRTP(nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := NewRTP([]float64{0.1, -0.2}); err == nil {
		t.Error("negative price should error")
	}
	if _, err := NewRTP([]float64{math.NaN()}); err == nil {
		t.Error("NaN price should error")
	}
	r, err := NewRTP([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != RealTime {
		t.Error("kind")
	}
	if r.Price(0) != 0.1 || r.Price(1) != 0.2 || r.Price(2) != 0.1 {
		t.Error("RTP trace must repeat cyclically")
	}
	// Construction copies the trace.
	src := []float64{0.5}
	r2, _ := NewRTP(src)
	src[0] = 0.9
	if r2.Price(0) != 0.5 {
		t.Error("NewRTP must copy the trace")
	}
}

func TestBillFlat(t *testing.T) {
	// 4 slots at 2 kW, 0.2 $/kWh: energy 4 kWh, bill $0.8.
	d := timeseries.Series{2, 2, 2, 2}
	got := Bill(Flat{Rate: 0.2}, d, 0)
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("bill = %g, want 0.8", got)
	}
}

func TestBillTOUStartOffset(t *testing.T) {
	p := Nightsaver()
	d := timeseries.Series{1, 1}
	// Starting at slot 17 (08:30): first slot off-peak, second peak.
	got := Bill(p, d, 17)
	want := (0.18 + 0.21) * 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("bill = %g, want %g", got, want)
	}
}

func TestProfitEquationOne(t *testing.T) {
	// Under-reporting yields positive profit (Eq. 1).
	actual := timeseries.Series{2, 2, 2, 2}
	reported := timeseries.Series{1, 1, 1, 1}
	p, err := Profit(Flat{Rate: 0.2}, actual, reported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.4) > 1e-12 {
		t.Errorf("profit = %g, want 0.4", p)
	}
	// Honest reporting: zero profit.
	p, _ = Profit(Flat{Rate: 0.2}, actual, actual, 0)
	if p != 0 {
		t.Errorf("honest profit = %g, want 0", p)
	}
	if _, err := Profit(Flat{}, actual, timeseries.Series{1}, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLoadShiftProfitWithoutTheft(t *testing.T) {
	// Attack Class 3A: swap a peak reading with an off-peak reading. Total
	// energy reported equals total consumed, yet profit is positive.
	p := Nightsaver()
	actual := make(timeseries.Series, timeseries.SlotsPerDay)
	reported := make(timeseries.Series, timeseries.SlotsPerDay)
	actual[20] = 5 // 10:00, peak
	actual[2] = 1  // 01:00, off-peak
	copy(reported, actual)
	reported[20], reported[2] = reported[2], reported[20]

	profit, err := Profit(p, actual, reported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if profit <= 0 {
		t.Errorf("swap profit = %g, want > 0", profit)
	}
	// No net energy was stolen.
	net, _ := NetEnergyDelta(actual, reported)
	if math.Abs(net) > 1e-12 {
		t.Errorf("net energy delta = %g, want 0", net)
	}
	// Expected: (5-1) kW moved from 0.21 to 0.18 tier over 0.5h.
	want := 4 * 0.5 * (0.21 - 0.18)
	if math.Abs(profit-want) > 1e-12 {
		t.Errorf("profit = %g, want %g", profit, want)
	}
}

func TestNeighbourLoss(t *testing.T) {
	actual := timeseries.Series{1, 1}
	reported := timeseries.Series{3, 1} // over-reported at slot 0
	loss, err := NeighbourLoss(Flat{Rate: 0.2}, actual, reported, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 0.5 * 0.2
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("loss = %g, want %g", loss, want)
	}
	if _, err := NeighbourLoss(Flat{}, actual, timeseries.Series{1}, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPerceivedBenefit(t *testing.T) {
	// Victim sees spoofed higher prices; utility bills at true prices.
	reported := timeseries.Series{2, 2}
	spoofed := []float64{0.5, 0.5}
	db, err := PerceivedBenefit(Flat{Rate: 0.2}, spoofed, reported, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5-0.2)*2*0.5 + (0.5-0.2)*2*0.5
	if math.Abs(db-want) > 1e-12 {
		t.Errorf("ΔB = %g, want %g", db, want)
	}
	if db <= 0 {
		t.Error("ΔB must be positive for an inflated spoofed price (Eq. 11)")
	}
	if _, err := PerceivedBenefit(Flat{}, []float64{0.1}, reported, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestStolenEnergy(t *testing.T) {
	actual := timeseries.Series{3, 1, 2}
	reported := timeseries.Series{1, 2, 2}
	kwh, err := StolenEnergy(actual, reported)
	if err != nil {
		t.Fatal(err)
	}
	// Only slot 0 under-reports: 2 kW * 0.5 h = 1 kWh.
	if math.Abs(kwh-1) > 1e-12 {
		t.Errorf("stolen = %g, want 1", kwh)
	}
	if _, err := StolenEnergy(actual, timeseries.Series{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NetEnergyDelta(actual, timeseries.Series{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPropositionOneProperty(t *testing.T) {
	// Proposition 1: positive profit requires under-reporting at some slot.
	scheme := Nightsaver()
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 8 + rng.Intn(40)
		actual := make(timeseries.Series, n)
		reported := make(timeseries.Series, n)
		for i := range actual {
			actual[i] = rng.Float64() * 5
			reported[i] = rng.Float64() * 5
		}
		profit, err := Profit(scheme, actual, reported, 0)
		if err != nil {
			return false
		}
		if profit <= 0 {
			return true // proposition only constrains profitable attacks
		}
		for i := range actual {
			if reported[i] < actual[i] {
				return true // found the required under-report
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
