package pricing_test

import (
	"fmt"

	"repro/internal/pricing"
	"repro/internal/timeseries"
)

// ExampleProfit evaluates the paper's attack condition (Eq. 1): Mallory
// consumes 2 kW all day but reports half of it.
func ExampleProfit() {
	actual := make(timeseries.Series, timeseries.SlotsPerDay)
	reported := make(timeseries.Series, timeseries.SlotsPerDay)
	for i := range actual {
		actual[i] = 2.0
		reported[i] = 1.0
	}
	alpha, err := pricing.Profit(pricing.Nightsaver(), actual, reported, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Mallory's daily profit α = $%.2f\n", alpha)
	// Output:
	// Mallory's daily profit α = $4.77
}

// ExampleTOU_InPeak shows the Nightsaver windows used throughout the
// paper's evaluation.
func ExampleTOU_InPeak() {
	scheme := pricing.Nightsaver()
	morning := timeseries.Slot(10) // 05:00
	evening := timeseries.Slot(40) // 20:00
	fmt.Printf("05:00 peak=%v price=%.2f $/kWh\n", scheme.InPeak(morning), scheme.Price(morning))
	fmt.Printf("20:00 peak=%v price=%.2f $/kWh\n", scheme.InPeak(evening), scheme.Price(evening))
	// Output:
	// 05:00 peak=false price=0.18 $/kWh
	// 20:00 peak=true price=0.21 $/kWh
}
