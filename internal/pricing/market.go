package pricing

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/timeseries"
)

// MarketConfig parameterizes the synthetic real-time price process used for
// Attack Class 4B experiments. The paper has no RTP data for Ireland
// (Section VIII-B3), so this process substitutes a mean-reverting
// diurnal-shaped price: an Ornstein-Uhlenbeck deviation around a daily
// profile, floored at zero. This captures the two properties the attack and
// detector care about — prices vary within the day and are noisy across
// days — without claiming market realism.
type MarketConfig struct {
	BaseRate   float64 // mid-level price, $/kWh
	DailySwing float64 // amplitude of the deterministic diurnal component
	Reversion  float64 // OU mean-reversion per slot in (0, 1]
	Volatility float64 // OU innovation stddev, $/kWh
	Seed       int64
}

// DefaultMarketConfig returns parameters producing prices comparable to the
// paper's Nightsaver band (roughly 0.12-0.30 $/kWh).
func DefaultMarketConfig() MarketConfig {
	return MarketConfig{
		BaseRate:   0.195,
		DailySwing: 0.05,
		Reversion:  0.1,
		Volatility: 0.008,
		Seed:       1,
	}
}

// GenerateRTP simulates a real-time price trace of the given number of slots.
func GenerateRTP(cfg MarketConfig, slots int) (RTP, error) {
	if slots <= 0 {
		return RTP{}, fmt.Errorf("pricing: slots must be positive, got %d", slots)
	}
	if cfg.Reversion <= 0 || cfg.Reversion > 1 {
		return RTP{}, fmt.Errorf("pricing: reversion %g outside (0, 1]", cfg.Reversion)
	}
	if cfg.BaseRate <= 0 {
		return RTP{}, fmt.Errorf("pricing: base rate must be positive, got %g", cfg.BaseRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trace := make([]float64, slots)
	dev := 0.0
	for i := 0; i < slots; i++ {
		slot := timeseries.Slot(i)
		hour := slot.HourOfDay()
		// Diurnal shape: afternoon/evening maximum around 18:00.
		diurnal := cfg.DailySwing * math.Sin(2*math.Pi*(hour-6)/24)
		dev += -cfg.Reversion*dev + cfg.Volatility*rng.NormFloat64()
		p := cfg.BaseRate + diurnal + dev
		if p < 0.01 {
			p = 0.01 // price floor keeps λ(t) positive
		}
		trace[i] = p
	}
	return NewRTP(trace)
}

// PriceTier groups slots by price so distribution-based detectors can
// condition on λ(t) (the "conditioning on prices" extension of the KLD
// detector in Section VIII-F3).
type PriceTier int

// Tier assignment for two-tier TOU schemes.
const (
	OffPeakTier PriceTier = iota
	PeakTier
)

// TierOf maps a slot to its TOU tier.
func (p TOU) TierOf(t timeseries.Slot) PriceTier {
	if p.InPeak(t) {
		return PeakTier
	}
	return OffPeakTier
}

// QuantizeRTP assigns each slot of an RTP trace to one of n equal-population
// price tiers, enabling the multi-distribution KLD conditioning the paper
// proposes for RTP systems. It returns the per-slot tier assignment.
func QuantizeRTP(r RTP, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pricing: tier count must be positive, got %d", n)
	}
	if len(r.Trace) == 0 {
		return nil, fmt.Errorf("pricing: empty RTP trace")
	}
	sorted := make([]float64, len(r.Trace))
	copy(sorted, r.Trace)
	sort.Float64s(sorted)
	// Tier boundaries at equally spaced quantiles.
	bounds := make([]float64, n-1)
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		bounds[i-1] = sorted[idx]
	}
	tiers := make([]int, len(r.Trace))
	for i, p := range r.Trace {
		tier := 0
		for _, b := range bounds {
			if p >= b {
				tier++
			}
		}
		tiers[i] = tier
	}
	return tiers, nil
}
