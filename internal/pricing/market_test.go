package pricing

import (
	"math/rand"
	"testing"

	"repro/internal/timeseries"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGenerateRTPValidation(t *testing.T) {
	cfg := DefaultMarketConfig()
	if _, err := GenerateRTP(cfg, 0); err == nil {
		t.Error("zero slots should error")
	}
	bad := cfg
	bad.Reversion = 0
	if _, err := GenerateRTP(bad, 10); err == nil {
		t.Error("zero reversion should error")
	}
	bad = cfg
	bad.BaseRate = 0
	if _, err := GenerateRTP(bad, 10); err == nil {
		t.Error("zero base rate should error")
	}
}

func TestGenerateRTPProperties(t *testing.T) {
	cfg := DefaultMarketConfig()
	r, err := GenerateRTP(cfg, timeseries.SlotsPerWeek*2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != timeseries.SlotsPerWeek*2 {
		t.Fatalf("trace length = %d", len(r.Trace))
	}
	var lo, hi float64 = r.Trace[0], r.Trace[0]
	for _, p := range r.Trace {
		if p <= 0 {
			t.Fatal("prices must stay positive")
		}
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi <= lo {
		t.Error("RTP prices should actually vary")
	}
	// Determinism from the seed.
	r2, _ := GenerateRTP(cfg, timeseries.SlotsPerWeek*2)
	for i := range r.Trace {
		if r.Trace[i] != r2.Trace[i] {
			t.Fatal("RTP generation must be deterministic for a fixed seed")
		}
	}
	// Different seed, different trace.
	cfg2 := cfg
	cfg2.Seed = 99
	r3, _ := GenerateRTP(cfg2, timeseries.SlotsPerWeek*2)
	same := true
	for i := range r.Trace {
		if r.Trace[i] != r3.Trace[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different traces")
	}
}

func TestQuantizeRTP(t *testing.T) {
	r, err := NewRTP([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := QuantizeRTP(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 8 {
		t.Fatalf("tier assignment length = %d", len(tiers))
	}
	// Lower half in tier 0, upper half in tier 1.
	for i := 0; i < 4; i++ {
		if tiers[i] != 0 {
			t.Errorf("slot %d tier = %d, want 0", i, tiers[i])
		}
	}
	for i := 4; i < 8; i++ {
		if tiers[i] != 1 {
			t.Errorf("slot %d tier = %d, want 1", i, tiers[i])
		}
	}
	if _, err := QuantizeRTP(r, 0); err == nil {
		t.Error("zero tiers should error")
	}
	if _, err := QuantizeRTP(RTP{}, 2); err == nil {
		t.Error("empty trace should error")
	}
	// Single tier: everything is tier 0.
	one, err := QuantizeRTP(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range one {
		if tier != 0 {
			t.Error("single-tier quantization should assign 0 everywhere")
		}
	}
}
