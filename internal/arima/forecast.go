package arima

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Forecast holds h-step-ahead point forecasts and their standard errors.
type Forecast struct {
	Point []float64 // point forecasts, horizon 1..h
	Sigma []float64 // forecast standard errors per horizon
}

// Interval returns the two-sided confidence interval at the given level
// (e.g. 0.95) for horizon step i (0-based).
func (f *Forecast) Interval(level float64, i int) (lo, hi float64) {
	if i < 0 || i >= len(f.Point) || level <= 0 || level >= 1 {
		return math.NaN(), math.NaN()
	}
	z := stats.StdNormalQuantile(0.5 + level/2)
	return f.Point[i] - z*f.Sigma[i], f.Point[i] + z*f.Sigma[i]
}

// PsiWeights returns the first n psi (MA-infinity) weights of the ARIMA
// process, including the effect of differencing. Forecast error variance at
// horizon h is Sigma2 * Σ_{j<h} psi_j².
func (m *Model) PsiWeights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	// Effective AR polynomial phi*(B) with (1-B)^D folded in:
	// c(B) = phi(B) (1-B)^D; y_t = Σ phiStar_i y_{t-i} + e_t + Σ theta e.
	phiPoly := make([]float64, len(m.Phi)+1)
	phiPoly[0] = 1
	for i, c := range m.Phi {
		phiPoly[i+1] = -c
	}
	c := polyMul(phiPoly, diffPoly(m.Order.D))
	phiStar := make([]float64, len(c)-1)
	for i := 1; i < len(c); i++ {
		phiStar[i-1] = -c[i]
	}

	psi := make([]float64, n)
	psi[0] = 1
	for j := 1; j < n; j++ {
		var v float64
		if j-1 < len(m.Theta) {
			v = m.Theta[j-1]
		}
		for i := 1; i <= j && i <= len(phiStar); i++ {
			v += phiStar[i-1] * psi[j-i]
		}
		psi[j] = v
	}
	return psi
}

// ForecastFrom produces h-step-ahead forecasts given the observed history
// (original, undifferenced scale). The history must contain at least
// Order.D + Order.P + Order.Q observations.
func (m *Model) ForecastFrom(history []float64, h int) (*Forecast, error) {
	if h <= 0 {
		return nil, fmt.Errorf("arima: forecast horizon must be positive, got %d", h)
	}
	need := m.Order.D + m.Order.P + m.Order.Q
	if len(history) < need || len(history) < m.Order.D+1 {
		return nil, fmt.Errorf("arima: history of %d too short (need >= %d)", len(history), need)
	}
	w, err := Difference(history, m.Order.D)
	if err != nil {
		return nil, err
	}
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v - m.Mu
	}
	resid := m.residualsZ(z)

	// Iterate the difference equation with future innovations set to zero.
	zExt := append(make([]float64, 0, len(z)+h), z...)
	eExt := append(make([]float64, 0, len(resid)+h), resid...)
	for step := 0; step < h; step++ {
		t := len(zExt)
		var pred float64
		for i, c := range m.Phi {
			if t-1-i >= 0 {
				pred += c * zExt[t-1-i]
			}
		}
		for j, c := range m.Theta {
			if t-1-j >= 0 {
				pred += c * eExt[t-1-j]
			}
		}
		zExt = append(zExt, pred)
		eExt = append(eExt, 0)
	}
	wFut := make([]float64, h)
	for i := 0; i < h; i++ {
		wFut[i] = zExt[len(z)+i] + m.Mu
	}
	var point []float64
	if m.Order.D == 0 {
		point = wFut
	} else {
		point, err = Integrate(wFut, history, m.Order.D)
		if err != nil {
			return nil, err
		}
	}

	psi := m.PsiWeights(h)
	sigma := make([]float64, h)
	var acc float64
	for i := 0; i < h; i++ {
		acc += psi[i] * psi[i]
		sigma[i] = math.Sqrt(m.Sigma2 * acc)
	}
	return &Forecast{Point: point, Sigma: sigma}, nil
}

// Predictor performs rolling one-step-ahead prediction with O(P+Q) work per
// step. The utility-side detectors and the attacker's replica both advance a
// Predictor over the reported readings, so a poisoned history shifts the
// confidence band exactly as the paper describes.
type Predictor struct {
	m *Model

	// yTail holds the last D original-scale observations (oldest first),
	// needed to difference the next observation and to integrate forecasts.
	yTail []float64
	// zLags holds the last P mean-adjusted differenced values, newest first.
	zLags []float64
	// eLags holds the last Q innovations, newest first.
	eLags []float64
	// diffC caches the coefficients of (1-B)^D; shared between clones
	// (read-only after construction).
	diffC []float64

	lastPred float64 // z-scale prediction for the next step
	havePred bool
	steps    int
	sigma    float64
}

// NewPredictor warms a predictor with an observation history on the
// original scale. The history must contain at least D+P+Q+1 observations.
func (m *Model) NewPredictor(history []float64) (*Predictor, error) {
	need := m.Order.D + m.Order.P + m.Order.Q + 1
	if len(history) < need {
		return nil, fmt.Errorf("arima: predictor needs >= %d warm-up observations, got %d", need, len(history))
	}
	w, err := Difference(history, m.Order.D)
	if err != nil {
		return nil, err
	}
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v - m.Mu
	}
	resid := m.residualsZ(z)

	p := &Predictor{
		m:     m,
		yTail: make([]float64, m.Order.D),
		zLags: make([]float64, m.Order.P),
		eLags: make([]float64, m.Order.Q),
		diffC: diffPoly(m.Order.D),
		sigma: math.Sqrt(m.Sigma2),
	}
	copy(p.yTail, history[len(history)-m.Order.D:])
	for i := 0; i < m.Order.P; i++ {
		p.zLags[i] = z[len(z)-1-i]
	}
	for j := 0; j < m.Order.Q; j++ {
		p.eLags[j] = resid[len(resid)-1-j]
	}
	return p, nil
}

// Clone returns an independent predictor with identical rolling state. The
// copy is O(P+Q+D) — far cheaper than re-warming a predictor over the full
// history — and advances separately from the original, so detectors warm one
// predictor on the training series at construction and clone it per
// detection pass (and attackers clone it per trial).
func (p *Predictor) Clone() *Predictor {
	q := *p
	q.yTail = append([]float64(nil), p.yTail...)
	q.zLags = append([]float64(nil), p.zLags...)
	q.eLags = append([]float64(nil), p.eLags...)
	return &q
}

// PredictNext returns the one-step-ahead point forecast and its standard
// error on the original scale.
func (p *Predictor) PredictNext() (point, sigma float64) {
	var zPred float64
	for i, c := range p.m.Phi {
		zPred += c * p.zLags[i]
	}
	for j, c := range p.m.Theta {
		zPred += c * p.eLags[j]
	}
	p.lastPred = zPred
	p.havePred = true

	w := zPred + p.m.Mu
	return p.integrateOne(w), p.sigma
}

// integrateOne maps a differenced-scale value to the original scale using
// the stored tail.
func (p *Predictor) integrateOne(w float64) float64 {
	d := p.m.Order.D
	if d == 0 {
		return w
	}
	// y_t = w_t - Σ_{k=1..d} c_k y_{t-k}, with c = coefficients of (1-B)^d.
	c := p.diffC
	y := w
	for k := 1; k <= d; k++ {
		y -= c[k] * p.yTail[len(p.yTail)-k]
	}
	return y
}

// Observe advances the predictor with the actual (reported) observation on
// the original scale, updating lag and innovation state.
func (p *Predictor) Observe(y float64) {
	d := p.m.Order.D
	// Differenced value of the new observation.
	w := y
	if d > 0 {
		c := p.diffC
		for k := 1; k <= d; k++ {
			w += c[k] * p.yTail[len(p.yTail)-k]
		}
	}
	z := w - p.m.Mu

	var e float64
	if p.havePred {
		e = z - p.lastPred
	}
	p.havePred = false

	// Shift lags (newest first).
	if len(p.zLags) > 0 {
		copy(p.zLags[1:], p.zLags)
		p.zLags[0] = z
	}
	if len(p.eLags) > 0 {
		copy(p.eLags[1:], p.eLags)
		p.eLags[0] = e
	}
	if d > 0 {
		copy(p.yTail, p.yTail[1:])
		p.yTail[len(p.yTail)-1] = y
	}
	p.steps++
}

// Steps returns the number of observations consumed since warm-up.
func (p *Predictor) Steps() int { return p.steps }

// Sigma returns the one-step forecast standard error.
func (p *Predictor) Sigma() float64 { return p.sigma }
