// Package arima implements AutoRegressive Integrated Moving Average models
// from scratch on the Go standard library: differencing, Yule-Walker and
// least-squares AR estimation, Hannan-Rissanen ARMA estimation, AIC-based
// order selection, and h-step forecasting with normal-theory confidence
// intervals.
//
// F-DETA's baseline detectors (the ARIMA detector and the Integrated ARIMA
// detector of ref [2] in the paper) consume exactly two things from this
// package: rolling one-step point forecasts and confidence-interval
// half-widths. Attack generators use the same forecasts to pin injected
// readings to the confidence bound, reproducing the "attack poisons the
// model" feedback loop described in Section VIII-B of the paper.
package arima
