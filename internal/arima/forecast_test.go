package arima

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestPsiWeightsAR1(t *testing.T) {
	m := &Model{Order: Order{P: 1, D: 0, Q: 0}, Phi: []float64{0.5}, Theta: nil, Sigma2: 1}
	psi := m.PsiWeights(5)
	want := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	for i := range want {
		if math.Abs(psi[i]-want[i]) > 1e-12 {
			t.Errorf("psi[%d] = %g, want %g", i, psi[i], want[i])
		}
	}
	if m.PsiWeights(0) != nil {
		t.Error("nonpositive n should give nil")
	}
}

func TestPsiWeightsMA1(t *testing.T) {
	m := &Model{Order: Order{P: 0, D: 0, Q: 1}, Theta: []float64{0.7}, Sigma2: 1}
	psi := m.PsiWeights(4)
	want := []float64{1, 0.7, 0, 0}
	for i := range want {
		if math.Abs(psi[i]-want[i]) > 1e-12 {
			t.Errorf("psi[%d] = %g, want %g", i, psi[i], want[i])
		}
	}
}

func TestPsiWeightsIntegrated(t *testing.T) {
	// ARIMA(0,1,0): psi_j = 1 for all j (random walk).
	m := &Model{Order: Order{P: 0, D: 1, Q: 0}, Sigma2: 1}
	psi := m.PsiWeights(6)
	for i, v := range psi {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("psi[%d] = %g, want 1", i, v)
		}
	}
}

func TestForecastAR1ConvergesToMean(t *testing.T) {
	rng := stats.NewRand(201)
	y := simulateARMA(rng, 2000, 10, []float64{0.6}, nil)
	m, err := Fit(y, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.ForecastFrom(y, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Long-horizon forecast approaches the process mean.
	if math.Abs(fc.Point[49]-10) > 0.5 {
		t.Errorf("long-horizon forecast = %g, want ~10", fc.Point[49])
	}
	// Forecast sigma grows with horizon and converges to process stddev.
	if fc.Sigma[0] >= fc.Sigma[10] {
		t.Error("forecast uncertainty should grow with horizon")
	}
	limit := math.Sqrt(m.Sigma2 / (1 - m.Phi[0]*m.Phi[0]))
	if math.Abs(fc.Sigma[49]-limit) > 0.1*limit {
		t.Errorf("sigma[49] = %g, want ~%g", fc.Sigma[49], limit)
	}
}

func TestForecastRandomWalkSigmaGrowth(t *testing.T) {
	rng := stats.NewRand(202)
	y := make([]float64, 500)
	acc := 0.0
	for i := range y {
		acc += rng.NormFloat64()
		y[i] = acc
	}
	m, err := Fit(y, Order{P: 1, D: 1, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.ForecastFrom(y, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Random-walk forecast sigma grows roughly like sqrt(h).
	ratio := fc.Sigma[24] / fc.Sigma[0]
	if ratio < 3 || ratio > 8 {
		t.Errorf("sigma growth ratio = %g, want ~5 for a random walk", ratio)
	}
}

func TestForecastInterval(t *testing.T) {
	fc := &Forecast{Point: []float64{10}, Sigma: []float64{2}}
	lo, hi := fc.Interval(0.95, 0)
	wantHalf := 1.959963984540054 * 2
	if math.Abs(lo-(10-wantHalf)) > 1e-6 || math.Abs(hi-(10+wantHalf)) > 1e-6 {
		t.Errorf("interval = [%g, %g]", lo, hi)
	}
	if lo, _ := fc.Interval(0.95, 5); !math.IsNaN(lo) {
		t.Error("out-of-range horizon should give NaN")
	}
	if lo, _ := fc.Interval(0, 0); !math.IsNaN(lo) {
		t.Error("invalid level should give NaN")
	}
}

func TestForecastErrors(t *testing.T) {
	m := &Model{Order: Order{P: 1, D: 0, Q: 0}, Phi: []float64{0.5}, Sigma2: 1}
	if _, err := m.ForecastFrom([]float64{1, 2, 3}, 0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := m.ForecastFrom(nil, 1); err == nil {
		t.Error("empty history should error")
	}
}

func TestPredictorMatchesForecastOneStep(t *testing.T) {
	rng := stats.NewRand(203)
	y := simulateARMA(rng, 1500, 3, []float64{0.5, 0.2}, []float64{0.3})
	m, err := Fit(y, Order{P: 2, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	hist := y[:1000]
	p, err := m.NewPredictor(hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1100; i++ {
		point, sigma := p.PredictNext()
		fc, err := m.ForecastFrom(y[:i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(point-fc.Point[0]) > 1e-6 {
			t.Fatalf("step %d: predictor %g vs forecast %g", i, point, fc.Point[0])
		}
		if math.Abs(sigma-fc.Sigma[0]) > 1e-9 {
			t.Fatalf("step %d: sigma %g vs %g", i, sigma, fc.Sigma[0])
		}
		p.Observe(y[i])
	}
	if p.Steps() != 100 {
		t.Errorf("Steps = %d, want 100", p.Steps())
	}
}

func TestPredictorIntegratedMatchesForecast(t *testing.T) {
	rng := stats.NewRand(204)
	inc := simulateARMA(rng, 800, 0.05, []float64{0.4}, nil)
	y := make([]float64, len(inc))
	acc := 50.0
	for i, v := range inc {
		acc += v
		y[i] = acc
	}
	m, err := Fit(y, Order{P: 1, D: 1, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.NewPredictor(y[:500])
	if err != nil {
		t.Fatal(err)
	}
	for i := 500; i < 560; i++ {
		point, _ := p.PredictNext()
		fc, err := m.ForecastFrom(y[:i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(point-fc.Point[0]) > 1e-6 {
			t.Fatalf("step %d: predictor %g vs forecast %g", i, point, fc.Point[0])
		}
		p.Observe(y[i])
	}
}

func TestPredictorWarmupTooShort(t *testing.T) {
	m := &Model{Order: Order{P: 2, D: 1, Q: 1}, Phi: []float64{0.1, 0.1}, Theta: []float64{0.1}, Sigma2: 1}
	if _, err := m.NewPredictor([]float64{1, 2}); err == nil {
		t.Error("insufficient warm-up should error")
	}
}

func TestPredictorOneStepAccuracy(t *testing.T) {
	// One-step predictions on an AR(1) should beat the naive mean forecast.
	rng := stats.NewRand(205)
	y := simulateARMA(rng, 3000, 0, []float64{0.8}, nil)
	m, err := Fit(y, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.NewPredictor(y[:2000])
	if err != nil {
		t.Fatal(err)
	}
	var sseModel, sseMean float64
	for i := 2000; i < 3000; i++ {
		point, _ := p.PredictNext()
		d := y[i] - point
		sseModel += d * d
		sseMean += y[i] * y[i] // true mean is 0
		p.Observe(y[i])
	}
	if sseModel >= sseMean {
		t.Errorf("model SSE %g should beat mean-forecast SSE %g", sseModel, sseMean)
	}
	// Innovation variance of AR(1) with phi=0.8, sigma2=1: one-step MSE ~1.
	mse := sseModel / 1000
	if mse > 1.3 {
		t.Errorf("one-step MSE = %g, want ~1", mse)
	}
}

func TestPredictorSigmaAccessor(t *testing.T) {
	m := &Model{Order: Order{P: 1, D: 0, Q: 0}, Phi: []float64{0.5}, Sigma2: 4}
	hist := make([]float64, 10)
	for i := range hist {
		hist[i] = float64(i % 3)
	}
	p, err := m.NewPredictor(hist)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sigma() != 2 {
		t.Errorf("Sigma = %g, want 2", p.Sigma())
	}
}
