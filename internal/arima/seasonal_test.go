package arima

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSeasonalOrderValidate(t *testing.T) {
	valid := []SeasonalOrder{
		{Order: Order{P: 1}, PS: 1, DS: 0, QS: 0, Season: 48},
		{Order: Order{P: 1, Q: 1}, PS: 0, Season: 0},
		{Order: Order{}, PS: 1, DS: 1, Season: 7},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("%v should be valid: %v", o, err)
		}
	}
	invalid := []SeasonalOrder{
		{Order: Order{}, PS: 0, DS: 0, QS: 0},         // fully degenerate
		{Order: Order{P: 1}, PS: -1, Season: 48},      // negative seasonal
		{Order: Order{P: 1}, PS: 1, Season: 1},        // season too small
		{Order: Order{P: 1}, PS: 5, Season: 48},       // seasonal order too big
		{Order: Order{P: 1}, DS: 2, PS: 1, Season: 4}, // DS beyond range
	}
	for _, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("%v should be invalid", o)
		}
	}
	s := SeasonalOrder{Order: Order{P: 1, D: 0, Q: 1}, PS: 1, DS: 1, QS: 0, Season: 48}
	if !strings.Contains(s.String(), "[48]") {
		t.Errorf("String = %q", s.String())
	}
}

func TestExpandPoly(t *testing.T) {
	// (1 - 0.5B)(1 - 0.3B^2) = 1 - 0.5B - 0.3B^2 + 0.15B^3
	// => coefficients (per-lag, as AR "phi"): [0.5, 0.3, -0.15].
	out := expandPoly([]float64{0.5}, []float64{0.3}, 2)
	want := []float64{0.5, 0.3, -0.15}
	if len(out) != len(want) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("coef[%d] = %g, want %g", i, out[i], want[i])
		}
	}
	// Empty seasonal part: unchanged.
	out = expandPoly([]float64{0.7}, nil, 4)
	if len(out) != 1 || out[0] != 0.7 {
		t.Errorf("non-seasonal passthrough = %v", out)
	}
}

func TestExpandThetaPoly(t *testing.T) {
	// (1 + 0.4B)(1 + 0.2B^2) = 1 + 0.4B + 0.2B^2 + 0.08B^3.
	out := expandThetaPoly([]float64{0.4}, []float64{0.2}, 2)
	want := []float64{0.4, 0.2, 0.08}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("coef[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

// simulateSeasonal generates a seasonal AR process: z_t = phi z_{t-1} +
// phiS z_{t-s} + e_t.
func simulateSeasonal(seed int64, n int, phi, phiS float64, season int, mu float64) []float64 {
	rng := stats.NewRand(seed)
	burn := 10 * season
	z := make([]float64, n+burn)
	for t := 0; t < len(z); t++ {
		v := rng.NormFloat64()
		if t >= 1 {
			v += phi * z[t-1]
		}
		if t >= season {
			v += phiS * z[t-season]
		}
		z[t] = v
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = z[burn+i] + mu
	}
	return out
}

func TestFitSeasonalRecoversCoefficients(t *testing.T) {
	season := 12
	y := simulateSeasonal(301, 6000, 0.5, 0.3, season, 2)
	m, err := FitSeasonal(y, SeasonalOrder{
		Order: Order{P: 1}, PS: 1, Season: season,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.07 {
		t.Errorf("phi = %g, want ~0.5", m.Phi[0])
	}
	if math.Abs(m.PhiS[0]-0.3) > 0.07 {
		t.Errorf("phiS = %g, want ~0.3", m.PhiS[0])
	}
	if math.Abs(m.Sigma2-1) > 0.15 {
		t.Errorf("sigma2 = %g, want ~1", m.Sigma2)
	}
}

func TestFitSeasonalConstant(t *testing.T) {
	y := make([]float64, 500)
	for i := range y {
		y[i] = 4
	}
	m, err := FitSeasonal(y, SeasonalOrder{Order: Order{P: 1}, PS: 1, Season: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sigma2 != 0 || m.Mu != 4 {
		t.Errorf("constant fit: sigma2=%g mu=%g", m.Sigma2, m.Mu)
	}
}

func TestFitSeasonalErrors(t *testing.T) {
	if _, err := FitSeasonal(make([]float64, 10), SeasonalOrder{Order: Order{P: 1}, PS: 1, Season: 48}); err == nil {
		t.Error("short series should error")
	}
	if _, err := FitSeasonal(make([]float64, 100), SeasonalOrder{}); err == nil {
		t.Error("degenerate order should error")
	}
}

func TestSeasonalForecastTracksSeasonality(t *testing.T) {
	// A strongly seasonal series: the seasonal model's forecasts should
	// track the pattern far better than chance.
	season := 24
	n := 4000
	rng := stats.NewRand(302)
	y := make([]float64, n)
	for i := range y {
		y[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(season)) + 0.3*rng.NormFloat64()
	}
	m, err := FitSeasonal(y[:n-season], SeasonalOrder{
		Order: Order{P: 1}, PS: 1, DS: 1, Season: season,
	})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.ForecastFrom(y[:n-season], season)
	if err != nil {
		t.Fatal(err)
	}
	var sse, sseNaive float64
	mean := 10.0
	for i := 0; i < season; i++ {
		d := fc.Point[i] - y[n-season+i]
		sse += d * d
		dn := mean - y[n-season+i]
		sseNaive += dn * dn
	}
	if sse >= sseNaive/4 {
		t.Errorf("seasonal forecast SSE %.1f should beat mean-forecast SSE %.1f by 4x", sse, sseNaive)
	}
	// Sigma is positive and non-decreasing.
	for i := 1; i < season; i++ {
		if fc.Sigma[i]+1e-12 < fc.Sigma[i-1] {
			t.Fatalf("sigma not non-decreasing at %d: %g < %g", i, fc.Sigma[i], fc.Sigma[i-1])
		}
	}
}

func TestSeasonalForecastErrors(t *testing.T) {
	y := simulateSeasonal(303, 600, 0.4, 0.3, 12, 0)
	m, err := FitSeasonal(y, SeasonalOrder{Order: Order{P: 1}, PS: 1, Season: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ForecastFrom(y, 0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := m.ForecastFrom(y[:3], 5); err == nil {
		t.Error("short history should error")
	}
}

func TestSeasonalAIC(t *testing.T) {
	y := simulateSeasonal(304, 2000, 0.5, 0.3, 12, 0)
	m, err := FitSeasonal(y, SeasonalOrder{Order: Order{P: 1}, PS: 1, Season: 12})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.AIC()) {
		t.Error("AIC should be finite for a stochastic fit")
	}
}

func TestSeasonalReducesResidualVarianceOnConsumption(t *testing.T) {
	// On a synthetic consumption-like series (daily seasonality), the
	// seasonal model should leave materially less residual variance than
	// the plain AR model — the practical payoff of seasonal terms.
	season := 48
	rng := stats.NewRand(305)
	n := 4800
	y := make([]float64, n)
	for i := range y {
		hour := float64(i%season) / 2
		base := 0.3 + 0.8*math.Exp(-(hour-19)*(hour-19)/8)
		y[i] = base * math.Exp(0.2*rng.NormFloat64())
	}
	plain, err := Fit(y, Order{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	seasonal, err := FitSeasonal(y, SeasonalOrder{Order: Order{P: 2}, PS: 1, DS: 1, Season: season})
	if err != nil {
		t.Fatal(err)
	}
	if seasonal.Sigma2 >= plain.Sigma2 {
		t.Errorf("seasonal sigma2 %g should beat plain %g on periodic data",
			seasonal.Sigma2, plain.Sigma2)
	}
}
