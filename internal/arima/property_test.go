package arima

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestForecastSigmaMonotoneProperty: forecast standard error never shrinks
// with horizon for any stationary fit.
func TestForecastSigmaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 20)
		phi := 0.9 * (2*rng.Float64() - 1) // stationary AR(1)
		y := simulateARMA(rng, 600, rng.NormFloat64(), []float64{phi}, nil)
		m, err := Fit(y, Order{P: 1})
		if err != nil {
			return true // degenerate draws are out of scope
		}
		fc, err := m.ForecastFrom(y, 30)
		if err != nil {
			return false
		}
		for i := 1; i < len(fc.Sigma); i++ {
			if fc.Sigma[i]+1e-9 < fc.Sigma[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPsiVarianceMatchesForecastProperty: the h-step forecast variance must
// equal Sigma2 times the cumulative sum of squared psi weights.
func TestPsiVarianceMatchesForecastProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 21)
		phi := 0.8 * (2*rng.Float64() - 1)
		theta := 0.8 * (2*rng.Float64() - 1)
		y := simulateARMA(rng, 1500, 0, []float64{phi}, []float64{theta})
		m, err := Fit(y, Order{P: 1, Q: 1})
		if err != nil || m.Sigma2 == 0 {
			return true
		}
		const h = 12
		fc, err := m.ForecastFrom(y, h)
		if err != nil {
			return false
		}
		psi := m.PsiWeights(h)
		var acc float64
		for i := 0; i < h; i++ {
			acc += psi[i] * psi[i]
			want := math.Sqrt(m.Sigma2 * acc)
			if math.Abs(fc.Sigma[i]-want) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPredictorForecastAgreementProperty: rolling one-step predictions must
// agree with fresh one-step forecasts at every position, for random orders.
func TestPredictorForecastAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 22)
		order := Order{P: 1 + rng.Intn(2), D: rng.Intn(2), Q: rng.Intn(2)}
		base := simulateARMA(rng, 900, 0.05, []float64{0.4}, nil)
		y := base
		if order.D == 1 {
			y = make([]float64, len(base))
			acc := 10.0
			for i, v := range base {
				acc += v
				y[i] = acc
			}
		}
		m, err := Fit(y, order)
		if err != nil {
			return true
		}
		p, err := m.NewPredictor(y[:800])
		if err != nil {
			return false
		}
		for i := 800; i < 820; i++ {
			point, _ := p.PredictNext()
			fc, err := m.ForecastFrom(y[:i], 1)
			if err != nil {
				return false
			}
			if math.Abs(point-fc.Point[0]) > 1e-6*(1+math.Abs(point)) {
				return false
			}
			p.Observe(y[i])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFitResidualVarianceProperty: the fitted innovation variance can never
// exceed the raw variance of the differenced series (the model cannot be
// worse than predicting the mean, up to estimation noise).
func TestFitResidualVarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 23)
		y := simulateARMA(rng, 1000, 1, []float64{0.6}, nil)
		m, err := Fit(y, Order{P: 1})
		if err != nil {
			return true
		}
		raw := stats.Variance(y)
		return m.Sigma2 <= raw*1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
