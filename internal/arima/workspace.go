package arima

import (
	"fmt"
	"math"
)

// maxD is the largest differencing order Order.Validate admits; the
// workspace keeps one shared differencing buffer per admissible D.
const maxD = 2

// Workspace holds reusable scratch buffers for repeated model fits. A fit
// through a Workspace performs exactly the same arithmetic, in exactly the
// same order, as the allocating Fit/SelectOrder paths — the buffers only
// replace `make` calls — so results are bit-identical. The population
// trainer gives each worker one Workspace, amortizing the ~3 MB a cold
// SelectOrder allocates per consumer down to O(workers) for the whole run.
//
// A Workspace is NOT safe for concurrent use. Slices returned by the
// *Trained entry points alias workspace memory and are valid only until the
// next fit through the same workspace.
type Workspace struct {
	// Per-D shared differencing state for the series currently being fitted.
	shared    [maxD + 1]diffShared
	sharedErr [maxD + 1]error
	haveDiff  [maxD + 1]bool
	diffBuf   [maxD + 1][]float64

	// Yule-Walker scratch: autocovariances and the Toeplitz system.
	gamma     []float64
	ywRows    [][]float64
	ywBacking []float64
	ywB       []float64

	// Hannan-Rissanen stage-2 scratch: long-AR innovations, the design
	// matrix (one backing array), and the normal equations.
	eHat       []float64
	design     [][]float64
	designData []float64
	target     []float64
	xtx        [][]float64
	xtxBacking []float64
	xty        []float64

	// resid receives the current candidate's conditional residuals;
	// bestResid retains the running best candidate's residuals. The two
	// buffers ping-pong so retaining the winner never copies.
	resid     []float64
	bestResid []float64
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// beginSeries invalidates the per-series differencing cache. Buffers are
// kept for reuse.
func (ws *Workspace) beginSeries() {
	for d := range ws.haveDiff {
		ws.haveDiff[d] = false
		ws.sharedErr[d] = nil
	}
}

// growFloat returns (*buf)[:n], reallocating only when capacity is short.
// The returned slice is NOT zeroed.
func growFloat(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// diffFor differences and demeans the series for order D, computing each
// distinct D once per series (the workspace analogue of newDiffShared).
func (ws *Workspace) diffFor(y []float64, d int) (*diffShared, error) {
	if ws.haveDiff[d] {
		return &ws.shared[d], ws.sharedErr[d]
	}
	ws.haveDiff[d] = true
	if len(y) <= d {
		ws.sharedErr[d] = fmt.Errorf("arima: series of length %d cannot be differenced %d times", len(y), d)
		return nil, ws.sharedErr[d]
	}
	// In-place iterated differencing: at step j only index j-1 is written,
	// so both operands of each subtraction still hold the values the
	// two-buffer Difference implementation reads — identical results.
	buf := growFloat(&ws.diffBuf[d], len(y))
	copy(buf, y)
	for i := 0; i < d; i++ {
		n := len(buf)
		for j := 1; j < n; j++ {
			buf[j-1] = buf[j] - buf[j-1]
		}
		buf = buf[:n-1]
	}
	var mu float64
	for _, v := range buf {
		mu += v
	}
	mu /= float64(len(buf))
	sh := diffShared{n: len(buf), mu: mu, z: buf, allZero: true}
	for i, v := range buf {
		buf[i] = v - mu
		if buf[i] != 0 {
			sh.allZero = false
		}
	}
	ws.shared[d] = sh
	return &ws.shared[d], nil
}

// yuleWalkerWS is yuleWalker sourcing its autocovariance vector and Toeplitz
// system from workspace buffers. The returned coefficient slice aliases the
// workspace and is valid until the next yuleWalkerWS call.
func (ws *Workspace) yuleWalkerWS(w []float64, p int) ([]float64, error) {
	n := len(w)
	if p <= 0 || n <= p {
		return nil, fmt.Errorf("arima: cannot fit AR(%d) to %d observations", p, n)
	}
	gamma := growFloat(&ws.gamma, p+1)
	for lag := 0; lag <= p; lag++ {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += w[i] * w[i+lag]
		}
		gamma[lag] = s / float64(n)
	}
	if gamma[0] <= 0 {
		return nil, fmt.Errorf("arima: zero-variance series")
	}
	backing := growFloat(&ws.ywBacking, p*p)
	if cap(ws.ywRows) < p {
		ws.ywRows = make([][]float64, p)
	}
	a := ws.ywRows[:p]
	b := growFloat(&ws.ywB, p)
	for i := 0; i < p; i++ {
		a[i] = backing[i*p : (i+1)*p : (i+1)*p]
		for j := 0; j < p; j++ {
			lag := i - j
			if lag < 0 {
				lag = -lag
			}
			a[i][j] = gamma[lag]
		}
		b[i] = gamma[i+1]
	}
	return solveLinear(a, b)
}

// arResidualsInto is arResiduals writing into a caller-provided buffer of
// len(w); the warm-up region [0, p) is zeroed explicitly, which a fresh
// allocation got for free.
func arResidualsInto(resid, w []float64, phi []float64) {
	p := len(phi)
	for t := 0; t < p && t < len(w); t++ {
		resid[t] = 0
	}
	for t := p; t < len(w); t++ {
		pred := 0.0
		for i, c := range phi {
			pred += c * w[t-1-i]
		}
		resid[t] = w[t] - pred
	}
}

// leastSquaresWS is leastSquares with the normal-equation matrices sourced
// from workspace buffers. The returned solution aliases the workspace.
func (ws *Workspace) leastSquaresWS(x [][]float64, y []float64) ([]float64, error) {
	rows := len(x)
	if rows == 0 || rows != len(y) {
		return nil, fmt.Errorf("arima: bad regression dimensions (%d rows, %d targets)", rows, len(y))
	}
	cols := len(x[0])
	if cols == 0 {
		return nil, fmt.Errorf("arima: regression needs at least one column")
	}
	if rows < cols {
		return nil, fmt.Errorf("arima: underdetermined regression (%d rows < %d cols)", rows, cols)
	}
	backing := growFloat(&ws.xtxBacking, cols*cols)
	if cap(ws.xtx) < cols {
		ws.xtx = make([][]float64, cols)
	}
	xtx := ws.xtx[:cols]
	for i := 0; i < cols; i++ {
		xtx[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
		for j := range xtx[i] {
			xtx[i][j] = 0
		}
	}
	xty := growFloat(&ws.xty, cols)
	for i := range xty {
		xty[i] = 0
	}
	for r := 0; r < rows; r++ {
		row := x[r]
		if len(row) != cols {
			return nil, fmt.Errorf("arima: ragged design matrix at row %d", r)
		}
		for i := 0; i < cols; i++ {
			xi := row[i]
			if xi == 0 {
				continue
			}
			for j := i; j < cols; j++ {
				xtx[i][j] += xi * row[j]
			}
			xty[i] += xi * y[r]
		}
	}
	const ridge = 1e-8
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge
	}
	return solveLinear(xtx, xty)
}

// fitCandidateWS is fitCandidate with every intermediate buffer drawn from
// the workspace. On success the candidate's conditional residuals are left
// in ws.resid (length sh.n).
func (ws *Workspace) fitCandidateWS(sh *diffShared, order Order) (*Model, error) {
	minN := 3*(order.P+order.Q) + 20
	if sh.n < minN {
		return nil, fmt.Errorf("arima: %d observations after differencing; need at least %d for %v",
			sh.n, minN, order)
	}
	mu, z := sh.mu, sh.z
	if sh.allZero {
		// Constant series: deterministic model, zero innovation variance.
		// Residuals of the zero-coefficient model on an all-zero series are
		// all zero; materialize them so retained-fit consumers see the same
		// state a cold NewPredictor would compute.
		resid := growFloat(&ws.resid, sh.n)
		for i := range resid {
			resid[i] = 0
		}
		return &Model{
			Order:  order,
			Phi:    make([]float64, order.P),
			Theta:  make([]float64, order.Q),
			Mu:     mu,
			Sigma2: 0,
			N:      sh.n,
		}, nil
	}

	var phi, theta []float64
	var err error
	switch {
	case order.Q == 0:
		phi, err = ws.yuleWalkerWS(z, order.P)
		if err != nil {
			return nil, err
		}
		theta = []float64{}
	default:
		// Stage 1: long AR for innovation estimates.
		longP := order.P + order.Q + 5
		if maxP := len(z)/4 - 1; longP > maxP {
			longP = maxP
		}
		if longP < order.P+order.Q {
			longP = order.P + order.Q
		}
		longAR, err := ws.yuleWalkerWS(z, longP)
		if err != nil {
			return nil, err
		}
		eHat := growFloat(&ws.eHat, len(z))
		arResidualsInto(eHat, z, longAR)

		// Stage 2: OLS of z_t on p lags of z and q lags of eHat.
		start := longP + order.Q
		if start < order.P {
			start = order.P
		}
		rows := len(z) - start
		if rows < order.P+order.Q+5 {
			return nil, fmt.Errorf("arima: insufficient data for Hannan-Rissanen stage 2 (%d usable rows)", rows)
		}
		k := order.P + order.Q
		backing := growFloat(&ws.designData, rows*k)
		if cap(ws.design) < rows {
			ws.design = make([][]float64, rows)
		}
		design := ws.design[:rows]
		target := growFloat(&ws.target, rows)
		for r := 0; r < rows; r++ {
			t := start + r
			row := backing[r*k : (r+1)*k : (r+1)*k]
			for i := 0; i < order.P; i++ {
				row[i] = z[t-1-i]
			}
			for j := 0; j < order.Q; j++ {
				row[order.P+j] = eHat[t-1-j]
			}
			design[r] = row
			target[r] = z[t]
		}
		beta, err := ws.leastSquaresWS(design, target)
		if err != nil {
			return nil, fmt.Errorf("arima: Hannan-Rissanen regression: %w", err)
		}
		phi = beta[:order.P]
		theta = beta[order.P:]
	}

	m := &Model{
		Order: order,
		Phi:   clampStationary(phi),
		Theta: clampInvertible(theta),
		Mu:    mu,
		N:     sh.n,
	}

	resid := growFloat(&ws.resid, len(z))
	m.residualsZInto(resid, z)
	var ss float64
	cnt := 0
	warm := order.P + order.Q
	for t := warm; t < len(resid); t++ {
		ss += resid[t] * resid[t]
		cnt++
	}
	if cnt > 0 {
		m.Sigma2 = ss / float64(cnt)
	}
	if m.Sigma2 > 0 {
		m.LogLik = -0.5 * float64(cnt) * (math.Log(2*math.Pi*m.Sigma2) + 1)
	}
	return m, nil
}

// retain swaps the just-fitted candidate's residual buffer into the
// retained slot, protecting it from the next fit. Returns the retained
// residuals, sized to n.
func (ws *Workspace) retain(n int) []float64 {
	ws.resid, ws.bestResid = ws.bestResid, ws.resid
	return ws.bestResid[:n]
}

// TrainedFit couples a fitted model with the fit-time series state — the
// demeaned differenced series and the conditional residual recursion — so
// predictors can be placed anywhere in the training series in O(P+Q+D)
// instead of replaying it. The z and resid slices alias workspace memory:
// a TrainedFit is valid only until the next fit through the same workspace.
type TrainedFit struct {
	Model *Model
	y     []float64 // original series (aliases the caller's slice)
	z     []float64 // demeaned differenced series (workspace memory)
	resid []float64 // conditional residuals on z (workspace memory)
}

// PredictorAt returns a predictor in exactly the state Model.NewPredictor
// would reach warmed on y[:t] — bit-identical, because the differenced
// series, the demeaning mean, and the residual recursion are all
// prefix-stable — without touching more than P+Q+D values. t must be in
// [D+P+Q+1, len(y)].
func (tf *TrainedFit) PredictorAt(t int) (*Predictor, error) {
	m := tf.Model
	need := m.Order.D + m.Order.P + m.Order.Q + 1
	if t < need || t > len(tf.y) {
		return nil, fmt.Errorf("arima: predictor position %d outside [%d, %d]", t, need, len(tf.y))
	}
	p := &Predictor{
		m:     m,
		yTail: make([]float64, m.Order.D),
		zLags: make([]float64, m.Order.P),
		eLags: make([]float64, m.Order.Q),
		diffC: diffPoly(m.Order.D),
		sigma: math.Sqrt(m.Sigma2),
	}
	copy(p.yTail, tf.y[t-m.Order.D:t])
	n := t - m.Order.D // observations after differencing y[:t]
	for i := 0; i < m.Order.P; i++ {
		p.zLags[i] = tf.z[n-1-i]
	}
	for j := 0; j < m.Order.Q; j++ {
		p.eLags[j] = tf.resid[n-1-j]
	}
	return p, nil
}

// FitTrained is Fit through a workspace, additionally returning the
// retained fit state for O(1) predictor placement.
func FitTrained(y []float64, order Order, ws *Workspace) (*TrainedFit, error) {
	if err := order.Validate(); err != nil {
		return nil, err
	}
	ws.beginSeries()
	return ws.fitRetained(y, order)
}

// fitRetained fits one order against the (possibly cached) shared
// differencing state, retaining the residuals.
func (ws *Workspace) fitRetained(y []float64, order Order) (*TrainedFit, error) {
	sh, err := ws.diffFor(y, order.D)
	if err != nil {
		return nil, err
	}
	m, err := ws.fitCandidateWS(sh, order)
	if err != nil {
		return nil, err
	}
	return &TrainedFit{Model: m, y: y, z: sh.z, resid: ws.retain(sh.n)}, nil
}

// FitWS is Fit through a workspace: bit-identical results, O(1) steady-state
// allocations (only the returned Model and its coefficient slices).
func FitWS(y []float64, order Order, ws *Workspace) (*Model, error) {
	tf, err := FitTrained(y, order, ws)
	if err != nil {
		return nil, err
	}
	return tf.Model, nil
}

// SelectOrderTrained is SelectOrder through a workspace: every candidate is
// fitted serially with workspace scratch and the best model is chosen by
// the same index-order reduction, so the selected model is bit-identical to
// SelectOrder's. The winner's fit state is retained for O(1) predictor
// placement.
func SelectOrderTrained(y []float64, candidates []Order, ws *Workspace) (*TrainedFit, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("arima: no candidate orders")
	}
	ws.beginSeries()
	return ws.selectRetained(y, candidates)
}

// selectRetained runs the candidate grid serially with a streaming
// index-order reduction (equivalent to SelectOrder's collect-then-scan:
// candidates are visited in the same order and compared with the same
// rules), retaining the running best candidate's residuals.
func (ws *Workspace) selectRetained(y []float64, candidates []Order) (*TrainedFit, error) {
	var best *TrainedFit
	var firstErr error
	for _, o := range candidates {
		if err := o.Validate(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sh, err := ws.diffFor(y, o.D)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m, err := ws.fitCandidateWS(sh, o)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m.Sigma2 == 0 {
			// Degenerate fit: acceptable only if nothing else works.
			if best == nil {
				best = &TrainedFit{Model: m, y: y, z: sh.z, resid: ws.retain(sh.n)}
			}
			continue
		}
		if best == nil || best.Model.Sigma2 == 0 || m.AIC() < best.Model.AIC() {
			best = &TrainedFit{Model: m, y: y, z: sh.z, resid: ws.retain(sh.n)}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("arima: all candidate orders failed: %w", firstErr)
	}
	return best, nil
}

// SelectOrderWS is SelectOrder through a workspace; see SelectOrderTrained.
func SelectOrderWS(y []float64, candidates []Order, ws *Workspace) (*Model, error) {
	tf, err := SelectOrderTrained(y, candidates, ws)
	if err != nil {
		return nil, err
	}
	return tf.Model, nil
}

// WarmSelection reports how a warm-started order selection was resolved.
type WarmSelection struct {
	// WarmAccepted is true when the warm order was accepted and the
	// candidate grid skipped.
	WarmAccepted bool
	// FitsSkipped is the number of candidate fits the warm start avoided
	// relative to running the full grid.
	FitsSkipped int
}

// SelectOrderWarmTrained performs warm-started order selection: fit the
// warm order first and accept it — skipping the full candidate grid — when
// its AIC is within margin of a cheap screening candidate's (the first grid
// candidate different from the warm order). Screening can be disabled by a
// negative margin, accepting any successful warm fit outright. On any
// evidence against the warm order (fit failure, degenerate fit, or the
// screen beating it by more than margin) the full grid runs, so the result
// degrades to exactly SelectOrderTrained. The differencing cache is shared
// between the warm, screen, and fallback fits.
func SelectOrderWarmTrained(y []float64, candidates []Order, warm Order, margin float64, ws *Workspace) (*TrainedFit, WarmSelection, error) {
	if len(candidates) == 0 {
		return nil, WarmSelection{}, fmt.Errorf("arima: no candidate orders")
	}
	ws.beginSeries()
	// full falls back to the grid. Fits already performed (the warm fit, the
	// screen fit) are passed down as cached models so the fallback does not
	// pay for them twice; the selected order is identical either way because
	// fitting is deterministic in (series, order).
	full := func(known ...knownFit) (*TrainedFit, WarmSelection, error) {
		tf, refits, err := ws.selectRetainedKnown(y, candidates, known)
		return tf, WarmSelection{FitsSkipped: len(known) - refits}, err
	}
	if warm.Validate() != nil {
		return full()
	}
	wf, err := ws.fitRetained(y, warm)
	if err != nil || wf.Model.Sigma2 == 0 {
		return full()
	}
	accept := WarmSelection{WarmAccepted: true, FitsSkipped: len(candidates) - 1}
	if margin < 0 {
		return wf, accept, nil
	}
	var screen *Order
	for i := range candidates {
		if candidates[i] != warm && candidates[i].Validate() == nil {
			screen = &candidates[i]
			break
		}
	}
	if screen == nil {
		// The grid contains nothing but the warm order: it IS the grid.
		return wf, accept, nil
	}
	accept.FitsSkipped--
	sh, err := ws.diffFor(y, screen.D)
	if err != nil {
		return full(knownFit{order: warm, m: wf.Model})
	}
	// Note: this fit overwrites ws.resid but not wf's retained buffer.
	sm, err := ws.fitCandidateWS(sh, *screen)
	if err != nil {
		return full(knownFit{order: warm, m: wf.Model})
	}
	if sm.Sigma2 == 0 || wf.Model.AIC() <= sm.AIC()+margin {
		return wf, accept, nil
	}
	return full(knownFit{order: warm, m: wf.Model}, knownFit{order: *screen, m: sm})
}

// knownFit is a candidate fit the warm-start path already paid for, reused
// by the grid fallback. The model must be non-degenerate (Sigma2 > 0).
type knownFit struct {
	order Order
	m     *Model
}

// selectRetainedKnown is selectRetained with a set of pre-fitted candidates:
// grid entries matching a known order reuse the cached model's AIC instead
// of refitting. Comparison order and rules are exactly selectRetained's, so
// the winning order is identical; only when a cached candidate wins is one
// extra fit paid to rematerialize its retained state. Returns the number of
// fits actually spent on known orders (0 or 1) so callers can account for
// skipped work.
func (ws *Workspace) selectRetainedKnown(y []float64, candidates []Order, known []knownFit) (*TrainedFit, int, error) {
	cached := func(o Order) *Model {
		for _, k := range known {
			if k.order == o {
				return k.m
			}
		}
		return nil
	}
	var best *TrainedFit
	var firstErr error
	for _, o := range candidates {
		if m := cached(o); m != nil {
			// Known fits are non-degenerate, so the degenerate-best rule
			// never applies to them. z/resid stay nil: rematerialized below
			// only if this candidate wins.
			if best == nil || best.Model.Sigma2 == 0 || m.AIC() < best.Model.AIC() {
				best = &TrainedFit{Model: m, y: y}
			}
			continue
		}
		if err := o.Validate(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sh, err := ws.diffFor(y, o.D)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m, err := ws.fitCandidateWS(sh, o)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m.Sigma2 == 0 {
			if best == nil {
				best = &TrainedFit{Model: m, y: y, z: sh.z, resid: ws.retain(sh.n)}
			}
			continue
		}
		if best == nil || best.Model.Sigma2 == 0 || m.AIC() < best.Model.AIC() {
			best = &TrainedFit{Model: m, y: y, z: sh.z, resid: ws.retain(sh.n)}
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("arima: all candidate orders failed: %w", firstErr)
	}
	if best.z == nil {
		// A cached candidate won: refit it once to rebuild the retained
		// series state (deterministic, so the model is bit-identical).
		tf, err := ws.fitRetained(y, best.Model.Order)
		if err != nil {
			return nil, 1, err
		}
		return tf, 1, nil
	}
	return best, 0, nil
}
