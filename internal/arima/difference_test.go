package arima

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDifference(t *testing.T) {
	y := []float64{1, 3, 6, 10}
	d1, err := Difference(y, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Errorf("d1[%d] = %g, want %g", i, d1[i], want[i])
		}
	}
	d2, err := Difference(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 1 {
		t.Errorf("d2 = %v, want [1 1]", d2)
	}
	d0, err := Difference(y, 0)
	if err != nil {
		t.Fatal(err)
	}
	d0[0] = 99
	if y[0] != 1 {
		t.Error("Difference(_, 0) must return a copy")
	}
}

func TestDifferenceErrors(t *testing.T) {
	if _, err := Difference([]float64{1, 2}, -1); err == nil {
		t.Error("negative d should error")
	}
	if _, err := Difference([]float64{1, 2}, 2); err == nil {
		t.Error("series too short should error")
	}
}

func TestSeasonalDifference(t *testing.T) {
	y := []float64{1, 2, 3, 11, 12, 13}
	sd, err := SeasonalDifference(y, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sd {
		if v != 10 {
			t.Errorf("seasonal diff = %v, want all 10", sd)
			break
		}
	}
	if _, err := SeasonalDifference(y, 0); err == nil {
		t.Error("zero season should error")
	}
	if _, err := SeasonalDifference(y, 6); err == nil {
		t.Error("season >= length should error")
	}
}

func TestIntegrateRoundTrip(t *testing.T) {
	rng := stats.NewRand(5)
	for d := 0; d <= 2; d++ {
		y := stats.NormalSample(rng, 50, 10, 3)
		diffed, err := Difference(y, d)
		if err != nil {
			t.Fatal(err)
		}
		// Split: treat first part as history, rest as "future" to rebuild.
		histLen := 20
		tail := y[:histLen]
		future := diffed[histLen-d:]
		rebuilt, err := Integrate(future, tail, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		for i, v := range rebuilt {
			if math.Abs(v-y[histLen+i]) > 1e-9 {
				t.Fatalf("d=%d: rebuilt[%d] = %g, want %g", d, i, v, y[histLen+i])
			}
		}
	}
}

func TestIntegrateErrors(t *testing.T) {
	if _, err := Integrate([]float64{1}, nil, 1); err == nil {
		t.Error("missing tail should error")
	}
	if _, err := Integrate([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative d should error")
	}
}

func TestDifferenceIntegratePropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 10)
		d := rng.Intn(3)
		n := d + 10 + rng.Intn(40)
		y := stats.NormalSample(rng, n, 0, 5)
		diffed, err := Difference(y, d)
		if err != nil {
			return false
		}
		cut := d + 3
		rebuilt, err := Integrate(diffed[cut-d:], y[:cut], d)
		if err != nil {
			return false
		}
		for i, v := range rebuilt {
			if math.Abs(v-y[cut+i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
