package arima

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestChiSquared95KnownValues(t *testing.T) {
	// Reference values: chi2inv(0.95, k).
	cases := map[int]float64{
		5:  11.070,
		10: 18.307,
		20: 31.410,
	}
	for k, want := range cases {
		got := chiSquared95(k)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("chi2_95(%d) = %g, want ~%g", k, got, want)
		}
	}
	if !math.IsNaN(chiSquared95(0)) {
		t.Error("k=0 should be NaN")
	}
}

func TestDiagnoseWellSpecifiedModel(t *testing.T) {
	// Fit the true order to an AR(1): residuals should be white.
	rng := stats.NewRand(401)
	y := simulateARMA(rng, 4000, 3, []float64{0.7}, nil)
	m, err := Fit(y, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Diagnose(y, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !d.WhiteAt05 {
		t.Errorf("well-specified model residuals should be white: %s", d)
	}
	if math.Abs(d.ResidualMean) > 0.1 {
		t.Errorf("residual mean = %g, want ~0", d.ResidualMean)
	}
	if len(d.ACF) != 20 {
		t.Errorf("ACF lags = %d, want 20", len(d.ACF))
	}
	if !strings.Contains(d.String(), "white at 5%") {
		t.Errorf("String = %q", d.String())
	}
}

func TestDiagnoseMisspecifiedModel(t *testing.T) {
	// A strongly seasonal series fitted with a plain AR(1): residuals keep
	// the seasonal structure and fail the whiteness test.
	season := 12
	y := simulateSeasonal(402, 4000, 0.2, 0.75, season, 0)
	m, err := Fit(y, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Diagnose(y, 24)
	if err != nil {
		t.Fatal(err)
	}
	if d.WhiteAt05 {
		t.Errorf("misspecified model residuals should fail whiteness: %s", d)
	}
	// The seasonal lag should carry visible autocorrelation.
	if math.Abs(d.ACF[season-1]) < 0.1 {
		t.Errorf("ACF at seasonal lag = %g, want substantial", d.ACF[season-1])
	}
}

func TestDiagnoseErrors(t *testing.T) {
	m := &Model{Order: Order{P: 1}, Phi: []float64{0.5}, Sigma2: 1}
	if _, err := m.Diagnose(make([]float64, 10), 20); err == nil {
		t.Error("short series should error")
	}
	// Default lag count.
	rng := stats.NewRand(403)
	y := simulateARMA(rng, 500, 0, []float64{0.5}, nil)
	fit, err := Fit(y, Order{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fit.Diagnose(y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ACF) != 20 {
		t.Errorf("default ACF lags = %d, want 20", len(d.ACF))
	}
}
