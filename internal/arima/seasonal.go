package arima

import (
	"fmt"
	"math"
)

// SeasonalOrder specifies a multiplicative seasonal ARIMA
// (p,d,q)×(P,D,Q)_s model. The seasonal polynomial multiplies the
// non-seasonal one: Φ(B^s) φ(B) (1-B)^d (1-B^s)^D y_t = Θ(B^s) θ(B) e_t.
// Electricity consumption has strong daily (s=48) and weekly (s=336)
// seasonality, which plain low-order ARIMA leaves in the residuals.
type SeasonalOrder struct {
	Order
	// PS, DS, QS are the seasonal AR, differencing, and MA orders.
	PS int
	DS int
	QS int
	// Season is the seasonal period in slots (48 = daily, 336 = weekly).
	Season int
}

// Validate checks the seasonal order.
func (o SeasonalOrder) Validate() error {
	if err := o.Order.Validate(); err != nil {
		// A pure seasonal model with zero non-seasonal part is legal.
		if o.PS == 0 && o.QS == 0 && o.DS == 0 {
			return err
		}
	}
	if o.PS < 0 || o.DS < 0 || o.QS < 0 {
		return fmt.Errorf("arima: negative seasonal order in %+v", o)
	}
	if o.PS > 4 || o.QS > 4 || o.DS > 1 {
		return fmt.Errorf("arima: seasonal order (%d,%d,%d) beyond supported range", o.PS, o.DS, o.QS)
	}
	if (o.PS > 0 || o.DS > 0 || o.QS > 0) && o.Season < 2 {
		return fmt.Errorf("arima: seasonal terms require season >= 2, got %d", o.Season)
	}
	return nil
}

// String renders the order in standard notation.
func (o SeasonalOrder) String() string {
	return fmt.Sprintf("ARIMA(%d,%d,%d)(%d,%d,%d)[%d]",
		o.P, o.D, o.Q, o.PS, o.DS, o.QS, o.Season)
}

// SeasonalModel is a fitted seasonal ARIMA model. Internally the seasonal
// and non-seasonal lag polynomials are expanded into a single pair of long
// AR/MA polynomials, so forecasting reuses the non-seasonal machinery.
type SeasonalModel struct {
	SOrder SeasonalOrder
	// Phi/Theta are the non-seasonal coefficients; PhiS/ThetaS seasonal.
	Phi    []float64
	Theta  []float64
	PhiS   []float64
	ThetaS []float64
	Mu     float64
	Sigma2 float64
	N      int

	// expanded holds the single-polynomial equivalent model used for
	// residuals and forecasting.
	expanded *Model
}

// expandPoly merges a non-seasonal coefficient slice c (lags 1..k) and a
// seasonal slice cs (seasonal lags 1..K at period s) into the combined lag
// polynomial coefficients: (1 - Σ c_i B^i)(1 - Σ cs_j B^{js}) expanded,
// returned as coefficient-per-lag (index 0 = lag 1).
func expandPoly(c, cs []float64, season int) []float64 {
	a := make([]float64, len(c)+1)
	a[0] = 1
	for i, v := range c {
		a[i+1] = -v
	}
	b := make([]float64, len(cs)*season+1)
	b[0] = 1
	for j, v := range cs {
		b[(j+1)*season] = -v
	}
	prod := polyMul(a, b)
	out := make([]float64, len(prod)-1)
	for i := 1; i < len(prod); i++ {
		out[i-1] = -prod[i]
	}
	return out
}

// FitSeasonal estimates a seasonal ARIMA model: seasonal and regular
// differencing first, then a Hannan-Rissanen-style regression on both
// regular and seasonal lags of the series and estimated innovations.
func FitSeasonal(y []float64, order SeasonalOrder) (*SeasonalModel, error) {
	if err := order.Validate(); err != nil {
		return nil, err
	}
	w := make([]float64, len(y))
	copy(w, y)
	var err error
	for i := 0; i < order.DS; i++ {
		w, err = SeasonalDifference(w, order.Season)
		if err != nil {
			return nil, err
		}
	}
	w, err = Difference(w, order.D)
	if err != nil {
		return nil, err
	}
	maxLag := order.P + order.PS*order.Season
	maxMALag := order.Q + order.QS*order.Season
	minN := 2*(maxLag+maxMALag) + 30
	if len(w) < minN {
		return nil, fmt.Errorf("arima: %d observations after differencing; need >= %d for %v",
			len(w), minN, order)
	}

	var mu float64
	for _, v := range w {
		mu += v
	}
	mu /= float64(len(w))
	z := make([]float64, len(w))
	allZero := true
	for i, v := range w {
		z[i] = v - mu
		if z[i] != 0 {
			allZero = false
		}
	}
	m := &SeasonalModel{SOrder: order, Mu: mu, N: len(w)}
	if allZero {
		m.Phi = make([]float64, order.P)
		m.Theta = make([]float64, order.Q)
		m.PhiS = make([]float64, order.PS)
		m.ThetaS = make([]float64, order.QS)
		return m, m.buildExpanded()
	}

	// Innovation estimates from a long AR.
	longP := maxLag + maxMALag + order.Season/4 + 5
	if maxP := len(z)/4 - 1; longP > maxP {
		longP = maxP
	}
	if longP < maxLag+maxMALag {
		longP = maxLag + maxMALag
	}
	var eHat []float64
	if order.Q > 0 || order.QS > 0 {
		longAR, err := yuleWalker(z, longP)
		if err != nil {
			return nil, err
		}
		eHat = arResiduals(z, longAR)
	}

	// Regression design: non-seasonal AR lags, seasonal AR lags,
	// non-seasonal MA lags, seasonal MA lags.
	start := maxLag
	if s := maxMALag + longP; eHat != nil && s > start {
		start = s
	}
	rows := len(z) - start
	cols := order.P + order.PS + order.Q + order.QS
	if cols == 0 {
		return nil, fmt.Errorf("arima: seasonal model has no coefficients to estimate")
	}
	if rows < cols+5 {
		return nil, fmt.Errorf("arima: insufficient data for seasonal regression (%d rows, %d cols)", rows, cols)
	}
	design := make([][]float64, rows)
	target := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		row := make([]float64, cols)
		idx := 0
		for i := 1; i <= order.P; i++ {
			row[idx] = z[t-i]
			idx++
		}
		for j := 1; j <= order.PS; j++ {
			row[idx] = z[t-j*order.Season]
			idx++
		}
		for i := 1; i <= order.Q; i++ {
			row[idx] = eHat[t-i]
			idx++
		}
		for j := 1; j <= order.QS; j++ {
			row[idx] = eHat[t-j*order.Season]
			idx++
		}
		design[r] = row
		target[r] = z[t]
	}
	beta, err := leastSquares(design, target)
	if err != nil {
		return nil, fmt.Errorf("arima: seasonal regression: %w", err)
	}
	idx := 0
	take := func(n int) []float64 {
		out := clampStationary(beta[idx : idx+n])
		idx += n
		return out
	}
	m.Phi = take(order.P)
	m.PhiS = take(order.PS)
	m.Theta = take(order.Q)
	m.ThetaS = take(order.QS)
	if err := m.buildExpanded(); err != nil {
		return nil, err
	}

	// Innovation variance via the expanded model's conditional residuals.
	resid := m.expanded.residualsZ(z)
	warm := maxLag + maxMALag
	var ss float64
	cnt := 0
	for t := warm; t < len(resid); t++ {
		ss += resid[t] * resid[t]
		cnt++
	}
	if cnt > 0 {
		m.Sigma2 = ss / float64(cnt)
		m.expanded.Sigma2 = m.Sigma2
	}
	return m, nil
}

// buildExpanded constructs the single-polynomial equivalent model.
func (m *SeasonalModel) buildExpanded() error {
	phi := expandPoly(m.Phi, m.PhiS, m.SOrder.Season)
	theta := expandThetaPoly(m.Theta, m.ThetaS, m.SOrder.Season)
	m.expanded = &Model{
		Order: Order{
			P: len(phi),
			// Differencing is handled explicitly by the seasonal wrapper,
			// so the expanded model is applied to the differenced series.
			D: 0,
			Q: len(theta),
		},
		Phi:    phi,
		Theta:  theta,
		Mu:     m.Mu,
		Sigma2: m.Sigma2,
		N:      m.N,
	}
	return nil
}

// expandThetaPoly merges MA polynomials, which multiply with + signs:
// (1 + Σ θ_i B^i)(1 + Σ Θ_j B^{js}).
func expandThetaPoly(c, cs []float64, season int) []float64 {
	a := make([]float64, len(c)+1)
	a[0] = 1
	copy(a[1:], c)
	b := make([]float64, len(cs)*season+1)
	b[0] = 1
	for j, v := range cs {
		b[(j+1)*season] = v
	}
	prod := polyMul(a, b)
	return prod[1:]
}

// ForecastFrom produces h-step forecasts on the original scale, undoing
// regular and seasonal differencing.
func (m *SeasonalModel) ForecastFrom(history []float64, h int) (*Forecast, error) {
	if h <= 0 {
		return nil, fmt.Errorf("arima: forecast horizon must be positive, got %d", h)
	}
	o := m.SOrder
	need := o.DS*o.Season + o.D + m.expanded.Order.P + m.expanded.Order.Q + 1
	if len(history) < need {
		return nil, fmt.Errorf("arima: history of %d too short for %v (need >= %d)", len(history), o, need)
	}
	// Difference: seasonal first, then regular (order is irrelevant
	// algebraically; match FitSeasonal).
	w := make([]float64, len(history))
	copy(w, history)
	var err error
	for i := 0; i < o.DS; i++ {
		w, err = SeasonalDifference(w, o.Season)
		if err != nil {
			return nil, err
		}
	}
	w, err = Difference(w, o.D)
	if err != nil {
		return nil, err
	}

	// Forecast on the differenced scale with the expanded ARMA.
	fc, err := m.expanded.ForecastFrom(w, h)
	if err != nil {
		return nil, err
	}

	// Undo regular differencing.
	point := fc.Point
	if o.D > 0 {
		// Tail of the seasonally-differenced (but not regularly
		// differenced) series.
		sd := make([]float64, len(history))
		copy(sd, history)
		for i := 0; i < o.DS; i++ {
			sd, err = SeasonalDifference(sd, o.Season)
			if err != nil {
				return nil, err
			}
		}
		point, err = Integrate(point, sd, o.D)
		if err != nil {
			return nil, err
		}
	}
	// Undo seasonal differencing: y_t = w_t + y_{t-s}, recursively.
	if o.DS > 0 {
		// Only DS=1 is supported (validated); rebuild against the original
		// history tail.
		out := make([]float64, h)
		for i := 0; i < h; i++ {
			var prev float64
			backIdx := len(history) + i - o.Season
			if backIdx < len(history) {
				prev = history[backIdx]
			} else {
				prev = out[backIdx-len(history)]
			}
			out[i] = point[i] + prev
		}
		point = out
	}

	// Forecast sigma: the differenced-scale psi weights understate the
	// integrated variance; fold the differencing into the psi recursion by
	// building the full effective AR polynomial.
	sigma := make([]float64, h)
	psi := m.psiWeightsIntegrated(h)
	var acc float64
	for i := 0; i < h; i++ {
		acc += psi[i] * psi[i]
		sigma[i] = math.Sqrt(m.Sigma2 * acc)
	}
	return &Forecast{Point: point, Sigma: sigma}, nil
}

// psiWeightsIntegrated computes psi weights including both regular and
// seasonal differencing operators.
func (m *SeasonalModel) psiWeightsIntegrated(n int) []float64 {
	if n <= 0 {
		return nil
	}
	o := m.SOrder
	// AR side: expanded phi, (1-B)^d, (1-B^s)^D all multiplied.
	phiPoly := make([]float64, len(m.expanded.Phi)+1)
	phiPoly[0] = 1
	for i, c := range m.expanded.Phi {
		phiPoly[i+1] = -c
	}
	full := polyMul(phiPoly, diffPoly(o.D))
	for i := 0; i < o.DS; i++ {
		seasonal := make([]float64, o.Season+1)
		seasonal[0] = 1
		seasonal[o.Season] = -1
		full = polyMul(full, seasonal)
	}
	phiStar := make([]float64, len(full)-1)
	for i := 1; i < len(full); i++ {
		phiStar[i-1] = -full[i]
	}
	psi := make([]float64, n)
	psi[0] = 1
	for j := 1; j < n; j++ {
		var v float64
		if j-1 < len(m.expanded.Theta) {
			v = m.expanded.Theta[j-1]
		}
		for i := 1; i <= j && i <= len(phiStar); i++ {
			v += phiStar[i-1] * psi[j-i]
		}
		psi[j] = v
	}
	return psi
}

// AIC returns Akaike's information criterion for the seasonal fit.
func (m *SeasonalModel) AIC() float64 {
	k := float64(len(m.Phi) + len(m.PhiS) + len(m.Theta) + len(m.ThetaS) + 2)
	if m.Sigma2 <= 0 {
		return math.Inf(-1)
	}
	n := float64(m.N)
	logLik := -0.5 * n * (math.Log(2*math.Pi*m.Sigma2) + 1)
	return 2*k - 2*logLik
}
