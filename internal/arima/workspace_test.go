package arima

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// synthSeries builds a deterministic weekly-seasonal series with noise, the
// same general shape as consumption data.
func synthSeries(n int, seed int64) []float64 {
	rng := stats.NewRand(seed)
	y := make([]float64, n)
	for i := range y {
		base := 1.5 + math.Sin(2*math.Pi*float64(i%336)/336) + 0.3*math.Sin(2*math.Pi*float64(i%48)/48)
		y[i] = math.Max(0, base+0.2*rng.NormFloat64())
	}
	return y
}

func modelsIdentical(t *testing.T, tag string, a, b *Model) {
	t.Helper()
	if a.Order != b.Order {
		t.Fatalf("%s: order %v vs %v", tag, a.Order, b.Order)
	}
	if a.Mu != b.Mu || a.Sigma2 != b.Sigma2 || a.LogLik != b.LogLik || a.N != b.N {
		t.Fatalf("%s: scalars differ: mu %v/%v sigma2 %v/%v loglik %v/%v n %d/%d",
			tag, a.Mu, b.Mu, a.Sigma2, b.Sigma2, a.LogLik, b.LogLik, a.N, b.N)
	}
	if len(a.Phi) != len(b.Phi) || len(a.Theta) != len(b.Theta) {
		t.Fatalf("%s: coefficient lengths differ", tag)
	}
	for i := range a.Phi {
		if math.Float64bits(a.Phi[i]) != math.Float64bits(b.Phi[i]) {
			t.Fatalf("%s: phi[%d] = %v vs %v", tag, i, a.Phi[i], b.Phi[i])
		}
	}
	for i := range a.Theta {
		if math.Float64bits(a.Theta[i]) != math.Float64bits(b.Theta[i]) {
			t.Fatalf("%s: theta[%d] = %v vs %v", tag, i, a.Theta[i], b.Theta[i])
		}
	}
}

// TestFitWSBitIdentical proves the workspace fit path performs the exact
// arithmetic of the allocating path, order by order, reusing one workspace
// across fits and series.
func TestFitWSBitIdentical(t *testing.T) {
	ws := NewWorkspace()
	for _, seed := range []int64{1, 2, 3} {
		y := synthSeries(8*336, seed)
		for _, o := range DefaultCandidates() {
			cold, err1 := Fit(y, o)
			warm, err2 := FitWS(y, o, ws)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d %v: error mismatch: %v vs %v", seed, o, err1, err2)
			}
			if err1 != nil {
				continue
			}
			modelsIdentical(t, o.String(), cold, warm)
		}
	}
}

// TestFitWSDegenerate covers the constant-series path: zero innovation
// variance, zeroed retained residuals.
func TestFitWSDegenerate(t *testing.T) {
	y := make([]float64, 4*336)
	for i := range y {
		y[i] = 2.5
	}
	ws := NewWorkspace()
	tf, err := FitTrained(y, Order{P: 1, D: 0, Q: 0}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Model.Sigma2 != 0 {
		t.Fatalf("constant series Sigma2 = %v, want 0", tf.Model.Sigma2)
	}
	cold, err := Fit(y, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	modelsIdentical(t, "degenerate", cold, tf.Model)
	for i, r := range tf.resid {
		if r != 0 {
			t.Fatalf("degenerate resid[%d] = %v, want 0", i, r)
		}
	}
}

// TestSelectOrderWSBitIdentical proves workspace grid selection (streaming
// reduction) matches SelectOrder's collect-then-scan reduction exactly.
func TestSelectOrderWSBitIdentical(t *testing.T) {
	ws := NewWorkspace()
	for _, seed := range []int64{10, 11, 12, 13, 14, 15, 16, 17} {
		y := synthSeries(8*336, seed)
		cold, err1 := SelectOrder(y, DefaultCandidates())
		warm, err2 := SelectOrderWS(y, DefaultCandidates(), ws)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: errors %v / %v", seed, err1, err2)
		}
		modelsIdentical(t, "select", cold, warm)
	}
}

// TestPredictorAtMatchesNewPredictor proves a retained fit can place a
// predictor anywhere in the training series with state bit-identical to a
// cold NewPredictor over the same prefix: both are advanced over the
// remaining observations and must produce identical forecasts.
func TestPredictorAtMatchesNewPredictor(t *testing.T) {
	y := synthSeries(10*336, 42)
	ws := NewWorkspace()
	tf, err := SelectOrderTrained(y, DefaultCandidates(), ws)
	if err != nil {
		t.Fatal(err)
	}
	// Also exercise a D=1 model explicitly: PredictorAt must restore yTail.
	tfD1, err := FitTrained(y, Order{P: 1, D: 1, Q: 1}, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []*TrainedFit{tfD1, nil} {
		if tc == nil {
			// Refit: tfD1's workspace state was invalidated by nothing, but
			// the selected fit's state was clobbered by the D=1 fit above, so
			// rebuild it before use.
			tf, err = SelectOrderTrained(y, DefaultCandidates(), ws)
			if err != nil {
				t.Fatal(err)
			}
			tc = tf
		}
		for _, cut := range []int{4 * 336, 7 * 336, len(y)} {
			fast, err := tc.PredictorAt(cut)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := tc.Model.NewPredictor(y[:cut])
			if err != nil {
				t.Fatal(err)
			}
			for i := cut; i < len(y) && i < cut+2*336; i++ {
				fp, fs := fast.PredictNext()
				cp, cs := cold.PredictNext()
				if math.Float64bits(fp) != math.Float64bits(cp) || math.Float64bits(fs) != math.Float64bits(cs) {
					t.Fatalf("%v cut %d step %d: forecast %v±%v vs %v±%v",
						tc.Model.Order, cut, i-cut, fp, fs, cp, cs)
				}
				fast.Observe(y[i])
				cold.Observe(y[i])
			}
		}
	}
}

// TestPredictorAtBounds rejects positions outside the valid range.
func TestPredictorAtBounds(t *testing.T) {
	y := synthSeries(4*336, 7)
	ws := NewWorkspace()
	tf, err := FitTrained(y, Order{P: 2, D: 1, Q: 1}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.PredictorAt(3); err == nil {
		t.Error("PredictorAt(3) should fail for ARIMA(2,1,1)")
	}
	if _, err := tf.PredictorAt(len(y) + 1); err == nil {
		t.Error("PredictorAt(len+1) should fail")
	}
	if _, err := tf.PredictorAt(len(y)); err != nil {
		t.Errorf("PredictorAt(len) = %v", err)
	}
}

// TestSelectOrderWarm covers the warm-start decision rule: a good warm
// order is accepted with the grid skipped, a hostile warm order falls back
// to the full grid, and the fallback is bit-identical to cold selection.
func TestSelectOrderWarm(t *testing.T) {
	ws := NewWorkspace()
	y := synthSeries(8*336, 99)
	cold, err := SelectOrder(y, DefaultCandidates())
	if err != nil {
		t.Fatal(err)
	}

	// Warm order = the true winner: must be accepted.
	tf, sel, err := SelectOrderWarmTrained(y, DefaultCandidates(), cold.Order, 2.0, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.WarmAccepted {
		t.Fatalf("true winner %v not warm-accepted", cold.Order)
	}
	if sel.FitsSkipped != len(DefaultCandidates())-2 {
		t.Errorf("FitsSkipped = %d, want %d", sel.FitsSkipped, len(DefaultCandidates())-2)
	}
	modelsIdentical(t, "warm-hit", cold, tf.Model)

	// Invalid warm order: full grid, bit-identical to cold selection.
	tf, sel, err = SelectOrderWarmTrained(y, DefaultCandidates(), Order{}, 2.0, ws)
	if err != nil {
		t.Fatal(err)
	}
	if sel.WarmAccepted {
		t.Error("invalid warm order must not be accepted")
	}
	modelsIdentical(t, "warm-fallback", cold, tf.Model)

	// Negative margin disables screening: any successful warm fit accepted.
	other := Order{P: 1, D: 0, Q: 0}
	tf, sel, err = SelectOrderWarmTrained(y, DefaultCandidates(), other, -1, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.WarmAccepted || tf.Model.Order != other {
		t.Errorf("unscreened warm start: accepted=%v order=%v", sel.WarmAccepted, tf.Model.Order)
	}
	if sel.FitsSkipped != len(DefaultCandidates())-1 {
		t.Errorf("unscreened FitsSkipped = %d, want %d", sel.FitsSkipped, len(DefaultCandidates())-1)
	}
	wantWarm, err := Fit(y, other)
	if err != nil {
		t.Fatal(err)
	}
	modelsIdentical(t, "warm-forced", wantWarm, tf.Model)
}

// TestWorkspaceAllocsSteadyState: after warm-up, a workspace grid selection
// allocates only the returned models (no per-fit buffer churn).
func TestWorkspaceAllocsSteadyState(t *testing.T) {
	y := synthSeries(8*336, 5)
	ws := NewWorkspace()
	if _, err := SelectOrderWS(y, DefaultCandidates(), ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SelectOrderWS(y, DefaultCandidates(), ws); err != nil {
			t.Fatal(err)
		}
	})
	// The surviving allocations are the Model structs, their coefficient
	// slices (clamp copies), and the TrainedFit wrappers — all outputs, all
	// O(candidates). Anything near the cold path's ~126 allocs means a
	// buffer failed to stick.
	if allocs > 60 {
		t.Errorf("SelectOrderWS allocates %.0f objects per run; scratch is not being reused", allocs)
	}
}
