package arima

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// simulateARMA generates n observations of a mean-mu ARMA(p,q) process with
// unit-variance innovations.
func simulateARMA(rng interface{ NormFloat64() float64 }, n int, mu float64, phi, theta []float64) []float64 {
	burn := 200
	total := n + burn
	z := make([]float64, total)
	e := make([]float64, total)
	for t := 0; t < total; t++ {
		e[t] = rng.NormFloat64()
		v := e[t]
		for i, c := range phi {
			if t-1-i >= 0 {
				v += c * z[t-1-i]
			}
		}
		for j, c := range theta {
			if t-1-j >= 0 {
				v += c * e[t-1-j]
			}
		}
		z[t] = v
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = z[burn+i] + mu
	}
	return out
}

func TestOrderValidate(t *testing.T) {
	valid := []Order{{1, 0, 0}, {0, 1, 1}, {2, 1, 2}}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("%v should be valid: %v", o, err)
		}
	}
	invalid := []Order{{-1, 0, 0}, {0, 0, 0}, {21, 0, 0}, {0, 3, 1}}
	for _, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("%v should be invalid", o)
		}
	}
	if !strings.Contains(Order{1, 2, 3}.String(), "1,2,3") {
		t.Error("Order.String format")
	}
}

func TestFitAR1RecoversCoefficient(t *testing.T) {
	rng := stats.NewRand(101)
	y := simulateARMA(rng, 3000, 5, []float64{0.7}, nil)
	m, err := Fit(y, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.7) > 0.05 {
		t.Errorf("phi = %g, want ~0.7", m.Phi[0])
	}
	if math.Abs(m.Mu-5) > 0.2 {
		t.Errorf("mu = %g, want ~5", m.Mu)
	}
	if math.Abs(m.Sigma2-1) > 0.1 {
		t.Errorf("sigma2 = %g, want ~1", m.Sigma2)
	}
}

func TestFitAR2RecoversCoefficients(t *testing.T) {
	rng := stats.NewRand(102)
	y := simulateARMA(rng, 5000, 0, []float64{0.5, 0.3}, nil)
	m, err := Fit(y, Order{P: 2, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.07 || math.Abs(m.Phi[1]-0.3) > 0.07 {
		t.Errorf("phi = %v, want ~[0.5 0.3]", m.Phi)
	}
}

func TestFitARMA11Recovers(t *testing.T) {
	rng := stats.NewRand(103)
	y := simulateARMA(rng, 8000, 2, []float64{0.6}, []float64{0.4})
	m, err := Fit(y, Order{P: 1, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.6) > 0.1 {
		t.Errorf("phi = %g, want ~0.6", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.4) > 0.12 {
		t.Errorf("theta = %g, want ~0.4", m.Theta[0])
	}
}

func TestFitIntegratedSeries(t *testing.T) {
	rng := stats.NewRand(104)
	// Random walk with AR(1) increments: ARIMA(1,1,0).
	inc := simulateARMA(rng, 2000, 0.1, []float64{0.5}, nil)
	y := make([]float64, len(inc))
	acc := 100.0
	for i, v := range inc {
		acc += v
		y[i] = acc
	}
	m, err := Fit(y, Order{P: 1, D: 1, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.5) > 0.08 {
		t.Errorf("phi = %g, want ~0.5", m.Phi[0])
	}
	if math.Abs(m.Mu-0.1) > 0.1 {
		t.Errorf("mu = %g, want ~0.1", m.Mu)
	}
}

func TestFitConstantSeries(t *testing.T) {
	y := make([]float64, 200)
	for i := range y {
		y[i] = 3
	}
	m, err := Fit(y, Order{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sigma2 != 0 {
		t.Errorf("constant series sigma2 = %g, want 0", m.Sigma2)
	}
	if m.Mu != 3 {
		t.Errorf("mu = %g, want 3", m.Mu)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, Order{P: 1, D: 0, Q: 0}); err == nil {
		t.Error("short series should error")
	}
	if _, err := Fit(make([]float64, 100), Order{P: -1, D: 0, Q: 0}); err == nil {
		t.Error("invalid order should error")
	}
}

func TestFitStationarityGuard(t *testing.T) {
	// An explosive trend tends to push the AR estimate toward 1; the clamp
	// must keep the fitted model stationary so forecasts stay bounded.
	y := make([]float64, 300)
	for i := range y {
		y[i] = float64(i) * float64(i) * 0.01
	}
	m, err := Fit(y, Order{P: 2, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	var sumAbs float64
	for _, c := range m.Phi {
		sumAbs += math.Abs(c)
	}
	if sumAbs >= 1 {
		t.Errorf("AR coefficient abs-sum = %g, stationarity clamp failed", sumAbs)
	}
}

func TestAICPrefersTrueOrder(t *testing.T) {
	rng := stats.NewRand(105)
	y := simulateARMA(rng, 4000, 0, []float64{0.8}, nil)
	m, err := SelectOrder(y, []Order{
		{P: 1, D: 0, Q: 0},
		{P: 5, D: 0, Q: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// AIC should not pick the overparameterized AR(5) decisively better;
	// the key property is that selection runs and returns a usable model.
	if m.Sigma2 <= 0 {
		t.Error("selected model has no innovation variance")
	}
	if m.Order.P != 1 && m.Order.P != 5 {
		t.Errorf("unexpected selected order %v", m.Order)
	}
}

func TestSelectOrderAllFail(t *testing.T) {
	if _, err := SelectOrder([]float64{1, 2}, DefaultCandidates()); err == nil {
		t.Error("selection on tiny series should error")
	}
	if _, err := SelectOrder(nil, nil); err == nil {
		t.Error("no candidates should error")
	}
}

func TestDefaultCandidatesValid(t *testing.T) {
	for _, o := range DefaultCandidates() {
		if err := o.Validate(); err != nil {
			t.Errorf("default candidate %v invalid: %v", o, err)
		}
	}
}

func TestYuleWalkerErrors(t *testing.T) {
	if _, err := yuleWalker([]float64{1, 2}, 5); err == nil {
		t.Error("p >= n should error")
	}
	if _, err := yuleWalker(make([]float64, 50), 2); err == nil {
		t.Error("zero-variance series should error")
	}
}
