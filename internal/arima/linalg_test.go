package arima

import (
	"errors"
	"math"
	"testing"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearRequiresPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearBadDims(t *testing.T) {
	if _, err := solveLinear(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := solveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square matrix should error")
	}
	if _, err := solveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs dimension mismatch should error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 3 + 2x fit with [1, x] design.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 5, 7, 9}
	beta, err := leastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-3) > 1e-6 || math.Abs(beta[1]-2) > 1e-6 {
		t.Errorf("beta = %v, want [3 2]", beta)
	}
}

func TestLeastSquaresOverdeterminedNoise(t *testing.T) {
	// Noisy regression should recover coefficients approximately.
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := float64(i) / 50
		x[i] = []float64{1, xi}
		// Deterministic pseudo-noise keeps the test reproducible.
		noise := 0.01 * math.Sin(float64(i)*12.9898)
		y[i] = 1.5 - 0.7*xi + noise
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-1.5) > 0.01 || math.Abs(beta[1]+0.7) > 0.01 {
		t.Errorf("beta = %v, want approx [1.5 -0.7]", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := leastSquares(nil, nil); err == nil {
		t.Error("empty design should error")
	}
	if _, err := leastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch should error")
	}
	if _, err := leastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined should error")
	}
	if _, err := leastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-column design should error")
	}
	if _, err := leastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged design should error")
	}
}

func TestPolyMul(t *testing.T) {
	// (1 - B)(1 + B) = 1 - B^2.
	got := polyMul([]float64{1, -1}, []float64{1, 1})
	want := []float64{1, 0, -1}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if polyMul(nil, []float64{1}) != nil {
		t.Error("empty polynomial should give nil")
	}
}

func TestDiffPoly(t *testing.T) {
	// (1-B)^2 = 1 - 2B + B^2.
	got := diffPoly(2)
	want := []float64{1, -2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diffPoly(2)[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if len(diffPoly(0)) != 1 || diffPoly(0)[0] != 1 {
		t.Error("diffPoly(0) should be [1]")
	}
}
