package arima

import "fmt"

// Difference applies the differencing operator (1-B)^d to the series,
// returning a series shorter by d. d = 0 returns a copy.
func Difference(y []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, fmt.Errorf("arima: negative differencing order %d", d)
	}
	if len(y) <= d {
		return nil, fmt.Errorf("arima: series of length %d cannot be differenced %d times", len(y), d)
	}
	cur := make([]float64, len(y))
	copy(cur, y)
	for i := 0; i < d; i++ {
		next := make([]float64, len(cur)-1)
		for j := 1; j < len(cur); j++ {
			next[j-1] = cur[j] - cur[j-1]
		}
		cur = next
	}
	return cur, nil
}

// SeasonalDifference applies (1-B^s): each value minus the value one season
// earlier. It is used to remove the strong weekly/daily periodicity of
// electricity consumption before fitting a low-order ARMA.
func SeasonalDifference(y []float64, season int) ([]float64, error) {
	if season <= 0 {
		return nil, fmt.Errorf("arima: season must be positive, got %d", season)
	}
	if len(y) <= season {
		return nil, fmt.Errorf("arima: series of length %d too short for season %d", len(y), season)
	}
	out := make([]float64, len(y)-season)
	for i := season; i < len(y); i++ {
		out[i-season] = y[i] - y[i-season]
	}
	return out, nil
}

// Integrate inverts Difference: given the d last values of the original
// series (tail, oldest first) and a differenced continuation, it rebuilds
// the original-scale continuation. It is the forecasting-time inverse used
// to map differenced-scale forecasts back to demand readings.
func Integrate(diffed []float64, tail []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, fmt.Errorf("arima: negative differencing order %d", d)
	}
	if len(tail) < d {
		return nil, fmt.Errorf("arima: need %d tail values to integrate, got %d", d, len(tail))
	}
	cur := make([]float64, len(diffed))
	copy(cur, diffed)
	// Undo one level of differencing at a time, innermost first. For level
	// k we need the last value of the (k-1)-times-differenced original
	// series, which we recompute from the tail.
	for level := d; level >= 1; level-- {
		// lastVal is the final value of the original series differenced
		// (level-1) times, computed over the supplied tail.
		base, err := Difference(tail, level-1)
		if err != nil {
			return nil, fmt.Errorf("arima: integrating level %d: %w", level, err)
		}
		last := base[len(base)-1]
		for i := range cur {
			last += cur[i]
			cur[i] = last
		}
	}
	return cur, nil
}
