package arima

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Order specifies an ARIMA(p,d,q) model.
type Order struct {
	P int // autoregressive order
	D int // differencing order
	Q int // moving-average order
}

// Validate reports whether the order is admissible.
func (o Order) Validate() error {
	if o.P < 0 || o.D < 0 || o.Q < 0 {
		return fmt.Errorf("arima: negative order component in %v", o)
	}
	if o.P == 0 && o.Q == 0 && o.D == 0 {
		return fmt.Errorf("arima: degenerate order (0,0,0)")
	}
	if o.P > 20 || o.Q > 20 || o.D > 2 {
		return fmt.Errorf("arima: order %v beyond supported range (p,q <= 20, d <= 2)", o)
	}
	return nil
}

// String renders the order as "ARIMA(p,d,q)".
func (o Order) String() string { return fmt.Sprintf("ARIMA(%d,%d,%d)", o.P, o.D, o.Q) }

// Model is a fitted ARIMA model. Phi are the AR coefficients and Theta the
// MA coefficients of the (possibly differenced) mean-adjusted process:
//
//	w_t - mu = Σ phi_i (w_{t-i} - mu) + e_t + Σ theta_j e_{t-j}
//
// where w = (1-B)^D y.
type Model struct {
	Order  Order
	Phi    []float64 // length P
	Theta  []float64 // length Q
	Mu     float64   // mean of the differenced process
	Sigma2 float64   // innovation variance
	N      int       // number of observations used in fitting
	LogLik float64   // Gaussian log-likelihood (conditional)
}

// yuleWalker fits AR(p) coefficients to a zero-mean series via the
// Yule-Walker equations built from sample autocovariances.
func yuleWalker(w []float64, p int) ([]float64, error) {
	n := len(w)
	if p <= 0 || n <= p {
		return nil, fmt.Errorf("arima: cannot fit AR(%d) to %d observations", p, n)
	}
	// Biased autocovariances gamma_0..gamma_p.
	gamma := make([]float64, p+1)
	for lag := 0; lag <= p; lag++ {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += w[i] * w[i+lag]
		}
		gamma[lag] = s / float64(n)
	}
	if gamma[0] <= 0 {
		return nil, fmt.Errorf("arima: zero-variance series")
	}
	// Toeplitz system R phi = r.
	a := make([][]float64, p)
	b := make([]float64, p)
	for i := 0; i < p; i++ {
		a[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			lag := i - j
			if lag < 0 {
				lag = -lag
			}
			a[i][j] = gamma[lag]
		}
		b[i] = gamma[i+1]
	}
	return solveLinear(a, b)
}

// arResiduals returns the one-step residuals of an AR fit on w (zero-mean),
// with the first p entries set to zero (undefined warm-up region).
func arResiduals(w []float64, phi []float64) []float64 {
	p := len(phi)
	resid := make([]float64, len(w))
	for t := p; t < len(w); t++ {
		pred := 0.0
		for i, c := range phi {
			pred += c * w[t-1-i]
		}
		resid[t] = w[t] - pred
	}
	return resid
}

// diffShared is the per-D state SelectOrder computes once and shares across
// every candidate with the same differencing order: the differenced series,
// its mean, the demeaned series, and whether it is constant (degenerate).
type diffShared struct {
	n       int       // observations after differencing
	mu      float64   // mean of the differenced series
	z       []float64 // demeaned differenced series (read-only once built)
	allZero bool
}

// newDiffShared differences and demeans y once for a given D.
func newDiffShared(y []float64, d int) (*diffShared, error) {
	w, err := Difference(y, d)
	if err != nil {
		return nil, err
	}
	var mu float64
	for _, v := range w {
		mu += v
	}
	mu /= float64(len(w))
	sh := &diffShared{n: len(w), mu: mu, z: w, allZero: true}
	for i, v := range w {
		w[i] = v - mu
		if w[i] != 0 {
			sh.allZero = false
		}
	}
	return sh, nil
}

// Fit estimates an ARIMA model of the given order from y using the
// Hannan-Rissanen procedure: difference, demean, fit a long AR to estimate
// innovations, then regress on lagged values and lagged innovations.
func Fit(y []float64, order Order) (*Model, error) {
	if err := order.Validate(); err != nil {
		return nil, err
	}
	sh, err := newDiffShared(y, order.D)
	if err != nil {
		return nil, err
	}
	return fitCandidate(sh, order)
}

// fitCandidate fits one order against the shared differenced series. The
// shared state is read-only, so SelectOrder can call it concurrently.
func fitCandidate(sh *diffShared, order Order) (*Model, error) {
	minN := 3*(order.P+order.Q) + 20
	if sh.n < minN {
		return nil, fmt.Errorf("arima: %d observations after differencing; need at least %d for %v",
			sh.n, minN, order)
	}
	mu, z := sh.mu, sh.z
	if sh.allZero {
		// Constant series: the model is deterministic with zero innovation
		// variance. This arises for all-zero attack vectors and must not
		// crash the detector.
		return &Model{
			Order:  order,
			Phi:    make([]float64, order.P),
			Theta:  make([]float64, order.Q),
			Mu:     mu,
			Sigma2: 0,
			N:      sh.n,
		}, nil
	}

	var phi, theta []float64
	var err error
	switch {
	case order.Q == 0:
		phi, err = yuleWalker(z, order.P)
		if err != nil {
			return nil, err
		}
		theta = []float64{}
	default:
		// Stage 1: long AR for innovation estimates.
		longP := order.P + order.Q + 5
		if maxP := len(z)/4 - 1; longP > maxP {
			longP = maxP
		}
		if longP < order.P+order.Q {
			longP = order.P + order.Q
		}
		longAR, err := yuleWalker(z, longP)
		if err != nil {
			return nil, err
		}
		eHat := arResiduals(z, longAR)

		// Stage 2: OLS of z_t on p lags of z and q lags of eHat.
		start := longP + order.Q
		if start < order.P {
			start = order.P
		}
		rows := len(z) - start
		if rows < order.P+order.Q+5 {
			return nil, fmt.Errorf("arima: insufficient data for Hannan-Rissanen stage 2 (%d usable rows)", rows)
		}
		// One backing array for the whole design matrix: per-row allocations
		// dominated the fit's allocation profile (thousands of rows).
		k := order.P + order.Q
		design := make([][]float64, rows)
		backing := make([]float64, rows*k)
		target := make([]float64, rows)
		for r := 0; r < rows; r++ {
			t := start + r
			row := backing[r*k : (r+1)*k : (r+1)*k]
			for i := 0; i < order.P; i++ {
				row[i] = z[t-1-i]
			}
			for j := 0; j < order.Q; j++ {
				row[order.P+j] = eHat[t-1-j]
			}
			design[r] = row
			target[r] = z[t]
		}
		beta, err := leastSquares(design, target)
		if err != nil {
			return nil, fmt.Errorf("arima: Hannan-Rissanen regression: %w", err)
		}
		phi = beta[:order.P]
		theta = beta[order.P:]
	}

	m := &Model{
		Order: order,
		Phi:   clampStationary(phi),
		Theta: clampInvertible(theta),
		Mu:    mu,
		N:     sh.n,
	}

	// Innovation variance from conditional residuals.
	resid := m.residualsZ(z)
	var ss float64
	cnt := 0
	warm := order.P + order.Q
	for t := warm; t < len(resid); t++ {
		ss += resid[t] * resid[t]
		cnt++
	}
	if cnt > 0 {
		m.Sigma2 = ss / float64(cnt)
	}
	if m.Sigma2 > 0 {
		m.LogLik = -0.5 * float64(cnt) * (math.Log(2*math.Pi*m.Sigma2) + 1)
	}
	return m, nil
}

// residualsZ computes conditional one-step residuals on a zero-mean
// differenced series using the fitted coefficients. Pre-sample values and
// innovations are taken as zero.
func (m *Model) residualsZ(z []float64) []float64 {
	resid := make([]float64, len(z))
	m.residualsZInto(resid, z)
	return resid
}

// residualsZInto is residualsZ writing into a caller-provided buffer, which
// must have len(z); hot paths reuse the buffer across calls.
func (m *Model) residualsZInto(resid, z []float64) {
	for t := 0; t < len(z); t++ {
		pred := 0.0
		for i, c := range m.Phi {
			if t-1-i >= 0 {
				pred += c * z[t-1-i]
			}
		}
		for j, c := range m.Theta {
			if t-1-j >= 0 {
				pred += c * resid[t-1-j]
			}
		}
		resid[t] = z[t] - pred
	}
}

// clampStationary shrinks AR coefficients toward zero until the companion
// polynomial's coefficient sum is safely inside the unit circle. This cheap
// guard (rather than full root-finding) keeps long-horizon forecasts from
// exploding when the estimator lands on a marginally nonstationary fit —
// which attack-poisoned series are engineered to cause.
func clampStationary(phi []float64) []float64 {
	out := make([]float64, len(phi))
	copy(out, phi)
	for iter := 0; iter < 100; iter++ {
		var sumAbs float64
		for _, c := range out {
			sumAbs += math.Abs(c)
		}
		if sumAbs < 0.999 {
			break
		}
		scale := 0.98 * 0.999 / sumAbs
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// clampInvertible applies the same absolute-sum shrinkage to MA terms.
func clampInvertible(theta []float64) []float64 {
	return clampStationary(theta)
}

// AIC returns Akaike's information criterion for the fitted model.
func (m *Model) AIC() float64 {
	k := float64(len(m.Phi) + len(m.Theta) + 2) // + mean + variance
	return 2*k - 2*m.LogLik
}

// SelectOrder fits every order in the candidate grid and returns the model
// minimizing AIC. Orders that fail to fit are skipped; an error is returned
// only when every candidate fails.
//
// Candidates are fitted concurrently on a bounded worker pool, with the
// differencing and demeaning shared across every candidate with the same D.
// The result is identical to fitting serially: each candidate's fit is
// deterministic, and the best model is chosen by scanning candidates in
// index order (ties and degenerate fits resolve exactly as the serial loop
// did, never by goroutine completion order).
func SelectOrder(y []float64, candidates []Order) (*Model, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("arima: no candidate orders")
	}

	// Shared differencing: compute each distinct D once, serially. Invalid
	// orders are skipped here; their validation error is reported per
	// candidate below.
	type sharedEntry struct {
		sh  *diffShared
		err error
	}
	shared := make(map[int]sharedEntry, 3)
	for _, o := range candidates {
		if o.Validate() != nil {
			continue
		}
		if _, ok := shared[o.D]; !ok {
			sh, err := newDiffShared(y, o.D)
			shared[o.D] = sharedEntry{sh: sh, err: err}
		}
	}

	models := make([]*Model, len(candidates))
	errs := make([]error, len(candidates))
	fitOne := func(i int) {
		o := candidates[i]
		if err := o.Validate(); err != nil {
			errs[i] = err
			return
		}
		entry := shared[o.D]
		if entry.err != nil {
			errs[i] = entry.err
			return
		}
		models[i], errs[i] = fitCandidate(entry.sh, o)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		for i := range candidates {
			fitOne(i)
		}
	} else {
		var wg sync.WaitGroup
		// Buffered to the full work list: the feeder never parks, so worker
		// scheduling is the only concurrency in play.
		next := make(chan int, len(candidates))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					fitOne(i)
				}
			}()
		}
		for i := range candidates {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	// Deterministic reduction in candidate-index order — byte-identical to
	// the historical serial scan.
	var best *Model
	var firstErr error
	for i := range candidates {
		m, err := models[i], errs[i]
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m.Sigma2 == 0 {
			// Degenerate fit: acceptable only if nothing else works.
			if best == nil {
				best = m
			}
			continue
		}
		if best == nil || best.Sigma2 == 0 || m.AIC() < best.AIC() {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("arima: all candidate orders failed: %w", firstErr)
	}
	return best, nil
}

// DefaultCandidates is a small grid of orders suitable for half-hourly
// consumption data after the detector's seasonal adjustment.
func DefaultCandidates() []Order {
	return []Order{
		{P: 1, D: 0, Q: 0},
		{P: 2, D: 0, Q: 0},
		{P: 3, D: 0, Q: 0},
		{P: 1, D: 0, Q: 1},
		{P: 2, D: 0, Q: 1},
		{P: 1, D: 1, Q: 1},
		{P: 2, D: 1, Q: 1},
	}
}
