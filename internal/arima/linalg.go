package arima

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular indicates a linear system whose matrix is (numerically)
// singular and cannot be solved.
var ErrSingular = errors.New("arima: singular matrix")

// solveLinear solves A x = b in place using Gaussian elimination with
// partial pivoting. A is row-major n×n and is destroyed; b is destroyed and
// returned as the solution.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("arima: bad system dimensions (%d equations, %d rhs)", n, len(b))
	}
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("arima: matrix is not square")
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * b[c]
		}
		b[r] = sum / a[r][r]
	}
	return b, nil
}

// leastSquares solves the overdetermined system X beta ≈ y by forming and
// solving the normal equations XᵀX beta = Xᵀy. X is row-major with one row
// per observation. A small ridge term stabilizes nearly collinear designs,
// which arise when an attack vector makes the series locally constant.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	rows := len(x)
	if rows == 0 || rows != len(y) {
		return nil, fmt.Errorf("arima: bad regression dimensions (%d rows, %d targets)", rows, len(y))
	}
	cols := len(x[0])
	if cols == 0 {
		return nil, fmt.Errorf("arima: regression needs at least one column")
	}
	if rows < cols {
		return nil, fmt.Errorf("arima: underdetermined regression (%d rows < %d cols)", rows, cols)
	}
	xtx := make([][]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	xty := make([]float64, cols)
	for r := 0; r < rows; r++ {
		row := x[r]
		if len(row) != cols {
			return nil, fmt.Errorf("arima: ragged design matrix at row %d", r)
		}
		for i := 0; i < cols; i++ {
			xi := row[i]
			if xi == 0 {
				continue
			}
			for j := i; j < cols; j++ {
				xtx[i][j] += xi * row[j]
			}
			xty[i] += xi * y[r]
		}
	}
	// Mirror the upper triangle and add the ridge term.
	const ridge = 1e-8
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge
	}
	return solveLinear(xtx, xty)
}

// polyMul multiplies two polynomials in the backshift operator B given by
// their coefficient slices (index = power of B, including the constant).
func polyMul(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

// diffPoly returns the coefficients of (1-B)^d.
func diffPoly(d int) []float64 {
	poly := []float64{1}
	for i := 0; i < d; i++ {
		poly = polyMul(poly, []float64{1, -1})
	}
	return poly
}
