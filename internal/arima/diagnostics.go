package arima

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Diagnostics summarizes how well a fitted model whitened its residuals.
// A sound fit leaves residuals that look like white noise; strong residual
// autocorrelation means structure the model missed (for consumption data,
// usually the daily/weekly seasonality a plain low-order ARIMA cannot
// capture — which is why the detectors calibrate their thresholds
// empirically rather than trusting the model's error bars).
type Diagnostics struct {
	// N is the number of residuals analyzed.
	N int
	// ResidualMean and ResidualStd describe the residual distribution.
	ResidualMean float64
	ResidualStd  float64
	// ACF holds residual autocorrelations for lags 1..len(ACF).
	ACF []float64
	// LjungBox is the portmanteau statistic over the ACF lags; under
	// whiteness it is approximately chi-squared with len(ACF) degrees of
	// freedom.
	LjungBox float64
	// WhiteAt05 reports whether LjungBox stays under the chi-squared 95th
	// percentile for its degrees of freedom — i.e. the residuals pass a 5%
	// whiteness test.
	WhiteAt05 bool
}

// chiSquared95 approximates the 95th percentile of the chi-squared
// distribution with k degrees of freedom using the Wilson-Hilferty cube
// approximation, accurate to a fraction of a percent for k >= 3.
func chiSquared95(k int) float64 {
	if k <= 0 {
		return math.NaN()
	}
	z := 1.6448536269514722 // standard normal 95th percentile
	kf := float64(k)
	t := 1 - 2/(9*kf) + z*math.Sqrt(2/(9*kf))
	return kf * t * t * t
}

// Diagnose computes residual diagnostics for the model over the series it
// was (or could have been) fitted to, using maxLag autocorrelation lags
// (default 20 when zero).
func (m *Model) Diagnose(y []float64, maxLag int) (*Diagnostics, error) {
	if maxLag <= 0 {
		maxLag = 20
	}
	w, err := Difference(y, m.Order.D)
	if err != nil {
		return nil, err
	}
	if len(w) <= maxLag+m.Order.P+m.Order.Q {
		return nil, fmt.Errorf("arima: series too short to diagnose with %d lags", maxLag)
	}
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v - m.Mu
	}
	resid := m.residualsZ(z)
	// Drop the warm-up region where residuals are conditioned on zeros.
	warm := m.Order.P + m.Order.Q
	resid = resid[warm:]

	d := &Diagnostics{N: len(resid)}
	d.ResidualMean, d.ResidualStd = stats.MeanStd(resid)
	d.ACF = stats.AutocorrelationFunc(resid, maxLag)
	if len(d.ACF) > 0 {
		d.ACF = d.ACF[1:] // drop the trivial lag-0 term
	}
	d.LjungBox = stats.LjungBox(resid, maxLag)
	d.WhiteAt05 = !math.IsNaN(d.LjungBox) && d.LjungBox < chiSquared95(maxLag)
	return d, nil
}

// String renders a one-line summary.
func (d *Diagnostics) String() string {
	verdict := "residuals NOT white at 5%"
	if d.WhiteAt05 {
		verdict = "residuals white at 5%"
	}
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g Q(%d)=%.1f — %s",
		d.N, d.ResidualMean, d.ResidualStd, len(d.ACF), d.LjungBox, verdict)
}
