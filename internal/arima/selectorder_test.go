package arima

import (
	"math"
	"reflect"
	"testing"
)

// selectSeries builds a deterministic AR(2)-flavoured series long enough for
// every default candidate order.
func selectSeries(n int) []float64 {
	y := make([]float64, n)
	y[0], y[1] = 5, 5.2
	state := uint64(2016)
	for t := 2; t < n; t++ {
		state = state*6364136223846793005 + 1442695040888963407
		noise := float64(state>>11)/float64(1<<53) - 0.5
		y[t] = 5 + 0.6*(y[t-1]-5) - 0.3*(y[t-2]-5) + 0.4*noise + 0.5*math.Sin(float64(t)/7)
	}
	return y
}

// selectOrderSerial is the historical serial scan SelectOrder must remain
// byte-identical to: fit each candidate independently in index order and
// reduce with the same degenerate/AIC rules.
func selectOrderSerial(y []float64, candidates []Order) (*Model, error) {
	var best *Model
	var firstErr error
	for _, o := range candidates {
		m, err := Fit(y, o)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m.Sigma2 == 0 {
			if best == nil {
				best = m
			}
			continue
		}
		if best == nil || best.Sigma2 == 0 || m.AIC() < best.AIC() {
			best = m
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

func TestSelectOrderMatchesSerial(t *testing.T) {
	for _, n := range []int{120, 500, 2000} {
		y := selectSeries(n)
		got, err := SelectOrder(y, DefaultCandidates())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := selectOrderSerial(y, DefaultCandidates())
		if err != nil {
			t.Fatalf("n=%d serial: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: parallel selection %+v != serial %+v", n, got, want)
		}
	}
}

func TestSelectOrderSkipsInvalidCandidates(t *testing.T) {
	y := selectSeries(300)
	cands := []Order{
		{P: -1, D: 0, Q: 0}, // invalid
		{P: 0, D: 0, Q: 0},  // degenerate order
		{P: 2, D: 0, Q: 0},
	}
	got, err := SelectOrder(y, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order != (Order{P: 2, D: 0, Q: 0}) {
		t.Errorf("selected %v, want ARIMA(2,0,0)", got.Order)
	}
}

func TestSelectOrderAllInvalid(t *testing.T) {
	y := selectSeries(300)
	if _, err := SelectOrder(y, []Order{{P: -1}}); err == nil {
		t.Error("all-invalid candidate set should error")
	}
}

// TestFitDoesNotMutateInput guards the shared-differencing refactor: Fit and
// SelectOrder must never write into the caller's series.
func TestFitDoesNotMutateInput(t *testing.T) {
	y := selectSeries(300)
	orig := append([]float64(nil), y...)
	if _, err := Fit(y, Order{P: 1, D: 1, Q: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := SelectOrder(y, DefaultCandidates()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, orig) {
		t.Error("input series was mutated")
	}
}
