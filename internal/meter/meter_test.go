package meter

import (
	"math"
	"testing"

	"repro/internal/timeseries"
)

func testLoad(n int) timeseries.Series {
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 1 + float64(i%10)*0.1
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", testLoad(10), Config{}); err == nil {
		t.Error("empty ID should error")
	}
	if _, err := New("m1", timeseries.Series{-1}, Config{}); err == nil {
		t.Error("invalid load should error")
	}
	if _, err := New("m1", testLoad(10), Config{ErrorSigma: 0.5}); err == nil {
		t.Error("absurd error sigma should error")
	}
	m, err := New("m1", testLoad(10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != "m1" || m.Slots() != 10 {
		t.Error("accessors wrong")
	}
}

func TestLoadIsCopied(t *testing.T) {
	load := testLoad(5)
	m, _ := New("m1", load, Config{})
	load[0] = 999
	v, err := m.Actual(0)
	if err != nil {
		t.Fatal(err)
	}
	if v == 999 {
		t.Error("meter must copy the load profile")
	}
}

func TestMeasureWithoutError(t *testing.T) {
	m, _ := New("m1", testLoad(10), Config{})
	for s := timeseries.Slot(0); s < 10; s++ {
		actual, _ := m.Actual(s)
		measured, err := m.Measure(s)
		if err != nil {
			t.Fatal(err)
		}
		if measured != actual {
			t.Fatal("zero-sigma meter must measure exactly")
		}
	}
	if _, err := m.Measure(10); err == nil {
		t.Error("out-of-range slot should error")
	}
	if _, err := m.Actual(-1); err == nil {
		t.Error("negative slot should error")
	}
}

func TestMeasurementErrorCalibration(t *testing.T) {
	// With the default-sized sigma, essentially all readings fall within
	// ±2% of truth (Section VII-A's accuracy study).
	load := make(timeseries.Series, 20000)
	for i := range load {
		load[i] = 2
	}
	m, _ := New("m1", load, Config{ErrorSigma: 0.005, Seed: 1})
	within2 := 0
	for s := 0; s < len(load); s++ {
		v, err := m.Measure(timeseries.Slot(s))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-2)/2 <= 0.02 {
			within2++
		}
	}
	frac := float64(within2) / float64(len(load))
	if frac < 0.9995 {
		t.Errorf("%.4f of readings within ±2%%, want >= 0.9995", frac)
	}
}

func TestReportHonestAndCompromised(t *testing.T) {
	m, _ := New("m1", testLoad(10), Config{})
	r, err := m.Report(3)
	if err != nil {
		t.Fatal(err)
	}
	actual, _ := m.Actual(3)
	if r.KW != actual || r.MeterID != "m1" || r.Slot != 3 {
		t.Errorf("honest report wrong: %+v", r)
	}
	if m.Compromised() {
		t.Error("fresh meter should not be compromised")
	}
	// Under-report by half.
	m.Compromise(func(_ timeseries.Slot, v float64) float64 { return v / 2 })
	if !m.Compromised() {
		t.Error("compromise not registered")
	}
	r, _ = m.Report(3)
	if r.KW != actual/2 {
		t.Errorf("compromised report = %g, want %g", r.KW, actual/2)
	}
	// Negative outputs are clamped.
	m.Compromise(func(timeseries.Slot, float64) float64 { return -5 })
	r, _ = m.Report(3)
	if r.KW != 0 {
		t.Error("negative reported values must clamp to zero")
	}
	// Removing the compromise restores honesty.
	m.Compromise(nil)
	r, _ = m.Report(3)
	if r.KW != actual {
		t.Error("removing compromise should restore honest reporting")
	}
}

func TestTamperFlag(t *testing.T) {
	m, _ := New("m1", testLoad(5), Config{})
	if m.TamperFlag() {
		t.Error("tamper flag should start clear")
	}
	m.SetTamperFlag(true)
	if !m.TamperFlag() {
		t.Error("tamper flag should be set")
	}
}

func TestSetLoad(t *testing.T) {
	m, _ := New("m1", testLoad(5), Config{})
	if err := m.SetLoad(timeseries.Series{-1}); err == nil {
		t.Error("invalid load should be rejected")
	}
	if err := m.SetLoad(timeseries.Series{7, 7}); err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 2 {
		t.Error("load not replaced")
	}
	v, _ := m.Actual(0)
	if v != 7 {
		t.Error("new load not visible")
	}
}

func TestReportRange(t *testing.T) {
	m, _ := New("m1", testLoad(10), Config{})
	rs, err := m.ReportRange(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Slot != 2 || rs[2].Slot != 4 {
		t.Errorf("range readings wrong: %+v", rs)
	}
	if _, err := m.ReportRange(8, 5); err == nil {
		t.Error("range past end should error")
	}
	if _, err := m.ReportRange(0, -1); err == nil {
		t.Error("negative length should error")
	}
	empty, err := m.ReportRange(0, 0)
	if err != nil || len(empty) != 0 {
		t.Error("zero-length range should be empty and succeed")
	}
}

func TestMeasureDeterministicBySeed(t *testing.T) {
	a, _ := New("m1", testLoad(100), Config{ErrorSigma: 0.005, Seed: 42})
	b, _ := New("m1", testLoad(100), Config{ErrorSigma: 0.005, Seed: 42})
	for s := 0; s < 100; s++ {
		va, _ := a.Measure(timeseries.Slot(s))
		vb, _ := b.Measure(timeseries.Slot(s))
		if va != vb {
			t.Fatal("same seed must give identical measurement error")
		}
	}
}
