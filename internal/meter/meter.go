// Package meter models the measurement devices of the paper's AMI: consumer
// smart meters and balance meters. A meter measures the actual average
// demand of its load during each polling period (with the small measurement
// error quantified in Section VII-A: electronic meters are within ±2% of
// truth in 99.96% of readings) and *reports* a value that equals the
// measurement unless the meter — or the communication link it reports over —
// has been compromised.
//
// The separation between Measure (physics) and Report (what the utility
// sees) is the package's core: every attack class in the paper is a
// particular way of making the two diverge.
package meter

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/timeseries"
)

// Reading is one reported measurement.
type Reading struct {
	MeterID string
	Slot    timeseries.Slot
	KW      float64
}

// CompromiseFunc rewrites a measured value before it is reported. It
// receives the slot and the true measurement and returns the reported
// value. Implementations model either a hacked meter or a man-in-the-middle
// on the communication link — the paper treats the two identically
// (Section IV).
type CompromiseFunc func(slot timeseries.Slot, measured float64) float64

// Config parameterizes a smart meter.
type Config struct {
	// ErrorSigma is the relative standard deviation of measurement error.
	// The default 0.005 makes ~99.97% of readings fall within ±1.5% and
	// essentially all within ±2%, matching the accuracy study cited in
	// Section VII-A. Zero disables measurement error entirely.
	ErrorSigma float64
	// Seed drives the measurement-error stream.
	Seed int64
}

// SmartMeter measures a load profile and reports readings. It is safe for
// concurrent use.
type SmartMeter struct {
	id string

	mu         sync.Mutex
	load       timeseries.Series
	errorSigma float64
	rng        *rand.Rand
	compromise CompromiseFunc
	tamperFlag bool
}

// New creates a meter attached to the given actual load profile (average kW
// per slot). The profile is copied.
func New(id string, load timeseries.Series, cfg Config) (*SmartMeter, error) {
	if id == "" {
		return nil, fmt.Errorf("meter: meter ID is required")
	}
	if err := load.Validate(); err != nil {
		return nil, fmt.Errorf("meter: load profile: %w", err)
	}
	if cfg.ErrorSigma < 0 || cfg.ErrorSigma > 0.05 {
		return nil, fmt.Errorf("meter: error sigma %g outside [0, 0.05]", cfg.ErrorSigma)
	}
	return &SmartMeter{
		id:         id,
		load:       load.Clone(),
		errorSigma: cfg.ErrorSigma,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// ID returns the meter identifier.
func (m *SmartMeter) ID() string { return m.id }

// Slots returns the number of slots in the attached load profile.
func (m *SmartMeter) Slots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.load)
}

// Actual returns the true demand at the slot, without measurement error.
// It returns an error for slots outside the load profile.
func (m *SmartMeter) Actual(slot timeseries.Slot) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if slot < 0 || int(slot) >= len(m.load) {
		return 0, fmt.Errorf("meter: slot %d outside load profile (0..%d)", slot, len(m.load)-1)
	}
	return m.load[slot], nil
}

// Measure returns the metered value at the slot: truth plus multiplicative
// measurement error.
func (m *SmartMeter) Measure(slot timeseries.Slot) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if slot < 0 || int(slot) >= len(m.load) {
		return 0, fmt.Errorf("meter: slot %d outside load profile (0..%d)", slot, len(m.load)-1)
	}
	v := m.load[slot]
	if m.errorSigma > 0 {
		v *= 1 + m.errorSigma*m.rng.NormFloat64()
		if v < 0 {
			v = 0
		}
	}
	return v, nil
}

// Report returns the reading the utility receives for the slot: the
// measurement, rewritten by the compromise function if one is installed.
func (m *SmartMeter) Report(slot timeseries.Slot) (Reading, error) {
	measured, err := m.Measure(slot)
	if err != nil {
		return Reading{}, err
	}
	m.mu.Lock()
	comp := m.compromise
	m.mu.Unlock()
	v := measured
	if comp != nil {
		v = comp(slot, measured)
		if v < 0 {
			v = 0
		}
	}
	return Reading{MeterID: m.id, Slot: slot, KW: v}, nil
}

// Compromise installs (or, with nil, removes) a compromise function.
func (m *SmartMeter) Compromise(f CompromiseFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compromise = f
}

// Compromised reports whether a compromise function is installed.
func (m *SmartMeter) Compromised() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compromise != nil
}

// SetTamperFlag sets the physical tamper-detection flag. Penetration
// testing has shown these features to be ineffective (ref [22] in the
// paper); they are modeled so experiments can show attacks that never trip
// them.
func (m *SmartMeter) SetTamperFlag(v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tamperFlag = v
}

// TamperFlag reads the tamper-detection flag.
func (m *SmartMeter) TamperFlag() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tamperFlag
}

// SetLoad replaces the attached load profile (e.g. when an attack changes
// actual consumption, Class 1A/1B).
func (m *SmartMeter) SetLoad(load timeseries.Series) error {
	if err := load.Validate(); err != nil {
		return fmt.Errorf("meter: load profile: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.load = load.Clone()
	return nil
}

// ReportRange reports a contiguous range of slots [from, from+n).
func (m *SmartMeter) ReportRange(from timeseries.Slot, n int) ([]Reading, error) {
	if n < 0 {
		return nil, fmt.Errorf("meter: negative range length %d", n)
	}
	out := make([]Reading, 0, n)
	for i := 0; i < n; i++ {
		r, err := m.Report(from + timeseries.Slot(i))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
