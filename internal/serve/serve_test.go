package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ami"
	"repro/internal/detect"
	"repro/internal/timeseries"
)

// fakeStream is a scripted StreamDetector: each Observe pops the next
// verdict. It lets alerting tests steer the verdict sequence exactly.
type fakeStream struct {
	mu       sync.Mutex
	verdicts []detect.Verdict
	observed int
	missing  int
	reseeds  int
	failObs  bool
}

func (f *fakeStream) Name() string { return "fake" }

func (f *fakeStream) Observe(v float64) (detect.Verdict, error) {
	return f.ObserveStatus(v, timeseries.StatusOK)
}

func (f *fakeStream) ObserveStatus(_ float64, st timeseries.ReadingStatus) (detect.Verdict, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failObs {
		return detect.Verdict{}, fmt.Errorf("scripted failure")
	}
	if st == timeseries.StatusMissing {
		f.missing++
	} else {
		f.observed++
	}
	if len(f.verdicts) == 0 {
		return detect.Verdict{Score: 0.1, Threshold: 1}, nil
	}
	v := f.verdicts[0]
	f.verdicts = f.verdicts[1:]
	return v, nil
}

func (f *fakeStream) Filled() int { return timeseries.SlotsPerWeek }

func (f *fakeStream) Coverage() float64 { return 1 }

func (f *fakeStream) Reseed(timeseries.Series) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reseeds++
	return nil
}

// repeat scripts n copies of one verdict.
func repeat(v detect.Verdict, n int) []detect.Verdict {
	out := make([]detect.Verdict, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func anomalous(ratio float64) detect.Verdict {
	return detect.Verdict{Anomalous: true, Score: ratio, Threshold: 1, Reason: "scripted"}
}

var normalVerdict = detect.Verdict{Score: 0.2, Threshold: 1}

// feed pushes slots [start, start+n) through the sink for one meter.
func feed(t *testing.T, s *Server, meter string, start int64, vals []float64) {
	t.Helper()
	sink := s.Sink()
	rs := make([]ami.BatchReading, len(vals))
	for i, v := range vals {
		rs[i] = ami.BatchReading{Slot: start + int64(i), KW: v}
	}
	sink(meter, rs)
}

func newTestServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithRetrainInterval(time.Hour)); err == nil {
		t.Error("retrain interval without a retrain func should error")
	}
	if _, err := New(WithAlertPolicy(AlertPolicy{MinStreak: 5, MediumStreak: 3, HighStreak: 9, MediumRatio: 2, HighRatio: 3})); err == nil {
		t.Error("inverted streak ordering should error")
	}
	if _, err := New(WithAlertPolicy(AlertPolicy{MediumRatio: 0.5, HighRatio: 0.6})); err == nil {
		t.Error("ratio <= 1 should error")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	s := newTestServer(t)
	if err := s.Register("c1", &fakeStream{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("c1", &fakeStream{}, 0); err == nil {
		t.Error("duplicate register should error")
	}
	if err := s.Register("", &fakeStream{}, 0); err == nil {
		t.Error("empty id should error")
	}
	if err := s.Register("c2", nil, 0); err == nil {
		t.Error("nil detector should error")
	}
	if got := s.Consumers(); got != 1 {
		t.Errorf("Consumers() = %d, want 1", got)
	}
}

// TestObserveFlow: accepted readings flow sink -> worker -> stream, with
// gap slots observed as missing and stale slots skipped.
func TestObserveFlow(t *testing.T) {
	s := newTestServer(t)
	fs := &fakeStream{}
	if err := s.Register("c1", fs, 10); err != nil {
		t.Fatal(err)
	}

	feed(t, s, "c1", 10, []float64{1, 2, 3}) // slots 10..12: live
	feed(t, s, "c1", 15, []float64{4})       // gap of 2 -> slots 13,14 missing
	feed(t, s, "c1", 12, []float64{9})       // stale: window moved past
	feed(t, s, "ghost", 0, []float64{1})     // unregistered meter
	s.Flush()

	st := s.Stats()
	if st.Observed != 4 || st.Missing != 2 || st.Stale != 1 || st.Unknown != 1 {
		t.Errorf("stats = %+v, want observed 4 missing 2 stale 1 unknown 1", st)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.observed != 4 || fs.missing != 2 {
		t.Errorf("stream saw observed %d missing %d, want 4 and 2", fs.observed, fs.missing)
	}
}

// TestAlertTiers: persistence escalates LOW -> MEDIUM -> HIGH, and a
// normal verdict emits CLEARED. Events fire on transitions only.
func TestAlertTiers(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(t,
		WithAlertLog(&logBuf),
		WithAlertPolicy(AlertPolicy{MinStreak: 2, MediumStreak: 4, HighStreak: 6, MediumRatio: 10, HighRatio: 20}),
	)
	script := append(repeat(anomalous(1.1), 7), normalVerdict)
	if err := s.Register("c1", &fakeStream{verdicts: script}, 0); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, len(script))
	feed(t, s, "c1", 0, vals)
	s.Flush()

	events := s.Alerts(0)
	// Newest first: CLEARED, HIGH(streak 6), MEDIUM(streak 4), LOW(streak 2).
	wantTiers := []string{tierCleared, "HIGH", "MEDIUM", "LOW"}
	if len(events) != len(wantTiers) {
		t.Fatalf("got %d events %+v, want %d", len(events), events, len(wantTiers))
	}
	for i, want := range wantTiers {
		if events[i].Tier != want {
			t.Errorf("event %d tier = %q, want %q", i, events[i].Tier, want)
		}
	}
	if events[1].Streak != 6 || events[3].Streak != 2 {
		t.Errorf("streaks = %d, %d; want HIGH at 6, LOW at 2", events[1].Streak, events[3].Streak)
	}

	// The JSONL log carries the same events, oldest first, one per line.
	var lines []AlertEvent
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var e AlertEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 4 || lines[0].Tier != "LOW" || lines[3].Tier != tierCleared {
		t.Errorf("JSONL log = %+v, want LOW..CLEARED", lines)
	}

	st := s.Stats()
	if st.AlertsLow != 1 || st.AlertsMedium != 1 || st.AlertsHigh != 1 || st.AlertsClear != 1 {
		t.Errorf("alert counters = %+v, want one per tier", st)
	}
}

// TestAlertSeverityEscalation: a large score/threshold ratio jumps straight
// to HIGH once the minimum streak is met.
func TestAlertSeverityEscalation(t *testing.T) {
	s := newTestServer(t, WithAlertPolicy(AlertPolicy{MinStreak: 2, MediumRatio: 1.5, HighRatio: 2.5, MediumStreak: 100, HighStreak: 200}))
	if err := s.Register("c1", &fakeStream{verdicts: repeat(anomalous(3), 2)}, 0); err != nil {
		t.Fatal(err)
	}
	feed(t, s, "c1", 0, []float64{1, 2})
	s.Flush()
	events := s.Alerts(0)
	if len(events) != 1 || events[0].Tier != "HIGH" {
		t.Fatalf("events = %+v, want a single HIGH", events)
	}
	if events[0].Ratio != 3 {
		t.Errorf("ratio = %g, want 3", events[0].Ratio)
	}
}

// TestMinStreakSuppressesOneOffs: isolated anomalous verdicts below the
// minimum streak never alert.
func TestMinStreakSuppressesOneOffs(t *testing.T) {
	s := newTestServer(t, WithAlertPolicy(AlertPolicy{MinStreak: 3}))
	script := []detect.Verdict{anomalous(5), normalVerdict, anomalous(5), normalVerdict}
	if err := s.Register("c1", &fakeStream{verdicts: script}, 0); err != nil {
		t.Fatal(err)
	}
	feed(t, s, "c1", 0, make([]float64, len(script)))
	s.Flush()
	if events := s.Alerts(0); len(events) != 0 {
		t.Errorf("one-off anomalies alerted: %+v", events)
	}
}

// TestInconclusivePreservesStreak: coverage-gated verdicts neither extend
// nor reset an anomaly streak.
func TestInconclusivePreservesStreak(t *testing.T) {
	s := newTestServer(t, WithAlertPolicy(AlertPolicy{MinStreak: 2, MediumStreak: 50, HighStreak: 60}))
	script := []detect.Verdict{
		anomalous(1.1),
		{Inconclusive: true},
		anomalous(1.1), // streak reaches 2 -> LOW
	}
	if err := s.Register("c1", &fakeStream{verdicts: script}, 0); err != nil {
		t.Fatal(err)
	}
	feed(t, s, "c1", 0, make([]float64, len(script)))
	s.Flush()
	events := s.Alerts(0)
	if len(events) != 1 || events[0].Tier != "LOW" {
		t.Fatalf("events = %+v, want one LOW (inconclusive must not reset the streak)", events)
	}
	if st := s.Stats(); st.Inconclusive != 1 {
		t.Errorf("inconclusive counter = %d, want 1", st.Inconclusive)
	}
}

// TestRetrainSwap: RetrainAll swaps the detector without stopping the
// stream, and a failing re-train keeps the current one.
func TestRetrainSwap(t *testing.T) {
	old1, old2 := &fakeStream{}, &fakeStream{}
	next := &fakeStream{}
	s := newTestServer(t, WithRetrain(func(id string, _ Store, cur detect.StreamDetector) (detect.StreamDetector, error) {
		if id == "c2" {
			return nil, fmt.Errorf("no history")
		}
		if cur != detect.StreamDetector(old1) {
			t.Errorf("re-train got unexpected current detector")
		}
		return next, nil
	}))
	if err := s.Register("c1", old1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("c2", old2, 0); err != nil {
		t.Fatal(err)
	}

	ok, failed := s.RetrainAll()
	if ok != 1 || failed != 1 {
		t.Fatalf("RetrainAll = (%d ok, %d failed), want (1, 1)", ok, failed)
	}

	// c1 observes on the swapped detector; c2 kept its original.
	feed(t, s, "c1", 0, []float64{1})
	feed(t, s, "c2", 0, []float64{1})
	s.Flush()
	next.mu.Lock()
	gotNext := next.observed
	next.mu.Unlock()
	old2.mu.Lock()
	gotOld2 := old2.observed
	old2.mu.Unlock()
	if gotNext != 1 || gotOld2 != 1 {
		t.Errorf("post-retrain observations: next %d old2 %d, want 1 and 1", gotNext, gotOld2)
	}
}

// TestRetrainLoop: the rolling re-train ticker fires without stopping
// ingestion.
func TestRetrainLoop(t *testing.T) {
	retrained := make(chan string, 8)
	s := newTestServer(t,
		WithRetrainInterval(10*time.Millisecond),
		WithRetrain(func(id string, _ Store, cur detect.StreamDetector) (detect.StreamDetector, error) {
			select {
			case retrained <- id:
			default:
			}
			return cur, nil
		}))
	if err := s.Register("c1", &fakeStream{}, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-retrained:
		if id != "c1" {
			t.Fatalf("re-trained %q, want c1", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retrain loop never fired")
	}
}

// TestCloseDrainsThenDrops: Close completes queued work, and later sink
// deliveries are dropped and counted instead of observed.
func TestCloseDrainsThenDrops(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeStream{}
	if err := s.Register("c1", fs, 0); err != nil {
		t.Fatal(err)
	}
	sink := s.Sink()
	feed(t, s, "c1", 0, []float64{1, 2, 3})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sink("c1", []ami.BatchReading{{Slot: 3, KW: 4}})

	st := s.Stats()
	if st.Observed != 3 {
		t.Errorf("observed = %d, want 3 (Close must drain the queue)", st.Observed)
	}
	if st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestKLDRetrainer: the production re-train builds a compact stream from
// store history and refuses thin histories.
func TestKLDRetrainer(t *testing.T) {
	train, _ := serveConsumer(t, 417, 6, 6)
	st := &memStore{series: map[string]timeseries.Series{"c1": train}}

	rf := KLDRetrainer(4, detect.KLDConfig{})
	sd, err := rf("c1", st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Filled() != 0 || sd.Coverage() != 1 {
		t.Errorf("retrained stream filled/coverage = %d/%g, want a fresh fully-trusted window",
			sd.Filled(), sd.Coverage())
	}
	if !strings.Contains(sd.Name(), "kld") {
		t.Errorf("detector name = %q, want a KLD stream", sd.Name())
	}

	if _, err := rf("missing", st, nil); err == nil {
		t.Error("re-train with no history should error")
	}
	if _, err := rf("c1", nil, nil); err == nil {
		t.Error("re-train without a store should error")
	}
}

// TestPerConsumerOrdering: many batches across many meters land on the
// right consumers with per-meter order intact.
func TestPerConsumerOrdering(t *testing.T) {
	s := newTestServer(t, WithWorkers(3))
	const meters, slots = 20, 100
	streams := make([]*fakeStream, meters)
	for m := 0; m < meters; m++ {
		streams[m] = &fakeStream{}
		if err := s.Register(fmt.Sprintf("m%02d", m), streams[m], 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for m := 0; m < meters; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for lo := 0; lo < slots; lo += 10 {
				vals := make([]float64, 10)
				feed(t, s, fmt.Sprintf("m%02d", m), int64(lo), vals)
			}
		}(m)
	}
	wg.Wait()
	s.Flush()
	st := s.Stats()
	if st.Observed != meters*slots {
		t.Fatalf("observed %d, want %d", st.Observed, meters*slots)
	}
	if st.Missing != 0 || st.Stale != 0 {
		t.Errorf("missing %d stale %d, want 0 (ordering broke)", st.Missing, st.Stale)
	}
}
