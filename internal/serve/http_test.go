package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// alertingServer registers one consumer scripted to escalate to LOW.
func alertingServer(t *testing.T) *Server {
	t.Helper()
	s := newTestServer(t, WithAlertPolicy(AlertPolicy{MinStreak: 2, MediumStreak: 50, HighStreak: 60}))
	if err := s.Register("c1", &fakeStream{verdicts: repeat(anomalous(1.2), 3)}, 0); err != nil {
		t.Fatal(err)
	}
	feed(t, s, "c1", 0, []float64{1, 2, 3})
	s.Flush()
	return s
}

func TestAlertsEndpoint(t *testing.T) {
	s := alertingServer(t)
	ts := httptest.NewServer(s.Routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var events []AlertEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Tier != "LOW" || events[0].Consumer != "c1" {
		t.Fatalf("alerts = %+v, want one LOW for c1", events)
	}

	// ?n= caps the count; a bad n is a 400; an empty ring is [] not null.
	if resp, err = http.Get(ts.URL + "/alerts?n=0"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("alerts?n=0 status = %d", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/alerts?n=bogus"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("alerts?n=bogus status = %d, want 400", resp.StatusCode)
	}
}

func TestConsumerEndpoint(t *testing.T) {
	s := alertingServer(t)
	ts := httptest.NewServer(s.Routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/consumers/c1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ConsumerState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Consumer != "c1" || st.Tier != "LOW" || st.Observed != 3 || st.NextSlot != 3 {
		t.Errorf("consumer state = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/consumers/nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown consumer status = %d, want 404", resp.StatusCode)
	}
}

func TestDashboardEndpoint(t *testing.T) {
	s := alertingServer(t)
	ts := httptest.NewServer(s.Routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/dashboard.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d Dashboard
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Consumers != 1 || d.Stats.Observed != 3 {
		t.Errorf("dashboard stats = %+v", d.Stats)
	}
	if d.CoverageMin != 1 || d.CoverageMean != 1 {
		t.Errorf("dashboard coverage = min %g mean %g, want 1", d.CoverageMin, d.CoverageMean)
	}
}

// TestSSEStream: a live subscriber receives an alert event as an SSE frame,
// and Close ends the stream.
func TestSSEStream(t *testing.T) {
	s := newTestServer(t, WithAlertPolicy(AlertPolicy{MinStreak: 1}))
	if err := s.Register("c1", &fakeStream{verdicts: repeat(anomalous(1.2), 1)}, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/alerts/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}

	feed(t, s, "c1", 0, []float64{1})
	s.Flush()

	type frame struct {
		e   AlertEvent
		err error
	}
	got := make(chan frame, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var e AlertEvent
			err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e)
			got <- frame{e, err}
			return
		}
		got <- frame{err: fmt.Errorf("stream ended without a data frame: %v", sc.Err())}
	}()
	select {
	case f := <-got:
		if f.err != nil {
			t.Fatal(f.err)
		}
		if f.e.Consumer != "c1" || f.e.Tier != "LOW" {
			t.Errorf("SSE event = %+v, want LOW for c1", f.e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE event within 5s")
	}
}

// TestMountOnAdmin: the serve routes hang off the obs admin listener next
// to /metrics and /healthz.
func TestMountOnAdmin(t *testing.T) {
	s := alertingServer(t)
	reg := s.Metrics()
	admin, err := obs.ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	s.Mount(admin)

	base := "http://" + admin.Addr()
	for _, path := range []string{"/alerts", "/dashboard.json", "/consumers/c1", "/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// The shared registry exports the serve instruments.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	if !strings.Contains(b.String(), metricObserved) {
		t.Errorf("/metrics lacks %s", metricObserved)
	}
}
