package serve

import "repro/internal/obs"

// The serve instrument names. Package-level constants (lint-enforced:
// fdetalint's metricnames check) so the fdeta_serve_* namespace is
// auditable in one place.
//
// The coverage/fill gauges are fleet aggregates computed across every
// registered consumer — they replace the per-detector-name gauges the
// detect streams used to write, which only ever reflected the most
// recently advanced stream.
const (
	metricObserved     = "fdeta_serve_observed_total"
	metricUnknownMeter = "fdeta_serve_unknown_meter_total"
	metricDropped      = "fdeta_serve_dropped_total"
	metricVerdicts     = "fdeta_serve_verdicts_total"
	metricAlerts       = "fdeta_serve_alerts_total"
	metricConsumers    = "fdeta_serve_consumers"
	metricQueueDepth   = "fdeta_serve_queue_depth"
	metricRetrains     = "fdeta_serve_retrains_total"
	metricCovMin       = "fdeta_serve_coverage_min_ratio"
	metricCovMean      = "fdeta_serve_coverage_mean_ratio"
	metricFillMean     = "fdeta_serve_window_fill_mean_ratio"
)

// serveMetrics bundles the service's instruments.
type serveMetrics struct {
	reg *obs.Registry

	okObs      *obs.Counter // result="ok": live readings observed
	missingObs *obs.Counter // result="missing": gap slots observed as missing
	staleObs   *obs.Counter // result="stale": duplicate/regressed slots skipped
	errObs     *obs.Counter // result="error": readings the stream rejected

	unknown *obs.Counter
	dropped *obs.Counter

	vNormal       *obs.Counter
	vAnomalous    *obs.Counter
	vInconclusive *obs.Counter

	alertLow     *obs.Counter
	alertMedium  *obs.Counter
	alertHigh    *obs.Counter
	alertCleared *obs.Counter

	consumers  *obs.Gauge
	queueDepth *obs.Gauge

	retrainOK  *obs.Counter
	retrainErr *obs.Counter

	covMin   *obs.Gauge
	covMean  *obs.Gauge
	fillMean *obs.Gauge
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	obsHelp := "readings processed by the streaming service, by result"
	verdictHelp := "streaming verdicts issued, by outcome"
	alertHelp := "alert events emitted, by tier"
	retrainHelp := "rolling re-train attempts, by result"
	return &serveMetrics{
		reg: reg,
		okObs: reg.Counter(metricObserved, obsHelp,
			obs.L("result", "ok")),
		missingObs: reg.Counter(metricObserved, obsHelp,
			obs.L("result", "missing")),
		staleObs: reg.Counter(metricObserved, obsHelp,
			obs.L("result", "stale")),
		errObs: reg.Counter(metricObserved, obsHelp,
			obs.L("result", "error")),
		unknown: reg.Counter(metricUnknownMeter,
			"readings for meters with no registered consumer state"),
		dropped: reg.Counter(metricDropped,
			"sink deliveries dropped after the service closed"),
		vNormal: reg.Counter(metricVerdicts, verdictHelp,
			obs.L("verdict", "normal")),
		vAnomalous: reg.Counter(metricVerdicts, verdictHelp,
			obs.L("verdict", "anomalous")),
		vInconclusive: reg.Counter(metricVerdicts, verdictHelp,
			obs.L("verdict", "inconclusive")),
		alertLow: reg.Counter(metricAlerts, alertHelp,
			obs.L("tier", "low")),
		alertMedium: reg.Counter(metricAlerts, alertHelp,
			obs.L("tier", "medium")),
		alertHigh: reg.Counter(metricAlerts, alertHelp,
			obs.L("tier", "high")),
		alertCleared: reg.Counter(metricAlerts, alertHelp,
			obs.L("tier", "cleared")),
		consumers: reg.Gauge(metricConsumers,
			"consumers with registered streaming state"),
		queueDepth: reg.Gauge(metricQueueDepth,
			"reading jobs waiting on the service's worker queues"),
		retrainOK: reg.Counter(metricRetrains, retrainHelp,
			obs.L("result", "ok")),
		retrainErr: reg.Counter(metricRetrains, retrainHelp,
			obs.L("result", "error")),
		covMin: reg.Gauge(metricCovMin,
			"minimum window coverage across all consumers (aggregate sweep)"),
		covMean: reg.Gauge(metricCovMean,
			"mean window coverage across all consumers (aggregate sweep)"),
		fillMean: reg.Gauge(metricFillMean,
			"mean live-fill fraction across all consumers (aggregate sweep)"),
	}
}

func (m *serveMetrics) countAlert(tier string) {
	switch tier {
	case "LOW":
		m.alertLow.Inc()
	case "MEDIUM":
		m.alertMedium.Inc()
	case "HIGH":
		m.alertHigh.Inc()
	case tierCleared:
		m.alertCleared.Inc()
	}
}
