// Package serve is the always-on streaming detection service: it subscribes
// to a head-end's accepted-reading stream (ami.WithSink), keeps compact
// per-consumer streaming detector state behind the detect.StreamDetector
// interface, and emits risk-tiered alert events over an append-only JSONL
// log, an SSE feed, and HTTP state endpoints hung off the obs admin mux.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tier is the risk level of an alert, ordered so escalation is a plain
// comparison.
type Tier uint8

// Risk tiers, lowest to highest. TierNone is the quiescent state.
const (
	TierNone Tier = iota
	TierLow
	TierMedium
	TierHigh
)

// String names the tier as emitted in alert events.
func (t Tier) String() string {
	switch t {
	case TierLow:
		return "LOW"
	case TierMedium:
		return "MEDIUM"
	case TierHigh:
		return "HIGH"
	default:
		return "none"
	}
}

// AlertPolicy maps a consumer's verdict history to a risk tier. A tier is
// the maximum of the severity view (how far the score sits above the
// detector's threshold) and the persistence view (how long the stream has
// been continuously anomalous) — a brazen attack escalates on magnitude, a
// subtle one on duration.
type AlertPolicy struct {
	// MinStreak is how many consecutive anomalous verdicts a stream needs
	// before any alert fires (default 6 = three hours of half-hourly
	// readings). It suppresses the isolated threshold crossings every
	// detector with a finite false-positive rate produces.
	MinStreak int
	// MediumRatio and HighRatio are score/threshold ratios that escalate
	// severity (defaults 1.5 and 2.5).
	MediumRatio float64
	HighRatio   float64
	// MediumStreak and HighStreak are streak lengths that escalate
	// persistence (defaults 48 = one day, 96 = two days).
	MediumStreak int
	HighStreak   int
}

func (p AlertPolicy) withDefaults() AlertPolicy {
	if p.MinStreak == 0 {
		p.MinStreak = 6
	}
	if p.MediumRatio == 0 {
		p.MediumRatio = 1.5
	}
	if p.HighRatio == 0 {
		p.HighRatio = 2.5
	}
	if p.MediumStreak == 0 {
		p.MediumStreak = 48
	}
	if p.HighStreak == 0 {
		p.HighStreak = 96
	}
	return p
}

// Validate checks the policy's internal ordering.
func (p AlertPolicy) Validate() error {
	if p.MinStreak < 1 {
		return fmt.Errorf("serve: MinStreak must be >= 1, got %d", p.MinStreak)
	}
	if p.MediumRatio <= 1 || p.HighRatio < p.MediumRatio {
		return fmt.Errorf("serve: ratio tiers must satisfy 1 < medium (%g) <= high (%g)",
			p.MediumRatio, p.HighRatio)
	}
	if p.MediumStreak < p.MinStreak || p.HighStreak < p.MediumStreak {
		return fmt.Errorf("serve: streak tiers must satisfy min (%d) <= medium (%d) <= high (%d)",
			p.MinStreak, p.MediumStreak, p.HighStreak)
	}
	return nil
}

// tier maps one anomalous verdict's context to a risk tier.
func (p AlertPolicy) tier(streak int, ratio float64) Tier {
	if streak < p.MinStreak {
		return TierNone
	}
	t := TierLow
	if ratio >= p.MediumRatio || streak >= p.MediumStreak {
		t = TierMedium
	}
	if ratio >= p.HighRatio || streak >= p.HighStreak {
		t = TierHigh
	}
	return t
}

// AlertEvent is one entry of the alert stream: a tier escalation, or a
// clear (tier "CLEARED") when a previously alerting stream returns to
// normal. Events are emitted on transitions only, never per observation.
type AlertEvent struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Consumer  string    `json:"consumer"`
	Tier      string    `json:"tier"`
	Slot      int64     `json:"slot"`
	Score     float64   `json:"score"`
	Threshold float64   `json:"threshold"`
	Ratio     float64   `json:"ratio"`
	Streak    int       `json:"streak"`
	Detector  string    `json:"detector"`
	Reason    string    `json:"reason,omitempty"`
}

// tierCleared is the Tier field of a clear event.
const tierCleared = "CLEARED"

// alertRing keeps the most recent events for the /alerts endpoint.
type alertRing struct {
	mu     sync.Mutex
	events []AlertEvent
	next   int
	full   bool
}

func newAlertRing(n int) *alertRing {
	return &alertRing{events: make([]AlertEvent, n)}
}

func (r *alertRing) add(e AlertEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
	if r.next == 0 {
		r.full = true
	}
}

// recent returns up to n events, newest first.
func (r *alertRing) recent(n int) []AlertEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.events)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]AlertEvent, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.events[((r.next-1-i)+len(r.events))%len(r.events)])
	}
	return out
}

// jsonlLog serializes alert events onto an append-only writer, one JSON
// object per line.
type jsonlLog struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newJSONLLog(w io.Writer) *jsonlLog {
	if w == nil {
		return nil
	}
	return &jsonlLog{enc: json.NewEncoder(w)}
}

func (l *jsonlLog) write(e AlertEvent) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:ignore lockhold one Encoder means one writer: the lock exists precisely to serialize appends, and only alert deliveries (already off the detection path) contend on it
	return l.enc.Encode(e)
}

// sseHub fans alert events out to live /alerts/stream subscribers. Slow
// subscribers drop events rather than stalling the detection path.
type sseHub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newSSEHub() *sseHub {
	return &sseHub{subs: make(map[chan []byte]struct{})}
}

// subscribe returns a buffered event channel, or nil after close.
func (h *sseHub) subscribe() chan []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	ch := make(chan []byte, 64)
	h.subs[ch] = struct{}{}
	return ch
}

func (h *sseHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

func (h *sseHub) broadcast(b []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- b:
		default: // slow subscriber: drop, never block ingestion
		}
	}
}

func (h *sseHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
