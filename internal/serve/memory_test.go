package serve

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/detect"
	"repro/internal/timeseries"
)

// PerConsumerBudget is the service's memory contract: registered streaming
// state must average at most this many heap bytes per consumer, so a
// million-consumer fleet fits in about a gigabyte.
const PerConsumerBudget = 1024

// templateStreams builds nTemplates trained detectors (shared across the
// fleet, as a real deployment shares per-class baselines) and returns a
// factory producing a compact stream plus the seed week per consumer.
func templateStreams(t testing.TB, nTemplates int) func(i int) detect.StreamDetector {
	t.Helper()
	type tmpl struct {
		d    *detect.KLDDetector
		seed timeseries.Series
	}
	tmpls := make([]tmpl, nTemplates)
	for i := range tmpls {
		train, _ := serveConsumer(t.(*testing.T), int64(500+i), 4, 4)
		d, err := detect.NewKLDDetector(train, detect.KLDConfig{})
		if err != nil {
			t.Fatal(err)
		}
		tmpls[i] = tmpl{d: d, seed: train.MustWeek(train.Weeks() - 1)}
	}
	return func(i int) detect.StreamDetector {
		tm := tmpls[i%nTemplates]
		sd, err := tm.d.NewCompactStream(tm.seed)
		if err != nil {
			t.Fatal(err)
		}
		return sd
	}
}

func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestServerMemoryPerConsumer pins the ~1KB/consumer budget that makes the
// service viable at utility scale: the heap cost of registering a fleet of
// consumers, measured end to end (compact stream + per-consumer bookkeeping
// + map overhead), must stay within PerConsumerBudget bytes each.
func TestServerMemoryPerConsumer(t *testing.T) {
	if testing.Short() {
		t.Skip("memory accounting sweep is slow under -short")
	}
	const consumers = 30000
	mk := templateStreams(t, 16)

	s, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := heapAlloc()
	for i := 0; i < consumers; i++ {
		if err := s.Register(fmt.Sprintf("consumer-%06d", i), mk(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	after := heapAlloc()

	perConsumer := float64(after-before) / consumers
	t.Logf("fleet of %d consumers: %.0f B/consumer (budget %d)", consumers, perConsumer, PerConsumerBudget)
	if perConsumer > PerConsumerBudget {
		t.Fatalf("per-consumer heap cost %.0f B exceeds the %d B budget", perConsumer, PerConsumerBudget)
	}
	// Keep the fleet reachable so GC inside heapAlloc can't deflate `after`.
	if s.Consumers() != consumers {
		t.Fatal("fleet went missing")
	}
}
