package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ami"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// Defaults for the service's sizing knobs.
const (
	// DefaultWorkers is the number of observation workers (per-consumer
	// ordering is preserved by hashing consumers onto workers).
	DefaultWorkers = 4
	// DefaultQueueDepth bounds each worker's job queue; a full queue
	// applies backpressure to the head-end's shard workers.
	DefaultQueueDepth = 1024
	// DefaultAlertBuffer is how many recent alert events the /alerts
	// endpoint can replay.
	DefaultAlertBuffer = 1024
	// maxGapFill bounds how many missing-slot observations one gap can
	// inject: beyond a full window the earlier misses carry no additional
	// information (the window is already fully untrusted).
	maxGapFill = timeseries.SlotsPerWeek
)

// Store is the read side of a head-end the service re-trains from: both
// *ami.HeadEnd and *ami.ShardedHeadEnd satisfy it.
type Store interface {
	// Series assembles the dense series [0, n) for a meter; gaps are an
	// error.
	Series(meterID string, n int) (timeseries.Series, error)
	// Count returns the number of stored readings for a meter.
	Count(meterID string) int
}

// RetrainFunc builds a replacement stream detector for one consumer — the
// rolling re-train path. Returning an error keeps the consumer's current
// detector in place.
type RetrainFunc func(consumerID string, store Store, current detect.StreamDetector) (detect.StreamDetector, error)

// Option configures a Server at construction time, mirroring ami.New.
type Option func(*Server)

// WithStore attaches the head-end store re-trains read history from.
func WithStore(st Store) Option {
	return func(s *Server) { s.store = st }
}

// WithAlertPolicy replaces the default alert tiering policy. Zero-valued
// fields fall back to the defaults.
func WithAlertPolicy(p AlertPolicy) Option {
	return func(s *Server) { s.policy = p }
}

// WithRetrainInterval enables the rolling re-train loop on the given
// cadence (0 disables; the production cadence is a week). Requires
// WithRetrain.
func WithRetrainInterval(d time.Duration) Option {
	return func(s *Server) { s.retrainEvery = d }
}

// WithRetrain sets the re-train builder invoked per consumer by the
// re-train loop and RetrainAll.
func WithRetrain(f RetrainFunc) Option {
	return func(s *Server) { s.retrain = f }
}

// WithMetrics registers the service's instruments on reg instead of a
// private registry, so an admin endpoint can export them.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.met = newServeMetrics(reg)
		}
	}
}

// WithAlertLog appends every alert event to w as one JSON object per line
// (the append-only alert log). The caller owns w's lifecycle.
func WithAlertLog(w interface{ Write([]byte) (int, error) }) Option {
	return func(s *Server) { s.alertLog = newJSONLLog(w) }
}

// WithClock injects the clock stamping alert events (tests pin it).
func WithClock(c obs.Clock) Option {
	return func(s *Server) { s.clock = c }
}

// WithWorkers sets the observation worker count (0 = DefaultWorkers).
func WithWorkers(n int) Option {
	return func(s *Server) { s.workers = n }
}

// WithQueueDepth sets each worker's queue bound (0 = DefaultQueueDepth).
func WithQueueDepth(n int) Option {
	return func(s *Server) { s.queueDepth = n }
}

// consumer is the per-meter streaming state. The stream itself dominates
// the footprint; everything else is kept deliberately flat so a
// million-consumer fleet stays within the ~1KB/consumer budget (pinned by
// TestServerMemoryPerConsumer).
type consumer struct {
	mu       sync.Mutex
	id       string
	stream   detect.StreamDetector
	nextSlot int64 // next expected global slot

	streak       uint32 // consecutive anomalous verdicts
	tier         Tier
	observed     uint64
	missing      uint32
	stale        uint32
	errors       uint32
	inconclusive uint32
	alerts       uint32 // escalation events emitted (clears excluded)

	lastScore     float64
	lastThreshold float64
}

// job is one unit on a worker queue.
type job struct {
	meterID  string
	readings []ami.BatchReading // owned by the job (copied at the sink)
	flush    chan struct{}      // non-nil: barrier sentinel
}

// Server is the always-on streaming detection service. Construct with New,
// attach to a head-end via Sink, serve HTTP via Mount/Routes, stop with
// Close (which drains every delivered reading first).
type Server struct {
	policy       AlertPolicy
	store        Store
	retrain      RetrainFunc
	retrainEvery time.Duration
	workers      int
	queueDepth   int
	clock        obs.Clock
	log          *slog.Logger
	met          *serveMetrics
	alertLog     *jsonlLog
	ring         *alertRing
	hub          *sseHub

	mu        sync.RWMutex // guards consumers
	consumers map[string]*consumer

	queues []chan job
	wg     sync.WaitGroup

	sinkMu sync.RWMutex // serializes sink intake against Close
	closed bool

	stop     chan struct{} // closed at Close start: ends the retrain loop
	done     chan struct{} // closed after drain: ends SSE streams
	loopWG   sync.WaitGroup
	seq      atomic.Uint64
	start    time.Time
	retrains atomic.Int64
}

// New builds a Server from functional options (mirroring ami.New) and
// starts its workers — and, when WithRetrainInterval and WithRetrain are
// both set, the rolling re-train loop.
func New(opts ...Option) (*Server, error) {
	s := &Server{
		consumers: make(map[string]*consumer),
		ring:      newAlertRing(DefaultAlertBuffer),
		hub:       newSSEHub(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		log:       obs.Logger("serve"),
	}
	for _, o := range opts {
		o(s)
	}
	s.policy = s.policy.withDefaults()
	if err := s.policy.Validate(); err != nil {
		return nil, err
	}
	if s.workers <= 0 {
		s.workers = DefaultWorkers
	}
	if s.queueDepth <= 0 {
		s.queueDepth = DefaultQueueDepth
	}
	if s.retrainEvery < 0 {
		return nil, fmt.Errorf("serve: negative retrain interval %v", s.retrainEvery)
	}
	if s.retrainEvery > 0 && s.retrain == nil {
		return nil, fmt.Errorf("serve: WithRetrainInterval requires WithRetrain")
	}
	if s.clock == nil {
		s.clock = obs.Wall()
	}
	if s.met == nil {
		s.met = newServeMetrics(obs.NewRegistry())
	}
	s.start = s.clock.Now()
	s.queues = make([]chan job, s.workers)
	for i := range s.queues {
		q := make(chan job, s.queueDepth)
		s.queues[i] = q
		s.wg.Add(1)
		go s.worker(q)
	}
	if s.retrainEvery > 0 {
		s.loopWG.Add(1)
		go s.retrainLoop()
	}
	return s, nil
}

// Metrics returns the registry holding the service's instruments.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Register installs streaming state for a consumer. nextSlot is the global
// slot index the first live reading is expected at (readings below it are
// counted stale and skipped — they belong to the already-trained past).
func (s *Server) Register(id string, sd detect.StreamDetector, nextSlot int64) error {
	if id == "" {
		return fmt.Errorf("serve: empty consumer id")
	}
	if sd == nil {
		return fmt.Errorf("serve: nil stream detector for %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.consumers[id]; dup {
		return fmt.Errorf("serve: consumer %q already registered", id)
	}
	s.consumers[id] = &consumer{id: id, stream: sd, nextSlot: nextSlot}
	s.met.consumers.Set(float64(len(s.consumers)))
	return nil
}

// Consumers returns the number of registered consumers.
func (s *Server) Consumers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.consumers)
}

// Sink returns the accepted-reading tap to hand to ami.WithSink. The
// borrowed readings slice is copied before the call returns, honoring the
// sink contract; observation itself happens on the service's own workers,
// so the head-end's shard workers never run detection. After Close the
// sink drops (and counts) deliveries.
func (s *Server) Sink() ami.ReadingSink {
	return func(meterID string, readings []ami.BatchReading) {
		if len(readings) == 0 {
			return
		}
		s.sinkMu.RLock()
		defer s.sinkMu.RUnlock()
		if s.closed {
			s.met.dropped.Add(int64(len(readings)))
			return
		}
		owned := make([]ami.BatchReading, len(readings))
		copy(owned, readings)
		s.met.queueDepth.Add(1)
		//lint:ignore lockhold the send under sinkMu.RLock is the backpressure contract: a full queue parks the head-end shard worker, and the workers drain without taking sinkMu, so the send always unblocks
		s.queues[workerIndex(meterID, len(s.queues))] <- job{meterID: meterID, readings: owned}
	}
}

// workerIndex hash-partitions a meter ID over the workers (FNV-1a), so one
// consumer's readings always land on the same worker in order.
func workerIndex(meterID string, n int) int {
	h := uint64(1469598103934665603)
	for i := 0; i < len(meterID); i++ {
		h ^= uint64(meterID[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// worker drains one queue until Close closes it.
func (s *Server) worker(q chan job) {
	defer s.wg.Done()
	for j := range q {
		if j.flush != nil {
			close(j.flush)
			continue
		}
		s.met.queueDepth.Add(-1)
		s.process(j)
	}
}

// process observes one job's readings against its consumer's stream.
// Alert events are built under the consumer's lock (they read streak and
// tier state) but delivered after it is released: the ring buffer, JSONL
// log, and SSE hub are shared sinks, and a slow one must stall only this
// job, never every worker parked on this consumer — the same
// outside-the-lock contract the head-end sink documents, here enforced by
// the lockhold analyzer.
func (s *Server) process(j job) {
	s.mu.RLock()
	c := s.consumers[j.meterID]
	s.mu.RUnlock()
	if c == nil {
		s.met.unknown.Add(int64(len(j.readings)))
		return
	}
	c.mu.Lock()
	var events []AlertEvent
	for _, r := range j.readings {
		s.observeOne(c, r, &events)
	}
	c.mu.Unlock()
	s.deliver(events)
}

// observeOne advances one consumer's stream by one accepted reading,
// filling any slot gap with missing-status observations first. Callers
// hold c.mu; alert events are appended to pending for delivery after the
// lock is released.
func (s *Server) observeOne(c *consumer, r ami.BatchReading, pending *[]AlertEvent) {
	if r.Slot < c.nextSlot {
		// Duplicate or regressed slot: the window has moved past it.
		c.stale++
		s.met.staleObs.Inc()
		return
	}
	if gap := r.Slot - c.nextSlot; gap > 0 {
		// The meter skipped slots: observe the most recent min(gap, 336)
		// of them as missing so coverage accounting degrades honestly.
		fill := gap
		if fill > maxGapFill {
			fill = maxGapFill
		}
		for i := int64(0); i < fill; i++ {
			v, err := c.stream.ObserveStatus(0, timeseries.StatusMissing)
			c.missing++
			s.met.missingObs.Inc()
			if err == nil {
				s.judge(c, r.Slot-fill+i, v, pending)
			}
		}
	}
	v, err := c.stream.Observe(r.KW)
	c.nextSlot = r.Slot + 1
	if err != nil {
		// The wire layer rejects non-finite and negative readings, so this
		// is defense in depth, not an expected path.
		c.errors++
		s.met.errObs.Inc()
		return
	}
	c.observed++
	s.met.okObs.Inc()
	s.judge(c, r.Slot, v, pending)
}

// judge folds one verdict into the consumer's alert state, appending an
// event to pending on tier transitions. Callers hold c.mu.
func (s *Server) judge(c *consumer, slot int64, v detect.Verdict, pending *[]AlertEvent) {
	switch {
	case v.Inconclusive:
		// Coverage too low for a definite answer. The streak is preserved:
		// a theft in progress doesn't become innocent because the meter
		// also dropped readings.
		c.inconclusive++
		s.met.vInconclusive.Inc()
	case v.Anomalous:
		s.met.vAnomalous.Inc()
		c.lastScore, c.lastThreshold = v.Score, v.Threshold
		if c.streak < math.MaxUint32 {
			c.streak++
		}
		ratio := math.Inf(1)
		if v.Threshold > 0 {
			ratio = v.Score / v.Threshold
		}
		if next := s.policy.tier(int(c.streak), ratio); next > c.tier {
			c.tier = next
			c.alerts++
			*pending = append(*pending, s.newEvent(c, slot, v, ratio, next.String()))
		}
	default:
		s.met.vNormal.Inc()
		c.lastScore, c.lastThreshold = v.Score, v.Threshold
		c.streak = 0
		if c.tier != TierNone {
			c.tier = TierNone
			*pending = append(*pending, s.newEvent(c, slot, v, 0, tierCleared))
		}
	}
}

// newEvent builds one alert event from the consumer's current state.
// Callers hold c.mu; delivery happens later, via deliver.
func (s *Server) newEvent(c *consumer, slot int64, v detect.Verdict, ratio float64, tier string) AlertEvent {
	return AlertEvent{
		Seq:       s.seq.Add(1),
		Time:      s.clock.Now().UTC(),
		Consumer:  c.id,
		Tier:      tier,
		Slot:      slot,
		Score:     v.Score,
		Threshold: v.Threshold,
		Ratio:     ratio,
		Streak:    int(c.streak),
		Detector:  c.stream.Name(),
		Reason:    v.Reason,
	}
}

// deliver records alert events on every output: counter, ring buffer,
// JSONL log, SSE subscribers. Runs with no locks held.
func (s *Server) deliver(events []AlertEvent) {
	for _, e := range events {
		s.met.countAlert(e.Tier)
		s.ring.add(e)
		if err := s.alertLog.write(e); err != nil {
			s.log.Error("alert log append failed", "err", err)
		}
		if b, err := json.Marshal(e); err == nil {
			s.hub.broadcast(b)
		}
	}
}

// Alerts returns up to n recent alert events, newest first (n <= 0 returns
// everything buffered).
func (s *Server) Alerts(n int) []AlertEvent { return s.ring.recent(n) }

// Flush blocks until every reading delivered to the sink before the call
// has been observed, then refreshes the aggregate gauges. The analogue of
// ShardedHeadEnd.Flush one tier up. Unbounded by design; use FlushContext
// to cap the wait.
func (s *Server) Flush() { _ = s.FlushContext(context.Background()) }

// FlushContext is Flush with a bound: it returns ctx.Err() as soon as ctx
// is done, whether the barrier is stuck enqueuing behind full worker
// queues or waiting on a sentinel. On early return the sentinels already
// enqueued still drain normally; only the wait is abandoned.
func (s *Server) FlushContext(ctx context.Context) error {
	s.sinkMu.RLock()
	if s.closed {
		s.sinkMu.RUnlock()
		return nil
	}
	chans := make([]chan struct{}, len(s.queues))
	for i, q := range s.queues {
		chans[i] = make(chan struct{})
		//lint:ignore lockhold the flush sentinel must enqueue under sinkMu so Close cannot close the queues mid-send; the workers drain without taking sinkMu, so the send always unblocks
		select {
		case q <- job{flush: chans[i]}:
		case <-ctx.Done():
			s.sinkMu.RUnlock()
			return ctx.Err()
		}
	}
	s.sinkMu.RUnlock()
	for _, c := range chans {
		select {
		case <-c:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.UpdateAggregates()
	return nil
}

// UpdateAggregates sweeps every consumer and publishes the fleet-level
// coverage/fill gauges: minimum and mean window coverage, mean live fill.
func (s *Server) UpdateAggregates() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.consumers)
	if n == 0 {
		return
	}
	minCov, sumCov, sumFill := math.Inf(1), 0.0, 0.0
	for _, c := range s.consumers {
		c.mu.Lock()
		cov := c.stream.Coverage()
		fill := float64(c.stream.Filled()) / timeseries.SlotsPerWeek
		c.mu.Unlock()
		if cov < minCov {
			minCov = cov
		}
		sumCov += cov
		sumFill += fill
	}
	s.met.covMin.Set(minCov)
	s.met.covMean.Set(sumCov / float64(n))
	s.met.fillMean.Set(sumFill / float64(n))
}

// RetrainAll rebuilds every consumer's detector through the configured
// RetrainFunc and swaps each stream atomically behind the observation path
// (per-consumer lock; readings never stop flowing for the fleet). A
// consumer whose re-train fails keeps its current detector.
func (s *Server) RetrainAll() (ok, failed int) {
	if s.retrain == nil {
		return 0, 0
	}
	s.mu.RLock()
	ids := make([]string, 0, len(s.consumers))
	for id := range s.consumers {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	for _, id := range ids {
		s.mu.RLock()
		c := s.consumers[id]
		s.mu.RUnlock()
		if c == nil {
			continue
		}
		c.mu.Lock()
		cur := c.stream
		c.mu.Unlock()
		// The build reads the store and trains outside every lock; only
		// the swap itself takes the consumer's mutex.
		next, err := s.retrain(id, s.store, cur)
		if err != nil || next == nil {
			if err != nil {
				s.log.Warn("re-train failed; keeping current detector", "consumer", id, "err", err)
			}
			s.met.retrainErr.Inc()
			failed++
			continue
		}
		c.mu.Lock()
		c.stream = next
		c.mu.Unlock()
		s.met.retrainOK.Inc()
		ok++
	}
	s.retrains.Add(1)
	return ok, failed
}

// retrainLoop re-trains the fleet on the configured cadence until Close.
func (s *Server) retrainLoop() {
	defer s.loopWG.Done()
	ticker := time.NewTicker(s.retrainEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			ok, failed := s.RetrainAll()
			s.UpdateAggregates()
			s.log.Info("rolling re-train complete", "ok", ok, "failed", failed)
		}
	}
}

// Close drains and stops the service: the sink stops accepting (further
// deliveries are dropped and counted), the workers finish every queued
// reading, the aggregate gauges get a final sweep, and the SSE streams
// end. Call after the head-end's own Close so everything the head-end
// acknowledged has already been delivered to the sink. Idempotent.
func (s *Server) Close() error {
	s.sinkMu.Lock()
	if s.closed {
		s.sinkMu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.stop)
	for _, q := range s.queues {
		close(q)
	}
	s.sinkMu.Unlock()
	s.loopWG.Wait()
	s.wg.Wait()
	s.UpdateAggregates()
	close(s.done)
	s.hub.close()
	return nil
}

// Stats is a point-in-time summary of the service's counters.
type Stats struct {
	Consumers    int   `json:"consumers"`
	Observed     int64 `json:"observed"`
	Missing      int64 `json:"missing"`
	Stale        int64 `json:"stale"`
	Errors       int64 `json:"errors"`
	Unknown      int64 `json:"unknown_meter"`
	Dropped      int64 `json:"dropped"`
	Normal       int64 `json:"verdicts_normal"`
	Anomalous    int64 `json:"verdicts_anomalous"`
	Inconclusive int64 `json:"verdicts_inconclusive"`
	AlertsLow    int64 `json:"alerts_low"`
	AlertsMedium int64 `json:"alerts_medium"`
	AlertsHigh   int64 `json:"alerts_high"`
	AlertsClear  int64 `json:"alerts_cleared"`
	Retrains     int64 `json:"retrain_sweeps"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	m := s.met
	return Stats{
		Consumers:    s.Consumers(),
		Observed:     m.okObs.Value(),
		Missing:      m.missingObs.Value(),
		Stale:        m.staleObs.Value(),
		Errors:       m.errObs.Value(),
		Unknown:      m.unknown.Value(),
		Dropped:      m.dropped.Value(),
		Normal:       m.vNormal.Value(),
		Anomalous:    m.vAnomalous.Value(),
		Inconclusive: m.vInconclusive.Value(),
		AlertsLow:    m.alertLow.Value(),
		AlertsMedium: m.alertMedium.Value(),
		AlertsHigh:   m.alertHigh.Value(),
		AlertsClear:  m.alertCleared.Value(),
		Retrains:     s.retrains.Load(),
	}
}

// KLDRetrainer returns the production RetrainFunc: re-train a KLD detector
// on the consumer's most recent trainWeeks full weeks from the store, and
// return a fresh compact stream seeded with the newest trusted week. The
// previous window's live fill restarts from the new seed — a re-train is a
// deliberate reset of the baseline, and StreamDetector.Reseed covers the
// seed-only swap that preserves live slots.
func KLDRetrainer(trainWeeks int, cfg detect.KLDConfig) RetrainFunc {
	return func(id string, st Store, _ detect.StreamDetector) (detect.StreamDetector, error) {
		if st == nil {
			return nil, fmt.Errorf("serve: re-train needs a store (WithStore)")
		}
		weeks := st.Count(id) / timeseries.SlotsPerWeek
		if weeks < 2 {
			return nil, fmt.Errorf("serve: consumer %q has %d full weeks of history, need >= 2", id, weeks)
		}
		if trainWeeks >= 2 && weeks > trainWeeks {
			weeks = trainWeeks
		}
		total := st.Count(id) / timeseries.SlotsPerWeek * timeseries.SlotsPerWeek
		series, err := st.Series(id, total)
		if err != nil {
			return nil, fmt.Errorf("serve: re-train history: %w", err)
		}
		tail := series[total-weeks*timeseries.SlotsPerWeek:]
		d, err := detect.NewKLDDetector(tail, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: re-train: %w", err)
		}
		return d.NewCompactStream(tail[len(tail)-timeseries.SlotsPerWeek:])
	}
}
