package serve

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/timeseries"
)

// memStore is an in-memory Store: a map of fully dense series per
// consumer, mirroring what a head-end accumulates.
type memStore struct {
	series map[string]timeseries.Series
}

func (m *memStore) Count(id string) int { return len(m.series[id]) }

func (m *memStore) Series(id string, n int) (timeseries.Series, error) {
	s, ok := m.series[id]
	if !ok || n > len(s) {
		return nil, fmt.Errorf("memStore: %q has %d readings, want %d", id, len(s), n)
	}
	out := make(timeseries.Series, n)
	copy(out, s[:n])
	return out, nil
}

// serveConsumer generates one synthetic residential consumer and splits it
// into train/test series.
func serveConsumer(t *testing.T, seed int64, weeks, trainWeeks int) (train, test timeseries.Series) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: weeks, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if trainWeeks >= weeks {
		return ds.Consumers[0].Demand, nil
	}
	train, test, err = ds.Consumers[0].Demand.Split(trainWeeks)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}
