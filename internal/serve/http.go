package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/timeseries"
)

// ConsumerState is the /consumers/{id} view of one meter's streaming state.
type ConsumerState struct {
	Consumer      string  `json:"consumer"`
	Detector      string  `json:"detector"`
	Tier          string  `json:"tier"`
	Streak        int     `json:"streak"`
	NextSlot      int64   `json:"next_slot"`
	Filled        int     `json:"filled"`
	Coverage      float64 `json:"coverage"`
	Observed      uint64  `json:"observed"`
	Missing       uint32  `json:"missing"`
	Stale         uint32  `json:"stale"`
	Errors        uint32  `json:"errors"`
	Inconclusive  uint32  `json:"inconclusive"`
	Alerts        uint32  `json:"alerts"`
	LastScore     float64 `json:"last_score"`
	LastThreshold float64 `json:"last_threshold"`
}

// ConsumerState snapshots one consumer's state; ok is false if the id is
// not registered.
func (s *Server) ConsumerState(id string) (ConsumerState, bool) {
	s.mu.RLock()
	c := s.consumers[id]
	s.mu.RUnlock()
	if c == nil {
		return ConsumerState{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ConsumerState{
		Consumer:      c.id,
		Detector:      c.stream.Name(),
		Tier:          c.tier.String(),
		Streak:        int(c.streak),
		NextSlot:      c.nextSlot,
		Filled:        c.stream.Filled(),
		Coverage:      c.stream.Coverage(),
		Observed:      c.observed,
		Missing:       c.missing,
		Stale:         c.stale,
		Errors:        c.errors,
		Inconclusive:  c.inconclusive,
		Alerts:        c.alerts,
		LastScore:     c.lastScore,
		LastThreshold: c.lastThreshold,
	}, true
}

// Dashboard is the /dashboard.json payload: the service counters plus the
// fleet-level coverage aggregates, one GET for a wallboard.
type Dashboard struct {
	Stats         Stats   `json:"stats"`
	CoverageMin   float64 `json:"coverage_min"`
	CoverageMean  float64 `json:"coverage_mean"`
	WindowFillAvg float64 `json:"window_fill_mean"`
	SlotsPerWeek  int     `json:"slots_per_week"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Dashboard computes a fresh fleet snapshot (it sweeps the aggregates
// before reading them).
func (s *Server) Dashboard() Dashboard {
	s.UpdateAggregates()
	return Dashboard{
		Stats:         s.Stats(),
		CoverageMin:   s.met.covMin.Value(),
		CoverageMean:  s.met.covMean.Value(),
		WindowFillAvg: s.met.fillMean.Value(),
		SlotsPerWeek:  timeseries.SlotsPerWeek,
		UptimeSeconds: s.clock.Now().Sub(s.start).Seconds(),
	}
}

// Routes returns the service's HTTP surface:
//
//	/alerts            recent alert events, newest first (?n= to limit)
//	/alerts/stream     live alert feed as Server-Sent Events
//	/consumers/{id}    one consumer's streaming state
//	/dashboard.json    fleet counters and coverage aggregates
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /alerts/stream", s.handleAlertStream)
	mux.HandleFunc("GET /consumers/{id}", s.handleConsumer)
	mux.HandleFunc("GET /dashboard.json", s.handleDashboard)
	return mux
}

// Mount hangs the service's routes off an obs admin server, so /alerts and
// /metrics share one listener.
func (s *Server) Mount(a *obs.AdminServer) {
	h := s.Routes()
	a.Handle("/alerts", h)
	a.Handle("/alerts/stream", h)
	a.Handle("/consumers/", h)
	a.Handle("/dashboard.json", h)
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	events := s.Alerts(n)
	if events == nil {
		events = []AlertEvent{}
	}
	writeJSON(w, events)
}

func (s *Server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := s.hub.subscribe()
	if ch == nil {
		http.Error(w, "service closed", http.StatusServiceUnavailable)
		return
	}
	defer s.hub.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case b, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleConsumer(w http.ResponseWriter, r *http.Request) {
	st, ok := s.ConsumerState(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown consumer", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Dashboard())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
