package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the text exposition format: instrument order,
// HELP/TYPE headers shared across a labelled family, cumulative buckets with
// a +Inf tail, and label escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fdeta_test_readings_total", "readings stored", L("result", "accepted")).Add(41)
	r.Counter("fdeta_test_readings_total", "readings stored", L("result", "rejected")).Inc()
	r.Gauge("fdeta_test_active_conns", "sessions being served").Set(3)
	// Power-of-two observations keep the sum exact in binary floating point,
	// so the golden text is stable.
	h := r.Histogram("fdeta_test_latency_seconds", "per-message ingest latency", []float64{0.25, 1})
	h.Observe(0.125)
	h.Observe(0.5)
	h.Observe(2)
	r.Counter("fdeta_test_weird_total", "label escaping", L("q", `5%"quoted"\slash`)).Inc()

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP fdeta_test_active_conns sessions being served
# TYPE fdeta_test_active_conns gauge
fdeta_test_active_conns 3
# HELP fdeta_test_latency_seconds per-message ingest latency
# TYPE fdeta_test_latency_seconds histogram
fdeta_test_latency_seconds_bucket{le="0.25"} 1
fdeta_test_latency_seconds_bucket{le="1"} 2
fdeta_test_latency_seconds_bucket{le="+Inf"} 3
fdeta_test_latency_seconds_sum 2.625
fdeta_test_latency_seconds_count 3
# HELP fdeta_test_readings_total readings stored
# TYPE fdeta_test_readings_total counter
fdeta_test_readings_total{result="accepted"} 41
fdeta_test_readings_total{result="rejected"} 1
# HELP fdeta_test_weird_total label escaping
# TYPE fdeta_test_weird_total counter
fdeta_test_weird_total{q="5%\"quoted\"\\slash"} 1
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestJSONEncodesInfBound proves the +Inf tail bucket survives the JSON
// encoder (encoding/json rejects non-finite floats).
func TestJSONEncodesInfBound(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1}).Observe(2)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metrics []struct {
			Name    string `json:"name"`
			Buckets []struct {
				Le    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("decoding snapshot JSON: %v", err)
	}
	if len(decoded.Metrics) != 1 || len(decoded.Metrics[0].Buckets) != 2 {
		t.Fatalf("unexpected snapshot shape: %s", b.String())
	}
	if tail := decoded.Metrics[0].Buckets[1]; tail.Le != "+Inf" || tail.Count != 1 {
		t.Errorf("tail bucket = %+v, want le=+Inf count=1", tail)
	}
}
