package obs

import "time"

// Clock abstracts the wall clock behind the timing instrumentation. The
// evaluation packages are forbidden (and lint-enforced: fdetalint's
// determinism check) from calling time.Now directly — their outputs must
// be bit-reproducible from a seed — so stage timings and run summaries
// read time through an injected Clock instead. Production callers use
// Wall(); tests inject a fake to make timing-derived fields deterministic.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// wallClock is the real wall clock.
type wallClock struct{}

func (wallClock) Now() time.Time                  { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Wall returns the process wall clock.
func Wall() Clock { return wallClock{} }
