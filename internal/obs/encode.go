package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MarshalJSON renders the bucket bound as a string so the +Inf tail bucket
// survives encoding/json (which rejects non-finite float64s).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatBound(b.UpperBound), b.Count)), nil
}

// formatBound renders a bucket upper bound the way Prometheus does.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue renders a sample value.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...} with an optional extra label appended
// (used for histogram le buckets). Empty when there are no labels.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus encodes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metrics sharing a name emit one HELP/TYPE header.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				ls := labelString(m.Labels, L("le", formatBound(b.UpperBound)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, ls, b.Count); err != nil {
					return err
				}
			}
			ls := labelString(m.Labels)
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, ls, formatValue(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, ls, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels), formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON encodes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
