package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("fdeta_admin_test_total", "smoke counter").Add(7)
	srv, err := ServeAdmin("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "fdeta_admin_test_total 7") {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status = %d", code)
	}
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 7 {
		t.Errorf("/metrics.json = %s", body)
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d %s", code, body)
	}

	// pprof index must be mounted (profiling a live run is the point).
	code, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
}

func TestServeAdminBadAddr(t *testing.T) {
	if _, err := ServeAdmin("256.0.0.1:bad", nil); err == nil {
		t.Fatal("bad address did not error")
	}
}

// TestAdminServerHandle mounts a custom route next to the built-ins.
func TestAdminServerHandle(t *testing.T) {
	srv, err := ServeAdmin("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/alerts", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"alerts":[]}`))
	}))
	base := "http://" + srv.Addr()
	code, body := get(t, base+"/alerts")
	if code != http.StatusOK || body != `{"alerts":[]}` {
		t.Fatalf("/alerts = %d %q", code, body)
	}
	// The built-ins survive the extra mount.
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
}
