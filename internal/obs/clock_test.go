package obs

import (
	"testing"
	"time"
)

func TestWallClock(t *testing.T) {
	clk := Wall()
	start := clk.Now()
	if since := clk.Since(start); since < 0 {
		t.Errorf("Since(now) = %v, want >= 0", since)
	}
	if clk.Now().Before(start) {
		t.Error("wall clock went backwards")
	}
	if time.Since(start) < 0 {
		t.Error("Wall().Now() is not wall time")
	}
}
