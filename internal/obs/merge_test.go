package obs

import (
	"math"
	"testing"
)

// snap builds a registry snapshot from a few instruments — the merge tests
// always go through real registries so they exercise the same snapshot
// shapes MergeSnapshots sees in production.
func snapWith(fill func(r *Registry)) Snapshot {
	r := NewRegistry()
	fill(r)
	return r.Snapshot()
}

// Total folds a per-shard labeled family into one figure: counters and
// gauges sum values, histograms contribute observation counts, and other
// families in the snapshot stay out of the sum.
func TestSnapshotTotal(t *testing.T) {
	s := snapWith(func(r *Registry) {
		r.Counter("fdeta_test_wal_appended_total", "", L("shard", "0")).Add(3)
		r.Counter("fdeta_test_wal_appended_total", "", L("shard", "1")).Add(4)
		r.Counter("fdeta_test_other_total", "").Add(100)
		r.Gauge("fdeta_test_depth", "", L("shard", "0")).Set(2)
		r.Gauge("fdeta_test_depth", "", L("shard", "1")).Set(5)
		h := r.Histogram("fdeta_test_sync_seconds", "", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
		h.Observe(2)
	})
	if got := s.Total("fdeta_test_wal_appended_total"); got != 7 {
		t.Errorf("counter family Total = %g, want 7", got)
	}
	if got := s.Total("fdeta_test_depth"); got != 7 {
		t.Errorf("gauge family Total = %g, want 7", got)
	}
	if got := s.Total("fdeta_test_sync_seconds"); got != 3 {
		t.Errorf("histogram Total = %g, want 3 observations", got)
	}
	if got := s.Total("fdeta_test_absent"); got != 0 {
		t.Errorf("absent family Total = %g, want 0", got)
	}
}

func TestMergeSnapshotsSumsByIdentity(t *testing.T) {
	a := snapWith(func(r *Registry) {
		r.Counter("fdeta_test_total", "", L("shard", "0")).Add(3)
		r.Gauge("fdeta_test_depth", "").Set(5)
	})
	b := snapWith(func(r *Registry) {
		r.Counter("fdeta_test_total", "", L("shard", "0")).Add(4)
		r.Counter("fdeta_test_total", "", L("shard", "1")).Add(10)
		r.Gauge("fdeta_test_depth", "").Set(2)
	})

	m := MergeSnapshots(a, b)
	if got := m.Find("fdeta_test_total", L("shard", "0")); got == nil || got.Value != 7 {
		t.Fatalf("shard 0 counter = %+v, want value 7", got)
	}
	if got := m.Find("fdeta_test_total", L("shard", "1")); got == nil || got.Value != 10 {
		t.Fatalf("shard 1 counter = %+v, want value 10", got)
	}
	if got := m.Find("fdeta_test_depth"); got == nil || got.Value != 7 {
		t.Fatalf("gauge = %+v, want summed value 7", got)
	}

	// Same name, different type, must not merge into one metric.
	typed := MergeSnapshots(
		snapWith(func(r *Registry) { r.Counter("fdeta_test_mixed", "").Inc() }),
		snapWith(func(r *Registry) { r.Gauge("fdeta_test_mixed", "").Set(1) }),
	)
	n := 0
	for _, met := range typed.Metrics {
		if met.Name == "fdeta_test_mixed" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("counter and gauge with one name collapsed into %d metrics, want 2", n)
	}
}

func TestMergeSnapshotsAlignedHistograms(t *testing.T) {
	bounds := []float64{1, 2, 4}
	a := snapWith(func(r *Registry) {
		h := r.Histogram("fdeta_test_seconds", "", bounds)
		h.Observe(0.5)
		h.Observe(1.5)
	})
	b := snapWith(func(r *Registry) {
		h := r.Histogram("fdeta_test_seconds", "", bounds)
		h.Observe(3)
		h.Observe(3)
	})
	m := MergeSnapshots(a, b)
	got := m.Find("fdeta_test_seconds")
	if got == nil {
		t.Fatal("merged histogram missing")
	}
	if got.Count != 4 || got.Sum != 8 {
		t.Errorf("merged count/sum = %d/%g, want 4/8", got.Count, got.Sum)
	}
	// Cumulative buckets: ≤1 holds 1, ≤2 holds 2, ≤4 holds 4, +Inf holds 4.
	want := []uint64{1, 2, 4, 4}
	if len(got.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got.Buckets), len(want))
	}
	for i, w := range want {
		if got.Buckets[i].Count != w {
			t.Errorf("bucket %d (≤%g) = %d, want %d", i, got.Buckets[i].UpperBound, got.Buckets[i].Count, w)
		}
	}
}

func TestMergeSnapshotsMismatchedGrids(t *testing.T) {
	a := snapWith(func(r *Registry) {
		r.Histogram("fdeta_test_seconds", "", []float64{1, 2}).Observe(0.5)
	})
	b := snapWith(func(r *Registry) {
		r.Histogram("fdeta_test_seconds", "", []float64{10, 20}).Observe(15)
	})
	m := MergeSnapshots(a, b)
	got := m.Find("fdeta_test_seconds")
	if got == nil {
		t.Fatal("merged histogram missing")
	}
	// Incompatible grids still fold Count and Sum (the scalar aggregates
	// stay meaningful); the per-bucket shape keeps the first grid.
	if got.Count != 2 || got.Sum != 15.5 {
		t.Errorf("merged count/sum = %d/%g, want 2/15.5", got.Count, got.Sum)
	}
}

func TestMergeSnapshotsDoesNotAliasInputs(t *testing.T) {
	a := snapWith(func(r *Registry) {
		r.Histogram("fdeta_test_seconds", "", []float64{1}).Observe(0.5)
	})
	b := snapWith(func(r *Registry) {
		r.Histogram("fdeta_test_seconds", "", []float64{1}).Observe(0.5)
	})
	m := MergeSnapshots(a, b)
	before := a.Find("fdeta_test_seconds").Buckets[0].Count
	m.Find("fdeta_test_seconds").Buckets[0].Count = 999
	if after := a.Find("fdeta_test_seconds").Buckets[0].Count; after != before {
		t.Error("mutating the merged snapshot changed an input snapshot: buckets are aliased")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	s := snapWith(func(r *Registry) {
		h := r.Histogram("fdeta_test_seconds", "", []float64{1, 2, 4})
		for _, v := range []float64{0.5, 1.5, 3, 3} {
			h.Observe(v)
		}
	})
	m := s.Find("fdeta_test_seconds")
	if m == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// rank for q=0.5 over 4 obs is 2 → exactly fills the (1,2] bucket →
	// linear interpolation lands on its upper bound.
	if got := Quantile(m, 0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("p50 = %g, want 2", got)
	}
	// q=1 lands in the (2,4] bucket, full → its upper bound.
	if got := Quantile(m, 1); math.Abs(got-4) > 1e-9 {
		t.Errorf("p100 = %g, want 4", got)
	}
	// Quantiles are monotone in q.
	if p25, p75 := Quantile(m, 0.25), Quantile(m, 0.75); p25 > p75 {
		t.Errorf("p25 %g > p75 %g", p25, p75)
	}

	// A sample beyond the last bound lands in +Inf; the estimate clamps to
	// the highest finite bound instead of returning infinity.
	inf := snapWith(func(r *Registry) {
		h := r.Histogram("fdeta_test_seconds", "", []float64{1})
		h.Observe(100)
	})
	if got := Quantile(inf.Find("fdeta_test_seconds"), 0.99); math.IsInf(got, 1) {
		t.Error("quantile in the +Inf bucket returned +Inf, want the last finite bound")
	}

	// Empty histogram and non-histogram metrics have no quantiles.
	empty := snapWith(func(r *Registry) {
		r.Histogram("fdeta_test_seconds", "", []float64{1})
		r.Counter("fdeta_test_total", "").Inc()
	})
	if got := Quantile(empty.Find("fdeta_test_seconds"), 0.5); !math.IsNaN(got) {
		t.Errorf("quantile of empty histogram = %g, want NaN", got)
	}
	if got := Quantile(empty.Find("fdeta_test_total"), 0.5); !math.IsNaN(got) {
		t.Errorf("quantile of a counter = %g, want NaN", got)
	}
}

func TestSnapshotFindIgnoresLabelOrder(t *testing.T) {
	s := snapWith(func(r *Registry) {
		r.Counter("fdeta_test_total", "", L("a", "1"), L("b", "2")).Inc()
	})
	if got := s.Find("fdeta_test_total", L("b", "2"), L("a", "1")); got == nil || got.Value != 1 {
		t.Fatalf("Find with reordered labels = %+v, want the counter", got)
	}
	if got := s.Find("fdeta_test_total", L("a", "1")); got != nil {
		t.Errorf("Find with a label subset matched %+v, want nil", got)
	}
	if got := s.Find("fdeta_test_missing"); got != nil {
		t.Errorf("Find of unknown metric = %+v, want nil", got)
	}
}
