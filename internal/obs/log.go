package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// Structured logging: every component asks for Logger("<component>") and
// gets a slog.Logger pre-scoped with a component attribute. The process
// default is silent — library code must never spray a caller's stdout, and
// the paper-artifact commands require byte-identical output — and binaries
// opt in with EnableLogging (typically behind a -log-level flag).

// base holds the process-wide base logger.
var base atomic.Pointer[slog.Logger]

func init() {
	base.Store(slog.New(discardHandler{}))
}

// SetLogger replaces the process-wide base logger. A nil logger restores the
// silent default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(discardHandler{})
	}
	base.Store(l)
}

// EnableLogging points the base logger at w with a text handler at the given
// level. It returns the installed logger for immediate use.
func EnableLogging(w io.Writer, level slog.Leveler) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	base.Store(l)
	return l
}

// Logger returns the base logger scoped to one component ("ami", "detect",
// "eval", "admin", ...).
func Logger(component string) *slog.Logger {
	return base.Load().With(slog.String("component", component))
}

// discardHandler drops every record without formatting it. Cheaper than a
// TextHandler on io.Discard: Enabled short-circuits before any attribute
// rendering happens.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
