package obs

import (
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives concurrent writers against every
// instrument kind while a snapshotter loops, then checks the final totals.
// Run under -race this is the lock-freedom proof for the hot paths.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_counter_total", "test counter")
	g := r.Gauge("hammer_gauge", "test gauge")
	h := r.Histogram("hammer_hist", "test histogram", []float64{1, 2, 4})

	const (
		writers = 8
		perG    = 5000
	)
	var writeWG, snapWG sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot continuously while writers run: Snapshot must never block or
	// tear an individual instrument read.
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if len(snap.Metrics) != 3 {
				t.Errorf("snapshot has %d metrics, want 3", len(snap.Metrics))
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	snapWG.Wait()

	if got := c.Value(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := g.Value(); got != float64(writers*perG) {
		t.Errorf("gauge = %g, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	// Each writer observes i%5 over perG iterations: sum per writer is
	// (0+1+2+3+4) * perG/5.
	wantSum := float64(writers) * 10 * perG / 5
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}

	snap := r.Snapshot()
	for _, m := range snap.Metrics {
		if m.Name != "hammer_hist" {
			continue
		}
		tail := m.Buckets[len(m.Buckets)-1]
		if !math.IsInf(tail.UpperBound, 1) {
			t.Errorf("tail bucket bound = %g, want +Inf", tail.UpperBound)
		}
		if tail.Count != writers*perG {
			t.Errorf("tail cumulative count = %d, want %d", tail.Count, writers*perG)
		}
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGaugeSetAndAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hist", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, math.NaN()} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	m := snap.Metrics[0]
	// Cumulative: le=1 → {0.5, 1}, le=2 → +{1.5, 2}, +Inf → +{3}; NaN dropped.
	want := []uint64{2, 4, 5}
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
	if m.Count != 5 {
		t.Errorf("count = %d, want 5", m.Count)
	}
	if m.Sum != 8 {
		t.Errorf("sum = %g, want 8", m.Sum)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", L("x", "1"))
	b := r.Counter("c_total", "", L("x", "1"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("c_total", "", L("x", "2"))
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}
