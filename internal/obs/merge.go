package obs

import (
	"math"
	"sort"
)

// Snapshot merging and histogram quantiles: the sharded ingestion tier
// runs several registries side by side (a head-end's instruments plus a
// load harness's client-side timers), and the benchmark reports want one
// coherent view with p50/p99 figures derived from the histogram buckets.

// MergeSnapshots combines point-in-time snapshots into one: instruments
// with the same (name, labels, type) identity are summed — counters and
// gauges add their values, histograms add per-bucket counts, totals, and
// sums — and distinct identities are concatenated. Histograms with
// mismatched bucket grids keep the first snapshot's grid and fold the
// other's total count and sum in, so aggregate rates stay exact even when
// bucket detail cannot be aligned. The inputs are not modified.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	type slot struct{ idx int }
	var out Snapshot
	byKey := make(map[string]slot)
	for _, s := range snaps {
		for _, m := range s.Metrics {
			k := m.Type + "\x00" + key(m.Name, m.Labels)
			if prev, ok := byKey[k]; ok {
				mergeMetric(&out.Metrics[prev.idx], &m)
				continue
			}
			byKey[k] = slot{idx: len(out.Metrics)}
			out.Metrics = append(out.Metrics, copyMetric(&m))
		}
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		a, b := &out.Metrics[i], &out.Metrics[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return key(a.Name, a.Labels) < key(b.Name, b.Labels)
	})
	return out
}

// copyMetric deep-copies a metric so merging never aliases input slices.
func copyMetric(m *Metric) Metric {
	out := *m
	if len(m.Labels) > 0 {
		out.Labels = append([]Label(nil), m.Labels...)
	}
	if len(m.Buckets) > 0 {
		out.Buckets = append([]Bucket(nil), m.Buckets...)
	}
	return out
}

// mergeMetric folds src into dst (same identity).
func mergeMetric(dst, src *Metric) {
	dst.Value += src.Value
	dst.Count += src.Count
	dst.Sum += src.Sum
	if len(dst.Buckets) == len(src.Buckets) {
		aligned := true
		for i := range dst.Buckets {
			//lint:ignore floatcmp bucket bounds are registration-time literals copied verbatim into snapshots; exact identity decides alignment
			if dst.Buckets[i].UpperBound != src.Buckets[i].UpperBound {
				aligned = false
				break
			}
		}
		if aligned {
			for i := range dst.Buckets {
				dst.Buckets[i].Count += src.Buckets[i].Count
			}
		}
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) of a histogram metric
// from its cumulative buckets, interpolating linearly within the bucket
// that contains the target rank — the standard Prometheus-style estimate.
// The tail (+Inf) bucket reports its lower bound, since no upper bound
// exists to interpolate toward. Returns NaN for non-histograms and empty
// histograms.
func Quantile(m *Metric, q float64) float64 {
	if len(m.Buckets) == 0 || m.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(m.Count)
	for i, b := range m.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		lower, lowerCount := 0.0, uint64(0)
		if i > 0 {
			lower = m.Buckets[i-1].UpperBound
			lowerCount = m.Buckets[i-1].Count
		}
		if math.IsInf(b.UpperBound, 1) {
			return lower
		}
		width := float64(b.Count - lowerCount)
		if width == 0 {
			return b.UpperBound
		}
		return lower + (b.UpperBound-lower)*(rank-float64(lowerCount))/width
	}
	return m.Buckets[len(m.Buckets)-1].UpperBound
}

// Total sums a metric family across every label set in the snapshot:
// counter and gauge values add, histograms contribute their observation
// counts. The sharded head-end registers one instrument per shard
// (labeled shard=i); Total gives the fleet-wide figure without
// enumerating the shards.
func (s *Snapshot) Total(name string) float64 {
	var total float64
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		if m.Type == "histogram" {
			total += float64(m.Count)
		} else {
			total += m.Value
		}
	}
	return total
}

// Find returns the first metric in the snapshot with the given name and
// labels, or nil. Label order is irrelevant.
func (s *Snapshot) Find(name string, labels ...Label) *Metric {
	want := key(name, sortLabels(labels))
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name == name && key(m.Name, m.Labels) == want {
			return m
		}
	}
	return nil
}
