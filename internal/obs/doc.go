// Package obs is the repo's dependency-free observability layer: atomic
// counters, gauges, and fixed-bucket histograms behind a Registry with
// lock-free hot paths, a point-in-time Snapshot export, Prometheus-text and
// JSON encoders, component-scoped structured logging via log/slog, and an
// opt-in HTTP admin endpoint serving /metrics, /healthz, and net/http/pprof.
//
// Design constraints, in order:
//
//  1. Zero third-party dependencies. The container has no module proxy, so
//     the layer is built on sync/atomic, log/slog, and net/http only.
//  2. Lock-free hot paths. Instrument handles are resolved once (usually at
//     component construction) and then bumped with single atomic operations;
//     the registry mutex guards only registration and Snapshot assembly.
//  3. Observation must never perturb results. Instruments record; they do
//     not gate, sample, or mutate the observed values, so a run with metrics
//     exported is byte-identical to one without.
//
// Metric namespace: every metric is prefixed "fdeta_" and then scoped by the
// owning layer — fdeta_ami_* (head-end ingestion), fdeta_detect_* (detector
// verdicts and scores), fdeta_eval_* (the experiments pipeline). DESIGN.md §9
// documents the full catalogue.
package obs
