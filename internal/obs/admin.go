package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the opt-in HTTP admin endpoint: a live collection or
// evaluation run can be scraped and profiled without stopping it. Routes:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same snapshot as JSON
//	/healthz       {"status":"ok", ...} liveness probe
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The server binds eagerly (ServeAdmin fails fast on a bad address) and
// serves until Close.
type AdminServer struct {
	reg   *Registry
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux
	start time.Time
}

// ServeAdmin starts an admin endpoint on addr (e.g. "127.0.0.1:9090", or
// ":0" for an ephemeral port) exporting the given registry; nil selects the
// process default registry. The caller owns the returned server and must
// Close it.
func ServeAdmin(addr string, reg *Registry) (*AdminServer, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen: %w", err)
	}
	a := &AdminServer{reg: reg, ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/metrics.json", a.handleMetricsJSON)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a.mux = mux
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed is the normal Close path; anything else is logged
		// rather than crashing the instrumented process.
		if err := a.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger("admin").Error("admin server stopped", "err", err)
		}
	}()
	return a, nil
}

// Addr returns the bound address, useful with ":0".
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Registry returns the registry the endpoint exports.
func (a *AdminServer) Registry() *Registry { return a.reg }

// Handle mounts an additional route on the admin mux, letting a component
// hang its own endpoints (the serve layer's /alerts, /consumers/{id},
// dashboard) off the same listener as /metrics. http.ServeMux registration
// is safe while the server runs; registering a pattern the admin server
// already owns panics, exactly like http.Handle.
func (a *AdminServer) Handle(pattern string, handler http.Handler) {
	a.mux.Handle(pattern, handler)
}

// Close stops the listener and in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }

func (a *AdminServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.reg.Snapshot().WritePrometheus(w)
}

func (a *AdminServer) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = a.reg.Snapshot().WriteJSON(w)
}

func (a *AdminServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(a.start).Seconds(),
	})
}
