package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension attached to an instrument. Labels are
// fixed at registration: a (name, label-set) pair identifies exactly one
// instrument for the registry's lifetime.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The zero value is usable, but
// only instruments obtained from a Registry appear in snapshots.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (active connections, coverage
// ratios). Stored as IEEE-754 bits so Set is a single atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bucket upper bounds are frozen
// at registration (an implicit +Inf bucket catches the tail), so Observe is
// a bounded scan plus two atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // per-bucket (non-cumulative); len = len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// addFloat atomically adds delta to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// LatencyBuckets are the default upper bounds (seconds) for I/O and
// per-message latencies: 100µs to 10s, roughly geometric.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// FineLatencyBuckets extends LatencyBuckets downward to 1µs for hot-path
// operations (loopback ingest, in-process stores) whose typical latency
// sits below the coarse grid's first bound — without the fine tail, every
// observation lands in one bucket and quantile estimates collapse.
func FineLatencyBuckets() []float64 {
	return []float64{0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// instrumentKind discriminates registry entries.
type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

func (k instrumentKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("instrumentKind(%d)", int(k))
	}
}

// instrument is one registered (name, labels) entry.
type instrument struct {
	name   string
	help   string
	labels []Label
	kind   instrumentKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a set of named instruments. Registration (the Counter, Gauge,
// and Histogram get-or-create methods) takes a mutex; the returned handles
// are then bumped lock-free. A Registry must not be copied after first use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*instrument)}
}

// defaultRegistry is the process-wide registry components fall back to when
// not handed an explicit one.
var defaultRegistry = NewRegistry()

// Default returns the process-wide shared registry.
func Default() *Registry { return defaultRegistry }

// key renders the identity of a (name, labels) pair. Labels are sorted so
// registration order never creates duplicate instruments.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns a sorted copy so callers' slices are never mutated.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup get-or-creates an entry. Re-registering the same identity with a
// different kind is a programming error and panics, matching the behavior of
// every mainstream metrics client.
func (r *Registry) lookup(name, help string, kind instrumentKind, labels []Label, mk func() *instrument) *instrument {
	if name == "" {
		panic("obs: empty metric name")
	}
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", k, kind, e.kind))
		}
		return e
	}
	//lint:ignore lockhold mk is a package-private allocation closure (a few words of memory, no IO), and get-or-create must be atomic under r.mu
	e := mk()
	e.name, e.help, e.labels, e.kind = name, help, labels, kind
	r.entries[k] = e
	return e
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.lookup(name, help, kindCounter, labels, func() *instrument {
		return &instrument{counter: &Counter{}}
	})
	return e.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.lookup(name, help, kindGauge, labels, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	})
	return e.gauge
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given ascending bucket upper bounds (+Inf is implicit). The
// bounds of an already-registered histogram are kept.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	e := r.lookup(name, help, kindHistogram, labels, func() *instrument {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		return &instrument{hist: &Histogram{
			bounds: bs,
			counts: make([]atomic.Uint64, len(bs)+1),
		}}
	})
	return e.hist
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"` // math.Inf(1) for the tail bucket
	Count      uint64  `json:"count"`
}

// Metric is one instrument's point-in-time state.
type Metric struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Type   string  `json:"type"`
	Labels []Label `json:"labels,omitempty"`

	// Value carries counters (as a whole number) and gauges.
	Value float64 `json:"value"`
	// Histogram-only fields; Buckets are cumulative, Prometheus-style.
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// Snapshot is a consistent-enough point-in-time export: each instrument is
// read atomically, instruments are sorted by (name, labels), and concurrent
// writers are never blocked.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot exports every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := make([]*instrument, 0, len(r.entries))
	keys := make(map[*instrument]string, len(r.entries))
	for k, e := range r.entries {
		entries = append(entries, e)
		keys[e] = k
	}
	r.mu.Unlock()
	// Sort by name first so metric families stay contiguous (one HELP/TYPE
	// header per family in the text encoding), then by full identity.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return keys[entries[i]] < keys[entries[j]]
	})

	snap := Snapshot{Metrics: make([]Metric, 0, len(entries))}
	for _, e := range entries {
		m := Metric{Name: e.name, Help: e.help, Type: e.kind.String(), Labels: e.labels}
		switch e.kind {
		case kindCounter:
			m.Value = float64(e.counter.Value())
		case kindGauge:
			m.Value = e.gauge.Value()
		case kindHistogram:
			h := e.hist
			m.Count = h.Count()
			m.Sum = h.Sum()
			m.Buckets = make([]Bucket, len(h.bounds)+1)
			var cum uint64
			for i := range h.counts {
				cum += h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				m.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
			}
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}
