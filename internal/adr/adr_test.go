package adr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func TestNewElasticConsumerValidation(t *testing.T) {
	if _, err := NewElasticConsumer(0.5, 0.2, 1); err == nil {
		t.Error("positive elasticity should be rejected")
	}
	if _, err := NewElasticConsumer(-0.3, 0, 1); err == nil {
		t.Error("zero base price should be rejected")
	}
	if _, err := NewElasticConsumer(-0.3, 0.2, 1.5); err == nil {
		t.Error("flexible fraction > 1 should be rejected")
	}
	if _, err := NewElasticConsumer(-0.3, 0.2, 0.5); err != nil {
		t.Error("valid parameters rejected")
	}
}

func TestResponseFactorMonotoneDecreasing(t *testing.T) {
	e, err := NewElasticConsumer(-0.4, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At the base price the factor is exactly 1.
	if got := e.ResponseFactor(0.2); math.Abs(got-1) > 1e-12 {
		t.Errorf("factor at base price = %g, want 1", got)
	}
	// Higher price, lower consumption (the Consumer Own Elasticity model
	// is monotonically decreasing, Section VI-B).
	prev := math.Inf(1)
	for p := 0.05; p < 1.0; p += 0.05 {
		f := e.ResponseFactor(p)
		if f >= prev {
			t.Fatalf("response factor not strictly decreasing at price %g", p)
		}
		prev = f
	}
}

func TestResponseFactorFlexibleFraction(t *testing.T) {
	// With only 40% flexible load, doubling the price cannot cut demand
	// below the 60% inelastic floor.
	e, _ := NewElasticConsumer(-2, 0.2, 0.4)
	f := e.ResponseFactor(100) // absurd price
	if f < 0.6-1e-9 {
		t.Errorf("factor = %g, must not drop below inelastic floor 0.6", f)
	}
	// Fully flexible load has no floor.
	full, _ := NewElasticConsumer(-2, 0.2, 1)
	if full.ResponseFactor(100) > 0.01 {
		t.Error("fully flexible load should collapse at absurd prices")
	}
}

func TestResponseFactorPriceFloor(t *testing.T) {
	e, _ := NewElasticConsumer(-0.5, 0.2, 1)
	f := e.ResponseFactor(0)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		t.Errorf("zero price must not produce NaN/Inf, got %g", f)
	}
}

func TestRespond(t *testing.T) {
	e, _ := NewElasticConsumer(-1, 0.2, 1)
	base := timeseries.Series{2, 2}
	prices := []float64{0.2, 0.4}
	out, err := e.Respond(base, prices)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-2) > 1e-12 {
		t.Errorf("out[0] = %g, want 2 (base price)", out[0])
	}
	if math.Abs(out[1]-1) > 1e-12 {
		t.Errorf("out[1] = %g, want 1 (price doubled, elasticity -1)", out[1])
	}
	if _, err := e.Respond(base, []float64{0.1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRespondRelative(t *testing.T) {
	e, _ := NewElasticConsumer(-1, 0.2, 1)
	base := timeseries.Series{2, 2, 2}
	truePrices := []float64{0.1, 0.2, 0.4}
	// Seen == true: no change regardless of absolute price level.
	out, err := e.RespondRelative(base, truePrices, truePrices)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-2) > 1e-12 {
			t.Errorf("slot %d: %g, want 2 (no spoof, no change)", i, v)
		}
	}
	// Seen = 2x true: with elasticity -1 and full flexibility, demand halves
	// at every slot — even where the absolute price is below the base rate.
	spoofed := []float64{0.2, 0.4, 0.8}
	out, err = e.RespondRelative(base, truePrices, spoofed)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("slot %d: %g, want 1 (doubled price, elasticity -1)", i, v)
		}
	}
	// Partial flexibility floors the response.
	part, _ := NewElasticConsumer(-1, 0.2, 0.5)
	out, _ = part.RespondRelative(base, truePrices, spoofed)
	want := 2 * (0.5 + 0.5*0.5)
	if math.Abs(out[0]-want) > 1e-12 {
		t.Errorf("partial flexibility: %g, want %g", out[0], want)
	}
	// Zero prices degrade gracefully.
	out, err = e.RespondRelative(timeseries.Series{1}, []float64{0}, []float64{0})
	if err != nil || math.IsNaN(out[0]) {
		t.Errorf("zero prices must not NaN: %v %v", out, err)
	}
	// Length mismatches error.
	if _, err := e.RespondRelative(base, truePrices[:2], spoofed); err == nil {
		t.Error("true-price length mismatch should error")
	}
	if _, err := e.RespondRelative(base, truePrices, spoofed[:2]); err == nil {
		t.Error("seen-price length mismatch should error")
	}
}

func TestSpoofPrices(t *testing.T) {
	spoofed, err := SpoofPrices([]float64{0.1, 0.2}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if spoofed[0] != 0.15000000000000002 && math.Abs(spoofed[0]-0.15) > 1e-12 {
		t.Errorf("spoofed[0] = %g", spoofed[0])
	}
	if _, err := SpoofPrices([]float64{0.1}, 1); err == nil {
		t.Error("factor <= 1 should be rejected")
	}
	if _, err := SpoofPrices([]float64{0.1}, 0.5); err == nil {
		t.Error("deflating factor should be rejected")
	}
}

func TestPriceTraceFor(t *testing.T) {
	price := func(s timeseries.Slot) float64 { return float64(s) * 0.01 }
	trace := PriceTraceFor(price, 10, 3)
	if len(trace) != 3 || trace[0] != 0.1 || trace[2] != 0.12 {
		t.Errorf("trace = %v", trace)
	}
}

func TestRespondNonNegativeProperty(t *testing.T) {
	e, _ := NewElasticConsumer(-0.7, 0.2, 0.8)
	f := func(demand, price float64) bool {
		d := math.Abs(demand)
		p := math.Abs(price)
		if math.IsNaN(d) || math.IsInf(d, 0) || d > 1e6 || math.IsNaN(p) || math.IsInf(p, 0) || p > 1e3 {
			return true
		}
		out, err := e.Respond(timeseries.Series{d}, []float64{p})
		if err != nil {
			return false
		}
		return out[0] >= 0 && !math.IsNaN(out[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
