// Package adr models Automated Demand Response (ADR), the substrate Attack
// Class 4B requires (Section VI-B of the paper). The paper defers 4B's
// evaluation to future work because the CER dataset has no price-response
// data; this package supplies the missing piece with the paper's own cited
// model: the Consumer Own Elasticity function of ref [26], a monotonically
// decreasing demand response to price.
//
// An ADR interface receives a price signal (trusted or spoofed) and scales
// the consumer's flexible load accordingly. Attack Class 4B spoofs the
// price seen by a victim's ADR interface upward, suppressing the victim's
// real consumption, while the victim's compromised meter keeps reporting
// the unsuppressed baseline — freeing capacity that the attacker consumes.
package adr

import (
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// ElasticConsumer models price-responsive demand with constant own-price
// elasticity:
//
//	D(λ) = D_base · (λ / λ_base)^ε, with ε < 0.
//
// A FlexibleFraction below 1 models the realistic case where only part of
// the load (HVAC, EV charging, ...) responds to price while the rest
// (refrigeration, lighting) is inelastic.
type ElasticConsumer struct {
	// Elasticity ε is negative: higher price, lower consumption.
	Elasticity float64
	// BasePrice λ_base is the reference price at which demand equals the
	// baseline ($/kWh).
	BasePrice float64
	// FlexibleFraction in [0, 1] is the share of load that responds.
	FlexibleFraction float64
}

// NewElasticConsumer validates and constructs the model.
func NewElasticConsumer(elasticity, basePrice, flexibleFraction float64) (ElasticConsumer, error) {
	if elasticity >= 0 {
		return ElasticConsumer{}, fmt.Errorf("adr: elasticity must be negative, got %g", elasticity)
	}
	if basePrice <= 0 {
		return ElasticConsumer{}, fmt.Errorf("adr: base price must be positive, got %g", basePrice)
	}
	if flexibleFraction < 0 || flexibleFraction > 1 {
		return ElasticConsumer{}, fmt.Errorf("adr: flexible fraction %g outside [0, 1]", flexibleFraction)
	}
	return ElasticConsumer{
		Elasticity:       elasticity,
		BasePrice:        basePrice,
		FlexibleFraction: flexibleFraction,
	}, nil
}

// ResponseFactor returns the demand multiplier for a given price.
func (e ElasticConsumer) ResponseFactor(price float64) float64 {
	if price <= 0 {
		price = 1e-6 // price floor keeps the power law defined
	}
	flex := math.Pow(price/e.BasePrice, e.Elasticity)
	return (1 - e.FlexibleFraction) + e.FlexibleFraction*flex
}

// Respond returns the consumption that results from the baseline demand
// under the given per-slot prices. Baseline and prices must align.
func (e ElasticConsumer) Respond(baseline timeseries.Series, prices []float64) (timeseries.Series, error) {
	if len(baseline) != len(prices) {
		return nil, fmt.Errorf("adr: baseline length %d != price trace length %d", len(baseline), len(prices))
	}
	out := make(timeseries.Series, len(baseline))
	for i, d := range baseline {
		out[i] = d * e.ResponseFactor(prices[i])
	}
	return out, nil
}

// RespondRelative returns the consumption resulting from the baseline when
// the ADR interface sees seenPrices instead of truePrices. The baseline is
// by definition the consumption under the true prices, so the response
// factor is relative: D(t) = base(t) · [(1-f) + f · (seen/true)^ε]. This is
// the form Attack Class 4B needs — any spoofed price above the true price
// suppresses demand regardless of the absolute price level.
func (e ElasticConsumer) RespondRelative(baseline timeseries.Series, truePrices, seenPrices []float64) (timeseries.Series, error) {
	if len(baseline) != len(truePrices) || len(baseline) != len(seenPrices) {
		return nil, fmt.Errorf("adr: length mismatch (baseline %d, true %d, seen %d)",
			len(baseline), len(truePrices), len(seenPrices))
	}
	out := make(timeseries.Series, len(baseline))
	for i, d := range baseline {
		tp := truePrices[i]
		sp := seenPrices[i]
		if tp <= 0 {
			tp = 1e-6
		}
		if sp <= 0 {
			sp = 1e-6
		}
		flex := math.Pow(sp/tp, e.Elasticity)
		out[i] = d * ((1 - e.FlexibleFraction) + e.FlexibleFraction*flex)
	}
	return out, nil
}

// SpoofPrices returns the spoofed price trace λ'(t) = factor · λ(t) that
// Attack Class 4B feeds a victim's ADR interface. Factor must exceed 1 —
// the attack needs λ'(t) > λ(t) so the victim's consumption drops.
func SpoofPrices(truePrices []float64, factor float64) ([]float64, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("adr: spoof factor must exceed 1, got %g", factor)
	}
	out := make([]float64, len(truePrices))
	for i, p := range truePrices {
		out[i] = p * factor
	}
	return out, nil
}

// PriceTraceFor materializes per-slot prices for a window from a pricing
// scheme via its Price method.
func PriceTraceFor(price func(timeseries.Slot) float64, start timeseries.Slot, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = price(start + timeseries.Slot(i))
	}
	return out
}
