package attack

import (
	"fmt"

	"repro/internal/adr"
	"repro/internal/timeseries"
)

// Class4BResult holds every series involved in an Attack Class 4B instance.
// The invariants (checked by Verify and exercised in tests) are exactly the
// conditions of Section VI-B:
//
//	D_n(t) < D'_n(t)      — the victim's consumption is over-reported,
//	D_A(t) > D'_A(t)      — the attacker's consumption is under-reported,
//	λ(t)   < λ'_n(t)      — the victim's ADR sees inflated prices,
//
// with the balance check satisfied because the attacker consumes exactly
// what the victim's suppressed load freed up.
type Class4BResult struct {
	// VictimActual is the victim's post-ADR (suppressed) consumption.
	VictimActual timeseries.Series
	// VictimReported is what the victim's compromised meter reports: the
	// unsuppressed baseline.
	VictimReported timeseries.Series
	// AttackerActual is the attacker's typical consumption plus the load
	// freed by the victim's suppression.
	AttackerActual timeseries.Series
	// AttackerReported is the attacker's typical consumption, unchanged.
	AttackerReported timeseries.Series
	// SpoofedPrices is the λ'_n(t) trace the victim's ADR interface saw.
	SpoofedPrices []float64
	// TruePrices is the genuine λ(t) trace.
	TruePrices []float64
}

// InjectClass4B realizes Attack Class 4B against one victim over one week.
//
// The victim's ADR interface receives spoofed prices λ' = spoofFactor · λ,
// reducing the victim's actual demand per the elasticity model. The
// victim's meter keeps reporting the baseline, so the balance check passes
// while the attacker consumes the difference on top of her own typical load
// and still reports only the typical load.
func InjectClass4B(victimBaseline, attackerTypical timeseries.Series, truePrices []float64,
	victim adr.ElasticConsumer, spoofFactor float64) (*Class4BResult, error) {
	if len(victimBaseline) != timeseries.SlotsPerWeek || len(attackerTypical) != timeseries.SlotsPerWeek {
		return nil, fmt.Errorf("attack: class 4B needs full weeks (got %d and %d readings)",
			len(victimBaseline), len(attackerTypical))
	}
	if len(truePrices) != timeseries.SlotsPerWeek {
		return nil, fmt.Errorf("attack: class 4B needs %d prices, got %d",
			timeseries.SlotsPerWeek, len(truePrices))
	}
	spoofed, err := adr.SpoofPrices(truePrices, spoofFactor)
	if err != nil {
		return nil, fmt.Errorf("attack: class 4B: %w", err)
	}
	suppressed, err := victim.RespondRelative(victimBaseline, truePrices, spoofed)
	if err != nil {
		return nil, fmt.Errorf("attack: class 4B: %w", err)
	}
	res := &Class4BResult{
		VictimActual:     suppressed,
		VictimReported:   victimBaseline.Clone(),
		AttackerActual:   make(timeseries.Series, timeseries.SlotsPerWeek),
		AttackerReported: attackerTypical.Clone(),
		SpoofedPrices:    spoofed,
		TruePrices:       append([]float64(nil), truePrices...),
	}
	for i := range res.AttackerActual {
		freed := res.VictimReported[i] - res.VictimActual[i]
		if freed < 0 {
			freed = 0
		}
		res.AttackerActual[i] = attackerTypical[i] + freed
	}
	return res, nil
}

// Verify checks the Section VI-B conditions on the realized attack and the
// aggregate balance identity. It returns an error naming the first violated
// condition.
func (r *Class4BResult) Verify() error {
	under := false
	for i := range r.VictimActual {
		if r.VictimReported[i] < r.VictimActual[i] {
			return fmt.Errorf("attack: class 4B invariant broken at slot %d: victim under-reported", i)
		}
		if r.AttackerActual[i] < r.AttackerReported[i] {
			return fmt.Errorf("attack: class 4B invariant broken at slot %d: attacker over-reported", i)
		}
		if r.SpoofedPrices[i] <= r.TruePrices[i] {
			return fmt.Errorf("attack: class 4B invariant broken at slot %d: spoofed price not inflated", i)
		}
		if r.AttackerActual[i] > r.AttackerReported[i] {
			under = true
		}
	}
	if !under {
		return fmt.Errorf("attack: class 4B had no effect (victim demand did not respond)")
	}
	// Balance: total actual equals total reported at every slot.
	for i := range r.VictimActual {
		actual := r.VictimActual[i] + r.AttackerActual[i]
		reported := r.VictimReported[i] + r.AttackerReported[i]
		if diff := actual - reported; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("attack: class 4B balance broken at slot %d: actual %g vs reported %g",
				i, actual, reported)
		}
	}
	return nil
}
