package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/pricing"
	"repro/internal/timeseries"
)

// Combined2B3B realizes the combination attack the paper closes its
// evaluation with (Section VIII-F3: Mallory "may, however, inject an attack
// that combines Attack Class 3B with Attack Classes 1B and/or 2B"): first
// the Integrated-ARIMA under-report of Class 2B is generated, then its
// readings are Optimal-Swapped across the TOU price boundary (Class 3B).
// The result under-reports on net (2B profit) *and* books what remains at
// off-peak prices (3B profit) — strictly more profitable than either class
// alone, while preserving the weekly reading distribution of the plain 2B
// vector (so a distribution-only detector scores both identically).
func Combined2B3B(det *detect.IntegratedARIMADetector, cfg IntegratedARIMAConfig,
	scheme pricing.TOU, rng *rand.Rand) (timeseries.Series, error) {
	base, err := IntegratedARIMAAttack(det, Down, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("attack: combined 2B stage: %w", err)
	}
	swapped, err := OptimalSwap(base, scheme)
	if err != nil {
		return nil, fmt.Errorf("attack: combined 3B stage: %w", err)
	}
	return swapped, nil
}
