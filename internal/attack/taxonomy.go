// Package attack implements the paper's electricity-theft attack taxonomy
// (Section VI, Table I) and the concrete false-data-injection realizations
// evaluated in Section VIII: the ARIMA attack, the Integrated ARIMA attack,
// the Optimal Swap attack, and the ADR price-spoofing attack of Class 4B.
//
// Attack vectors are generated exactly as the paper prescribes: the
// attacker replicates the utility's detector state from passively observed
// training data and pins or samples injected readings so that the
// detector's own checks pass (Section VIII-B).
package attack

import (
	"fmt"

	"repro/internal/pricing"
	"repro/internal/timeseries"
)

// Class enumerates the seven attack classes of Table I. The A classes fail
// the balance check; the B classes circumvent it by over-reporting at least
// one neighbour (Proposition 2).
type Class int

// The seven attack classes.
const (
	Class1A Class = iota + 1 // consume more, report typical (line tap)
	Class2A                  // under-report own consumption
	Class3A                  // load-shift reports across price periods
	Class1B                  // 1A + over-report neighbours to balance
	Class2B                  // 2A + over-report neighbours to balance
	Class3B                  // 3A + over-report neighbours to balance
	Class4B                  // ADR price spoofing + proportional shift
)

// Classes lists all seven classes in Table I order.
func Classes() []Class {
	return []Class{Class1A, Class2A, Class3A, Class1B, Class2B, Class3B, Class4B}
}

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case Class1A:
		return "1A"
	case Class2A:
		return "2A"
	case Class3A:
		return "3A"
	case Class1B:
		return "1B"
	case Class2B:
		return "2B"
	case Class3B:
		return "3B"
	case Class4B:
		return "4B"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// EvadesBalanceCheck reports whether the class circumvents balance-meter
// checks (row 1 of Table I).
func (c Class) EvadesBalanceCheck() bool {
	switch c {
	case Class1B, Class2B, Class3B, Class4B:
		return true
	default:
		return false
	}
}

// RequiresADR reports whether the class requires automated demand response
// infrastructure (row 5 of Table I). Only Class 4B does.
func (c Class) RequiresADR() bool { return c == Class4B }

// PossibleUnder reports whether the class is feasible under the given
// pricing scheme (rows 2-4 of Table I). Load-shifting classes (3A/3B) need
// time-varying prices; Class 4B additionally needs real-time pricing.
func (c Class) PossibleUnder(k pricing.SchemeKind) bool {
	switch c {
	case Class1A, Class2A, Class1B, Class2B:
		return k == pricing.FlatRate || k == pricing.TimeOfUse || k == pricing.RealTime
	case Class3A, Class3B:
		return k == pricing.TimeOfUse || k == pricing.RealTime
	case Class4B:
		return k == pricing.RealTime
	default:
		return false
	}
}

// Victim reports whether abnormal readings under this class appear on a
// victimized neighbour's meter (true) or on the attacker's own meter
// (false). Class 1B over-reports neighbours while the attacker's own
// readings stay normal (Section VII-B).
func (c Class) Victim() bool {
	switch c {
	case Class1B, Class4B:
		return true
	default:
		return false
	}
}

// UnderReportsSomewhere checks the necessary condition of Proposition 1:
// ∃t with D'(t) < D(t). Any profitable theft must satisfy it.
func UnderReportsSomewhere(actual, reported timeseries.Series) (bool, error) {
	if len(actual) != len(reported) {
		return false, fmt.Errorf("attack: %w", timeseries.ErrLengthMismatch)
	}
	for i := range actual {
		if reported[i] < actual[i] {
			return true, nil
		}
	}
	return false, nil
}

// OverReportsSomewhere checks the necessary condition of Proposition 2 on a
// neighbour: ∃t with D'_n(t) > D_n(t).
func OverReportsSomewhere(actual, reported timeseries.Series) (bool, error) {
	if len(actual) != len(reported) {
		return false, fmt.Errorf("attack: %w", timeseries.ErrLengthMismatch)
	}
	for i := range actual {
		if reported[i] > actual[i] {
			return true, nil
		}
	}
	return false, nil
}

// IsTheft evaluates the attack condition (Eq. 1): the attacker profits when
// the price-weighted sum of under-reported demand is positive.
func IsTheft(s pricing.Scheme, actual, reported timeseries.Series, start timeseries.Slot) (bool, error) {
	p, err := pricing.Profit(s, actual, reported, start)
	if err != nil {
		return false, err
	}
	return p > 0, nil
}
