package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/detect"
	"repro/internal/pricing"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// Direction selects which way an injected vector pushes readings.
type Direction int

// Injection directions.
const (
	// Up over-reports: used against a neighbour in Class 1B/2B/3B.
	Up Direction = iota + 1
	// Down under-reports: used on the attacker's own meter in Class 2A/2B.
	Down
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// InjectClass1A realizes Attack Class 1A: Mallory's reported readings stay at her
// typical pattern while her actual consumption is scaled up by factor
// (> 1). The reported pattern is completely normal, so no data-driven
// detector can see it — only the balance check can (Section VI-A).
func InjectClass1A(typicalWeek timeseries.Series, factor float64) (actual, reported timeseries.Series, err error) {
	if len(typicalWeek) != timeseries.SlotsPerWeek {
		return nil, nil, fmt.Errorf("attack: class 1A needs a full week, got %d readings", len(typicalWeek))
	}
	if factor <= 1 {
		return nil, nil, fmt.Errorf("attack: class 1A factor must exceed 1, got %g", factor)
	}
	return typicalWeek.Scale(factor), typicalWeek.Clone(), nil
}

// ARIMAAttack realizes the "ARIMA attack" of ref [2]: Mallory replicates
// the utility's ARIMA detector and pins every injected reading exactly at
// the confidence bound — the upper bound when over-reporting (Up), or the
// lower bound floored at zero when under-reporting (Down). The injected
// readings feed back into the replicated model, dragging the interval along
// with the attack (Section VIII-B1), so the Up variant escalates without
// limit in the data alone; it is capped at capKW, the physical limit of the
// victim's service conductors (Section VII-B: the only limit on Class 1B
// "is determined by the physical limits of the electrical conductors").
// Pass capKW <= 0 to default to 10× the detector's historic peak demand.
func ARIMAAttack(det *detect.ARIMADetector, dir Direction, capKW float64) (timeseries.Series, error) {
	if capKW <= 0 {
		capKW = 10 * det.HistoricPeak()
		if capKW <= 0 {
			capKW = 1 // all-zero history: nominal 1 kW service limit
		}
	}
	tracker, err := det.Tracker()
	if err != nil {
		return nil, fmt.Errorf("attack: replicating ARIMA detector: %w", err)
	}
	vec := make(timeseries.Series, timeseries.SlotsPerWeek)
	for i := range vec {
		lo, hi := tracker.Bounds()
		var v float64
		switch dir {
		case Up:
			v = hi
			if v > capKW {
				v = capKW
			}
		case Down:
			v = lo
			if v < 0 {
				v = 0
			}
		default:
			return nil, fmt.Errorf("attack: invalid direction %v", dir)
		}
		vec[i] = v
		tracker.Observe(v)
	}
	return vec, nil
}

// IntegratedARIMAConfig parameterizes the Integrated ARIMA attack.
type IntegratedARIMAConfig struct {
	// SigmaFraction scales the truncated normal's sigma relative to the
	// detector's variance cap so the injected week's variance stays under
	// it (default 0.5, i.e. sigma² = 0.25 · cap).
	SigmaFraction float64
}

func (c IntegratedARIMAConfig) withDefaults() IntegratedARIMAConfig {
	if c.SigmaFraction == 0 {
		c.SigmaFraction = 0.5
	}
	return c
}

// IntegratedARIMAAttack realizes the "Integrated ARIMA attack" of ref [2],
// the paper's standard realization of Attack Classes 1B and 2A/2B
// (Section VIII-B1/B2). Readings are drawn from a truncated normal whose
//
//   - mean is the *maximum* of the training weeks' means when dir is Up
//     (over-reporting a neighbour, Class 1B), or the *minimum* when dir is
//     Down (under-reporting the attacker herself, Class 2A/2B);
//   - sigma keeps the week variance below the detector's historic cap; and
//   - truncation bounds are the replicated rolling ARIMA confidence
//     interval (floored at zero).
//
// The result passes the ARIMA check, the mean check, and the variance check
// by construction, while deterministic patterns are avoided by the random
// draw (Section VIII-B: "We inject attacks using random numbers...").
func IntegratedARIMAAttack(det *detect.IntegratedARIMADetector, dir Direction, cfg IntegratedARIMAConfig, rng *rand.Rand) (timeseries.Series, error) {
	cfg = cfg.withDefaults()
	if rng == nil {
		return nil, fmt.Errorf("attack: rng is required")
	}
	meanLo, meanHi := det.MeanBounds()
	var target float64
	switch dir {
	case Up:
		target = meanHi / (1 + 0.05) // undo the detector's tolerance pad: aim at max historic mean
	case Down:
		target = meanLo / (1 - 0.05)
		if target < 0 {
			target = 0
		}
	default:
		return nil, fmt.Errorf("attack: invalid direction %v", dir)
	}
	sigma := cfg.SigmaFraction * math.Sqrt(det.VarianceCap())
	if sigma <= 0 || math.IsNaN(sigma) {
		// Degenerate (constant) history: fall back to a small spread so the
		// truncated normal remains well-defined.
		sigma = math.Max(target*0.05, 1e-6)
	}

	tracker, err := det.Inner().Tracker()
	if err != nil {
		return nil, fmt.Errorf("attack: replicating detector: %w", err)
	}
	vec := make(timeseries.Series, timeseries.SlotsPerWeek)
	for i := range vec {
		lo, hi := tracker.Bounds()
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1e-9
		}
		tn, err := stats.NewTruncNormal(target, sigma, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("attack: slot %d: %w", i, err)
		}
		v := tn.Sample(rng)
		vec[i] = v
		tracker.Observe(v)
	}
	return vec, nil
}

// OptimalSwap realizes the "Optimal swap attack" of Attack Classes 3A/3B
// (Section VIII-B3): for every day of the week, the highest readings of the
// peak price period are swapped with the lowest readings of the off-peak
// period. The week's multiset of readings — and hence its mean, variance,
// and overall distribution — is unchanged; only the temporal ordering moves,
// shifting expensive consumption into the cheap tier.
func OptimalSwap(week timeseries.Series, scheme pricing.TOU) (timeseries.Series, error) {
	if len(week) != timeseries.SlotsPerWeek {
		return nil, fmt.Errorf("attack: optimal swap needs a full week, got %d readings", len(week))
	}
	out := week.Clone()
	for day := 0; day < timeseries.DaysPerWeek; day++ {
		start := day * timeseries.SlotsPerDay
		var peakIdx, offIdx []int
		for s := 0; s < timeseries.SlotsPerDay; s++ {
			idx := start + s
			if scheme.InPeak(timeseries.Slot(idx)) {
				peakIdx = append(peakIdx, idx)
			} else {
				offIdx = append(offIdx, idx)
			}
		}
		// Highest peak readings first; lowest off-peak readings first.
		sort.Slice(peakIdx, func(i, j int) bool { return out[peakIdx[i]] > out[peakIdx[j]] })
		sort.Slice(offIdx, func(i, j int) bool { return out[offIdx[i]] < out[offIdx[j]] })
		n := len(peakIdx)
		if len(offIdx) < n {
			n = len(offIdx)
		}
		for i := 0; i < n; i++ {
			// Only swap when it moves expensive consumption to the cheap
			// period; a swap in the other direction would lose money.
			if out[peakIdx[i]] > out[offIdx[i]] {
				out[peakIdx[i]], out[offIdx[i]] = out[offIdx[i]], out[peakIdx[i]]
			}
		}
	}
	return out, nil
}

// OptimalSwapGeneral generalizes the Optimal Swap to arbitrary per-slot
// prices (the RTP case the paper sketches in Section VIII-F3): within each
// day, the multiset of readings is reassigned so that the largest readings
// land on the cheapest slots. Under a flat price every assignment costs the
// same, so the attack is provably unprofitable there (Table I row 2).
func OptimalSwapGeneral(week timeseries.Series, prices []float64) (timeseries.Series, error) {
	if len(week) != timeseries.SlotsPerWeek {
		return nil, fmt.Errorf("attack: general swap needs a full week, got %d readings", len(week))
	}
	if len(prices) != timeseries.SlotsPerWeek {
		return nil, fmt.Errorf("attack: general swap needs %d prices, got %d",
			timeseries.SlotsPerWeek, len(prices))
	}
	out := week.Clone()
	for day := 0; day < timeseries.DaysPerWeek; day++ {
		start := day * timeseries.SlotsPerDay
		idx := make([]int, timeseries.SlotsPerDay)
		for s := range idx {
			idx[s] = start + s
		}
		// Slots from cheapest to dearest.
		sort.Slice(idx, func(i, j int) bool { return prices[idx[i]] < prices[idx[j]] })
		// Readings from largest to smallest.
		vals := make([]float64, timeseries.SlotsPerDay)
		for s := 0; s < timeseries.SlotsPerDay; s++ {
			vals[s] = week[start+s]
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		for s, slot := range idx {
			out[slot] = vals[s]
		}
	}
	return out, nil
}

// WorstCase runs the paper's multi-trial protocol (Section VIII-B): it
// generates trials attack vectors and returns the one maximizing Mallory's
// profit. The paper uses 50 trials "to reduce bias in the samples obtained
// from the distribution".
func WorstCase(trials int, gen func(trial int) (timeseries.Series, error), profit func(timeseries.Series) (float64, error)) (timeseries.Series, float64, error) {
	if trials <= 0 {
		return nil, 0, fmt.Errorf("attack: trials must be positive, got %d", trials)
	}
	var best timeseries.Series
	bestProfit := math.Inf(-1)
	for i := 0; i < trials; i++ {
		vec, err := gen(i)
		if err != nil {
			return nil, 0, fmt.Errorf("attack: trial %d: %w", i, err)
		}
		p, err := profit(vec)
		if err != nil {
			return nil, 0, fmt.Errorf("attack: trial %d profit: %w", i, err)
		}
		if p > bestProfit {
			bestProfit = p
			best = vec
		}
	}
	return best, bestProfit, nil
}

// WorstCaseEvading refines WorstCase with the attacker's self-check:
// Mallory replicates the target detector, so she submits the maximum-profit
// vector among those her replica does NOT flag. Only when every trial is
// flagged does she fall back to the least-suspicious (minimum-score)
// vector — the situation the paper observes for consumers whose readings
// are "so low to begin with" that no truncated-normal draw stays stealthy
// (Section VIII-F2).
func WorstCaseEvading(trials int, gen func(trial int) (timeseries.Series, error),
	profit func(timeseries.Series) (float64, error),
	check func(timeseries.Series) (detect.Verdict, error)) (timeseries.Series, float64, error) {
	if trials <= 0 {
		return nil, 0, fmt.Errorf("attack: trials must be positive, got %d", trials)
	}
	var bestEvading, leastSuspicious timeseries.Series
	bestProfit := math.Inf(-1)
	minScore := math.Inf(1)
	var fallbackProfit float64
	for i := 0; i < trials; i++ {
		vec, err := gen(i)
		if err != nil {
			return nil, 0, fmt.Errorf("attack: trial %d: %w", i, err)
		}
		p, err := profit(vec)
		if err != nil {
			return nil, 0, fmt.Errorf("attack: trial %d profit: %w", i, err)
		}
		v, err := check(vec)
		if err != nil {
			return nil, 0, fmt.Errorf("attack: trial %d self-check: %w", i, err)
		}
		if !v.Anomalous && p > bestProfit {
			bestProfit = p
			bestEvading = vec
		}
		if v.Score < minScore {
			minScore = v.Score
			leastSuspicious = vec
			fallbackProfit = p
		}
	}
	if bestEvading != nil {
		return bestEvading, bestProfit, nil
	}
	return leastSuspicious, fallbackProfit, nil
}
