package attack

import (
	"math"
	"testing"

	"repro/internal/detect"
	"repro/internal/pricing"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

func TestCombined2B3BMoreProfitableThanEither(t *testing.T) {
	train, test := testConsumer(t, 81, 20, 18)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	scheme := pricing.Nightsaver()
	actual := test.MustWeek(0)
	start := timeseries.Slot(len(train))

	// Plain 2B vector, its swap-combined version, and a plain 3B swap of
	// the actual readings — all from the same RNG state for the 2B stage.
	vec2B, err := IntegratedARIMAAttack(det, Down, IntegratedARIMAConfig{}, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Combined2B3B(det, IntegratedARIMAConfig{}, scheme, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	swapOnly, err := OptimalSwap(actual, scheme)
	if err != nil {
		t.Fatal(err)
	}

	p2B, err := pricing.Profit(scheme, actual, vec2B, start)
	if err != nil {
		t.Fatal(err)
	}
	pCombined, err := pricing.Profit(scheme, actual, combined, start)
	if err != nil {
		t.Fatal(err)
	}
	pSwap, err := pricing.Profit(scheme, actual, swapOnly, start)
	if err != nil {
		t.Fatal(err)
	}
	// Section VIII-F3: the combination stacks the 3B swap gain on top of
	// the 2B under-report. The swap stage can only lower the reported bill,
	// so the combined profit dominates the plain 2B profit (the swap-only
	// profit depends on the spread of the underlying vector and need not
	// be dominated).
	if pCombined < p2B {
		t.Errorf("combined profit %.2f should be >= 2B profit %.2f", pCombined, p2B)
	}
	if pCombined <= 0 {
		t.Errorf("combined profit %.2f should be positive", pCombined)
	}
	t.Logf("profits: 2B %.2f, swap-only %.2f, combined %.2f", p2B, pSwap, pCombined)

	// The swap stage preserves the multiset, so a distribution-only KLD
	// detector scores the combined vector identically to the 2B vector.
	kld, err := detect.NewKLDDetector(train, detect.KLDConfig{Significance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	k2B, err := kld.Divergence(vec2B)
	if err != nil {
		t.Fatal(err)
	}
	kCombined, err := kld.Divergence(combined)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k2B-kCombined) > 1e-12 {
		t.Errorf("plain KLD must not distinguish the swap stage: %g vs %g", k2B, kCombined)
	}

	// The price-conditioned KLD sees the swap stage on top of the 2B shift.
	tier := func(slotOfWeek int) int { return int(scheme.TierOf(timeseries.Slot(slotOfWeek))) }
	priceKLD, err := detect.NewPriceKLDDetector(train, detect.PriceKLDConfig{
		NTiers: 2, Tier: tier, Significance: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	vCombined, err := priceKLD.Detect(combined)
	if err != nil {
		t.Fatal(err)
	}
	if !vCombined.Anomalous {
		t.Errorf("price-conditioned KLD should flag the combined attack (K=%g threshold=%g)",
			vCombined.Score, vCombined.Threshold)
	}
}

func TestCombined2B3BErrorPropagation(t *testing.T) {
	train, _ := testConsumer(t, 82, 10, 8)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combined2B3B(det, IntegratedARIMAConfig{}, pricing.Nightsaver(), nil); err == nil {
		t.Error("nil rng should propagate the 2B-stage error")
	}
}
