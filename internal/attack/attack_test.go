package attack

import (
	"math"
	"strings"
	"testing"

	"repro/internal/adr"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/pricing"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

func testConsumer(t *testing.T, seed int64, weeks, trainWeeks int) (train, test timeseries.Series) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{Residential: 1, Weeks: weeks, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err = ds.Consumers[0].Demand.Split(trainWeeks)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestClassStrings(t *testing.T) {
	want := []string{"1A", "2A", "3A", "1B", "2B", "3B", "4B"}
	for i, c := range Classes() {
		if c.String() != want[i] {
			t.Errorf("class %d String = %q, want %q", i, c.String(), want[i])
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Error("unknown class should include value")
	}
	if Up.String() != "up" || Down.String() != "down" || !strings.Contains(Direction(9).String(), "9") {
		t.Error("direction strings wrong")
	}
}

func TestTableIPredicates(t *testing.T) {
	// Rows of Table I, in class order 1A 2A 3A 1B 2B 3B 4B.
	evades := []bool{false, false, false, true, true, true, true}
	flat := []bool{true, true, false, true, true, false, false}
	tou := []bool{true, true, true, true, true, true, false}
	rtp := []bool{true, true, true, true, true, true, true}
	adrReq := []bool{false, false, false, false, false, false, true}
	for i, c := range Classes() {
		if c.EvadesBalanceCheck() != evades[i] {
			t.Errorf("%v EvadesBalanceCheck = %v, want %v", c, c.EvadesBalanceCheck(), evades[i])
		}
		if c.PossibleUnder(pricing.FlatRate) != flat[i] {
			t.Errorf("%v flat-rate = %v, want %v", c, c.PossibleUnder(pricing.FlatRate), flat[i])
		}
		if c.PossibleUnder(pricing.TimeOfUse) != tou[i] {
			t.Errorf("%v TOU = %v, want %v", c, c.PossibleUnder(pricing.TimeOfUse), tou[i])
		}
		if c.PossibleUnder(pricing.RealTime) != rtp[i] {
			t.Errorf("%v RTP = %v, want %v", c, c.PossibleUnder(pricing.RealTime), rtp[i])
		}
		if c.RequiresADR() != adrReq[i] {
			t.Errorf("%v RequiresADR = %v, want %v", c, c.RequiresADR(), adrReq[i])
		}
	}
	if Class(99).PossibleUnder(pricing.FlatRate) {
		t.Error("unknown class should be infeasible")
	}
}

func TestVictimLabels(t *testing.T) {
	// Section VII-B: abnormally high readings mark a victim (1B); abnormally
	// low mark the attacker (2A/2B).
	if !Class1B.Victim() || !Class4B.Victim() {
		t.Error("1B and 4B anomalies appear on the victim")
	}
	if Class2A.Victim() || Class2B.Victim() || Class3A.Victim() {
		t.Error("2A/2B/3A anomalies appear on the attacker")
	}
}

func TestPropositionCheckers(t *testing.T) {
	actual := timeseries.Series{2, 2}
	under := timeseries.Series{1, 2}
	over := timeseries.Series{3, 2}
	if got, _ := UnderReportsSomewhere(actual, under); !got {
		t.Error("under-report not detected")
	}
	if got, _ := UnderReportsSomewhere(actual, actual); got {
		t.Error("honest report flagged")
	}
	if got, _ := OverReportsSomewhere(actual, over); !got {
		t.Error("over-report not detected")
	}
	if _, err := UnderReportsSomewhere(actual, timeseries.Series{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := OverReportsSomewhere(actual, timeseries.Series{1}); err == nil {
		t.Error("length mismatch should error")
	}
	theft, err := IsTheft(pricing.Flat{Rate: 0.2}, actual, under, 0)
	if err != nil || !theft {
		t.Error("under-reporting is theft under Eq. 1")
	}
	if _, err := IsTheft(pricing.Flat{Rate: 0.2}, actual, timeseries.Series{1}, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestInjectClass1A(t *testing.T) {
	_, test := testConsumer(t, 41, 8, 6)
	week := test.MustWeek(0)
	actual, reported, err := InjectClass1A(week, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reported equals the typical pattern exactly.
	for i := range week {
		if reported[i] != week[i] {
			t.Fatal("reported must equal typical")
		}
		if math.Abs(actual[i]-3*week[i]) > 1e-12 {
			t.Fatal("actual must be scaled")
		}
	}
	// It is theft under any pricing scheme (Eq. 1) and satisfies Prop. 1.
	if theft, _ := IsTheft(pricing.Nightsaver(), actual, reported, 0); !theft {
		t.Error("class 1A must be theft")
	}
	if u, _ := UnderReportsSomewhere(actual, reported); !u {
		t.Error("Proposition 1 violated")
	}
	if _, _, err := InjectClass1A(week, 1); err == nil {
		t.Error("factor <= 1 should error")
	}
	if _, _, err := InjectClass1A(week[:10], 2); err == nil {
		t.Error("short week should error")
	}
}

func TestARIMAAttackEvadesARIMADetector(t *testing.T) {
	train, _ := testConsumer(t, 42, 16, 14)
	det, err := detect.NewARIMADetector(train, detect.ARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []Direction{Up, Down} {
		vec, err := ARIMAAttack(det, dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(vec) != timeseries.SlotsPerWeek {
			t.Fatal("attack vector must be a full week")
		}
		if err := vec.Validate(); err != nil {
			t.Fatalf("%v attack vector invalid: %v", dir, err)
		}
		v, err := det.Detect(vec)
		if err != nil {
			t.Fatal(err)
		}
		if v.Anomalous {
			t.Errorf("%v ARIMA attack must evade the ARIMA detector (score=%g, threshold=%g)",
				dir, v.Score, v.Threshold)
		}
	}
	if _, err := ARIMAAttack(det, Direction(0), 0); err == nil {
		t.Error("invalid direction should error")
	}
}

func TestARIMAAttackDirectionOrdering(t *testing.T) {
	train, _ := testConsumer(t, 43, 16, 14)
	det, err := detect.NewARIMADetector(train, detect.ARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	up, _ := ARIMAAttack(det, Up, 0)
	down, _ := ARIMAAttack(det, Down, 0)
	var upSum, downSum float64
	for i := range up {
		upSum += up[i]
		downSum += down[i]
	}
	if upSum <= downSum {
		t.Errorf("Up attack total (%g) should exceed Down attack total (%g)", upSum, downSum)
	}
}

func TestIntegratedARIMAAttackEvadesIntegratedDetector(t *testing.T) {
	train, _ := testConsumer(t, 44, 20, 18)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(1)
	evaded := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		vec, err := IntegratedARIMAAttack(det, Up, IntegratedARIMAConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		v, err := det.Detect(vec)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Anomalous {
			evaded++
		}
	}
	// The attack is designed to circumvent this detector (Section VIII-B1);
	// allow a rare trip from the stochastic draw.
	if evaded < trials*8/10 {
		t.Errorf("integrated ARIMA attack evaded only %d/%d trials", evaded, trials)
	}
}

func TestIntegratedARIMAAttackDetectedByKLD(t *testing.T) {
	train, _ := testConsumer(t, 45, 30, 28)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	kld, err := detect.NewKLDDetector(train, detect.KLDConfig{Significance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(2)
	vec, err := IntegratedARIMAAttack(det, Up, IntegratedARIMAConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := kld.Detect(vec)
	if err != nil {
		t.Fatal(err)
	}
	// This is the headline result of the paper: the KLD detector catches
	// what the Integrated ARIMA detector cannot.
	if !v.Anomalous {
		t.Errorf("KLD detector should flag the Integrated ARIMA attack (K=%g, threshold=%g)",
			v.Score, v.Threshold)
	}
}

func TestIntegratedARIMAAttackErrors(t *testing.T) {
	train, _ := testConsumer(t, 46, 8, 6)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IntegratedARIMAAttack(det, Up, IntegratedARIMAConfig{}, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := IntegratedARIMAAttack(det, Direction(0), IntegratedARIMAConfig{}, stats.NewRand(1)); err == nil {
		t.Error("invalid direction should error")
	}
}

func TestOptimalSwapPreservesMultiset(t *testing.T) {
	_, test := testConsumer(t, 47, 8, 6)
	week := test.MustWeek(0)
	scheme := pricing.Nightsaver()
	swapped, err := OptimalSwap(week, scheme)
	if err != nil {
		t.Fatal(err)
	}
	// Mean, variance, and full multiset are unchanged.
	if math.Abs(stats.Mean(swapped)-stats.Mean(week)) > 1e-12 {
		t.Error("swap must preserve the mean")
	}
	if math.Abs(stats.Variance(swapped)-stats.Variance(week)) > 1e-9 {
		t.Error("swap must preserve the variance")
	}
	a := append([]float64(nil), week...)
	b := append([]float64(nil), swapped...)
	if stats.Percentile(a, 37) != stats.Percentile(b, 37) {
		t.Error("swap must preserve the multiset of readings")
	}
	if _, err := OptimalSwap(week[:5], scheme); err == nil {
		t.Error("short week should error")
	}
}

func TestOptimalSwapIsProfitable(t *testing.T) {
	_, test := testConsumer(t, 48, 8, 6)
	week := test.MustWeek(0)
	scheme := pricing.Nightsaver()
	swapped, err := OptimalSwap(week, scheme)
	if err != nil {
		t.Fatal(err)
	}
	// Profit from reporting the swapped ordering while consuming the real
	// one (Eq. 1 with variable prices): positive, but no energy stolen.
	profit, err := pricing.Profit(scheme, week, swapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	if profit <= 0 {
		t.Errorf("optimal swap profit = %g, want > 0", profit)
	}
	net, _ := pricing.NetEnergyDelta(week, swapped)
	if math.Abs(net) > 1e-9 {
		t.Errorf("optimal swap must steal no net energy, got %g kWh", net)
	}
}

func TestOptimalSwapGeneral(t *testing.T) {
	_, test := testConsumer(t, 51, 8, 6)
	week := test.MustWeek(0)

	// Under an RTP trace the general swap is profitable and multiset-
	// preserving, like the TOU special case.
	rtp, err := pricing.GenerateRTP(pricing.DefaultMarketConfig(), timeseries.SlotsPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := OptimalSwapGeneral(week, rtp.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Mean(swapped)-stats.Mean(week)) > 1e-12 {
		t.Error("general swap must preserve the mean")
	}
	profit, err := pricing.Profit(rtp, week, swapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	if profit <= 0 {
		t.Errorf("RTP-tailored swap profit = %g, want > 0", profit)
	}

	// Under a flat price every assignment costs the same: zero profit
	// (the Table I 'N' cell for 3A under flat rate).
	flatPrices := make([]float64, timeseries.SlotsPerWeek)
	for i := range flatPrices {
		flatPrices[i] = 0.2
	}
	flatSwapped, err := OptimalSwapGeneral(week, flatPrices)
	if err != nil {
		t.Fatal(err)
	}
	flatProfit, err := pricing.Profit(pricing.Flat{Rate: 0.2}, week, flatSwapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flatProfit) > 1e-9 {
		t.Errorf("flat-rate swap profit = %g, want 0", flatProfit)
	}

	// The general swap dominates (or matches) the TOU-window special case
	// under TOU prices: it solves the same assignment exactly.
	scheme := pricing.Nightsaver()
	touPrices := make([]float64, timeseries.SlotsPerWeek)
	for i := range touPrices {
		touPrices[i] = scheme.Price(timeseries.Slot(i))
	}
	genSwap, err := OptimalSwapGeneral(week, touPrices)
	if err != nil {
		t.Fatal(err)
	}
	winSwap, err := OptimalSwap(week, scheme)
	if err != nil {
		t.Fatal(err)
	}
	genProfit, _ := pricing.Profit(scheme, week, genSwap, 0)
	winProfit, _ := pricing.Profit(scheme, week, winSwap, 0)
	if genProfit < winProfit-1e-9 {
		t.Errorf("general swap profit %g should match or beat window swap %g", genProfit, winProfit)
	}

	// Errors.
	if _, err := OptimalSwapGeneral(week[:5], touPrices); err == nil {
		t.Error("short week should error")
	}
	if _, err := OptimalSwapGeneral(week, touPrices[:5]); err == nil {
		t.Error("short price trace should error")
	}
}

func TestWorstCaseEvading(t *testing.T) {
	gen := func(i int) (timeseries.Series, error) {
		return timeseries.Series{float64(i)}, nil
	}
	profit := func(v timeseries.Series) (float64, error) {
		return v[0], nil // later trials more profitable
	}
	// Detector flags everything above 5: the best evading trial is 5.
	check := func(v timeseries.Series) (detect.Verdict, error) {
		return detect.Verdict{Anomalous: v[0] > 5, Score: v[0]}, nil
	}
	best, p, err := WorstCaseEvading(10, gen, profit, check)
	if err != nil {
		t.Fatal(err)
	}
	if best[0] != 5 || p != 5 {
		t.Errorf("best = %v profit %g, want trial 5", best, p)
	}
	// Everything flagged: fall back to the least suspicious (min score).
	flagAll := func(v timeseries.Series) (detect.Verdict, error) {
		return detect.Verdict{Anomalous: true, Score: v[0]}, nil
	}
	best, p, err = WorstCaseEvading(10, gen, profit, flagAll)
	if err != nil {
		t.Fatal(err)
	}
	if best[0] != 0 || p != 0 {
		t.Errorf("fallback should pick min-score trial 0, got %v profit %g", best, p)
	}
	if _, _, err := WorstCaseEvading(0, gen, profit, check); err == nil {
		t.Error("zero trials should error")
	}
}

func TestWorstCasePicksMaxProfit(t *testing.T) {
	gen := func(i int) (timeseries.Series, error) {
		return timeseries.Series{float64(i)}, nil
	}
	profit := func(v timeseries.Series) (float64, error) {
		// Profit peaks at trial 3.
		d := v[0] - 3
		return 10 - d*d, nil
	}
	best, p, err := WorstCase(10, gen, profit)
	if err != nil {
		t.Fatal(err)
	}
	if best[0] != 3 || p != 10 {
		t.Errorf("best = %v profit %g, want [3] 10", best, p)
	}
	if _, _, err := WorstCase(0, gen, profit); err == nil {
		t.Error("zero trials should error")
	}
}

func TestInjectClass4B(t *testing.T) {
	_, test := testConsumer(t, 49, 8, 6)
	victimBase := test.MustWeek(0)
	attackerTypical := test.MustWeek(1)
	rtp, err := pricing.GenerateRTP(pricing.DefaultMarketConfig(), timeseries.SlotsPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := adr.NewElasticConsumer(-0.5, 0.195, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InjectClass4B(victimBase, attackerTypical, rtp.Trace, victim, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("class 4B invariants: %v", err)
	}
	// The victim perceives a benefit (Eq. 11) despite losing L_n (Eq. 10).
	db, err := pricing.PerceivedBenefit(rtp, res.SpoofedPrices, res.VictimReported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db <= 0 {
		t.Errorf("ΔB = %g, want > 0 (victim believes he benefited)", db)
	}
	loss, err := pricing.NeighbourLoss(rtp, res.VictimActual, res.VictimReported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("L_n = %g, want > 0 (victim actually lost)", loss)
	}
	// The attacker profits (Eq. 1).
	profit, err := pricing.Profit(rtp, res.AttackerActual, res.AttackerReported, 0)
	if err != nil {
		t.Fatal(err)
	}
	if profit <= 0 {
		t.Errorf("attacker profit = %g, want > 0", profit)
	}
}

func TestInjectClass4BErrors(t *testing.T) {
	victim, _ := adr.NewElasticConsumer(-0.5, 0.195, 0.7)
	week := make(timeseries.Series, timeseries.SlotsPerWeek)
	short := make(timeseries.Series, 5)
	prices := make([]float64, timeseries.SlotsPerWeek)
	for i := range prices {
		prices[i] = 0.2
	}
	if _, err := InjectClass4B(short, week, prices, victim, 1.5); err == nil {
		t.Error("short victim week should error")
	}
	if _, err := InjectClass4B(week, week, prices[:5], victim, 1.5); err == nil {
		t.Error("short price trace should error")
	}
	if _, err := InjectClass4B(week, week, prices, victim, 1); err == nil {
		t.Error("non-inflating spoof factor should error")
	}
}

func TestIntegratedAttackBalancedPairPassesBalanceCheck(t *testing.T) {
	// Full Class 2B story: Mallory under-reports herself and over-reports a
	// neighbour by the same amount; the aggregate matches.
	train, test := testConsumer(t, 50, 20, 18)
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	mallReported, err := IntegratedARIMAAttack(det, Down, IntegratedARIMAConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mallActual := test.MustWeek(0)
	neighActual := test.MustWeek(1)
	stolen, err := mallActual.Sub(mallReported)
	if err != nil {
		t.Fatal(err)
	}
	// Over-report the neighbour by exactly the stolen profile (clamped).
	neighReported := make(timeseries.Series, len(neighActual))
	for i := range neighReported {
		d := stolen[i]
		if d < 0 {
			d = 0
		}
		neighReported[i] = neighActual[i] + d
	}
	var totActual, totReported float64
	for i := range mallActual {
		totActual += mallActual[i] + neighActual[i]
		totReported += mallReported[i] + neighReported[i]
	}
	// Wherever Mallory under-reported, the neighbour absorbs it; slots where
	// the attack over-reported Mallory break exact equality, so compare the
	// under-reported mass only.
	if u, _ := UnderReportsSomewhere(mallActual, mallReported); !u {
		t.Fatal("attack should under-report somewhere (Prop. 1)")
	}
	if o, _ := OverReportsSomewhere(neighActual, neighReported); !o {
		t.Fatal("neighbour should be over-reported somewhere (Prop. 2)")
	}
	if totReported < totActual-1e-9 {
		t.Error("aggregate reported should not fall below aggregate actual after balancing")
	}
}
