package sim

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/timeseries"
)

func baseScenario() Scenario {
	return Scenario{
		Consumers:  6,
		TrainWeeks: 20,
		LiveWeeks:  3,
		Seed:       90,
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := baseScenario().Validate(); err != nil {
		t.Errorf("base scenario invalid: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.Consumers = 1 },
		func(s *Scenario) { s.TrainWeeks = 2 },
		func(s *Scenario) { s.LiveWeeks = 0 },
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 99, Class: attack.Class2A, Attacker: 0, Magnitude: 0.5}}
		},
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 0, Class: attack.Class2A, Attacker: 99, Magnitude: 0.5}}
		},
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 0, Class: attack.Class3A, Attacker: 0, Magnitude: 0.5}}
		},
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 0, Class: attack.Class1B, Attacker: 0, Victim: 0, Magnitude: 2}}
		},
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 0, Class: attack.Class1B, Attacker: 0, Victim: 99, Magnitude: 2}}
		},
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 0, Class: attack.Class1A, Attacker: 0, Magnitude: 0.5}}
		},
		func(s *Scenario) {
			s.Attacks = []AttackScript{{Week: 0, Class: attack.Class2A, Attacker: 0, Magnitude: 1.5}}
		},
	}
	for i, mutate := range cases {
		s := baseScenario()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRunHonestScenario(t *testing.T) {
	res, err := Run(baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != 3 {
		t.Fatalf("weeks = %d", len(res.Weeks))
	}
	if res.StolenKWh != 0 {
		t.Errorf("honest scenario stole %g kWh", res.StolenKWh)
	}
	if res.TruePositives != 0 || res.FalseNegatives != 0 {
		t.Errorf("honest scenario has no attacks: TP=%d FN=%d", res.TruePositives, res.FalseNegatives)
	}
	for _, w := range res.Weeks {
		if !w.RootBalanced {
			t.Errorf("week %d: honest grid must balance", w.Week)
		}
		if w.UnaccountedKWh > 1e-6 || w.UnaccountedKWh < -1e-6 {
			t.Errorf("week %d: unaccounted = %g", w.Week, w.UnaccountedKWh)
		}
		if w.RevenueUSD <= 0 {
			t.Errorf("week %d: revenue = %g", w.Week, w.RevenueUSD)
		}
		if len(w.AttackActive) != 0 {
			t.Errorf("week %d: ground truth should be empty", w.Week)
		}
	}
	// Recall is vacuously perfect; precision suffers only from FPs.
	if res.Recall() != 1 {
		t.Error("recall should be 1 with no attacks")
	}
}

func TestRunClass2AScenario(t *testing.T) {
	sc := baseScenario()
	sc.Attacks = []AttackScript{
		{Week: 1, Class: attack.Class2A, Attacker: 2, Magnitude: 0.9},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.StolenKWh <= 0 {
		t.Fatal("2A attack should steal energy")
	}
	w := res.Weeks[1]
	// Hiding 90% of consumption breaks the root balance and leaves
	// unaccounted energy.
	if w.RootBalanced {
		t.Error("week 1 root balance should fail under a 2A attack")
	}
	if w.UnaccountedKWh <= 0 {
		t.Errorf("week 1 unaccounted = %g, want positive", w.UnaccountedKWh)
	}
	if len(w.AttackActive) != 1 {
		t.Errorf("ground truth = %v", w.AttackActive)
	}
	// The 90% under-report is blatant; the detector should flag the thief.
	if res.TruePositives == 0 {
		t.Error("a 90% under-report should be flagged")
	}
	// Other weeks stay balanced.
	if !res.Weeks[0].RootBalanced || !res.Weeks[2].RootBalanced {
		t.Error("attack-free weeks must balance")
	}
}

func TestRunClass2BScenarioBalances(t *testing.T) {
	sc := baseScenario()
	sc.Attacks = []AttackScript{
		{Week: 0, Class: attack.Class2B, Attacker: 1, Victim: 3, Magnitude: 0.8},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Weeks[0]
	// Proposition 2 in action: the balance check passes, revenue assurance
	// sees nothing, yet energy is being stolen from the victim.
	if !w.RootBalanced {
		t.Error("2B attack must pass the root balance check")
	}
	if w.UnaccountedKWh > 1e-6 {
		t.Errorf("2B attack must leave no unaccounted energy, got %g", w.UnaccountedKWh)
	}
	if res.StolenKWh <= 0 {
		t.Error("2B attack steals energy")
	}
	if len(w.AttackActive) != 2 {
		t.Errorf("ground truth should name attacker and victim: %v", w.AttackActive)
	}
	// The data-driven layer is the only one that can see it.
	if res.TruePositives == 0 {
		t.Error("the detector stack should flag the 2B attack (attacker or victim)")
	}
}

func TestRunClass1AScenario(t *testing.T) {
	sc := baseScenario()
	sc.Attacks = []AttackScript{
		{Week: 2, Class: attack.Class1A, Attacker: 4, Magnitude: 3},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Weeks[2]
	// 1A: reported data is perfectly normal — only the balance check sees it.
	if w.RootBalanced {
		t.Error("1A attack must fail the root balance check")
	}
	if w.UnaccountedKWh <= 0 {
		t.Error("1A attack leaves unaccounted energy")
	}
	// The paper: Class 1A "would go completely undetected" by data-driven
	// methods. The attacker's own report is unchanged, so any flag on the
	// attacker would be a false positive of the week, not a detection.
	if res.StolenKWh <= 0 {
		t.Error("1A attack steals energy")
	}
}

func TestRunClass1BScenario(t *testing.T) {
	sc := baseScenario()
	sc.Attacks = []AttackScript{
		{Week: 1, Class: attack.Class1B, Attacker: 0, Victim: 5, Magnitude: 4},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Weeks[1]
	if !w.RootBalanced {
		t.Error("1B attack must pass the root balance check")
	}
	// The victim's report is wildly inflated (4x the attacker's load moved
	// onto them): the framework should flag the victim.
	foundVictim := false
	for _, f := range w.Flags {
		if f.ConsumerID == w.AttackActive[len(w.AttackActive)-1] || f.ConsumerID == w.AttackActive[0] {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Errorf("1B attack should flag an involved consumer: flags=%v truth=%v", w.Flags, w.AttackActive)
	}
}

func TestRunClass3AScenario(t *testing.T) {
	sc := baseScenario()
	sc.Attacks = []AttackScript{
		{Week: 0, Class: attack.Class3A, Attacker: 2},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Weeks[0]
	// The signature of a pure load shift: the per-slot balance check fails
	// (readings moved between time periods), yet the WEEKLY energy audit
	// reconciles perfectly — no energy was stolen, only time was lied about.
	if w.RootBalanced {
		t.Error("3A swap must fail the per-slot balance check")
	}
	if w.UnaccountedKWh > 1e-6 || w.UnaccountedKWh < -1e-6 {
		t.Errorf("3A swap steals no net energy; unaccounted = %g", w.UnaccountedKWh)
	}
	if res.StolenKWh != 0 {
		t.Errorf("3A stolen = %g, want 0", res.StolenKWh)
	}
	if len(w.AttackActive) != 1 {
		t.Errorf("ground truth = %v", w.AttackActive)
	}
	// A 3A script with a magnitude is rejected.
	bad := baseScenario()
	bad.Attacks = []AttackScript{{Week: 0, Class: attack.Class3A, Attacker: 0, Magnitude: 0.5}}
	if _, err := Run(bad); err == nil {
		t.Error("3A with magnitude should be rejected")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := baseScenario()
	sc.Attacks = []AttackScript{
		{Week: 0, Class: attack.Class2A, Attacker: 1, Magnitude: 0.7},
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.StolenKWh != b.StolenKWh || a.TruePositives != b.TruePositives ||
		a.FalsePositives != b.FalsePositives {
		t.Error("simulation must be deterministic")
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	r := &Result{}
	if r.Precision() != 1 || r.Recall() != 1 {
		t.Error("empty result should have vacuous precision/recall of 1")
	}
	r = &Result{TruePositives: 3, FalsePositives: 1, FalseNegatives: 2}
	if r.Precision() != 0.75 {
		t.Errorf("precision = %g", r.Precision())
	}
	if r.Recall() != 0.6 {
		t.Errorf("recall = %g", r.Recall())
	}
}

func TestStealthyVector(t *testing.T) {
	sc := baseScenario()
	totalWeeks := sc.TrainWeeks + sc.LiveWeeks
	_ = totalWeeks
	train := make(timeseries.Series, sc.TrainWeeks*timeseries.SlotsPerWeek)
	for i := range train {
		train[i] = 1 + 0.5*float64(i%48)/48
	}
	vec, err := StealthyVector(train, attack.Up, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != timeseries.SlotsPerWeek {
		t.Error("vector must be a full week")
	}
	if err := vec.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunInvalidScenario(t *testing.T) {
	sc := baseScenario()
	sc.Consumers = 0
	if _, err := Run(sc); err == nil {
		t.Error("invalid scenario should error")
	}
}
