// Package sim is the scenario driver: it simulates a feeder of consumers
// week by week, lets scripted attacks falsify consumption and reports, and
// runs the full utility side against the stream — F-DETA detector
// assessments, the root balance check, revenue assurance — scoring the
// outcome against ground truth. It is the integration layer the examples
// and the `fdeta simulate` command are built on.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/adr"
	"repro/internal/attack"
	"repro/internal/billing"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/pricing"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// AttackScript schedules one attack instance in a scenario.
type AttackScript struct {
	// Week is the live week index (0-based from the end of training) the
	// attack runs in.
	Week int
	// Class selects the attack: Class1A, Class2A, Class3A, Class1B, or
	// Class2B (the classes realizable without ADR infrastructure).
	Class attack.Class
	// Attacker is the index of the attacking consumer.
	Attacker int
	// Victim is the index of the over-reported neighbour (B classes only).
	Victim int
	// Magnitude scales the attack: the consumption multiplier for 1A/1B
	// (e.g. 2 doubles consumption), or the under-report fraction for
	// 2A/2B (e.g. 0.6 hides 60% of consumption).
	Magnitude float64
}

// Validate checks one script entry against the scenario dimensions.
func (a AttackScript) Validate(consumers, liveWeeks int) error {
	if a.Week < 0 || a.Week >= liveWeeks {
		return fmt.Errorf("sim: attack week %d outside live range [0, %d)", a.Week, liveWeeks)
	}
	if a.Attacker < 0 || a.Attacker >= consumers {
		return fmt.Errorf("sim: attacker index %d out of range", a.Attacker)
	}
	switch a.Class {
	case attack.Class1A, attack.Class2A, attack.Class3A:
	case attack.Class1B, attack.Class2B:
		if a.Victim < 0 || a.Victim >= consumers {
			return fmt.Errorf("sim: victim index %d out of range", a.Victim)
		}
		if a.Victim == a.Attacker {
			return fmt.Errorf("sim: attacker cannot victimize herself")
		}
	default:
		return fmt.Errorf("sim: class %v not supported by the scenario driver", a.Class)
	}
	switch a.Class {
	case attack.Class1A, attack.Class1B:
		if a.Magnitude <= 1 {
			return fmt.Errorf("sim: class %v magnitude must exceed 1, got %g", a.Class, a.Magnitude)
		}
	case attack.Class3A:
		// The swap has no magnitude: it is fully determined by the prices.
		if a.Magnitude != 0 {
			return fmt.Errorf("sim: class 3A takes no magnitude, got %g", a.Magnitude)
		}
	default:
		if a.Magnitude <= 0 || a.Magnitude >= 1 {
			return fmt.Errorf("sim: class %v magnitude must be in (0, 1), got %g", a.Class, a.Magnitude)
		}
	}
	return nil
}

// Scenario describes a full simulation.
type Scenario struct {
	// Consumers is the feeder population size.
	Consumers int
	// TrainWeeks is the trusted history used to enroll consumers.
	TrainWeeks int
	// LiveWeeks is how many weeks are simulated after enrollment.
	LiveWeeks int
	// Significance is the KLD detector level (default 0.05).
	Significance float64
	// Scheme prices the energy (default Nightsaver).
	Scheme pricing.Scheme
	// Attacks is the script.
	Attacks []AttackScript
	// Seed drives the synthetic population.
	Seed int64
}

func (s Scenario) withDefaults() Scenario {
	if s.Significance == 0 {
		s.Significance = 0.05
	}
	if s.Scheme == nil {
		s.Scheme = pricing.Nightsaver()
	}
	return s
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if s.Consumers < 2 {
		return fmt.Errorf("sim: need at least 2 consumers, got %d", s.Consumers)
	}
	if s.TrainWeeks < 4 {
		return fmt.Errorf("sim: need at least 4 training weeks, got %d", s.TrainWeeks)
	}
	if s.LiveWeeks < 1 {
		return fmt.Errorf("sim: need at least 1 live week, got %d", s.LiveWeeks)
	}
	for i, a := range s.Attacks {
		if err := a.Validate(s.Consumers, s.LiveWeeks); err != nil {
			return fmt.Errorf("sim: attack %d: %w", i, err)
		}
	}
	return nil
}

// Flag is one detector alert raised during a live week.
type Flag struct {
	ConsumerID string
	Kind       core.AnomalyKind
}

// WeekReport is the utility's view of one live week.
type WeekReport struct {
	Week int
	// Flags are the consumers the framework flagged.
	Flags []Flag
	// RootBalanced reports whether the trusted root balance check passed
	// (aggregate actual vs aggregate reported within tolerance).
	RootBalanced bool
	// UnaccountedKWh is the revenue-assurance residual for the week.
	UnaccountedKWh float64
	// RevenueUSD is the week's billed revenue.
	RevenueUSD float64
	// AttackActive lists the consumer IDs truly involved in scripted
	// attacks this week (attackers and victims) — the ground truth.
	AttackActive []string
}

// Result aggregates the simulation.
type Result struct {
	Weeks []WeekReport
	// Confusion counts at consumer-week granularity: a true positive is a
	// flagged consumer-week that was genuinely involved in an attack.
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	// StolenKWh is the total energy stolen across the scenario.
	StolenKWh float64
}

// Precision returns TP / (TP + FP), or 1 when nothing was flagged.
func (r *Result) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall returns TP / (TP + FN), or 1 when nothing was attacked.
func (r *Result) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// Run executes the scenario.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	totalWeeks := sc.TrainWeeks + sc.LiveWeeks
	ds, err := dataset.Generate(dataset.Config{
		Residential: sc.Consumers,
		Weeks:       totalWeeks,
		Seed:        sc.Seed,
	})
	if err != nil {
		return nil, err
	}

	framework, err := core.New(core.Config{Factory: core.DefaultDetectorFactory(sc.Significance)})
	if err != nil {
		return nil, err
	}
	ids := make([]string, sc.Consumers)
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		ids[i] = fmt.Sprintf("meter-%d", c.ID)
		train, _, err := c.Demand.Split(sc.TrainWeeks)
		if err != nil {
			return nil, err
		}
		if err := framework.Enroll(ids[i], train); err != nil {
			return nil, err
		}
	}

	// Index the script by week.
	byWeek := make(map[int][]AttackScript)
	for _, a := range sc.Attacks {
		byWeek[a.Week] = append(byWeek[a.Week], a)
	}

	res := &Result{}
	for w := 0; w < sc.LiveWeeks; w++ {
		report := WeekReport{Week: w}
		weekIdx := sc.TrainWeeks + w
		cycle := billing.WeekCycle(weekIdx)

		// Baseline actual/reported: honest behaviour.
		actual := make([]timeseries.Series, sc.Consumers)
		reported := make([]timeseries.Series, sc.Consumers)
		for i := range ds.Consumers {
			week := ds.Consumers[i].Demand.MustWeek(weekIdx)
			actual[i] = week.Clone()
			reported[i] = week.Clone()
		}

		// Apply the week's scripted attacks.
		involved := map[int]bool{}
		for _, a := range byWeek[w] {
			if err := applyAttack(a, sc.Scheme, actual, reported); err != nil {
				return nil, fmt.Errorf("sim: week %d: %w", w, err)
			}
			involved[a.Attacker] = true
			if a.Class == attack.Class1B || a.Class == attack.Class2B {
				involved[a.Victim] = true
			}
			// Net energy delta, not the positive part: a pure load shift
			// (Class 3A) under-reports some slots and over-reports others
			// but steals nothing on net.
			stolen, err := pricing.NetEnergyDelta(actual[a.Attacker], reported[a.Attacker])
			if err != nil {
				return nil, err
			}
			if stolen > 0 {
				res.StolenKWh += stolen
			}
		}
		for i := range ids {
			if involved[i] {
				report.AttackActive = append(report.AttackActive, ids[i])
			}
		}
		sort.Strings(report.AttackActive)

		// Utility side 1: per-consumer F-DETA assessment.
		for i := range ids {
			a, err := framework.Evaluate(ids[i], weekIdx, reported[i])
			if err != nil {
				return nil, err
			}
			if a.Anomalous {
				report.Flags = append(report.Flags, Flag{ConsumerID: ids[i], Kind: a.Kind})
			}
			flagged := a.Anomalous
			switch {
			case flagged && involved[i]:
				res.TruePositives++
			case flagged && !involved[i]:
				res.FalsePositives++
			case !flagged && involved[i]:
				res.FalseNegatives++
			}
		}

		// Utility side 2: the trusted root balance check over the week.
		report.RootBalanced = true
		for s := 0; s < timeseries.SlotsPerWeek; s++ {
			var sumActual, sumReported float64
			for i := range ids {
				sumActual += actual[i][s]
				sumReported += reported[i][s]
			}
			tol := 1e-6 + 0.02*sumActual
			if diff := sumActual - sumReported; diff > tol || diff < -tol {
				report.RootBalanced = false
				break
			}
		}

		// Utility side 3: revenue assurance for the week.
		delivered := make(timeseries.Series, timeseries.SlotsPerWeek)
		reportedByID := make(map[string]timeseries.Series, sc.Consumers)
		for i := range ids {
			reportedByID[ids[i]] = reported[i]
			for s, v := range actual[i] {
				delivered[s] += v
			}
		}
		rev, err := billing.RevenueAssurance(sc.Scheme, cycle, delivered, reportedByID, 0)
		if err != nil {
			return nil, err
		}
		report.UnaccountedKWh = rev.UnaccountedKWh
		report.RevenueUSD = rev.RevenueUSD

		res.Weeks = append(res.Weeks, report)
	}
	return res, nil
}

// applyAttack mutates the week's actual/reported series per the script.
// The driver uses transparent proportional distortions; StealthyVector
// exposes the paper-exact Integrated ARIMA vector for ad-hoc use.
func applyAttack(a AttackScript, scheme pricing.Scheme, actual, reported []timeseries.Series) error {
	switch a.Class {
	case attack.Class1A:
		// Consume more, report the typical pattern.
		actual[a.Attacker] = actual[a.Attacker].Scale(a.Magnitude)

	case attack.Class2A:
		// Under-report own consumption.
		reported[a.Attacker] = reported[a.Attacker].Scale(1 - a.Magnitude)

	case attack.Class3A:
		// Load-shift the reports: Optimal Swap against the actual prices.
		if tou, ok := scheme.(pricing.TOU); ok {
			swapped, err := attack.OptimalSwap(reported[a.Attacker], tou)
			if err != nil {
				return err
			}
			reported[a.Attacker] = swapped
			break
		}
		prices := adr.PriceTraceFor(scheme.Price, 0, timeseries.SlotsPerWeek)
		swapped, err := attack.OptimalSwapGeneral(reported[a.Attacker], prices)
		if err != nil {
			return err
		}
		reported[a.Attacker] = swapped

	case attack.Class1B:
		// Consume more; the surplus is over-reported onto the victim via a
		// stealthy Integrated-ARIMA-shaped vector.
		inflated := actual[a.Attacker].Scale(a.Magnitude)
		surplus, err := inflated.Sub(actual[a.Attacker])
		if err != nil {
			return err
		}
		actual[a.Attacker] = inflated
		victimReported, err := reported[a.Victim].Add(surplus)
		if err != nil {
			return err
		}
		reported[a.Victim] = victimReported

	case attack.Class2B:
		// Under-report self; over-report the victim to keep the balance.
		hidden := reported[a.Attacker].Scale(a.Magnitude)
		reported[a.Attacker] = reported[a.Attacker].Scale(1 - a.Magnitude)
		victimReported, err := reported[a.Victim].Add(hidden)
		if err != nil {
			return err
		}
		reported[a.Victim] = victimReported
	}
	return nil
}

// StealthyVector is a helper for callers that want the full Integrated
// ARIMA attack vector for a consumer in a scenario (the scripted driver
// uses proportional distortions for transparency; this exposes the
// paper-exact vector for ad-hoc use).
func StealthyVector(train timeseries.Series, dir attack.Direction, seed int64) (timeseries.Series, error) {
	det, err := detect.NewIntegratedARIMADetector(train, detect.IntegratedARIMAConfig{})
	if err != nil {
		return nil, err
	}
	return attack.IntegratedARIMAAttack(det, dir, attack.IntegratedARIMAConfig{}, stats.NewRand(seed))
}
