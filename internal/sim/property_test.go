package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/attack"
	"repro/internal/stats"
)

// TestHonestScenarioInvariantsProperty: for any seed and population, an
// attack-free scenario steals nothing, balances every week, and leaves no
// unaccounted energy.
func TestHonestScenarioInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 40)
		sc := Scenario{
			Consumers:  2 + rng.Intn(5),
			TrainWeeks: 6,
			LiveWeeks:  1 + rng.Intn(2),
			Seed:       rng.Int63(),
		}
		res, err := Run(sc)
		if err != nil {
			return false
		}
		if res.StolenKWh != 0 || res.TruePositives != 0 || res.FalseNegatives != 0 {
			return false
		}
		for _, w := range res.Weeks {
			if !w.RootBalanced {
				return false
			}
			if w.UnaccountedKWh > 1e-6 || w.UnaccountedKWh < -1e-6 {
				return false
			}
			if w.RevenueUSD <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestBalancedAttacksAlwaysBalanceProperty: Class 2B keeps the root balance
// intact for any magnitude and victim choice (Proposition 2 as a property).
func TestBalancedAttacksAlwaysBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 41)
		consumers := 3 + rng.Intn(4)
		attacker := rng.Intn(consumers)
		victim := (attacker + 1 + rng.Intn(consumers-1)) % consumers
		if victim == attacker {
			return true // constructionally excluded; skip
		}
		sc := Scenario{
			Consumers:  consumers,
			TrainWeeks: 6,
			LiveWeeks:  1,
			Seed:       rng.Int63(),
			Attacks: []AttackScript{{
				Week:      0,
				Class:     attack.Class2B,
				Attacker:  attacker,
				Victim:    victim,
				Magnitude: 0.1 + 0.8*rng.Float64(),
			}},
		}
		res, err := Run(sc)
		if err != nil {
			return false
		}
		return res.Weeks[0].RootBalanced && res.StolenKWh > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestUnbalancedAttacksNeverBalanceProperty: Class 2A with a substantial
// magnitude always breaks the root balance (Proposition 1's footprint).
func TestUnbalancedAttacksNeverBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.SplitRand(seed, 42)
		consumers := 2 + rng.Intn(3)
		sc := Scenario{
			Consumers:  consumers,
			TrainWeeks: 6,
			LiveWeeks:  1,
			Seed:       rng.Int63(),
			Attacks: []AttackScript{{
				Week:      0,
				Class:     attack.Class2A,
				Attacker:  rng.Intn(consumers),
				Magnitude: 0.5 + 0.4*rng.Float64(), // hide 50-90%
			}},
		}
		res, err := Run(sc)
		if err != nil {
			return false
		}
		return !res.Weeks[0].RootBalanced && res.Weeks[0].UnaccountedKWh > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
