package fault

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/timeseries"
)

func testDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{Residential: 4, SMEs: 1, Weeks: 6, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRealizeDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, Scenarios: MustParse("dropout:0.1+outage:0.5,48+spike:0.02")}
	a, err := plan.Realize(42, 4*timeseries.SlotsPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Realize(42, 4*timeseries.SlotsPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same (plan, key, span) must realize identically")
	}
	c, err := plan.Realize(43, 4*timeseries.SlotsPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different keys should realize differently")
	}
	if a.Bad() == 0 {
		t.Error("a 10% dropout plan over 4 weeks should fault some slots")
	}
}

func TestDropoutRateAndStatus(t *testing.T) {
	plan := Plan{Seed: 1, Scenarios: []Scenario{{Kind: Dropout, Rate: 0.1}}}
	n := 20 * timeseries.SlotsPerWeek
	r, err := plan.Realize(5, n)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(r.Bad()) / float64(n)
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("dropout fraction = %.3f, want ~0.10", frac)
	}
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 1 + float64(i%48)
	}
	obs, mask, err := r.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if mask[i] == timeseries.StatusMissing {
			if obs[i] != 0 {
				t.Fatalf("slot %d: missing reading should observe 0, got %g", i, obs[i])
			}
		} else if mask[i] != timeseries.StatusOK {
			t.Fatalf("slot %d: dropout should only produce Missing, got %v", i, mask[i])
		} else if obs[i] != s[i] {
			t.Fatalf("slot %d: untouched reading changed: %g != %g", i, obs[i], s[i])
		}
	}
	// Input untouched.
	if s[0] != 1 {
		t.Error("Apply must not modify its input")
	}
}

func TestOutageWindows(t *testing.T) {
	plan := Plan{Seed: 3, Scenarios: []Scenario{{Kind: Outage, Rate: 1, Duration: 48}}}
	n := 10 * timeseries.SlotsPerWeek
	r, err := plan.Realize(9, n)
	if err != nil {
		t.Fatal(err)
	}
	// ~10 windows × 48 slots expected; accept a wide Poisson band.
	if r.Bad() < 3*48 || r.Bad() > 20*48 {
		t.Errorf("outage slots = %d, want a few hundred", r.Bad())
	}
	// Check contiguity: faulted slots should cluster in runs of ~48.
	s := make(timeseries.Series, n)
	_, mask, err := r.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	runs, cur := 0, 0
	for _, st := range mask {
		if st == timeseries.StatusMissing {
			cur++
		} else if cur > 0 {
			runs++
			cur = 0
		}
	}
	if cur > 0 {
		runs++
	}
	if runs == 0 || runs > 25 {
		t.Errorf("outage runs = %d, want a handful of contiguous windows", runs)
	}
}

func TestStuckAtFreezesValue(t *testing.T) {
	plan := Plan{Seed: 11, Scenarios: []Scenario{{Kind: StuckAt, Rate: 2, Duration: 6}}}
	n := 2 * timeseries.SlotsPerWeek
	r, err := plan.Realize(4, n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bad() == 0 {
		t.Skip("no stuck windows drawn at this seed")
	}
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = float64(i)
	}
	obs, mask, err := r.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if mask[i] != timeseries.StatusCorrupt {
			continue
		}
		// A stuck slot repeats the value of some earlier (anchor) slot.
		if obs[i] == s[i] && i > 0 {
			// Anchor slot itself reports its own value — fine.
			continue
		}
		if obs[i] > s[i] {
			t.Fatalf("slot %d: stuck value %g should not exceed true value %g (anchors precede)", i, obs[i], s[i])
		}
	}
}

func TestSpikeMultiplies(t *testing.T) {
	plan := Plan{Seed: 13, Scenarios: []Scenario{{Kind: Spike, Rate: 0.05, Magnitude: 10}}}
	n := 4 * timeseries.SlotsPerWeek
	r, err := plan.Realize(8, n)
	if err != nil {
		t.Fatal(err)
	}
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 2
	}
	obs, mask, err := r.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	spikes := 0
	for i := range mask {
		if mask[i] == timeseries.StatusCorrupt {
			spikes++
			if obs[i] != 20 {
				t.Fatalf("slot %d: spiked value = %g, want 20", i, obs[i])
			}
		}
	}
	if spikes == 0 {
		t.Error("5% spike rate over 4 weeks should spike some slots")
	}
}

func TestClockSlipDuplicates(t *testing.T) {
	plan := Plan{Seed: 17, Scenarios: []Scenario{{Kind: ClockSlip, Rate: 3, Duration: 4}}}
	n := 4 * timeseries.SlotsPerWeek
	r, err := plan.Realize(2, n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bad() == 0 {
		t.Skip("no slip windows drawn at this seed")
	}
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = float64(i)
	}
	obs, mask, err := r.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if mask[i] == timeseries.StatusCorrupt && i > 0 {
			if obs[i] != s[i-1] {
				t.Fatalf("slot %d: slipped value = %g, want predecessor %g", i, obs[i], s[i-1])
			}
		}
	}
}

func TestMeterFraction(t *testing.T) {
	plan := Plan{Seed: 19, Scenarios: []Scenario{{Kind: Dropout, Rate: 0.5}}, MeterFraction: 0.5}
	affected := 0
	for key := int64(0); key < 200; key++ {
		r, err := plan.Realize(key, timeseries.SlotsPerWeek)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bad() > 0 {
			affected++
		}
	}
	if affected < 70 || affected > 130 {
		t.Errorf("affected meters = %d/200, want ~100", affected)
	}
}

func TestInjectDataset(t *testing.T) {
	ds := testDataset(t, 21)
	pristine := make([]timeseries.Series, len(ds.Consumers))
	for i, c := range ds.Consumers {
		pristine[i] = c.Demand.Clone()
	}
	plan := Plan{Seed: 23, Scenarios: MustParse("dropout:0.2"), FromWeek: 4}
	if err := plan.Inject(ds); err != nil {
		t.Fatal(err)
	}
	cut := 4 * timeseries.SlotsPerWeek
	touched := 0
	for i, c := range ds.Consumers {
		if c.Quality == nil {
			continue
		}
		touched++
		if len(c.Quality) != len(c.Demand) {
			t.Fatalf("consumer %d: mask length %d != demand length %d", c.ID, len(c.Quality), len(c.Demand))
		}
		for s := 0; s < cut; s++ {
			if c.Quality[s] != timeseries.StatusOK || c.Demand[s] != pristine[i][s] {
				t.Fatalf("consumer %d slot %d: training prefix must stay pristine", c.ID, s)
			}
		}
		bad := 0
		for s := cut; s < len(c.Quality); s++ {
			if c.Quality[s] != timeseries.StatusOK {
				bad++
			}
		}
		if bad == 0 {
			t.Errorf("consumer %d: mask set but no faulted slots", c.ID)
		}
	}
	if touched == 0 {
		t.Error("20% dropout should touch every consumer's monitored span")
	}
}

func TestInjectDeterministicAcrossOrder(t *testing.T) {
	plan := Plan{Seed: 29, Scenarios: MustParse("dropout:0.1+stuckat:1,12")}
	a := testDataset(t, 31)
	b := testDataset(t, 31)
	// Reverse b's consumer order, inject, then restore: per-meter streams
	// must make the outcome order-independent.
	for i, j := 0, len(b.Consumers)-1; i < j; i, j = i+1, j-1 {
		b.Consumers[i], b.Consumers[j] = b.Consumers[j], b.Consumers[i]
	}
	if err := plan.Inject(a); err != nil {
		t.Fatal(err)
	}
	if err := plan.Inject(b); err != nil {
		t.Fatal(err)
	}
	for _, ca := range a.Consumers {
		cb, err := b.ByID(ca.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ca.Demand, cb.Demand) || !reflect.DeepEqual(ca.Quality, cb.Quality) {
			t.Fatalf("consumer %d: injection depends on iteration order", ca.ID)
		}
	}
}

func TestDisabledPlanIsNoOp(t *testing.T) {
	ds := testDataset(t, 37)
	before := ds.Consumers[0].Demand.Clone()
	if err := (Plan{Seed: 1}).Inject(ds); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, ds.Consumers[0].Demand) || ds.Consumers[0].Quality != nil {
		t.Error("disabled plan must not touch the dataset")
	}
}

func TestScenarioComposePrecedence(t *testing.T) {
	// First scenario claims everything; second must not overwrite.
	plan := Plan{Seed: 41, Scenarios: []Scenario{
		{Kind: Dropout, Rate: 1},
		{Kind: Spike, Rate: 1, Magnitude: 10},
	}}
	n := timeseries.SlotsPerWeek
	r, err := plan.Realize(1, n)
	if err != nil {
		t.Fatal(err)
	}
	s := make(timeseries.Series, n)
	for i := range s {
		s[i] = 5
	}
	obs, mask, err := r.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if mask[i] != timeseries.StatusMissing || obs[i] != 0 {
			t.Fatalf("slot %d: dropout listed first must win (got status %v value %g)", i, mask[i], obs[i])
		}
	}
}

func TestApplyShortSeries(t *testing.T) {
	plan := Plan{Seed: 1, Scenarios: MustParse("dropout:0.5")}
	r, err := plan.Realize(1, timeseries.SlotsPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Apply(make(timeseries.Series, 10)); err == nil {
		t.Error("series shorter than realization should error")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Scenarios: []Scenario{{Kind: Dropout, Rate: 1.5}}},
		{Scenarios: []Scenario{{Kind: Spike, Rate: -0.1}}},
		{Scenarios: []Scenario{{Kind: Kind(99), Rate: 0.1}}},
		{Scenarios: []Scenario{{Kind: Outage, Rate: 1, Duration: -1}}},
		{FromWeek: -1},
		{MeterFraction: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should fail validation", i)
		}
	}
}

func TestParse(t *testing.T) {
	scens, err := Parse("dropout:0.1+outage:0.5,24+spike:0.01,100+stuckat:1+clockslip:2,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Scenario{
		{Kind: Dropout, Rate: 0.1},
		{Kind: Outage, Rate: 0.5, Duration: 24},
		{Kind: Spike, Rate: 0.01, Magnitude: 100},
		{Kind: StuckAt, Rate: 1, Duration: timeseries.SlotsPerDay},
		{Kind: ClockSlip, Rate: 2, Duration: 8},
	}
	if len(scens) != len(want) {
		t.Fatalf("parsed %d scenarios, want %d", len(scens), len(want))
	}
	for i := range want {
		if scens[i] != want[i].withDefaults() {
			t.Errorf("scenario %d = %+v, want %+v", i, scens[i], want[i].withDefaults())
		}
	}
	for _, spec := range []string{"", "none"} {
		got, err := Parse(spec)
		if err != nil || got != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, got, err)
		}
	}
	for _, spec := range []string{"dropout", "bogus:0.1", "dropout:x", "dropout:2", "spike:0.1,a", "outage:1,2,3", "outage:1,x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should error", spec)
		}
	}
	// Round trip through String.
	plan := Plan{Scenarios: want}
	reparsed, err := Parse(plan.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", plan.String(), err)
	}
	for i := range want {
		if reparsed[i] != want[i].withDefaults() {
			t.Errorf("round-trip scenario %d = %+v, want %+v", i, reparsed[i], want[i].withDefaults())
		}
	}
	if (Plan{}).String() != "none" {
		t.Errorf("empty plan String = %q, want none", (Plan{}).String())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Dropout: "dropout", Outage: "outage", StuckAt: "stuckat", Spike: "spike", ClockSlip: "clockslip"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
