// Package fault is a seeded, deterministic fault injector for meter data.
//
// Electricity-theft detection papers (including F-DETA) evaluate on clean
// traces, but real AMI deployments lose readings to radio dropouts, battery
// failures, firmware bugs, and clock drift. The injector models the common
// failure modes of a half-hourly metering fleet as composable scenarios:
//
//   - Dropout: independent per-slot loss of readings (lossy backhaul).
//   - Outage: contiguous windows with no readings (dead meter, mains loss).
//   - StuckAt: windows where the register freezes and repeats one value
//     (latched register, firmware hang).
//   - Spike: isolated corrupt readings orders of magnitude too large
//     (bit flips, unit confusion).
//   - ClockSlip: windows reported one or more slots late, duplicating
//     earlier readings (clock drift, retransmission bugs).
//
// Faults act on the *reported* stream: the same realized fault pattern
// applies to a consumer's honest readings and to any attack.Tampered
// variant of them, so fault injection composes with the attack models.
// Dropped slots are flagged StatusMissing; stuck, spiked, and slipped
// slots keep their (wrong) values and are flagged StatusCorrupt — the
// head-end's plausibility screen is assumed to catch them, but the true
// value is gone either way.
//
// Everything is driven by splittable seeded RNG streams keyed per meter,
// so a Plan reproduces the same fault pattern for a given (seed, meter)
// pair regardless of evaluation order or parallelism.
package fault

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// Kind identifies a fault scenario family.
type Kind int

// Supported fault kinds.
const (
	// Dropout loses each slot independently with probability Rate.
	Dropout Kind = iota
	// Outage kills contiguous windows of Duration slots, with an expected
	// Rate windows per week.
	Outage
	// StuckAt freezes the register at the window's first value for
	// Duration slots, with an expected Rate windows per week.
	StuckAt
	// Spike multiplies isolated slots by Magnitude with probability Rate.
	Spike
	// ClockSlip reports windows of Duration slots one slot late (each slot
	// duplicates its predecessor), with an expected Rate windows per week.
	ClockSlip
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Dropout:
		return "dropout"
	case Outage:
		return "outage"
	case StuckAt:
		return "stuckat"
	case Spike:
		return "spike"
	case ClockSlip:
		return "clockslip"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scenario is one fault process. Scenarios compose: a Plan applies each in
// order, and the first scenario to claim a slot wins.
type Scenario struct {
	Kind Kind
	// Rate is the per-slot probability (Dropout, Spike) or the expected
	// number of fault windows per week (Outage, StuckAt, ClockSlip).
	Rate float64
	// Duration is the window length in slots for windowed kinds
	// (default timeseries.SlotsPerDay for Outage/StuckAt, 4 for ClockSlip).
	Duration int
	// Magnitude is the Spike multiplier (default 10).
	Magnitude float64
}

// withDefaults fills zero fields with the kind's defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Duration == 0 {
		switch s.Kind {
		case Outage, StuckAt:
			s.Duration = timeseries.SlotsPerDay
		case ClockSlip:
			s.Duration = 4
		}
	}
	if s.Magnitude == 0 && s.Kind == Spike {
		s.Magnitude = 10
	}
	return s
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	switch s.Kind {
	case Dropout, Outage, StuckAt, Spike, ClockSlip:
	default:
		return fmt.Errorf("fault: unknown kind %v", s.Kind)
	}
	if s.Rate < 0 {
		return fmt.Errorf("fault: %s rate %g is negative", s.Kind, s.Rate)
	}
	if (s.Kind == Dropout || s.Kind == Spike) && s.Rate > 1 {
		return fmt.Errorf("fault: %s rate %g outside [0, 1]", s.Kind, s.Rate)
	}
	if s.Duration < 0 {
		return fmt.Errorf("fault: %s duration %d is negative", s.Kind, s.Duration)
	}
	if s.Kind == Spike && s.Magnitude < 0 {
		return fmt.Errorf("fault: spike magnitude %g is negative", s.Magnitude)
	}
	return nil
}

// String renders the scenario in the CLI spec grammar (see Parse).
func (s Scenario) String() string {
	s = s.withDefaults()
	switch s.Kind {
	case Spike:
		return fmt.Sprintf("%s:%g,%g", s.Kind, s.Rate, s.Magnitude)
	case Dropout:
		return fmt.Sprintf("%s:%g", s.Kind, s.Rate)
	default:
		return fmt.Sprintf("%s:%g,%d", s.Kind, s.Rate, s.Duration)
	}
}

// Plan is a composed fault workload over a meter population.
type Plan struct {
	// Seed drives every random draw. The per-meter stream is
	// stats.SplitRand(Seed, meterID), so patterns are reproducible and
	// independent of iteration order.
	Seed int64
	// Scenarios are applied in order; the first to claim a slot wins.
	Scenarios []Scenario
	// FromWeek is the first week index (0-based) eligible for faults.
	// Evaluation sweeps set it to the training length so training data
	// stays pristine and only the monitored weeks degrade.
	FromWeek int
	// MeterFraction is the fraction of meters affected (default 1). Each
	// meter's inclusion is its stream's first draw.
	MeterFraction float64
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool { return len(p.Scenarios) > 0 }

func (p Plan) withDefaults() Plan {
	if p.MeterFraction == 0 {
		p.MeterFraction = 1
	}
	scens := make([]Scenario, len(p.Scenarios))
	for i, s := range p.Scenarios {
		scens[i] = s.withDefaults()
	}
	p.Scenarios = scens
	return p
}

// Validate checks the plan.
func (p Plan) Validate() error {
	for i, s := range p.Scenarios {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("fault: scenario %d: %w", i, err)
		}
	}
	if p.FromWeek < 0 {
		return fmt.Errorf("fault: from-week %d is negative", p.FromWeek)
	}
	if p.MeterFraction < 0 || p.MeterFraction > 1 {
		return fmt.Errorf("fault: meter fraction %g outside [0, 1]", p.MeterFraction)
	}
	return nil
}

// String renders the plan's scenarios in the CLI spec grammar.
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	out := ""
	for i, s := range p.Scenarios {
		if i > 0 {
			out += "+"
		}
		out += s.String()
	}
	return out
}

// slotAction is the realized fault at one slot.
type slotAction struct {
	kind  Kind
	param float64 // Spike multiplier
	src   int     // StuckAt/ClockSlip: slot whose value is reported instead
}

// Realization is one concrete draw of a Plan over a span of slots for a
// single meter stream. Applying the same realization to different series
// (the honest readings and a tampered variant of them) yields consistent
// fault patterns, which is what a physical meter fault would do.
type Realization struct {
	actions []slotAction
	bad     int
}

// Realize draws the fault pattern for one meter stream over n slots.
// The key is typically the meter ID; the same (plan, key, n) triple always
// yields the same realization. A meter excluded by MeterFraction gets an
// empty realization.
func (p Plan) Realize(key int64, n int) (*Realization, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("fault: negative span %d", n)
	}
	r := &Realization{actions: make([]slotAction, n)}
	for i := range r.actions {
		r.actions[i].kind = -1
	}
	rng := stats.SplitRand(p.Seed, key)
	if rng.Float64() >= p.MeterFraction {
		return r, nil // meter not selected; stream consumed deterministically
	}
	weeks := float64(n) / timeseries.SlotsPerWeek
	claim := func(i int, a slotAction) {
		if i < 0 || i >= n || r.actions[i].kind >= 0 {
			return
		}
		r.actions[i] = a
		r.bad++
	}
	for _, sc := range p.Scenarios {
		switch sc.Kind {
		case Dropout:
			for i := 0; i < n; i++ {
				if rng.Float64() < sc.Rate {
					claim(i, slotAction{kind: Dropout})
				}
			}
		case Spike:
			for i := 0; i < n; i++ {
				if rng.Float64() < sc.Rate {
					claim(i, slotAction{kind: Spike, param: sc.Magnitude})
				}
			}
		case Outage, StuckAt, ClockSlip:
			windows := poissonCount(rng, sc.Rate*weeks)
			for w := 0; w < windows; w++ {
				start := rng.Intn(n)
				for j := 0; j < sc.Duration; j++ {
					switch sc.Kind {
					case Outage:
						claim(start+j, slotAction{kind: Outage})
					case StuckAt:
						claim(start+j, slotAction{kind: StuckAt, src: start})
					case ClockSlip:
						src := start + j - 1
						if src < 0 {
							src = 0
						}
						claim(start+j, slotAction{kind: ClockSlip, src: src})
					}
				}
			}
		}
	}
	return r, nil
}

// poissonCount draws a Poisson(mean) count by inversion; fault window
// counts are tiny, so the linear search is fine.
func poissonCount(rng interface{ Float64() float64 }, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's product method: count multiplications until the product of
	// uniforms drops below e^-mean.
	limit := math.Exp(-mean)
	k := 0
	prod := rng.Float64()
	for prod > limit {
		k++
		prod *= rng.Float64()
	}
	return k
}

// Bad returns how many slots the realization faults.
func (r *Realization) Bad() int { return r.bad }

// Len returns the realized span length in slots.
func (r *Realization) Len() int { return len(r.actions) }

// Apply overlays the realized faults on a reported series, returning the
// observed series and its quality mask. The input is not modified. The
// series must be at least as long as the realization; faults land on its
// trailing r.Len() slots (so a realization drawn for the monitored span
// applies cleanly to a full history whose head is the pristine training
// prefix).
func (r *Realization) Apply(s timeseries.Series) (timeseries.Series, timeseries.Mask, error) {
	if len(s) < len(r.actions) {
		return nil, nil, fmt.Errorf("fault: series has %d slots, realization needs >= %d", len(s), len(r.actions))
	}
	out := s.Clone()
	mask := timeseries.NewMask(len(s))
	off := len(s) - len(r.actions)
	for i, a := range r.actions {
		j := off + i
		switch a.kind {
		case Dropout, Outage:
			out[j] = 0
			mask[j] = timeseries.StatusMissing
		case Spike:
			out[j] = s[j] * a.param
			mask[j] = timeseries.StatusCorrupt
		case StuckAt, ClockSlip:
			out[j] = s[off+a.src]
			mask[j] = timeseries.StatusCorrupt
		}
	}
	return out, mask, nil
}

// Overlay composes an observed fault pattern with a tampered week: faults
// act on the meter's *reported* stream, so whatever the attacker programmed
// the meter to say is lost where the channel dropped (Missing reads 0) and
// overridden where the hardware misbehaved (Corrupt slots deliver the
// observed faulted value — a stuck register reports its frozen value no
// matter what firmware tampering intended). Trusted slots keep the
// tampered value. The inputs are not modified.
func Overlay(tampered, observed timeseries.Series, mask timeseries.Mask) (timeseries.Series, error) {
	if len(mask) == 0 || mask.AllOK() {
		return tampered, nil
	}
	if len(tampered) != len(observed) || len(tampered) != len(mask) {
		return nil, fmt.Errorf("fault: overlay lengths disagree: tampered %d, observed %d, mask %d",
			len(tampered), len(observed), len(mask))
	}
	out := tampered.Clone()
	for i, st := range mask {
		switch st {
		case timeseries.StatusMissing:
			out[i] = 0
		case timeseries.StatusCorrupt:
			out[i] = observed[i]
		}
	}
	return out, nil
}

// Inject applies the plan to every consumer of a dataset in place:
// Demand becomes the observed (faulted) readings and Quality records the
// per-slot status. Weeks before FromWeek stay pristine. Injection is
// deterministic per (Seed, consumer ID) and independent of consumer order.
func (p Plan) Inject(ds *dataset.Dataset) error {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return err
	}
	if !p.Enabled() {
		return nil
	}
	for i := range ds.Consumers {
		c := &ds.Consumers[i]
		span := len(c.Demand) - p.FromWeek*timeseries.SlotsPerWeek
		if span <= 0 {
			continue
		}
		r, err := p.Realize(int64(c.ID), span)
		if err != nil {
			return fmt.Errorf("fault: consumer %d: %w", c.ID, err)
		}
		if r.Bad() == 0 {
			continue
		}
		obs, mask, err := r.Apply(c.Demand)
		if err != nil {
			return fmt.Errorf("fault: consumer %d: %w", c.ID, err)
		}
		c.Demand = obs
		c.Quality = mask
	}
	return nil
}
