package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds the scenario list from a CLI spec. The grammar composes
// scenarios with "+":
//
//	dropout:RATE              per-slot loss probability
//	outage:RATE[,DURATION]    expected windows/week, window length in slots
//	stuckat:RATE[,DURATION]   expected windows/week, window length in slots
//	spike:RATE[,MAGNITUDE]    per-slot probability, multiplier
//	clockslip:RATE[,DURATION] expected windows/week, window length in slots
//
// e.g. "dropout:0.1+spike:0.01,20". "none" or "" parses to no scenarios.
func Parse(spec string) ([]Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var out []Scenario
	for _, part := range strings.Split(spec, "+") {
		sc, err := parseOne(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// MustParse is Parse for tests and compiled-in specs; it panics on error.
func MustParse(spec string) []Scenario {
	out, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return out
}

func parseOne(part string) (Scenario, error) {
	name, argstr, ok := strings.Cut(part, ":")
	if !ok {
		return Scenario{}, fmt.Errorf("fault: spec %q missing ':RATE' (want e.g. dropout:0.1)", part)
	}
	var sc Scenario
	switch name {
	case "dropout":
		sc.Kind = Dropout
	case "outage":
		sc.Kind = Outage
	case "stuckat":
		sc.Kind = StuckAt
	case "spike":
		sc.Kind = Spike
	case "clockslip":
		sc.Kind = ClockSlip
	default:
		return Scenario{}, fmt.Errorf("fault: unknown scenario %q (want dropout, outage, stuckat, spike, or clockslip)", name)
	}
	args := strings.Split(argstr, ",")
	if len(args) > 2 {
		return Scenario{}, fmt.Errorf("fault: %s takes at most 2 arguments, got %q", name, argstr)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(args[0]), 64)
	if err != nil {
		return Scenario{}, fmt.Errorf("fault: %s rate %q: %v", name, args[0], err)
	}
	sc.Rate = rate
	if len(args) == 2 {
		arg := strings.TrimSpace(args[1])
		if sc.Kind == Spike {
			mag, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Scenario{}, fmt.Errorf("fault: spike magnitude %q: %v", arg, err)
			}
			sc.Magnitude = mag
		} else {
			dur, err := strconv.Atoi(arg)
			if err != nil {
				return Scenario{}, fmt.Errorf("fault: %s duration %q: %v", name, arg, err)
			}
			sc.Duration = dur
		}
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
