package ami

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/meter"
	"repro/internal/timeseries"
)

func TestEnvelopeValidate(t *testing.T) {
	valid := []*Envelope{
		{Type: TypeHello, Hello: &HelloMsg{MeterID: "m1"}},
		{Type: TypeReading, Reading: &ReadingMsg{MeterID: "m1", Slot: 0, KW: 1}},
		{Type: TypeAck, Ack: &AckMsg{Slot: 3}},
		{Type: TypeError, Error: "boom"},
	}
	for i, e := range valid {
		if err := e.Validate(); err != nil {
			t.Errorf("valid envelope %d rejected: %v", i, err)
		}
	}
	invalid := []*Envelope{
		{Type: TypeHello},
		{Type: TypeHello, Hello: &HelloMsg{}},
		{Type: TypeReading},
		{Type: TypeReading, Reading: &ReadingMsg{Slot: 0}},
		{Type: TypeReading, Reading: &ReadingMsg{MeterID: "m", Slot: -1}},
		{Type: TypeReading, Reading: &ReadingMsg{MeterID: "m", KW: -1}},
		{Type: TypeAck},
		{Type: TypeError},
		{Type: "bogus"},
	}
	for i, e := range invalid {
		if err := e.Validate(); err == nil {
			t.Errorf("invalid envelope %d accepted", i)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	in := &Envelope{Type: TypeReading, Reading: &ReadingMsg{MeterID: "m1", Slot: 42, KW: 1.5}}
	if err := c.Send(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if out.Reading.MeterID != "m1" || out.Reading.Slot != 42 || out.Reading.KW != 1.5 {
		t.Errorf("round trip lost data: %+v", out.Reading)
	}
	// Send validates before writing.
	if err := c.Send(&Envelope{Type: "bogus"}); err == nil {
		t.Error("invalid envelope should not send")
	}
	// Recv validates after reading.
	var buf2 bytes.Buffer
	buf2.WriteString(`{"type":"bogus"}` + "\n")
	c2 := NewCodec(&buf2)
	if _, err := c2.Recv(); err == nil {
		t.Error("invalid inbound envelope should be rejected")
	}
	// Malformed JSON.
	var buf3 bytes.Buffer
	buf3.WriteString("not json\n")
	if _, err := NewCodec(&buf3).Recv(); err == nil {
		t.Error("malformed JSON should error")
	}
}

func TestReadingMsgToReading(t *testing.T) {
	m := &ReadingMsg{MeterID: "m1", Slot: 7, KW: 2.5}
	id, slot, kw := m.ToReading()
	if id != "m1" || slot != 7 || kw != 2.5 {
		t.Error("conversion wrong")
	}
}

func startHeadEnd(t *testing.T) (*HeadEnd, string) {
	t.Helper()
	h := New()
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h, addr
}

func TestHeadEndCollectsReadings(t *testing.T) {
	h, addr := startHeadEnd(t)
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	for slot := 0; slot < 5; slot++ {
		r := meter.Reading{MeterID: "m1", Slot: timeseries.Slot(slot), KW: float64(slot) + 0.5}
		if err := c.Send(r); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	if got := h.Count("m1"); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	v, ok := h.Reading("m1", 3)
	if !ok || v != 3.5 {
		t.Errorf("Reading(3) = %g,%v", v, ok)
	}
	s, err := h.Series("m1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if s[4] != 4.5 {
		t.Errorf("series[4] = %g", s[4])
	}
	meters := h.Meters()
	if len(meters) != 1 || meters[0] != "m1" {
		t.Errorf("Meters = %v", meters)
	}
}

func TestHeadEndSeriesGapDetection(t *testing.T) {
	h, addr := startHeadEnd(t)
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Send slots 0 and 2 only.
	_ = c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1})
	_ = c.Send(meter.Reading{MeterID: "m1", Slot: 2, KW: 1})
	if _, err := h.Series("m1", 3); err == nil {
		t.Error("gap at slot 1 must be an error, not silent zero")
	}
	if _, err := h.Series("nope", 1); err == nil {
		t.Error("unknown meter should error")
	}
}

func TestClientValidation(t *testing.T) {
	_, addr := startHeadEnd(t)
	if _, err := Dial(addr, "", time.Second); err == nil {
		t.Error("empty meter ID should error")
	}
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Mismatched meter ID rejected client-side.
	if err := c.Send(meter.Reading{MeterID: "other", Slot: 0, KW: 1}); err == nil {
		t.Error("mismatched meter ID should error")
	}
	// Dial failure.
	if _, err := Dial("127.0.0.1:1", "m1", 100*time.Millisecond); err == nil {
		t.Error("dialing a dead port should error")
	}
}

func TestClientSendAll(t *testing.T) {
	h, addr := startHeadEnd(t)
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	rs := make([]meter.Reading, 10)
	for i := range rs {
		rs[i] = meter.Reading{MeterID: "m1", Slot: timeseries.Slot(i), KW: 1}
	}
	if err := c.SendAll(rs); err != nil {
		t.Fatal(err)
	}
	if h.Count("m1") != 10 {
		t.Errorf("Count = %d", h.Count("m1"))
	}
}

func TestMITMRewritesReadings(t *testing.T) {
	h, upstream := startHeadEnd(t)
	// The classic Class 2A rewrite: halve every reported reading.
	mitm := NewMITM(upstream, func(r ReadingMsg) ReadingMsg {
		r.KW /= 2
		return r
	})
	proxyAddr, err := mitm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mitm.Close() }()

	c, err := Dial(proxyAddr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// The meter reports honestly; the wire lies.
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 4}); err != nil {
		t.Fatal(err)
	}
	v, ok := h.Reading("m1", 0)
	if !ok || v != 2 {
		t.Errorf("head-end stored %g, want rewritten 2", v)
	}
	seen, rewritten := mitm.Stats()
	if seen != 1 || rewritten != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", seen, rewritten)
	}
}

func TestMITMPassThrough(t *testing.T) {
	h, upstream := startHeadEnd(t)
	mitm := NewMITM(upstream, nil)
	proxyAddr, err := mitm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mitm.Close() }()
	c, err := Dial(proxyAddr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 4}); err != nil {
		t.Fatal(err)
	}
	v, _ := h.Reading("m1", 0)
	if v != 4 {
		t.Errorf("pass-through stored %g, want 4", v)
	}
}

func TestHeadEndRejectsProtocolViolations(t *testing.T) {
	_, addr := startHeadEnd(t)
	// Reading before hello.
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Dial sent hello for "m1"; sending a reading claiming another meter is
	// rejected server-side.
	raw := &Envelope{Type: TypeReading, Reading: &ReadingMsg{MeterID: "evil", Slot: 0, KW: 1}}
	if err := c.codec.Send(raw); err != nil {
		t.Fatal(err)
	}
	resp, err := c.codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeError || resp.Code != CodeSessionMismatch {
		t.Errorf("expected session-mismatch error, got %+v", resp)
	}
}

func TestMultipleMetersConcurrent(t *testing.T) {
	h, addr := startHeadEnd(t)
	const meters = 8
	const readings = 20
	errc := make(chan error, meters)
	for i := 0; i < meters; i++ {
		id := string(rune('a' + i))
		go func(id string) {
			c, err := Dial(addr, id, time.Second)
			if err != nil {
				errc <- err
				return
			}
			defer func() { _ = c.Close() }()
			for s := 0; s < readings; s++ {
				if err := c.Send(meter.Reading{MeterID: id, Slot: timeseries.Slot(s), KW: 1}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(id)
	}
	for i := 0; i < meters; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.Meters()); got != meters {
		t.Errorf("Meters = %d, want %d", got, meters)
	}
	for _, id := range h.Meters() {
		if h.Count(id) != readings {
			t.Errorf("meter %s count = %d, want %d", id, h.Count(id), readings)
		}
	}
}

func TestHeadEndCloseIdempotentOrdering(t *testing.T) {
	h := New()
	if _, err := h.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Listen after close is rejected.
	if _, err := h.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close should error")
	}
}
