package ami

import (
	"fmt"
	"net"
	"time"

	"repro/internal/meter"
)

// Client is a meter-side connection to the head-end.
type Client struct {
	conn     net.Conn
	codec    *Codec
	meterID  string
	timeout  time.Duration
	key      []byte // optional HMAC signing key
	version  int    // negotiated wire version
	maxBatch int    // head-end's advertised per-frame cap (v2 only)
}

// Dial connects to the head-end and performs the hello handshake.
func Dial(addr, meterID string, timeout time.Duration) (*Client, error) {
	return DialAuth(addr, meterID, nil, timeout)
}

// DialAuth is Dial with a per-meter HMAC key: every reading sent is signed
// so a man-in-the-middle cannot rewrite it undetected. An attacker who
// compromises the meter itself obtains the key, which is exactly why the
// paper insists crypto alone cannot stop theft (Section I).
func DialAuth(addr, meterID string, key []byte, timeout time.Duration) (*Client, error) {
	return dialVersion(addr, meterID, key, timeout, WireV1)
}

// DialBatch is DialAuth speaking wire v2: the hello advertises version 2
// and the head-end answers with its negotiated version and per-frame batch
// cap, unlocking SendBatch and Bind. Requires a v2 head-end — against a v1
// server the handshake times out (a v1 head-end never answers hello), so
// the caller can fall back to DialAuth.
func DialBatch(addr, meterID string, key []byte, timeout time.Duration) (*Client, error) {
	return dialVersion(addr, meterID, key, timeout, WireV2)
}

func dialVersion(addr, meterID string, key []byte, timeout time.Duration, ver int) (*Client, error) {
	if meterID == "" {
		return nil, fmt.Errorf("ami: meter ID is required")
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ami: dialing head-end: %w", err)
	}
	c := &Client{
		conn:    conn,
		codec:   NewCodec(conn),
		meterID: meterID,
		timeout: timeout,
		key:     append([]byte(nil), key...),
		version: WireV1,
	}
	// The handshake runs under the same deadline as the dial: a stalled
	// head-end (full TCP buffers, frozen process) must not block the caller
	// forever on the hello write.
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ami: setting handshake deadline: %w", err)
	}
	hello := &HelloMsg{MeterID: meterID}
	if ver >= WireV2 {
		hello.Version = WireV2
		hello.MaxBatch = DefaultMaxBatch
	}
	if err := c.codec.Send(&Envelope{Type: TypeHello, Hello: hello}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ami: sending hello: %w", err)
	}
	if ver >= WireV2 {
		if err := c.awaitHello(); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	// Disarm until the next Send re-arms per operation, so a deliberately
	// idle client connection does not expire on its own clock.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ami: clearing handshake deadline: %w", err)
	}
	return c, nil
}

// awaitHello reads the head-end's hello response (v2 handshake and Bind)
// and records the negotiated version and batch cap.
func (c *Client) awaitHello() error {
	resp, err := c.codec.Recv()
	if err != nil {
		return fmt.Errorf("ami: waiting for hello response: %w", err)
	}
	switch resp.Type {
	case TypeHello:
		c.version = resp.Hello.Version
		if c.version < WireV1 {
			c.version = WireV1
		}
		c.maxBatch = resp.Hello.MaxBatch
		if c.maxBatch <= 0 {
			c.maxBatch = 1
		}
		return nil
	case TypeError:
		return &ProtocolError{Code: resp.Code, Message: resp.Error}
	default:
		return fmt.Errorf("ami: unexpected hello response type %q", resp.Type)
	}
}

// Version returns the negotiated wire version (WireV1 for Dial/DialAuth
// sessions, the head-end's answer for DialBatch sessions).
func (c *Client) Version() int { return c.version }

// MaxBatch returns the head-end's advertised readings-per-frame cap, or 0
// on a v1 session.
func (c *Client) MaxBatch() int { return c.maxBatch }

// Bind re-runs the hello handshake mid-session, switching the connection
// to a different meter ID (v2 only). This is what lets one TCP connection
// multiplex a fleet of simulated meters: a load harness worker binds,
// sends a batch, and rebinds without paying a dial per meter.
func (c *Client) Bind(meterID string) error {
	if c.version < WireV2 {
		return fmt.Errorf("ami: rebinding requires wire v2 (negotiated v%d)", c.version)
	}
	if meterID == "" {
		return fmt.Errorf("ami: meter ID is required")
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return fmt.Errorf("ami: setting deadline: %w", err)
	}
	err := c.codec.Send(&Envelope{Type: TypeHello, Hello: &HelloMsg{
		MeterID: meterID, Version: WireV2, MaxBatch: DefaultMaxBatch,
	}})
	if err != nil {
		return err
	}
	if err := c.awaitHello(); err != nil {
		return err
	}
	c.meterID = meterID
	return nil
}

// Send reports one reading and waits for the acknowledgement.
func (c *Client) Send(r meter.Reading) error {
	if r.MeterID != c.meterID {
		return fmt.Errorf("ami: reading meter ID %q does not match client %q", r.MeterID, c.meterID)
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return fmt.Errorf("ami: setting deadline: %w", err)
	}
	env := &Envelope{Type: TypeReading, Reading: &ReadingMsg{
		MeterID: r.MeterID,
		Slot:    int64(r.Slot),
		KW:      r.KW,
	}}
	if len(c.key) > 0 {
		env.Auth = SignReading(c.key, env.Reading)
	}
	if err := c.codec.Send(env); err != nil {
		return err
	}
	resp, err := c.codec.Recv()
	if err != nil {
		return fmt.Errorf("ami: waiting for ack: %w", err)
	}
	switch resp.Type {
	case TypeAck:
		if resp.Ack.Slot != int64(r.Slot) {
			return fmt.Errorf("ami: ack for slot %d, expected %d", resp.Ack.Slot, r.Slot)
		}
		return nil
	case TypeError:
		perr := &ProtocolError{Code: resp.Code, Message: resp.Error}
		if resp.Code == CodeAuth {
			perr.cause = &AuthError{MeterID: r.MeterID, Slot: int64(r.Slot)}
		}
		return perr
	default:
		return fmt.Errorf("ami: unexpected response type %q", resp.Type)
	}
}

// SendAll reports a batch of readings in order, stopping at the first error.
func (c *Client) SendAll(rs []meter.Reading) error {
	for i := range rs {
		if err := c.Send(rs[i]); err != nil {
			return fmt.Errorf("ami: reading %d: %w", i, err)
		}
	}
	return nil
}

// SendBatch reports readings in v2 batch frames, chunked to the head-end's
// negotiated per-frame cap, waiting for the batch acknowledgement after
// each frame. One frame carries up to MaxBatch readings — one syscall and
// one ack round-trip where SendAll pays one per reading.
func (c *Client) SendBatch(rs []meter.Reading) error {
	if c.version < WireV2 {
		return fmt.Errorf("ami: batch send requires wire v2 (negotiated v%d); use SendAll", c.version)
	}
	for len(rs) > 0 {
		n := len(rs)
		if n > c.maxBatch {
			n = c.maxBatch
		}
		if err := c.sendBatchFrame(rs[:n]); err != nil {
			return err
		}
		rs = rs[n:]
	}
	return nil
}

// sendBatchFrame sends one batch frame (len(rs) <= maxBatch) and waits for
// its acknowledgement.
func (c *Client) sendBatchFrame(rs []meter.Reading) error {
	b := &BatchMsg{MeterID: c.meterID, Readings: make([]BatchReading, len(rs))}
	for i, r := range rs {
		if r.MeterID != c.meterID {
			return fmt.Errorf("ami: reading meter ID %q does not match client %q", r.MeterID, c.meterID)
		}
		b.Readings[i] = BatchReading{Slot: int64(r.Slot), KW: r.KW}
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return fmt.Errorf("ami: setting deadline: %w", err)
	}
	env := &Envelope{Type: TypeBatch, Batch: b}
	if len(c.key) > 0 {
		env.Auth = SignBatch(c.key, b)
	}
	if err := c.codec.Send(env); err != nil {
		return err
	}
	resp, err := c.codec.Recv()
	if err != nil {
		return fmt.Errorf("ami: waiting for batch ack: %w", err)
	}
	switch resp.Type {
	case TypeBatchAck:
		if resp.BatchAck.Count != len(b.Readings) {
			return fmt.Errorf("ami: batch ack covers %d readings, expected %d",
				resp.BatchAck.Count, len(b.Readings))
		}
		if last := b.Readings[len(b.Readings)-1].Slot; resp.BatchAck.LastSlot != last {
			return fmt.Errorf("ami: batch ack for slot %d, expected %d", resp.BatchAck.LastSlot, last)
		}
		return nil
	case TypeError:
		perr := &ProtocolError{Code: resp.Code, Message: resp.Error}
		if resp.Code == CodeAuth {
			perr.cause = &AuthError{MeterID: b.MeterID, Slot: b.Readings[0].Slot}
		}
		return perr
	default:
		return fmt.Errorf("ami: unexpected response type %q", resp.Type)
	}
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
