package ami

import (
	"fmt"
	"net"
	"time"

	"repro/internal/meter"
)

// Client is a meter-side connection to the head-end.
type Client struct {
	conn    net.Conn
	codec   *Codec
	meterID string
	timeout time.Duration
	key     []byte // optional HMAC signing key
}

// Dial connects to the head-end and performs the hello handshake.
func Dial(addr, meterID string, timeout time.Duration) (*Client, error) {
	return DialAuth(addr, meterID, nil, timeout)
}

// DialAuth is Dial with a per-meter HMAC key: every reading sent is signed
// so a man-in-the-middle cannot rewrite it undetected. An attacker who
// compromises the meter itself obtains the key, which is exactly why the
// paper insists crypto alone cannot stop theft (Section I).
func DialAuth(addr, meterID string, key []byte, timeout time.Duration) (*Client, error) {
	if meterID == "" {
		return nil, fmt.Errorf("ami: meter ID is required")
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ami: dialing head-end: %w", err)
	}
	c := &Client{
		conn:    conn,
		codec:   NewCodec(conn),
		meterID: meterID,
		timeout: timeout,
		key:     append([]byte(nil), key...),
	}
	// The handshake runs under the same deadline as the dial: a stalled
	// head-end (full TCP buffers, frozen process) must not block the caller
	// forever on the hello write.
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ami: setting handshake deadline: %w", err)
	}
	if err := c.codec.Send(&Envelope{Type: TypeHello, Hello: &HelloMsg{MeterID: meterID}}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ami: sending hello: %w", err)
	}
	// Disarm until the next Send re-arms per operation, so a deliberately
	// idle client connection does not expire on its own clock.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("ami: clearing handshake deadline: %w", err)
	}
	return c, nil
}

// Send reports one reading and waits for the acknowledgement.
func (c *Client) Send(r meter.Reading) error {
	if r.MeterID != c.meterID {
		return fmt.Errorf("ami: reading meter ID %q does not match client %q", r.MeterID, c.meterID)
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return fmt.Errorf("ami: setting deadline: %w", err)
	}
	env := &Envelope{Type: TypeReading, Reading: &ReadingMsg{
		MeterID: r.MeterID,
		Slot:    int64(r.Slot),
		KW:      r.KW,
	}}
	if len(c.key) > 0 {
		env.Auth = SignReading(c.key, env.Reading)
	}
	if err := c.codec.Send(env); err != nil {
		return err
	}
	resp, err := c.codec.Recv()
	if err != nil {
		return fmt.Errorf("ami: waiting for ack: %w", err)
	}
	switch resp.Type {
	case TypeAck:
		if resp.Ack.Slot != int64(r.Slot) {
			return fmt.Errorf("ami: ack for slot %d, expected %d", resp.Ack.Slot, r.Slot)
		}
		return nil
	case TypeError:
		perr := &ProtocolError{Code: resp.Code, Message: resp.Error}
		if resp.Code == CodeAuth {
			perr.cause = &AuthError{MeterID: r.MeterID, Slot: int64(r.Slot)}
		}
		return perr
	default:
		return fmt.Errorf("ami: unexpected response type %q", resp.Type)
	}
}

// SendAll reports a batch of readings in order, stopping at the first error.
func (c *Client) SendAll(rs []meter.Reading) error {
	for i := range rs {
		if err := c.Send(rs[i]); err != nil {
			return fmt.Errorf("ami: reading %d: %w", i, err)
		}
	}
	return nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
