package ami

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"time"
)

// ingestStore is the storage behind a meter session. HeadEnd implements it
// with a synchronous mutex-guarded map write; ShardedHeadEnd routes each
// store to the owning shard's async ingest queue so the session goroutine
// never blocks on the readings map.
// A store error means the reading could NOT be made durable: the session
// answers with a transient CodeStorage rejection (never an ack) so the
// meter retries.
type ingestStore interface {
	storeReading(r *ReadingMsg) error
	storeBatch(b *BatchMsg) error
}

// sessionEnv bundles everything a per-connection session handler needs.
// One env is shared by all sessions of a head-end; it is read-only after
// construction.
type sessionEnv struct {
	cfg   *HeadEndConfig
	met   *headEndMetrics
	kr    *Keyring
	store ingestStore
	log   *slog.Logger
	done  <-chan struct{} // closed when the head-end starts shutting down
}

// shuttingDown reports whether Close has begun.
func (e *sessionEnv) shuttingDown() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// recv arms the idle read deadline and reads one envelope.
func (e *sessionEnv) recv(conn net.Conn, codec *Codec) (*Envelope, error) {
	_ = conn.SetReadDeadline(time.Now().Add(e.cfg.IdleTimeout))
	return codec.Recv()
}

// serve runs one meter connection until EOF, protocol error, idle timeout,
// or shutdown. It is the single protocol state machine behind both the
// plain and the sharded head-end:
//
//	hello (v1: no response; v2: hello response with negotiated version and
//	batch cap), then readings (v1/v2) and batches (v2 only), each
//	acknowledged. A v2 session may send another hello mid-stream to rebind
//	to a different meter, so one connection can serve a whole fleet.
func (e *sessionEnv) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	codec := NewCodecLimit(conn, e.cfg.MaxFrameSize)

	// First envelope must be a hello.
	first, err := e.recv(conn, codec)
	if err != nil {
		if errors.Is(err, io.EOF) || e.shuttingDown() {
			return
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			e.met.idleTimeouts.Inc()
			return
		}
		// A malformed, oversized, or truncated hello is a wire-level fault;
		// answer with the typed classification so the peer learns why.
		e.met.codecErrors.Inc()
		_ = codec.Send(errorEnvelope(err))
		return
	}
	if first.Type != TypeHello {
		_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol, Error: "expected hello"})
		return
	}
	meterID := first.Hello.MeterID
	version := WireV1
	if first.Hello.Version >= WireV2 {
		// Negotiate down to the highest version both ends speak. The reply
		// advertises the head-end's batch cap; v1 meters sent no version and
		// get no reply, byte-identical to the pre-versioning protocol.
		version = WireV2
		err := codec.Send(&Envelope{Type: TypeHello, Hello: &HelloMsg{
			MeterID: meterID, Version: WireV2, MaxBatch: e.cfg.MaxBatch,
		}})
		if err != nil {
			return
		}
	}

	for {
		// Drain semantics: finish the in-flight request/ack cycle, then
		// bow out between readings once shutdown has begun.
		if e.shuttingDown() {
			e.met.connsDrained.Inc()
			_ = codec.Send(&Envelope{Type: TypeError, Code: CodeShuttingDown, Error: "head-end shutting down"})
			return
		}
		env, err := e.recv(conn, codec)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			if e.shuttingDown() {
				// Force-closed (or cut mid-read) during drain; nothing to say.
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				e.met.idleTimeouts.Inc()
				e.log.Debug("session idle timeout", "meter", meterID)
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeIdleTimeout, Error: "idle timeout"})
				return
			}
			// Anything else out of Recv is a wire-level fault: a malformed,
			// oversized, or truncated frame (oversized frames carry
			// CodeOversized on the way back).
			e.met.codecErrors.Inc()
			e.met.rejected.Inc()
			_ = codec.Send(errorEnvelope(err))
			return
		}

		switch env.Type {
		case TypeHello:
			if version < WireV2 {
				e.met.rejected.Inc()
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol, Error: "expected reading"})
				return
			}
			// v2 rebind: the session switches to another meter. Replied like
			// the opening hello so the client can confirm the switch.
			meterID = env.Hello.MeterID
			err := codec.Send(&Envelope{Type: TypeHello, Hello: &HelloMsg{
				MeterID: meterID, Version: WireV2, MaxBatch: e.cfg.MaxBatch,
			}})
			if err != nil {
				return
			}

		case TypeReading:
			start := time.Now()
			if env.Reading.MeterID != meterID {
				e.met.rejected.Inc()
				mismatch := fmt.Errorf("%w: reading claims %q, session is %q", ErrSessionMismatch, env.Reading.MeterID, meterID)
				_ = codec.Send(errorEnvelope(mismatch))
				return
			}
			if e.kr != nil {
				if err := e.kr.VerifyEnvelope(env); err != nil {
					e.met.authFailed.Inc()
					e.log.Warn("reading failed MAC verification", "meter", meterID)
					_ = codec.Send(&Envelope{Type: TypeError, Code: CodeAuth, Error: err.Error()})
					return
				}
			}
			if err := e.store.storeReading(env.Reading); err != nil {
				e.met.rejected.Inc()
				e.log.Error("reading could not be made durable", "meter", meterID, "err", err)
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeStorage, Error: err.Error()})
				return
			}
			// Ingest latency covers receipt through storage, observed on
			// exactly the accepted path: rejected readings never reach it,
			// and a failed or stalled ack write cannot pollute the
			// distribution with transport noise.
			e.met.ingestLatency.Observe(time.Since(start).Seconds())
			if err := codec.Send(&Envelope{Type: TypeAck, Ack: &AckMsg{Slot: env.Reading.Slot}}); err != nil {
				return
			}

		case TypeBatch:
			start := time.Now()
			if version < WireV2 {
				e.met.rejected.Inc()
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol, Error: "batch frames require a v2 session"})
				return
			}
			if n := len(env.Batch.Readings); n > e.cfg.MaxBatch {
				e.met.rejected.Inc()
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol,
					Error: fmt.Sprintf("batch of %d readings exceeds the advertised cap %d", n, e.cfg.MaxBatch)})
				return
			}
			if env.Batch.MeterID != meterID {
				e.met.rejected.Inc()
				mismatch := fmt.Errorf("%w: batch claims %q, session is %q", ErrSessionMismatch, env.Batch.MeterID, meterID)
				_ = codec.Send(errorEnvelope(mismatch))
				return
			}
			if e.kr != nil {
				if err := e.kr.VerifyEnvelope(env); err != nil {
					e.met.authFailed.Inc()
					e.log.Warn("batch failed MAC verification", "meter", meterID)
					_ = codec.Send(&Envelope{Type: TypeError, Code: CodeAuth, Error: err.Error()})
					return
				}
			}
			if err := e.store.storeBatch(env.Batch); err != nil {
				e.met.rejected.Inc()
				e.log.Error("batch could not be made durable", "meter", meterID, "err", err)
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeStorage, Error: err.Error()})
				return
			}
			e.met.batchFrames.Inc()
			e.met.batchSize.Observe(float64(len(env.Batch.Readings)))
			e.met.ingestLatency.Observe(time.Since(start).Seconds())
			last := env.Batch.Readings[len(env.Batch.Readings)-1].Slot
			err := codec.Send(&Envelope{Type: TypeBatchAck, BatchAck: &BatchAckMsg{
				Count: len(env.Batch.Readings), LastSlot: last,
			}})
			if err != nil {
				return
			}

		default:
			e.met.rejected.Inc()
			_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol, Error: "expected reading"})
			return
		}
	}
}

// rejectBusyConn turns away a connection accepted past the limit: it
// consumes the hello, answers with a CodeBusy error, then drains until the
// meter hangs up or the grace period ends. The drain matters — closing
// with the meter's next frame unread would trigger a TCP reset that can
// destroy the error envelope before the meter reads it.
func rejectBusyConn(conn net.Conn, idleTimeout time.Duration, maxFrame int) {
	defer func() { _ = conn.Close() }()
	grace := idleTimeout
	if grace > 5*time.Second {
		grace = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(grace))
	codec := NewCodecLimit(conn, maxFrame)
	_, _ = codec.Recv()
	if err := codec.Send(&Envelope{Type: TypeError, Code: CodeBusy, Error: "head-end at connection limit"}); err != nil {
		return
	}
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}
