package ami

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// RewriteFunc intercepts a reading in flight and returns the (possibly
// falsified) reading to forward. Returning the input unchanged passes the
// reading through.
type RewriteFunc func(ReadingMsg) ReadingMsg

// MITM is a man-in-the-middle proxy between meters and the head-end. It
// decodes the wire protocol, applies a rewrite function to readings, and
// forwards everything else untouched — the concrete mechanism behind every
// "compromised communication link" attack in the paper. Acks flow back to
// the meter for the *original* slot, so the victim meter observes a
// perfectly healthy session.
type MITM struct {
	upstream string
	rewrite  RewriteFunc

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	nSeen  int
	nRewr  int

	wg sync.WaitGroup
}

// NewMITM creates a proxy that forwards to the given upstream head-end
// address, rewriting readings with rw (nil passes everything through).
func NewMITM(upstream string, rw RewriteFunc) *MITM {
	return &MITM{upstream: upstream, rewrite: rw}
}

// Listen starts the proxy and returns its bound address.
func (m *MITM) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ami: mitm listen: %w", err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("ami: mitm already closed")
	}
	m.ln = ln
	m.mu.Unlock()

	m.wg.Add(1)
	go m.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (m *MITM) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handle(conn)
		}()
	}
}

func (m *MITM) handle(down net.Conn) {
	defer func() { _ = down.Close() }()
	up, err := net.Dial("tcp", m.upstream)
	if err != nil {
		return
	}
	defer func() { _ = up.Close() }()

	downCodec := NewCodec(down)
	upCodec := NewCodec(up)

	// Downstream -> upstream with rewriting; responses relayed inline (the
	// protocol is strictly request/response after the hello).
	for {
		env, err := downCodec.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			return
		}
		if env.Type == TypeReading && m.rewrite != nil {
			orig := *env.Reading
			rewritten := m.rewrite(orig)
			m.mu.Lock()
			m.nSeen++
			if rewritten != orig {
				m.nRewr++
			}
			m.mu.Unlock()
			env.Reading = &rewritten
		} else if env.Type == TypeReading {
			m.mu.Lock()
			m.nSeen++
			m.mu.Unlock()
		}
		if err := upCodec.Send(env); err != nil {
			return
		}
		if env.Type == TypeHello {
			continue // hello has no response
		}
		resp, err := upCodec.Recv()
		if err != nil {
			return
		}
		if err := downCodec.Send(resp); err != nil {
			return
		}
	}
}

// Stats returns how many readings passed through and how many were
// rewritten.
func (m *MITM) Stats() (seen, rewritten int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nSeen, m.nRewr
}

// Close stops the proxy and waits for active sessions to finish.
func (m *MITM) Close() error {
	m.mu.Lock()
	m.closed = true
	ln := m.ln
	m.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	m.wg.Wait()
	return err
}
