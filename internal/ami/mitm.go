package ami

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// RewriteFunc intercepts a reading in flight and returns the (possibly
// falsified) reading to forward. Returning the input unchanged passes the
// reading through.
type RewriteFunc func(ReadingMsg) ReadingMsg

// MITMConfig bounds the proxy's connection lifecycle. The zero value
// selects the same defaults as the head-end.
type MITMConfig struct {
	// IdleTimeout is the per-read deadline on both legs (0 = DefaultIdleTimeout).
	IdleTimeout time.Duration
	// DrainTimeout is the Close grace period (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
}

func (c *MITMConfig) applyDefaults() {
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
}

// MITM is a man-in-the-middle proxy between meters and the head-end. It
// decodes the wire protocol, applies a rewrite function to readings, and
// forwards everything else untouched — the concrete mechanism behind every
// "compromised communication link" attack in the paper. Acks flow back to
// the meter for the *original* slot, so the victim meter observes a
// perfectly healthy session. Like the head-end it registers every live
// connection so Close force-closes stragglers after the drain timeout.
type MITM struct {
	upstream string
	rewrite  RewriteFunc
	cfg      MITMConfig

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	nSeen  int
	nRewr  int
	conns  map[net.Conn]struct{}

	done chan struct{}
	wg   sync.WaitGroup
}

// NewMITM creates a proxy that forwards to the given upstream head-end
// address, rewriting readings with rw (nil passes everything through).
func NewMITM(upstream string, rw RewriteFunc) *MITM {
	return NewMITMWith(upstream, rw, MITMConfig{})
}

// NewMITMWith is NewMITM with explicit lifecycle limits.
func NewMITMWith(upstream string, rw RewriteFunc, cfg MITMConfig) *MITM {
	cfg.applyDefaults()
	return &MITM{
		upstream: upstream,
		rewrite:  rw,
		cfg:      cfg,
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
}

// Listen starts the proxy and returns its bound address. A proxy listens
// at most once: a second Listen returns ErrListening.
func (m *MITM) Listen(addr string) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("ami: mitm: %w", ErrClosed)
	}
	if m.ln != nil {
		m.mu.Unlock()
		return "", fmt.Errorf("ami: mitm: %w", ErrListening)
	}
	m.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ami: mitm listen: %w", err)
	}
	m.mu.Lock()
	if m.closed || m.ln != nil {
		reason := ErrClosed
		if m.ln != nil {
			reason = ErrListening
		}
		m.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("ami: mitm: %w", reason)
	}
	m.ln = ln
	m.mu.Unlock()

	m.wg.Add(1)
	go m.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (m *MITM) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			_ = conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.untrack(conn)
			m.handle(conn)
		}()
	}
}

func (m *MITM) track(conn net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[conn] = struct{}{}
	return true
}

func (m *MITM) untrack(conn net.Conn) {
	m.mu.Lock()
	delete(m.conns, conn)
	m.mu.Unlock()
}

func (m *MITM) shuttingDown() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// recv arms the idle read deadline on one leg and reads an envelope.
func (m *MITM) recv(conn net.Conn, codec *Codec) (*Envelope, error) {
	_ = conn.SetReadDeadline(time.Now().Add(m.cfg.IdleTimeout))
	return codec.Recv()
}

func (m *MITM) handle(down net.Conn) {
	defer func() { _ = down.Close() }()
	up, err := net.DialTimeout("tcp", m.upstream, m.cfg.IdleTimeout)
	if err != nil {
		return
	}
	defer func() { _ = up.Close() }()
	if !m.track(up) {
		return
	}
	defer m.untrack(up)

	downCodec := NewCodec(down)
	upCodec := NewCodec(up)

	// Downstream -> upstream with rewriting; responses relayed inline (the
	// protocol is strictly request/response after the hello).
	for {
		if m.shuttingDown() {
			_ = downCodec.Send(&Envelope{Type: TypeError, Code: CodeShuttingDown, Error: "proxy shutting down"})
			return
		}
		env, err := m.recv(down, downCodec)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			return
		}
		switch env.Type {
		case TypeReading:
			m.mu.Lock()
			m.nSeen++
			m.mu.Unlock()
			if m.rewrite != nil {
				orig := *env.Reading
				rewritten := m.rewrite(orig)
				if rewritten != orig {
					m.mu.Lock()
					m.nRewr++
					m.mu.Unlock()
				}
				env.Reading = &rewritten
			}
		case TypeBatch:
			// A v2 batch frame is rewritten per reading: the same attack
			// function applies, and the head-end's MAC check still catches
			// the tampering when the meter signs its frames (the proxy
			// forwards the now-stale signature untouched).
			m.mu.Lock()
			m.nSeen += len(env.Batch.Readings)
			m.mu.Unlock()
			if m.rewrite != nil {
				for i, br := range env.Batch.Readings {
					orig := ReadingMsg{MeterID: env.Batch.MeterID, Slot: br.Slot, KW: br.KW}
					rewritten := m.rewrite(orig)
					if rewritten != orig {
						m.mu.Lock()
						m.nRewr++
						m.mu.Unlock()
					}
					env.Batch.Readings[i] = BatchReading{Slot: rewritten.Slot, KW: rewritten.KW}
				}
			}
		}
		if err := upCodec.Send(env); err != nil {
			return
		}
		// A v1 hello has no response; a v2 hello (version advertised) is
		// answered by the head-end with the negotiated hello, which must be
		// relayed or the downstream handshake stalls.
		if env.Type == TypeHello && (env.Hello == nil || env.Hello.Version < WireV2) {
			continue
		}
		resp, err := m.recv(up, upCodec)
		if err != nil {
			return
		}
		if err := downCodec.Send(resp); err != nil {
			return
		}
	}
}

// Stats returns how many readings passed through and how many were
// rewritten.
func (m *MITM) Stats() (seen, rewritten int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nSeen, m.nRewr
}

// Close stops the proxy, gives active sessions the drain timeout to finish
// their in-flight exchange, then force-closes whatever remains. Bounded
// even when a meter holds an idle connection.
func (m *MITM) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	ln := m.ln
	close(m.done)
	m.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	timer := time.NewTimer(m.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-drained:
	case <-timer.C:
		m.mu.Lock()
		for conn := range m.conns {
			_ = conn.Close()
		}
		m.mu.Unlock()
		<-drained
	}
	return err
}
