package ami

import (
	"repro/internal/obs"
)

// The head-end's instrument names. Package-level constants (lint-enforced:
// fdetalint's metricnames check) so the fdeta_ami_* namespace is auditable
// in one place and collisions across packages are caught statically.
const (
	metricConnsActive   = "fdeta_ami_connections_active"
	metricConnsTotal    = "fdeta_ami_connections_total"
	metricConnsRejected = "fdeta_ami_connections_rejected_total"
	metricConnsDrained  = "fdeta_ami_connections_drained_total"
	metricReadingsOK    = "fdeta_ami_readings_accepted_total"
	metricReadingsRej   = "fdeta_ami_readings_rejected_total"
	metricIdleTimeouts  = "fdeta_ami_idle_timeouts_total"
	metricForcedCloses  = "fdeta_ami_forced_closes_total"
	metricCodecErrors   = "fdeta_ami_codec_errors_total"
	metricIngestLatency = "fdeta_ami_ingest_latency_seconds"

	// The batched/sharded ingestion tier's instruments. Batch counters are
	// registered on every head-end (a plain head-end serving only v1
	// traffic just leaves them at zero); the shard instruments are
	// registered per shard by ShardedHeadEnd with a shard label.
	metricBatchFrames     = "fdeta_ami_batch_frames_total"
	metricBatchSize       = "fdeta_ami_batch_readings"
	metricShardStored     = "fdeta_ami_shard_readings_total"
	metricShardQueueDepth = "fdeta_ami_shard_queue_depth"

	// The durability layer's instruments, registered per shard (with a
	// shard label) by ShardedHeadEnd when a WAL directory is configured.
	metricWALAppended  = "fdeta_ami_wal_appended_total"
	metricWALSync      = "fdeta_ami_wal_sync_seconds"
	metricWALRecovered = "fdeta_ami_wal_recovered_total"
	metricWALTornTail  = "fdeta_ami_wal_torn_tail_total"
	metricWALErrors    = "fdeta_ami_wal_errors_total"
)

// batchSizeBuckets are the upper bounds for the readings-per-batch-frame
// histogram: powers of two up to the default batch cap.
func batchSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}

// headEndMetrics holds the registry-backed instruments for one head-end.
// Every counter the old mutex-and-bump HeadEndStats tracked lives here as an
// atomic instrument; Stats() re-assembles the legacy snapshot from these, so
// the /metrics endpoint and the Stats() view can never disagree.
type headEndMetrics struct {
	reg *obs.Registry

	activeConns   *obs.Gauge   // fdeta_ami_connections_active
	connsTotal    *obs.Counter // fdeta_ami_connections_total
	limitRejected *obs.Counter // fdeta_ami_connections_rejected_total{reason="limit"}
	connsDrained  *obs.Counter // fdeta_ami_connections_drained_total
	accepted      *obs.Counter // fdeta_ami_readings_accepted_total
	rejected      *obs.Counter // fdeta_ami_readings_rejected_total{reason="protocol"}
	authFailed    *obs.Counter // fdeta_ami_readings_rejected_total{reason="auth"}
	idleTimeouts  *obs.Counter // fdeta_ami_idle_timeouts_total
	forcedCloses  *obs.Counter // fdeta_ami_forced_closes_total
	codecErrors   *obs.Counter // fdeta_ami_codec_errors_total
	ingestLatency *obs.Histogram
	batchFrames   *obs.Counter   // fdeta_ami_batch_frames_total
	batchSize     *obs.Histogram // fdeta_ami_batch_readings
}

// newHeadEndMetrics registers the head-end instrument set on reg. Each
// head-end defaults to a private registry so two instances in one process
// (common in tests) never share counters; WithMetrics opts into a shared
// registry for export.
func newHeadEndMetrics(reg *obs.Registry) *headEndMetrics {
	return &headEndMetrics{
		reg: reg,
		activeConns: reg.Gauge(metricConnsActive,
			"meter sessions currently being served"),
		connsTotal: reg.Counter(metricConnsTotal,
			"meter sessions accepted since start"),
		limitRejected: reg.Counter(metricConnsRejected,
			"connections turned away at accept time", obs.L("reason", "limit")),
		connsDrained: reg.Counter(metricConnsDrained,
			"sessions bowed out gracefully during shutdown drain"),
		accepted: reg.Counter(metricReadingsOK,
			"readings stored and acknowledged"),
		rejected: reg.Counter(metricReadingsRej,
			"readings refused before storage", obs.L("reason", "protocol")),
		authFailed: reg.Counter(metricReadingsRej,
			"readings refused before storage", obs.L("reason", "auth")),
		idleTimeouts: reg.Counter(metricIdleTimeouts,
			"sessions closed for idling past the read deadline"),
		forcedCloses: reg.Counter(metricForcedCloses,
			"connections force-closed at the drain deadline"),
		codecErrors: reg.Counter(metricCodecErrors,
			"malformed or oversized frames on the wire"),
		ingestLatency: reg.Histogram(metricIngestLatency,
			"frame receipt through storage, per accepted message", obs.FineLatencyBuckets()),
		batchFrames: reg.Counter(metricBatchFrames,
			"v2 batch frames accepted and acknowledged"),
		batchSize: reg.Histogram(metricBatchSize,
			"readings per accepted batch frame", batchSizeBuckets()),
	}
}
