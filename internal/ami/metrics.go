package ami

import (
	"repro/internal/obs"
)

// headEndMetrics holds the registry-backed instruments for one head-end.
// Every counter the old mutex-and-bump HeadEndStats tracked lives here as an
// atomic instrument; Stats() re-assembles the legacy snapshot from these, so
// the /metrics endpoint and the Stats() view can never disagree.
type headEndMetrics struct {
	reg *obs.Registry

	activeConns   *obs.Gauge   // fdeta_ami_connections_active
	connsTotal    *obs.Counter // fdeta_ami_connections_total
	limitRejected *obs.Counter // fdeta_ami_connections_rejected_total{reason="limit"}
	connsDrained  *obs.Counter // fdeta_ami_connections_drained_total
	accepted      *obs.Counter // fdeta_ami_readings_accepted_total
	rejected      *obs.Counter // fdeta_ami_readings_rejected_total{reason="protocol"}
	authFailed    *obs.Counter // fdeta_ami_readings_rejected_total{reason="auth"}
	idleTimeouts  *obs.Counter // fdeta_ami_idle_timeouts_total
	forcedCloses  *obs.Counter // fdeta_ami_forced_closes_total
	codecErrors   *obs.Counter // fdeta_ami_codec_errors_total
	ingestLatency *obs.Histogram
}

// newHeadEndMetrics registers the head-end instrument set on reg. Each
// head-end defaults to a private registry so two instances in one process
// (common in tests) never share counters; WithMetrics opts into a shared
// registry for export.
func newHeadEndMetrics(reg *obs.Registry) *headEndMetrics {
	return &headEndMetrics{
		reg: reg,
		activeConns: reg.Gauge("fdeta_ami_connections_active",
			"meter sessions currently being served"),
		connsTotal: reg.Counter("fdeta_ami_connections_total",
			"meter sessions accepted since start"),
		limitRejected: reg.Counter("fdeta_ami_connections_rejected_total",
			"connections turned away at accept time", obs.L("reason", "limit")),
		connsDrained: reg.Counter("fdeta_ami_connections_drained_total",
			"sessions bowed out gracefully during shutdown drain"),
		accepted: reg.Counter("fdeta_ami_readings_accepted_total",
			"readings stored and acknowledged"),
		rejected: reg.Counter("fdeta_ami_readings_rejected_total",
			"readings refused before storage", obs.L("reason", "protocol")),
		authFailed: reg.Counter("fdeta_ami_readings_rejected_total",
			"readings refused before storage", obs.L("reason", "auth")),
		idleTimeouts: reg.Counter("fdeta_ami_idle_timeouts_total",
			"sessions closed for idling past the read deadline"),
		forcedCloses: reg.Counter("fdeta_ami_forced_closes_total",
			"connections force-closed at the drain deadline"),
		codecErrors: reg.Counter("fdeta_ami_codec_errors_total",
			"malformed or oversized frames on the wire"),
		ingestLatency: reg.Histogram("fdeta_ami_ingest_latency_seconds",
			"reading receipt to acknowledgement, per message", obs.LatencyBuckets()),
	}
}
