// Package ami implements a miniature Advanced Metering Infrastructure: a
// TCP head-end collection server at the utility, meter clients that stream
// readings to it, and a man-in-the-middle proxy that rewrites readings in
// flight. The proxy is the concrete realization of the paper's attack
// premise that "either the smart meter or the communication link has been
// compromised, and the attacker is now an insider" (Section IV).
//
// The wire protocol is newline-delimited JSON envelopes over TCP. Every
// reading is acknowledged so tests can assert exactly-once collection.
package ami

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/timeseries"
)

// Message types carried in an Envelope.
const (
	TypeHello   = "hello"
	TypeReading = "reading"
	TypeAck     = "ack"
	TypeError   = "error"
)

// Envelope is the single wire frame. Type selects which payload field is
// populated.
type Envelope struct {
	Type    string      `json:"type"`
	Hello   *HelloMsg   `json:"hello,omitempty"`
	Reading *ReadingMsg `json:"reading,omitempty"`
	Ack     *AckMsg     `json:"ack,omitempty"`
	Error   string      `json:"error,omitempty"`
	// Code is the machine-readable classification of a TypeError envelope
	// (see the Code* constants). Optional: peers predating the taxonomy
	// send errors with no code, which readers treat as permanent.
	Code string `json:"code,omitempty"`
	// Auth is the optional hex HMAC-SHA256 tag over the reading (see
	// SignReading). Verified only when the head-end runs with a keyring.
	Auth string `json:"auth,omitempty"`
}

// HelloMsg introduces a meter at connection start.
type HelloMsg struct {
	MeterID string `json:"meter_id"`
}

// ReadingMsg reports one average-demand measurement.
type ReadingMsg struct {
	MeterID string  `json:"meter_id"`
	Slot    int64   `json:"slot"`
	KW      float64 `json:"kw"`
}

// AckMsg acknowledges a reading by slot.
type AckMsg struct {
	Slot int64 `json:"slot"`
}

// Validate checks envelope well-formedness.
func (e *Envelope) Validate() error {
	switch e.Type {
	case TypeHello:
		if e.Hello == nil || e.Hello.MeterID == "" {
			return fmt.Errorf("ami: hello envelope missing meter ID")
		}
	case TypeReading:
		if e.Reading == nil {
			return fmt.Errorf("ami: reading envelope missing payload")
		}
		if e.Reading.MeterID == "" {
			return fmt.Errorf("ami: reading missing meter ID")
		}
		if e.Reading.Slot < 0 {
			return fmt.Errorf("ami: reading slot %d negative", e.Reading.Slot)
		}
		if e.Reading.KW < 0 {
			return fmt.Errorf("ami: reading %g kW negative", e.Reading.KW)
		}
	case TypeAck:
		if e.Ack == nil {
			return fmt.Errorf("ami: ack envelope missing payload")
		}
	case TypeError:
		if e.Error == "" {
			return fmt.Errorf("ami: error envelope missing message")
		}
	default:
		return fmt.Errorf("ami: unknown envelope type %q", e.Type)
	}
	return nil
}

// Codec reads and writes envelopes over a stream.
type Codec struct {
	enc *json.Encoder
	dec *json.Decoder
}

// NewCodec wraps a duplex stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{
		enc: json.NewEncoder(rw),
		dec: json.NewDecoder(rw),
	}
}

// Send validates and writes one envelope.
func (c *Codec) Send(e *Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("ami: encoding %s envelope: %w", e.Type, err)
	}
	return nil
}

// Recv reads and validates one envelope. It returns io.EOF unwrapped when
// the peer closed cleanly.
func (c *Codec) Recv() (*Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("ami: decoding envelope: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// ToReading converts a wire message into the meter-domain reading type.
func (m *ReadingMsg) ToReading() (id string, slot timeseries.Slot, kw float64) {
	return m.MeterID, timeseries.Slot(m.Slot), m.KW
}
