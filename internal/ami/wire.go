// Package ami implements a miniature Advanced Metering Infrastructure: a
// TCP head-end collection server at the utility, meter clients that stream
// readings to it, and a man-in-the-middle proxy that rewrites readings in
// flight. The proxy is the concrete realization of the paper's attack
// premise that "either the smart meter or the communication link has been
// compromised, and the attacker is now an insider" (Section IV).
//
// The wire protocol is newline-delimited JSON envelopes over TCP. Every
// reading is acknowledged so tests can assert exactly-once collection.
//
// Two protocol versions share the same framing:
//
//	v1  one reading per frame, hello has no response. This is the original
//	    wire dialect; v1 peers are byte-identical to the pre-versioning
//	    protocol.
//	v2  negotiated at hello (the client advertises "ver":2, the head-end
//	    answers with its own hello carrying the agreed version and its
//	    batch cap). v2 adds batch frames (N readings per envelope, one
//	    batch-ack per frame) and mid-session hello frames that rebind the
//	    session to another meter, so one connection can carry a whole
//	    fleet's traffic.
//
// Because the threat model assumes the peer may be hostile, the codec
// trusts nothing: frames are bounded by MaxFrameSize (a meter streaming
// one multi-gigabyte frame gets a typed CodeOversized rejection, not the
// head-end's address space), and Validate rejects non-finite kW values so
// NaN/±Inf poison can never reach the readings store.
package ami

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/timeseries"
)

// Message types carried in an Envelope.
const (
	TypeHello    = "hello"
	TypeReading  = "reading"
	TypeAck      = "ack"
	TypeError    = "error"
	TypeBatch    = "batch"
	TypeBatchAck = "batch_ack"
)

// Wire protocol versions. A hello with no version field is a v1 peer.
const (
	// WireV1 is the original one-reading-per-frame dialect.
	WireV1 = 1
	// WireV2 adds batch frames and mid-session meter rebinding.
	WireV2 = 2
)

// Frame and batch bounds.
const (
	// DefaultMaxFrameSize bounds one wire frame. A frame is one JSON
	// envelope plus its newline; the largest legitimate frame is a full
	// batch of signed readings, which fits comfortably in 1 MiB.
	DefaultMaxFrameSize = 1 << 20
	// DefaultMaxBatch is the head-end's default cap on readings per batch
	// frame, advertised to v2 clients in the hello response.
	DefaultMaxBatch = 1024
)

// Envelope is the single wire frame. Type selects which payload field is
// populated.
type Envelope struct {
	Type    string      `json:"type"`
	Hello   *HelloMsg   `json:"hello,omitempty"`
	Reading *ReadingMsg `json:"reading,omitempty"`
	Ack     *AckMsg     `json:"ack,omitempty"`
	// Batch carries N readings for one meter in one frame (v2 sessions).
	Batch *BatchMsg `json:"batch,omitempty"`
	// BatchAck acknowledges a whole batch frame (v2 sessions).
	BatchAck *BatchAckMsg `json:"batch_ack,omitempty"`
	Error    string       `json:"error,omitempty"`
	// Code is the machine-readable classification of a TypeError envelope
	// (see the Code* constants). Optional: peers predating the taxonomy
	// send errors with no code, which readers treat as permanent.
	Code string `json:"code,omitempty"`
	// Auth is the optional hex HMAC-SHA256 tag over the reading or batch
	// (see SignReading, SignBatch). Verified only when the head-end runs
	// with a keyring.
	Auth string `json:"auth,omitempty"`
}

// HelloMsg introduces a meter at connection start (and, on v2 sessions,
// rebinds the session to another meter mid-stream). The version and batch
// fields are omitted when zero, so a v1 hello is byte-identical to the
// pre-versioning wire format.
type HelloMsg struct {
	MeterID string `json:"meter_id"`
	// Version is the highest protocol version the sender speaks (0 means
	// v1: the field predates versioning). In the head-end's hello response
	// it is the negotiated version for the session.
	Version int `json:"ver,omitempty"`
	// MaxBatch is only set in the head-end's hello response: the largest
	// batch frame it will accept. Clients must chunk accordingly.
	MaxBatch int `json:"max_batch,omitempty"`
}

// ReadingMsg reports one average-demand measurement.
type ReadingMsg struct {
	MeterID string  `json:"meter_id"`
	Slot    int64   `json:"slot"`
	KW      float64 `json:"kw"`
}

// BatchReading is one (slot, kW) pair inside a batch frame. The meter ID
// lives once on the enclosing BatchMsg.
type BatchReading struct {
	Slot int64   `json:"slot"`
	KW   float64 `json:"kw"`
}

// BatchMsg reports N measurements for one meter in a single frame.
type BatchMsg struct {
	MeterID  string         `json:"meter_id"`
	Readings []BatchReading `json:"readings"`
}

// AckMsg acknowledges a reading by slot.
type AckMsg struct {
	Slot int64 `json:"slot"`
}

// BatchAckMsg acknowledges one batch frame: how many readings were stored
// and the last slot covered, so the client can verify nothing was dropped.
type BatchAckMsg struct {
	Count    int   `json:"count"`
	LastSlot int64 `json:"last_slot"`
}

// validKW rejects the values the readings store must never hold: negative
// demand and the non-finite floats (NaN compares false against every
// bound, so a plain `< 0` check waves it straight through — the hole this
// guard closes).
func validKW(kw float64) error {
	if math.IsNaN(kw) || math.IsInf(kw, 0) {
		return fmt.Errorf("ami: reading %g kW is not finite", kw)
	}
	if kw < 0 {
		return fmt.Errorf("ami: reading %g kW negative", kw)
	}
	return nil
}

// Validate checks envelope well-formedness.
func (e *Envelope) Validate() error {
	switch e.Type {
	case TypeHello:
		if e.Hello == nil || e.Hello.MeterID == "" {
			return fmt.Errorf("ami: hello envelope missing meter ID")
		}
		if e.Hello.Version < 0 || e.Hello.MaxBatch < 0 {
			return fmt.Errorf("ami: hello version %d / max batch %d negative",
				e.Hello.Version, e.Hello.MaxBatch)
		}
	case TypeReading:
		if e.Reading == nil {
			return fmt.Errorf("ami: reading envelope missing payload")
		}
		if e.Reading.MeterID == "" {
			return fmt.Errorf("ami: reading missing meter ID")
		}
		if e.Reading.Slot < 0 {
			return fmt.Errorf("ami: reading slot %d negative", e.Reading.Slot)
		}
		if err := validKW(e.Reading.KW); err != nil {
			return err
		}
	case TypeBatch:
		if e.Batch == nil {
			return fmt.Errorf("ami: batch envelope missing payload")
		}
		if e.Batch.MeterID == "" {
			return fmt.Errorf("ami: batch missing meter ID")
		}
		if len(e.Batch.Readings) == 0 {
			return fmt.Errorf("ami: batch envelope carries no readings")
		}
		for i, r := range e.Batch.Readings {
			if r.Slot < 0 {
				return fmt.Errorf("ami: batch reading %d slot %d negative", i, r.Slot)
			}
			if err := validKW(r.KW); err != nil {
				return fmt.Errorf("ami: batch reading %d: %w", i, err)
			}
		}
	case TypeAck:
		if e.Ack == nil {
			return fmt.Errorf("ami: ack envelope missing payload")
		}
	case TypeBatchAck:
		if e.BatchAck == nil {
			return fmt.Errorf("ami: batch-ack envelope missing payload")
		}
		if e.BatchAck.Count < 1 {
			return fmt.Errorf("ami: batch-ack count %d < 1", e.BatchAck.Count)
		}
	case TypeError:
		if e.Error == "" {
			return fmt.Errorf("ami: error envelope missing message")
		}
	default:
		return fmt.Errorf("ami: unknown envelope type %q", e.Type)
	}
	return nil
}

// Codec reads and writes envelopes over a stream. Inbound frames are
// bounded: a frame that exceeds the codec's limit yields a typed
// *ProtocolError with CodeOversized instead of buffering without bound.
type Codec struct {
	w   io.Writer
	r   *bufio.Reader
	max int
	buf []byte // frame assembly scratch, reused across Recv calls
}

// NewCodec wraps a duplex stream with the default frame bound.
func NewCodec(rw io.ReadWriter) *Codec {
	return NewCodecLimit(rw, DefaultMaxFrameSize)
}

// NewCodecLimit wraps a duplex stream with an explicit frame bound
// (maxFrame <= 0 selects DefaultMaxFrameSize). The bound applies to both
// directions: oversized outbound envelopes are refused locally rather than
// shipped to a peer that would reject them anyway.
func NewCodecLimit(rw io.ReadWriter, maxFrame int) *Codec {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameSize
	}
	return &Codec{
		w:   rw,
		r:   bufio.NewReader(rw),
		max: maxFrame,
	}
}

// Send validates and writes one envelope.
func (c *Codec) Send(e *Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ami: encoding %s envelope: %w", e.Type, err)
	}
	if len(buf)+1 > c.max {
		return fmt.Errorf("ami: encoding %s envelope: %w", e.Type,
			&ProtocolError{Code: CodeOversized,
				Message: fmt.Sprintf("frame is %d bytes, limit %d", len(buf)+1, c.max)})
	}
	buf = append(buf, '\n')
	if _, err := c.w.Write(buf); err != nil {
		return fmt.Errorf("ami: encoding %s envelope: %w", e.Type, err)
	}
	return nil
}

// readFrame assembles one newline-terminated frame, refusing to buffer
// past the codec's limit. A final frame cut off by EOF is returned as-is
// for the JSON layer to reject; a clean EOF at a frame boundary surfaces
// as io.EOF unwrapped.
func (c *Codec) readFrame() ([]byte, error) {
	c.buf = c.buf[:0]
	for {
		chunk, err := c.r.ReadSlice('\n')
		c.buf = append(c.buf, chunk...)
		if len(c.buf) > c.max {
			return nil, &ProtocolError{Code: CodeOversized,
				Message: fmt.Sprintf("frame exceeds %d-byte limit", c.max)}
		}
		switch err {
		case nil:
			return c.buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(c.buf) == 0 {
				return nil, io.EOF
			}
			return c.buf, nil
		default:
			return nil, err
		}
	}
}

// Recv reads and validates one envelope. It returns io.EOF unwrapped when
// the peer closed cleanly; an oversized frame returns a wrapped
// *ProtocolError carrying CodeOversized (match with errors.Is(err,
// ErrOversized)).
func (c *Codec) Recv() (*Envelope, error) {
	frame, err := c.readFrame()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("ami: decoding envelope: %w", err)
	}
	var e Envelope
	if err := json.Unmarshal(frame, &e); err != nil {
		return nil, fmt.Errorf("ami: decoding envelope: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// ToReading converts a wire message into the meter-domain reading type.
func (m *ReadingMsg) ToReading() (id string, slot timeseries.Slot, kw float64) {
	return m.MeterID, timeseries.Slot(m.Slot), m.KW
}
