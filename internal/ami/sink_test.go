package ami

import (
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
	"repro/internal/timeseries"
)

// sinkRecorder collects sink deliveries per meter, copying the borrowed
// slices (the contract forbids retaining them).
type sinkRecorder struct {
	mu  sync.Mutex
	got map[string][]BatchReading
}

func newSinkRecorder() *sinkRecorder {
	return &sinkRecorder{got: make(map[string][]BatchReading)}
}

func (r *sinkRecorder) sink(meterID string, rs []BatchReading) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got[meterID] = append(r.got[meterID], rs...)
}

func (r *sinkRecorder) readings(meterID string) []BatchReading {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BatchReading, len(r.got[meterID]))
	copy(out, r.got[meterID])
	return out
}

// TestSinkReceivesAcceptedReadings: every reading accepted over the wire
// reaches the sink — singles on the plain head-end, batches on the sharded
// one — in per-meter acceptance order.
func TestSinkReceivesAcceptedReadings(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		rec := newSinkRecorder()
		head := New(WithSink(rec.sink), WithDrainTimeout(time.Second))
		addr, err := head.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer head.Close()
		c, err := Dial(addr, "m1", 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for s := 0; s < 10; s++ {
			if err := c.Send(meter.Reading{MeterID: "m1", Slot: timeseries.Slot(s), KW: float64(s)}); err != nil {
				t.Fatal(err)
			}
		}
		// Sends are acked synchronously on the plain head-end, so the sink
		// has already run for every reading.
		checkSinkOrder(t, rec.readings("m1"), 10)
	})

	t.Run("sharded", func(t *testing.T) {
		rec := newSinkRecorder()
		head := NewSharded(4, WithSink(rec.sink), WithDrainTimeout(time.Second))
		addr, err := head.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer head.Close()
		c, err := DialBatch(addr, "m7", nil, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var rs []meter.Reading
		for s := 0; s < 96; s++ {
			rs = append(rs, meter.Reading{MeterID: "m7", Slot: timeseries.Slot(s), KW: float64(s)})
		}
		if err := c.SendBatch(rs); err != nil {
			t.Fatal(err)
		}
		// The shard worker delivers asynchronously after the ack; Flush is
		// the barrier that guarantees the tap has fired for everything
		// enqueued before it.
		head.Flush()
		checkSinkOrder(t, rec.readings("m7"), 96)
	})
}

func checkSinkOrder(t *testing.T, got []BatchReading, want int) {
	t.Helper()
	if len(got) != want {
		t.Fatalf("sink saw %d readings, want %d", len(got), want)
	}
	for i, r := range got {
		if r.Slot != int64(i) || r.KW != float64(i) {
			t.Fatalf("sink reading %d = {slot %d, kw %g}, want {%d, %g} (order broken)",
				i, r.Slot, r.KW, i, float64(i))
		}
	}
}

// TestSinkNotReplayedFromWAL: recovery repopulates the store directly — a
// freshly attached sink must not see historical readings again.
func TestSinkNotReplayedFromWAL(t *testing.T) {
	dir := t.TempDir()
	head := NewSharded(2, WithWAL(dir), WithDrainTimeout(time.Second))
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialBatch(addr, "m1", nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch([]meter.Reading{{MeterID: "m1", Slot: 0, KW: 1}, {MeterID: "m1", Slot: 1, KW: 2}}); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := head.Close(); err != nil {
		t.Fatal(err)
	}

	rec := newSinkRecorder()
	head2 := NewSharded(2, WithWAL(dir), WithSink(rec.sink), WithDrainTimeout(time.Second))
	defer head2.Close()
	if err := head2.WALError(); err != nil {
		t.Fatal(err)
	}
	if got := head2.Count("m1"); got != 2 {
		t.Fatalf("recovered %d readings, want 2", got)
	}
	if got := rec.readings("m1"); len(got) != 0 {
		t.Fatalf("sink saw %d replayed readings, want 0", len(got))
	}
}
