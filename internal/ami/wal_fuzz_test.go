package ami

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// walRecordSet flattens applied records into comparable (meter, slot, kw)
// triples for the invent-nothing check.
type walRecordSet struct {
	meterIDs []string
	readings [][]BatchReading
}

func (s *walRecordSet) apply(meterID string, rs []BatchReading) {
	s.meterIDs = append(s.meterIDs, meterID)
	s.readings = append(s.readings, rs)
}

func (s *walRecordSet) count() int64 {
	var n int64
	for _, rs := range s.readings {
		n += int64(len(rs))
	}
	return n
}

// FuzzWALReplay feeds arbitrary bytes to the WAL recovery path as a
// segment file. Whatever the damage — truncation, bit flips, garbage —
// recovery must never panic, must apply exactly the longest valid record
// prefix (never inventing readings past it), and must truncate the file
// so a second recovery reads back clean.
func FuzzWALReplay(f *testing.F) {
	var valid []byte
	valid = encodeWALRecord(valid, "m01", []BatchReading{{Slot: 0, KW: 1.5}, {Slot: 1, KW: 2}})
	valid = encodeWALRecord(valid, "m02", []BatchReading{{Slot: 47, KW: 0}})
	valid = encodeWALRecord(valid, "meter-with-a-longer-id", nil)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])               // torn tail mid-record
	f.Add(valid[:walRecordHeader-2])          // torn header
	f.Add([]byte{})                           // empty segment
	f.Add([]byte("not a wal segment at all")) // garbage
	f.Add(bytes.Repeat([]byte{0xff}, 64))     // huge bogus length field
	flipped := append([]byte(nil), valid...)
	flipped[walRecordHeader+3] ^= 0x10 // payload bit flip in record 1
	f.Add(flipped)
	crcFlip := append([]byte(nil), valid...)
	crcFlip[1] ^= 0x80 // CRC bit flip in record 1
	f.Add(crcFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walSegmentName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		var got walRecordSet
		n, validLen, torn, err := replayWALFile(path, got.apply)
		if err != nil {
			t.Fatalf("replay of a readable file returned I/O error: %v", err)
		}
		if n != got.count() {
			t.Fatalf("replay reported %d readings but applied %d", n, got.count())
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside file of %d bytes", validLen, len(data))
		}
		if torn == (validLen == int64(len(data))) {
			t.Fatalf("torn=%v inconsistent with valid prefix %d of %d bytes", torn, validLen, len(data))
		}

		// The applied records must decode *from the input* at their framed
		// offsets — replay may never invent or reorder readings.
		off := 0
		for i := range got.meterIDs {
			meterID, rs, next, derr := decodeWALRecord(data, off)
			if derr != nil {
				t.Fatalf("applied record %d does not decode from the input: %v", i, derr)
			}
			if meterID != got.meterIDs[i] || len(rs) != len(got.readings[i]) {
				t.Fatalf("applied record %d (%q, %d readings) differs from framed record (%q, %d readings)",
					i, got.meterIDs[i], len(got.readings[i]), meterID, len(rs))
			}
			for j := range rs {
				if rs[j] != got.readings[i][j] {
					t.Fatalf("applied reading %d/%d = %+v, framed %+v", i, j, got.readings[i][j], rs[j])
				}
			}
			off = next
		}
		if int64(off) != validLen {
			t.Fatalf("applied records end at %d, valid prefix reported as %d", off, validLen)
		}

		// Full recovery truncates the tear in place: a second open of the
		// directory must recover the same readings with zero torn tails.
		ins := testWALInstruments()
		w, err := openShardWAL(dir, walConfig{sync: WALSyncOff}, ins, obs.Logger("test"),
			func(string, []BatchReading) {})
		if err != nil {
			t.Fatalf("first open failed on damaged segment: %v", err)
		}
		if v := ins.recovered.Value(); v != n {
			t.Fatalf("open recovered %d readings, replay said %d", v, n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		var again walRecordSet
		ins2 := testWALInstruments()
		w2, err := openShardWAL(dir, walConfig{sync: WALSyncOff}, ins2, obs.Logger("test"), again.apply)
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		defer func() { _ = w2.Close() }()
		if v := ins2.tornTails.Value(); v != 0 {
			t.Fatalf("second open still sees %d torn tails; truncation did not persist", v)
		}
		if again.count() != n {
			t.Fatalf("second open recovered %d readings, want %d", again.count(), n)
		}
	})
}
