package ami

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/timeseries"
)

// HeadEnd is the utility-side collection server. It accepts meter
// connections, stores acknowledged readings, and exposes them to the
// control-center detection pipeline.
type HeadEnd struct {
	mu       sync.Mutex
	ln       net.Listener
	readings map[string]map[timeseries.Slot]float64
	closed   bool
	keyring  *Keyring
	authFail int

	wg sync.WaitGroup
}

// NewHeadEnd creates an idle head-end.
func NewHeadEnd() *HeadEnd {
	return &HeadEnd{
		readings: make(map[string]map[timeseries.Slot]float64),
	}
}

// SetKeyring enables per-reading HMAC verification. Must be called before
// Listen. Readings that fail verification are rejected with an error
// envelope and never stored.
func (h *HeadEnd) SetKeyring(kr *Keyring) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.keyring = kr
}

// AuthFailures returns how many readings were rejected for bad MACs.
func (h *HeadEnd) AuthFailures() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.authFail
}

// Listen starts accepting connections on the given address ("127.0.0.1:0"
// for an ephemeral test port) and returns the bound address.
func (h *HeadEnd) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ami: head-end listen: %w", err)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("ami: head-end already closed")
	}
	h.ln = ln
	h.mu.Unlock()

	h.wg.Add(1)
	go h.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (h *HeadEnd) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: normal shutdown.
			return
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.handle(conn)
		}()
	}
}

// handle serves one meter connection until EOF or protocol error.
func (h *HeadEnd) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	codec := NewCodec(conn)

	// First envelope must be a hello.
	first, err := codec.Recv()
	if err != nil {
		return
	}
	if first.Type != TypeHello {
		_ = codec.Send(&Envelope{Type: TypeError, Error: "expected hello"})
		return
	}
	meterID := first.Hello.MeterID

	for {
		env, err := codec.Recv()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			_ = codec.Send(&Envelope{Type: TypeError, Error: err.Error()})
			return
		}
		if env.Type != TypeReading {
			_ = codec.Send(&Envelope{Type: TypeError, Error: "expected reading"})
			return
		}
		if env.Reading.MeterID != meterID {
			_ = codec.Send(&Envelope{Type: TypeError,
				Error: fmt.Sprintf("meter ID %q does not match session %q", env.Reading.MeterID, meterID)})
			return
		}
		h.mu.Lock()
		kr := h.keyring
		h.mu.Unlock()
		if kr != nil {
			if err := kr.VerifyEnvelope(env); err != nil {
				h.mu.Lock()
				h.authFail++
				h.mu.Unlock()
				_ = codec.Send(&Envelope{Type: TypeError, Error: err.Error()})
				return
			}
		}
		h.store(env.Reading)
		if err := codec.Send(&Envelope{Type: TypeAck, Ack: &AckMsg{Slot: env.Reading.Slot}}); err != nil {
			return
		}
	}
}

func (h *HeadEnd) store(r *ReadingMsg) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.readings[r.MeterID]
	if !ok {
		m = make(map[timeseries.Slot]float64)
		h.readings[r.MeterID] = m
	}
	m[timeseries.Slot(r.Slot)] = r.KW
}

// Close stops the listener and waits for every connection handler to exit.
func (h *HeadEnd) Close() error {
	h.mu.Lock()
	h.closed = true
	ln := h.ln
	h.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	h.wg.Wait()
	return err
}

// Meters returns the IDs that have reported at least one reading, sorted.
func (h *HeadEnd) Meters() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.readings))
	for id := range h.readings {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored readings for a meter.
func (h *HeadEnd) Count(meterID string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.readings[meterID])
}

// Reading fetches one stored reading.
func (h *HeadEnd) Reading(meterID string, slot timeseries.Slot) (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.readings[meterID][slot]
	return v, ok
}

// Series assembles the dense series [0, n) for a meter. Missing slots are
// an error: the detection pipeline must not silently treat gaps as zero
// consumption (that is what a 2A attack looks like).
func (h *HeadEnd) Series(meterID string, n int) (timeseries.Series, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.readings[meterID]
	if !ok {
		return nil, fmt.Errorf("ami: no readings for meter %q", meterID)
	}
	out := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		v, ok := m[timeseries.Slot(i)]
		if !ok {
			return nil, fmt.Errorf("ami: meter %q missing reading for slot %d", meterID, i)
		}
		out[i] = v
	}
	return out, nil
}
