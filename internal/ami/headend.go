package ami

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
)

// Lifecycle defaults. Zero-valued HeadEndConfig fields fall back to these.
const (
	// DefaultMaxConns bounds concurrent meter sessions; the N+1th meter is
	// turned away with a CodeBusy error at accept time.
	DefaultMaxConns = 1024
	// DefaultIdleTimeout is the per-read deadline on a meter session. A
	// connection that sends nothing for this long is closed — the defence
	// against slowloris-style connection hoarding.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultDrainTimeout is how long Close waits for in-flight sessions
	// to finish before force-closing their connections.
	DefaultDrainTimeout = 5 * time.Second
)

// HeadEndConfig bounds a head-end's resource use. The zero value selects
// production defaults; tests shrink the timeouts.
type HeadEndConfig struct {
	// MaxConns is the concurrent connection limit (0 = DefaultMaxConns).
	MaxConns int
	// IdleTimeout is the per-read deadline (0 = DefaultIdleTimeout).
	IdleTimeout time.Duration
	// DrainTimeout is the Close grace period (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
}

func (c *HeadEndConfig) applyDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
}

// HeadEndStats is a snapshot of the head-end's ingestion counters. It is a
// compatibility view assembled from the registry-backed instruments (see
// metrics.go); the authoritative store is the obs.Registry, which an admin
// endpoint can export live.
type HeadEndStats struct {
	ActiveConns   int   // sessions currently being served
	TotalConns    int64 // sessions accepted since start
	LimitRejected int64 // connections turned away at the limit
	Accepted      int64 // readings stored
	Rejected      int64 // readings refused (protocol / session mismatch)
	AuthFailed    int64 // readings refused for bad MACs
	IdleTimeouts  int64 // sessions closed for idling past the deadline
	ForcedCloses  int64 // connections force-closed at Close's drain deadline
}

// HeadEnd is the utility-side collection server. It accepts meter
// connections, stores acknowledged readings, and exposes them to the
// control-center detection pipeline. Every active connection is tracked in
// a registry so Close can force-close stragglers after the drain timeout
// instead of waiting forever on an idle meter.
type HeadEnd struct {
	cfg HeadEndConfig

	mu       sync.Mutex
	ln       net.Listener
	readings map[string]map[timeseries.Slot]float64
	closed   bool
	keyring  *Keyring

	// conns tracks every live connection (value: true for accepted
	// sessions, false for busy-rejection handshakes); active counts only
	// the sessions, which is what the connection limit compares against.
	conns  map[net.Conn]bool
	active int

	met *headEndMetrics
	log *slog.Logger

	done chan struct{} // closed when Close begins; handlers drain on it
	wg   sync.WaitGroup
}

// Metrics returns the registry holding this head-end's instruments, for
// export via obs.ServeAdmin or direct Snapshot().
func (h *HeadEnd) Metrics() *obs.Registry { return h.met.reg }

// AuthFailures returns how many readings were rejected for bad MACs.
func (h *HeadEnd) AuthFailures() int {
	return int(h.met.authFailed.Value())
}

// Stats snapshots the ingestion counters from the registry-backed
// instruments.
func (h *HeadEnd) Stats() HeadEndStats {
	h.mu.Lock()
	active := h.active
	h.mu.Unlock()
	m := h.met
	return HeadEndStats{
		ActiveConns:   active,
		TotalConns:    m.connsTotal.Value(),
		LimitRejected: m.limitRejected.Value(),
		Accepted:      m.accepted.Value(),
		Rejected:      m.rejected.Value(),
		AuthFailed:    m.authFailed.Value(),
		IdleTimeouts:  m.idleTimeouts.Value(),
		ForcedCloses:  m.forcedCloses.Value(),
	}
}

// Listen starts accepting connections on the given address ("127.0.0.1:0"
// for an ephemeral test port) and returns the bound address. A head-end
// listens at most once: a second Listen returns ErrListening rather than
// silently leaking the first listener and its accept loop.
func (h *HeadEnd) Listen(addr string) (string, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return "", fmt.Errorf("ami: head-end: %w", ErrClosed)
	}
	if h.ln != nil {
		h.mu.Unlock()
		return "", fmt.Errorf("ami: head-end: %w", ErrListening)
	}
	h.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ami: head-end listen: %w", err)
	}
	h.mu.Lock()
	if h.closed || h.ln != nil {
		reason := ErrClosed
		if h.ln != nil {
			reason = ErrListening
		}
		h.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("ami: head-end: %w", reason)
	}
	h.ln = ln
	h.mu.Unlock()

	h.log.Info("head-end listening", "addr", ln.Addr().String())
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (h *HeadEnd) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: normal shutdown.
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		if h.active >= h.cfg.MaxConns {
			h.conns[conn] = false
			h.mu.Unlock()
			h.met.limitRejected.Inc()
			h.log.Warn("connection rejected at limit", "remote", conn.RemoteAddr())
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				defer h.untrack(conn, false)
				h.rejectBusy(conn)
			}()
			continue
		}
		h.conns[conn] = true
		h.active++
		h.met.activeConns.Set(float64(h.active))
		h.mu.Unlock()
		h.met.connsTotal.Inc()
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer h.untrack(conn, true)
			h.handle(conn)
		}()
	}
}

func (h *HeadEnd) untrack(conn net.Conn, session bool) {
	h.mu.Lock()
	delete(h.conns, conn)
	if session {
		h.active--
		h.met.activeConns.Set(float64(h.active))
	}
	h.mu.Unlock()
}

// rejectBusy turns away a connection accepted past the limit: it consumes
// the hello, answers with a CodeBusy error, then drains until the meter
// hangs up. The drain matters — closing with the meter's next frame unread
// would trigger a TCP reset that can destroy the error envelope before the
// meter reads it.
func (h *HeadEnd) rejectBusy(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	grace := h.cfg.IdleTimeout
	if grace > 5*time.Second {
		grace = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(grace))
	codec := NewCodec(conn)
	_, _ = codec.Recv()
	if err := codec.Send(&Envelope{Type: TypeError, Code: CodeBusy, Error: "head-end at connection limit"}); err != nil {
		return
	}
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// recv arms the idle read deadline and reads one envelope.
func (h *HeadEnd) recv(conn net.Conn, codec *Codec) (*Envelope, error) {
	_ = conn.SetReadDeadline(time.Now().Add(h.cfg.IdleTimeout))
	return codec.Recv()
}

// shuttingDown reports whether Close has begun.
func (h *HeadEnd) shuttingDown() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// handle serves one meter connection until EOF, protocol error, idle
// timeout, or shutdown.
func (h *HeadEnd) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	codec := NewCodec(conn)

	// First envelope must be a hello.
	first, err := h.recv(conn, codec)
	if err != nil {
		return
	}
	if first.Type != TypeHello {
		_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol, Error: "expected hello"})
		return
	}
	meterID := first.Hello.MeterID

	for {
		// Drain semantics: finish the in-flight request/ack cycle, then
		// bow out between readings once shutdown has begun.
		if h.shuttingDown() {
			h.met.connsDrained.Inc()
			_ = codec.Send(&Envelope{Type: TypeError, Code: CodeShuttingDown, Error: "head-end shutting down"})
			return
		}
		env, err := h.recv(conn, codec)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			if h.shuttingDown() {
				// Force-closed (or cut mid-read) during drain; nothing to say.
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				h.met.idleTimeouts.Inc()
				h.log.Debug("session idle timeout", "meter", meterID)
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeIdleTimeout, Error: "idle timeout"})
				return
			}
			// Anything else out of Recv is a wire-level fault: a malformed,
			// oversized, or truncated frame.
			h.met.codecErrors.Inc()
			h.met.rejected.Inc()
			_ = codec.Send(errorEnvelope(err))
			return
		}
		start := time.Now()
		if env.Type != TypeReading {
			h.met.rejected.Inc()
			_ = codec.Send(&Envelope{Type: TypeError, Code: CodeProtocol, Error: "expected reading"})
			return
		}
		if env.Reading.MeterID != meterID {
			h.met.rejected.Inc()
			mismatch := fmt.Errorf("%w: reading claims %q, session is %q", ErrSessionMismatch, env.Reading.MeterID, meterID)
			_ = codec.Send(errorEnvelope(mismatch))
			return
		}
		h.mu.Lock()
		kr := h.keyring
		h.mu.Unlock()
		if kr != nil {
			if err := kr.VerifyEnvelope(env); err != nil {
				h.met.authFailed.Inc()
				h.log.Warn("reading failed MAC verification", "meter", meterID)
				_ = codec.Send(&Envelope{Type: TypeError, Code: CodeAuth, Error: err.Error()})
				return
			}
		}
		h.store(env.Reading)
		err = codec.Send(&Envelope{Type: TypeAck, Ack: &AckMsg{Slot: env.Reading.Slot}})
		h.met.ingestLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			return
		}
	}
}

func (h *HeadEnd) store(r *ReadingMsg) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.readings[r.MeterID]
	if !ok {
		m = make(map[timeseries.Slot]float64)
		h.readings[r.MeterID] = m
	}
	m[timeseries.Slot(r.Slot)] = r.KW
	h.met.accepted.Inc()
}

// Close stops the listener and drains active sessions: handlers get
// DrainTimeout to finish their in-flight request, after which every
// registered connection is force-closed. Close therefore returns within a
// bounded time even when a meter holds an idle connection open.
func (h *HeadEnd) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return nil
	}
	h.closed = true
	ln := h.ln
	close(h.done)
	h.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(drained)
	}()
	timer := time.NewTimer(h.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-drained:
	case <-timer.C:
		h.mu.Lock()
		forced := 0
		for conn := range h.conns {
			h.met.forcedCloses.Inc()
			forced++
			_ = conn.Close()
		}
		h.mu.Unlock()
		if forced > 0 {
			h.log.Warn("force-closed stragglers at drain deadline", "count", forced)
		}
		<-drained
	}
	return err
}

// Meters returns the IDs that have reported at least one reading, sorted.
func (h *HeadEnd) Meters() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.readings))
	for id := range h.readings {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored readings for a meter.
func (h *HeadEnd) Count(meterID string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.readings[meterID])
}

// Reading fetches one stored reading.
func (h *HeadEnd) Reading(meterID string, slot timeseries.Slot) (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.readings[meterID][slot]
	return v, ok
}

// Series assembles the dense series [0, n) for a meter. Missing slots are
// an error: the detection pipeline must not silently treat gaps as zero
// consumption (that is what a 2A attack looks like).
func (h *HeadEnd) Series(meterID string, n int) (timeseries.Series, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.readings[meterID]
	if !ok {
		return nil, fmt.Errorf("ami: no readings for meter %q", meterID)
	}
	out := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		v, ok := m[timeseries.Slot(i)]
		if !ok {
			return nil, fmt.Errorf("ami: meter %q missing reading for slot %d", meterID, i)
		}
		out[i] = v
	}
	return out, nil
}
