package ami

import (
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
)

// Lifecycle defaults. Zero-valued HeadEndConfig fields fall back to these.
const (
	// DefaultMaxConns bounds concurrent meter sessions; the N+1th meter is
	// turned away with a CodeBusy error at accept time.
	DefaultMaxConns = 1024
	// DefaultIdleTimeout is the per-read deadline on a meter session. A
	// connection that sends nothing for this long is closed — the defence
	// against slowloris-style connection hoarding.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultDrainTimeout is how long Close waits for in-flight sessions
	// to finish before force-closing their connections.
	DefaultDrainTimeout = 5 * time.Second
)

// HeadEndConfig bounds a head-end's resource use. The zero value selects
// production defaults; tests shrink the timeouts.
type HeadEndConfig struct {
	// MaxConns is the concurrent connection limit (0 = DefaultMaxConns).
	MaxConns int
	// IdleTimeout is the per-read deadline (0 = DefaultIdleTimeout).
	IdleTimeout time.Duration
	// DrainTimeout is the Close grace period (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxFrameSize bounds one inbound wire frame (0 = DefaultMaxFrameSize).
	// A hostile meter streaming an endless frame is cut off at this bound
	// with a CodeOversized rejection instead of ballooning memory.
	MaxFrameSize int
	// MaxBatch caps readings per v2 batch frame (0 = DefaultMaxBatch),
	// advertised to v2 clients in the hello response.
	MaxBatch int
	// QueueDepth bounds each shard's async ingest queue, in jobs (sharded
	// head-ends only; 0 = DefaultShardQueueDepth). A full queue delays
	// that shard's acks — backpressure instead of unbounded buffering.
	QueueDepth int

	// WALDir enables the per-shard write-ahead log (sharded head-ends
	// only): every reading is appended to a segmented CRC32-framed log
	// before it is acknowledged, and NewSharded replays the log on startup.
	// Empty (the default) disables durability entirely — behavior is
	// identical to a WAL-less head-end.
	WALDir string
	// WALSync selects when appends reach stable storage
	// ("" = DefaultWALSync). See WALSyncPolicy.
	WALSync WALSyncPolicy
	// WALSyncInterval is the background fsync cadence under
	// WALSyncInterval policy (0 = DefaultWALSyncInterval).
	WALSyncInterval time.Duration
	// WALSegmentBytes rotates the active segment past this size
	// (0 = DefaultWALSegmentBytes).
	WALSegmentBytes int64
	// WALCompactBytes triggers snapshot+truncate compaction once a shard's
	// sealed segments exceed this size (0 = DefaultWALCompactBytes).
	WALCompactBytes int64
}

func (c *HeadEndConfig) applyDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxFrameSize <= 0 {
		c.MaxFrameSize = DefaultMaxFrameSize
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
}

// HeadEndStats is a snapshot of the head-end's ingestion counters. It is a
// compatibility view assembled from the registry-backed instruments (see
// metrics.go); the authoritative store is the obs.Registry, which an admin
// endpoint can export live.
type HeadEndStats struct {
	ActiveConns   int   // sessions currently being served
	TotalConns    int64 // sessions accepted since start
	LimitRejected int64 // connections turned away at the limit
	Accepted      int64 // readings stored
	Rejected      int64 // readings refused (protocol / session mismatch)
	AuthFailed    int64 // readings refused for bad MACs
	IdleTimeouts  int64 // sessions closed for idling past the deadline
	ForcedCloses  int64 // connections force-closed at Close's drain deadline
}

// HeadEnd is the utility-side collection server. It accepts meter
// connections, stores acknowledged readings, and exposes them to the
// control-center detection pipeline. Every active connection is tracked in
// a registry so Close can force-close stragglers after the drain timeout
// instead of waiting forever on an idle meter.
type HeadEnd struct {
	cfg HeadEndConfig

	mu       sync.Mutex
	ln       net.Listener
	readings map[string]map[timeseries.Slot]float64
	closed   bool
	keyring  *Keyring

	// conns tracks every live connection (value: true for accepted
	// sessions, false for busy-rejection handshakes); active counts only
	// the sessions, which is what the connection limit compares against.
	conns  map[net.Conn]bool
	active int

	met  *headEndMetrics
	log  *slog.Logger
	sink ReadingSink // accepted-reading tap (WithSink); nil = disabled

	done chan struct{} // closed when Close begins; handlers drain on it
	wg   sync.WaitGroup
}

// Metrics returns the registry holding this head-end's instruments, for
// export via obs.ServeAdmin or direct Snapshot().
func (h *HeadEnd) Metrics() *obs.Registry { return h.met.reg }

// AuthFailures returns how many readings were rejected for bad MACs.
func (h *HeadEnd) AuthFailures() int {
	return int(h.met.authFailed.Value())
}

// Stats snapshots the ingestion counters from the registry-backed
// instruments.
func (h *HeadEnd) Stats() HeadEndStats {
	h.mu.Lock()
	active := h.active
	h.mu.Unlock()
	m := h.met
	return HeadEndStats{
		ActiveConns:   active,
		TotalConns:    m.connsTotal.Value(),
		LimitRejected: m.limitRejected.Value(),
		Accepted:      m.accepted.Value(),
		Rejected:      m.rejected.Value(),
		AuthFailed:    m.authFailed.Value(),
		IdleTimeouts:  m.idleTimeouts.Value(),
		ForcedCloses:  m.forcedCloses.Value(),
	}
}

// Listen starts accepting connections on the given address ("127.0.0.1:0"
// for an ephemeral test port) and returns the bound address. A head-end
// listens at most once: a second Listen returns ErrListening rather than
// silently leaking the first listener and its accept loop.
func (h *HeadEnd) Listen(addr string) (string, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return "", fmt.Errorf("ami: head-end: %w", ErrClosed)
	}
	if h.ln != nil {
		h.mu.Unlock()
		return "", fmt.Errorf("ami: head-end: %w", ErrListening)
	}
	h.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ami: head-end listen: %w", err)
	}
	h.mu.Lock()
	if h.closed || h.ln != nil {
		reason := ErrClosed
		if h.ln != nil {
			reason = ErrListening
		}
		h.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("ami: head-end: %w", reason)
	}
	h.ln = ln
	h.mu.Unlock()

	h.log.Info("head-end listening", "addr", ln.Addr().String())
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// sessionEnv assembles the shared session state machine's environment.
// Built per connection; everything inside is read-only for the session's
// lifetime.
func (h *HeadEnd) sessionEnv() *sessionEnv {
	h.mu.Lock()
	kr := h.keyring
	h.mu.Unlock()
	return &sessionEnv{
		cfg:   &h.cfg,
		met:   h.met,
		kr:    kr,
		store: h,
		log:   h.log,
		done:  h.done,
	}
}

func (h *HeadEnd) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: normal shutdown.
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		if h.active >= h.cfg.MaxConns {
			h.conns[conn] = false
			h.mu.Unlock()
			h.met.limitRejected.Inc()
			h.log.Warn("connection rejected at limit", "remote", conn.RemoteAddr())
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				defer h.untrack(conn, false)
				rejectBusyConn(conn, h.cfg.IdleTimeout, h.cfg.MaxFrameSize)
			}()
			continue
		}
		h.conns[conn] = true
		h.active++
		h.met.activeConns.Set(float64(h.active))
		h.mu.Unlock()
		h.met.connsTotal.Inc()
		env := h.sessionEnv()
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer h.untrack(conn, true)
			env.serve(conn)
		}()
	}
}

func (h *HeadEnd) untrack(conn net.Conn, session bool) {
	h.mu.Lock()
	delete(h.conns, conn)
	if session {
		h.active--
		h.met.activeConns.Set(float64(h.active))
	}
	h.mu.Unlock()
}

// storeReading stores one accepted reading synchronously (ingestStore).
// The in-memory map cannot fail, so the error is always nil. The sink tap
// runs after the store apply and outside the lock, so a slow sink stalls
// only this meter's session, never the whole store.
func (h *HeadEnd) storeReading(r *ReadingMsg) error {
	h.mu.Lock()
	m, ok := h.readings[r.MeterID]
	if !ok {
		m = make(map[timeseries.Slot]float64)
		h.readings[r.MeterID] = m
	}
	m[timeseries.Slot(r.Slot)] = r.KW
	h.mu.Unlock()
	h.met.accepted.Inc()
	if h.sink != nil {
		h.sink(r.MeterID, []BatchReading{{Slot: r.Slot, KW: r.KW}})
	}
	return nil
}

// storeBatch stores an accepted batch under one lock hold (ingestStore).
func (h *HeadEnd) storeBatch(b *BatchMsg) error {
	h.mu.Lock()
	m, ok := h.readings[b.MeterID]
	if !ok {
		m = make(map[timeseries.Slot]float64, len(b.Readings))
		h.readings[b.MeterID] = m
	}
	for _, r := range b.Readings {
		m[timeseries.Slot(r.Slot)] = r.KW
	}
	h.mu.Unlock()
	h.met.accepted.Add(int64(len(b.Readings)))
	if h.sink != nil {
		h.sink(b.MeterID, b.Readings)
	}
	return nil
}

// Close stops the listener and drains active sessions: handlers get
// DrainTimeout to finish their in-flight request, after which every
// registered connection is force-closed. Close therefore returns within a
// bounded time even when a meter holds an idle connection open.
func (h *HeadEnd) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return nil
	}
	h.closed = true
	ln := h.ln
	close(h.done)
	h.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(drained)
	}()
	timer := time.NewTimer(h.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-drained:
	case <-timer.C:
		h.mu.Lock()
		forced := 0
		for conn := range h.conns {
			h.met.forcedCloses.Inc()
			forced++
			_ = conn.Close()
		}
		h.mu.Unlock()
		if forced > 0 {
			h.log.Warn("force-closed stragglers at drain deadline", "count", forced)
		}
		<-drained
	}
	return err
}

// Meters returns the IDs that have reported at least one reading, sorted.
func (h *HeadEnd) Meters() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.readings))
	for id := range h.readings {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored readings for a meter.
func (h *HeadEnd) Count(meterID string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.readings[meterID])
}

// Reading fetches one stored reading.
func (h *HeadEnd) Reading(meterID string, slot timeseries.Slot) (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.readings[meterID][slot]
	return v, ok
}

// Series assembles the dense series [0, n) for a meter. Missing slots are
// an error: the detection pipeline must not silently treat gaps as zero
// consumption (that is what a 2A attack looks like).
func (h *HeadEnd) Series(meterID string, n int) (timeseries.Series, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.readings[meterID]
	if !ok {
		return nil, fmt.Errorf("ami: no readings for meter %q", meterID)
	}
	out := make(timeseries.Series, n)
	for i := 0; i < n; i++ {
		v, ok := m[timeseries.Slot(i)]
		if !ok {
			return nil, fmt.Errorf("ami: meter %q missing reading for slot %d", meterID, i)
		}
		out[i] = v
	}
	return out, nil
}
