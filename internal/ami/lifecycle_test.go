package ami

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/meter"
	"repro/internal/timeseries"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The seed bug this PR fixes: Close used to block forever on wg.Wait()
// while any meter held an idle connection. With the registry + drain
// timeout it must return within a bounded time and account the force-close.
func TestHeadEndCloseBoundedWithIdleConn(t *testing.T) {
	h := New(WithConfig(HeadEndConfig{DrainTimeout: 100 * time.Millisecond}))
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// One acked reading proves the handler is live and registered; then the
	// meter goes idle with the connection open.
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session registration", func() bool { return h.Stats().ActiveConns == 1 })

	start := time.Now()
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Close took %v with an idle connection; want bounded by the drain timeout", elapsed)
	}
	if st := h.Stats(); st.ForcedCloses == 0 {
		t.Errorf("idle connection was not accounted as force-closed: %+v", st)
	}
}

func TestMITMCloseBoundedWithIdleConn(t *testing.T) {
	_, upstream := startHeadEnd(t)
	mitm := NewMITMWith(upstream, nil, MITMConfig{DrainTimeout: 100 * time.Millisecond})
	proxyAddr, err := mitm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(proxyAddr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := mitm.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("MITM Close took %v with an idle connection", elapsed)
	}
}

// A second Close (and Close before Listen) must stay cheap and safe.
func TestCloseIdempotent(t *testing.T) {
	h := New(WithConfig(HeadEndConfig{DrainTimeout: 50 * time.Millisecond}))
	if err := h.Close(); err != nil {
		t.Fatalf("close before listen: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	m := NewMITMWith("127.0.0.1:1", nil, MITMConfig{DrainTimeout: 50 * time.Millisecond})
	if err := m.Close(); err != nil {
		t.Fatalf("mitm close before listen: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("mitm second close: %v", err)
	}
}

func TestListenTwiceRejected(t *testing.T) {
	h, _ := startHeadEnd(t)
	if _, err := h.Listen("127.0.0.1:0"); !errors.Is(err, ErrListening) {
		t.Errorf("second head-end Listen = %v, want ErrListening", err)
	}
	mitm := NewMITM("127.0.0.1:1", nil)
	if _, err := mitm.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mitm.Close() }()
	if _, err := mitm.Listen("127.0.0.1:0"); !errors.Is(err, ErrListening) {
		t.Errorf("second MITM Listen = %v, want ErrListening", err)
	}
}

func TestHeadEndConnectionLimit(t *testing.T) {
	h := New(WithConfig(HeadEndConfig{MaxConns: 2, DrainTimeout: 200 * time.Millisecond}))
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()

	// Fill the limit with two live sessions.
	var first [2]*Client
	for i := range first {
		id := string(rune('a' + i))
		c, err := Dial(addr, id, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		if err := c.Send(meter.Reading{MeterID: id, Slot: 0, KW: 1}); err != nil {
			t.Fatal(err)
		}
		first[i] = c
	}
	waitFor(t, "both sessions registered", func() bool { return h.Stats().ActiveConns == 2 })

	// The N+1th meter is turned away with a typed, transient busy error.
	extra, err := Dial(addr, "overflow", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = extra.Close() }()
	err = extra.Send(meter.Reading{MeterID: "overflow", Slot: 0, KW: 1})
	if err == nil {
		t.Fatal("send past the connection limit should fail")
	}
	if !errors.Is(err, ErrBusy) {
		t.Errorf("limit rejection = %v, want ErrBusy", err)
	}
	if errors.Is(err, ErrRejected) {
		t.Error("busy must classify as transient, not a permanent rejection")
	}

	// ... without affecting the first N.
	for i, c := range first {
		id := string(rune('a' + i))
		if err := c.Send(meter.Reading{MeterID: id, Slot: 1, KW: 1}); err != nil {
			t.Errorf("existing session %s disturbed by limit rejection: %v", id, err)
		}
	}
	if st := h.Stats(); st.LimitRejected != 1 {
		t.Errorf("LimitRejected = %d, want 1", st.LimitRejected)
	}
}

func TestHeadEndIdleTimeoutCutsConnection(t *testing.T) {
	h := New(WithConfig(HeadEndConfig{IdleTimeout: 80 * time.Millisecond, DrainTimeout: 100 * time.Millisecond}))
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "idle timeout accounting", func() bool { return h.Stats().IdleTimeouts >= 1 })
	// The cut is advisory-transient: whatever surfaces client-side, it must
	// not classify as a permanent rejection.
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 1, KW: 1}); err == nil {
		t.Error("send on an idle-timed-out session should fail")
	} else if errors.Is(err, ErrRejected) {
		t.Errorf("idle timeout classified as permanent rejection: %v", err)
	}
}

func TestSessionMismatchTyped(t *testing.T) {
	_, addr := startHeadEnd(t)
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Bypass the client's own validation to hit the server check.
	raw := &Envelope{Type: TypeReading, Reading: &ReadingMsg{MeterID: "evil", Slot: 0, KW: 1}}
	if err := c.codec.Send(raw); err != nil {
		t.Fatal(err)
	}
	resp, err := c.codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeError || resp.Code != CodeSessionMismatch {
		t.Fatalf("expected session_mismatch error envelope, got %+v", resp)
	}
	perr := &ProtocolError{Code: resp.Code, Message: resp.Error}
	if !errors.Is(perr, ErrSessionMismatch) || !errors.Is(perr, ErrRejected) {
		t.Errorf("session mismatch must match both sentinels: %v", perr)
	}
}

func TestAuthRejectionTyped(t *testing.T) {
	h := New(WithKeyring(NewKeyring(map[string][]byte{"m1": []byte("right-key")})))
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()

	c, err := DialAuth(addr, "m1", []byte("wrong-key"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	err = c.Send(meter.Reading{MeterID: "m1", Slot: 7, KW: 1})
	if err == nil {
		t.Fatal("bad key should be rejected")
	}
	if !errors.Is(err, ErrRejected) {
		t.Errorf("auth failure must classify as a permanent rejection: %v", err)
	}
	var ae *AuthError
	if !errors.As(err, &ae) {
		t.Fatalf("auth rejection should carry *AuthError, got %v", err)
	}
	if ae.MeterID != "m1" || ae.Slot != 7 {
		t.Errorf("AuthError = %+v, want meter m1 slot 7", ae)
	}
	st := h.Stats()
	if st.AuthFailed != 1 || st.Accepted != 0 {
		t.Errorf("stats = %+v, want 1 auth failure and 0 accepted", st)
	}
}

func TestHeadEndStatsCounts(t *testing.T) {
	h, addr := startHeadEnd(t)
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if err := c.Send(meter.Reading{MeterID: "m1", Slot: timeseries.Slot(s), KW: 1}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()
	waitFor(t, "connection teardown", func() bool { return h.Stats().ActiveConns == 0 })
	st := h.Stats()
	if st.Accepted != 3 || st.TotalConns != 1 || st.Rejected != 0 || st.ForcedCloses != 0 {
		t.Errorf("stats = %+v, want 3 accepted over 1 clean connection", st)
	}
}

func TestRetryDelayBoundsAndCap(t *testing.T) {
	if d := retryDelay(0, 5); d != 0 {
		t.Errorf("zero base must disable backoff, got %v", d)
	}
	base := 10 * time.Millisecond
	for attempt := 1; attempt <= 60; attempt++ {
		want := base << (attempt - 1)
		if attempt > 12 { // past the cap (10ms << 11 > 30s)
			want = maxRetryBackoff
		}
		if want > maxRetryBackoff {
			want = maxRetryBackoff
		}
		for trial := 0; trial < 20; trial++ {
			d := retryDelay(base, attempt)
			if d < want/2 || d >= want/2+want {
				t.Fatalf("attempt %d: delay %v outside jitter window [%v, %v)", attempt, d, want/2, want/2+want)
			}
		}
	}
}

func TestSendContextCancelAbortsBackoff(t *testing.T) {
	// Dead upstream with an hour-scale backoff: only context cancellation
	// can bring Send back quickly.
	rc, err := NewReliableClient("127.0.0.1:1", "m1", nil, 50*time.Millisecond, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = rc.SendContext(ctx, meter.Reading{MeterID: "m1", Slot: 0, KW: 1})
	if err == nil {
		t.Fatal("send to dead upstream should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation did not abort the backoff sleep (took %v)", time.Since(start))
	}
}

// SendAll wraps per-reading failures; the wrap must stay classifiable.
func TestSendAllWrappedErrorsClassify(t *testing.T) {
	h := New(WithKeyring(NewKeyring(map[string][]byte{"m1": []byte("right-key")})))
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()
	rc, err := NewReliableClient(addr, "m1", []byte("wrong-key"), time.Second, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	err = rc.SendAll([]meter.Reading{{MeterID: "m1", Slot: 0, KW: 1}})
	if err == nil {
		t.Fatal("SendAll with a bad key should fail")
	}
	if !errors.Is(err, ErrRejected) {
		t.Errorf("wrapped SendAll error lost its classification: %v", err)
	}
	var ae *AuthError
	if !errors.As(err, &ae) {
		t.Errorf("wrapped SendAll error lost the *AuthError cause: %v", err)
	}
	if h.AuthFailures() != 1 {
		t.Errorf("AuthFailures = %d, want exactly 1 (no retry of a permanent rejection)", h.AuthFailures())
	}
}
