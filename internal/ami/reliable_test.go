package ami

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
	"repro/internal/timeseries"
)

// chaosProxy forwards raw bytes between meter and head-end but kills each
// connection after a byte budget — mid-frame, mid-ack, wherever the budget
// lands. It is the failure-injection harness for ReliableClient.
type chaosProxy struct {
	upstream string
	budget   int

	mu    sync.Mutex
	ln    net.Listener
	kills int

	wg sync.WaitGroup
}

func newChaosProxy(upstream string, budgetBytes int) *chaosProxy {
	return &chaosProxy{upstream: upstream, budget: budgetBytes}
}

func (p *chaosProxy) listen(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.handle(conn)
			}()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		p.wg.Wait()
	})
	return ln.Addr().String()
}

func (p *chaosProxy) handle(down net.Conn) {
	defer func() { _ = down.Close() }()
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return
	}
	defer func() { _ = up.Close() }()

	// Copy both directions, counting bytes; kill when the budget is spent.
	var used int
	var mu sync.Mutex
	kill := make(chan struct{})
	var once sync.Once
	account := func(n int) {
		mu.Lock()
		used += n
		spent := used >= p.budget
		mu.Unlock()
		if spent {
			once.Do(func() {
				p.mu.Lock()
				p.kills++
				p.mu.Unlock()
				close(kill)
			})
		}
	}
	var cw sync.WaitGroup
	pipe := func(dst, src net.Conn) {
		defer cw.Done()
		// Tearing down both directions on exit keeps the sibling pipe from
		// spinning on a half-open session.
		defer func() {
			_ = dst.Close()
			_ = src.Close()
		}()
		buf := make([]byte, 256)
		for {
			select {
			case <-kill:
				_ = dst.Close()
				_ = src.Close()
				return
			default:
			}
			_ = src.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, err := src.Read(buf)
			if n > 0 {
				account(n)
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue
				}
				if err == io.EOF {
					return
				}
				return
			}
		}
	}
	cw.Add(2)
	go pipe(up, down)
	go pipe(down, up)
	cw.Wait()
}

func (p *chaosProxy) killCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kills
}

func TestReliableClientSurvivesConnectionChaos(t *testing.T) {
	head, upstream := startHeadEnd(t)
	// Each reading round-trip is ~150 bytes; a 500-byte budget kills every
	// connection after a handful of readings.
	proxy := newChaosProxy(upstream, 500)
	proxyAddr := proxy.listen(t)

	rc, err := NewReliableClient(proxyAddr, "m1", nil, time.Second, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()

	const n = 40
	for s := 0; s < n; s++ {
		r := meter.Reading{MeterID: "m1", Slot: timeseries.Slot(s), KW: float64(s) + 0.25}
		if err := rc.Send(r); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}
	if got := head.Count("m1"); got != n {
		t.Fatalf("head-end stored %d readings, want %d", got, n)
	}
	// Every reading must be intact despite the chaos.
	series, err := head.Series("m1", n)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		if series[s] != float64(s)+0.25 {
			t.Fatalf("slot %d corrupted: %g", s, series[s])
		}
	}
	if proxy.killCount() == 0 {
		t.Fatal("chaos proxy never killed a connection — the test exercised nothing")
	}
	t.Logf("delivered %d readings across %d injected connection failures", n, proxy.killCount())
}

func TestReliableClientGivesUpEventually(t *testing.T) {
	// Dead upstream: every dial fails; the retry budget must bound the
	// attempt count rather than spin forever.
	rc, err := NewReliableClient("127.0.0.1:1", "m1", nil, 50*time.Millisecond, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = rc.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1})
	if err == nil {
		t.Fatal("send to dead upstream should fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop took implausibly long")
	}
}

func TestReliableClientDoesNotRetryRejections(t *testing.T) {
	// An auth rejection is permanent: the reliable client must not burn
	// its retry budget redialing.
	head := New(WithKeyring(NewKeyring(map[string][]byte{"m1": []byte("right-key")})))
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = head.Close() }()

	rc, err := NewReliableClient(addr, "m1", []byte("wrong-key"), time.Second, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	err = rc.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1})
	if err == nil {
		t.Fatal("bad key should be rejected")
	}
	if head.AuthFailures() != 1 {
		t.Errorf("AuthFailures = %d, want exactly 1 (no retries of a rejection)", head.AuthFailures())
	}
}

func TestReliableClientValidation(t *testing.T) {
	if _, err := NewReliableClient("x", "", nil, time.Second, 3, 0); err == nil {
		t.Error("empty meter ID should error")
	}
	rc, err := NewReliableClient("x", "m1", nil, time.Second, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rc.retries != 1 {
		t.Error("retries should clamp to >= 1")
	}
	if err := rc.Close(); err != nil {
		t.Error("closing an idle client should succeed")
	}
}

func TestReliableClientSendAll(t *testing.T) {
	head, upstream := startHeadEnd(t)
	rc, err := NewReliableClient(upstream, "m1", nil, time.Second, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	rs := make([]meter.Reading, 5)
	for i := range rs {
		rs[i] = meter.Reading{MeterID: "m1", Slot: timeseries.Slot(i), KW: 2}
	}
	if err := rc.SendAll(rs); err != nil {
		t.Fatal(err)
	}
	if head.Count("m1") != 5 {
		t.Errorf("Count = %d", head.Count("m1"))
	}
}

// The documented backoff contract: attempt n waits base*2^(n-1), capped at
// maxRetryBackoff, jittered uniformly over [d/2, 3d/2).
func TestRetryDelayJitterStaysInBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	for attempt := 1; attempt <= 12; attempt++ {
		want := base
		for i := 1; i < attempt && want < maxRetryBackoff; i++ {
			want *= 2
		}
		if want > maxRetryBackoff {
			want = maxRetryBackoff
		}
		for trial := 0; trial < 200; trial++ {
			got := retryDelay(base, attempt)
			if got < want/2 || got >= want+want/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, want/2, want+want/2)
			}
		}
	}
}

// Deep retry schedules must flatten at the cap: even attempt 60 (which
// would overflow a naive base<<59) stays within the 30s cap's jitter band.
func TestRetryDelayRespectsCap(t *testing.T) {
	for _, attempt := range []int{20, 60} {
		for trial := 0; trial < 100; trial++ {
			got := retryDelay(time.Second, attempt)
			if got < maxRetryBackoff/2 || got >= maxRetryBackoff+maxRetryBackoff/2 {
				t.Fatalf("attempt %d: delay %v outside the capped band [%v, %v)",
					attempt, got, maxRetryBackoff/2, maxRetryBackoff+maxRetryBackoff/2)
			}
		}
	}
}

// A zero or negative base disables the pause entirely (the test fast path).
func TestRetryDelayZeroBase(t *testing.T) {
	for _, base := range []time.Duration{0, -time.Second} {
		if got := retryDelay(base, 5); got != 0 {
			t.Fatalf("retryDelay(%v, 5) = %v, want 0", base, got)
		}
	}
}

// Cancelling the context mid-backoff must abort the send immediately, not
// after the backoff timer expires.
func TestSendContextAbortsMidBackoff(t *testing.T) {
	// No listener at this address: every attempt fails at dial, so the
	// client sits in its inter-attempt backoff almost immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	// A 20s base would hold the second attempt for >=10s without the
	// cancellation path; the deadline below is far tighter.
	rc, err := NewReliableClient(addr, "m1", nil, 200*time.Millisecond, 5, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sendErr := rc.SendContext(ctx, meter.Reading{MeterID: "m1", Slot: 0, KW: 1})
	elapsed := time.Since(start)
	if sendErr == nil {
		t.Fatal("send succeeded against a dead address")
	}
	if !errors.Is(sendErr, context.Canceled) {
		t.Fatalf("send error = %v, want context.Canceled in the chain", sendErr)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("send took %v to abort; cancellation must interrupt the backoff sleep", elapsed)
	}

	// The batch path shares the loop and must abort the same way.
	rb, err := NewReliableBatchClient(addr, "m1", nil, 200*time.Millisecond, 5, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rb.Close() }()
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel2()
	}()
	start = time.Now()
	sendErr = rb.SendAllContext(ctx2, []meter.Reading{{MeterID: "m1", Slot: 0, KW: 1}})
	if sendErr == nil || !errors.Is(sendErr, context.Canceled) {
		t.Fatalf("batch send error = %v, want context.Canceled", sendErr)
	}
	if elapsed = time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batch send took %v to abort", elapsed)
	}
}
