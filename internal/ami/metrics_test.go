package ami

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// TestStatsMatchesRegistry is the regression contract of the observability
// refactor: HeadEnd.Stats() is a view over the registry-backed instruments,
// so after a concurrent collection run the two must agree exactly.
func TestStatsMatchesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	key := []byte("metrics-test-key")
	keys := make(map[string][]byte)
	const meters = 8
	for i := 0; i < meters; i++ {
		keys[fmt.Sprintf("m%d", i)] = key
	}
	head := New(
		WithMetrics(reg),
		WithKeyring(NewKeyring(keys)),
		WithIdleTimeout(2*time.Second),
		WithDrainTimeout(time.Second),
	)
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const perMeter = 25
	var wg sync.WaitGroup
	for i := 0; i < meters; i++ {
		wg.Add(1)
		go func(id string, signed bool) {
			defer wg.Done()
			k := key
			if !signed {
				k = []byte("wrong-key") // drives the auth-failure counter
			}
			c, err := DialAuth(addr, id, k, time.Second)
			if err != nil {
				t.Errorf("dial %s: %v", id, err)
				return
			}
			defer c.Close()
			for s := 0; s < perMeter; s++ {
				err := c.Send(meter.Reading{MeterID: id, Slot: timeseries.Slot(s), KW: 1.5})
				if err != nil {
					if signed {
						t.Errorf("send %s slot %d: %v", id, s, err)
					}
					return // unsigned meters are cut off at the first reading
				}
			}
		}(fmt.Sprintf("m%d", i), i%4 != 0)
	}
	wg.Wait()
	if err := head.Close(); err != nil {
		t.Fatal(err)
	}

	st := head.Stats()
	// Get-or-create returns the same instruments the head-end bumps.
	regTotal := reg.Counter("fdeta_ami_connections_total", "").Value()
	regAccepted := reg.Counter("fdeta_ami_readings_accepted_total", "").Value()
	regRejected := reg.Counter("fdeta_ami_readings_rejected_total", "", obs.L("reason", "protocol")).Value()
	regAuth := reg.Counter("fdeta_ami_readings_rejected_total", "", obs.L("reason", "auth")).Value()
	regLimit := reg.Counter("fdeta_ami_connections_rejected_total", "", obs.L("reason", "limit")).Value()
	regIdle := reg.Counter("fdeta_ami_idle_timeouts_total", "").Value()
	regForced := reg.Counter("fdeta_ami_forced_closes_total", "").Value()

	if st.TotalConns != regTotal || st.Accepted != regAccepted ||
		st.Rejected != regRejected || st.AuthFailed != regAuth ||
		st.LimitRejected != regLimit || st.IdleTimeouts != regIdle ||
		st.ForcedCloses != regForced {
		t.Errorf("Stats() diverges from registry:\nstats    = %+v\nregistry = total %d accepted %d rejected %d auth %d limit %d idle %d forced %d",
			st, regTotal, regAccepted, regRejected, regAuth, regLimit, regIdle, regForced)
	}

	// The workload itself must be visible: 6 of 8 meters signed correctly.
	wantAccepted := int64(6 * perMeter)
	if st.Accepted != wantAccepted {
		t.Errorf("accepted = %d, want %d", st.Accepted, wantAccepted)
	}
	if st.AuthFailed != 2 {
		t.Errorf("auth failures = %d, want 2", st.AuthFailed)
	}
	if st.TotalConns != meters {
		t.Errorf("total conns = %d, want %d", st.TotalConns, meters)
	}
	if st.ActiveConns != 0 {
		t.Errorf("active conns after close = %d, want 0", st.ActiveConns)
	}

	// Per-message ingest latency is observed exactly once per accepted
	// reading (rejections bail out before the ack cycle completes).
	hist := reg.Histogram("fdeta_ami_ingest_latency_seconds", "", obs.LatencyBuckets())
	if got := hist.Count(); got != uint64(wantAccepted) {
		t.Errorf("latency observations = %d, want %d", got, wantAccepted)
	}

	// The gauge mirrors the mutex-guarded session count.
	if v := reg.Gauge("fdeta_ami_connections_active", "").Value(); v != 0 {
		t.Errorf("active connections gauge = %g, want 0", v)
	}
}

// TestIngestLatencyMatchesAcceptedMessages pins the observation point of
// the ingest-latency histogram: exactly one sample per *accepted message*
// (a single reading or a whole batch frame), never for rejected traffic.
// The original instrumentation sampled before validation, so auth failures
// and protocol rejects polluted the latency distribution.
func TestIngestLatencyMatchesAcceptedMessages(t *testing.T) {
	reg := obs.NewRegistry()
	key := []byte("latency-test-key")
	head := New(
		WithMetrics(reg),
		WithKeyring(NewKeyring(map[string][]byte{"good": key, "bad": key})),
		WithConfig(HeadEndConfig{MaxBatch: 10, DrainTimeout: time.Second}),
	)
	addr, err := head.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer head.Close()

	// 5 accepted v1 singles → 5 observations, 5 readings.
	v1, err := DialAuth(addr, "good", key, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if err := v1.Send(meter.Reading{MeterID: "good", Slot: timeseries.Slot(s), KW: 1}); err != nil {
			t.Fatal(err)
		}
	}
	_ = v1.Close()

	// One auth-rejected single → 0 observations.
	rej, err := DialAuth(addr, "bad", []byte("wrong-key"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := rej.Send(meter.Reading{MeterID: "bad", Slot: 0, KW: 1}); err == nil {
		t.Fatal("bad-key reading was accepted")
	}
	_ = rej.Close()

	// 20 readings over a 10-cap v2 session → 2 batch frames → 2 observations.
	v2, err := DialBatch(addr, "good", key, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]meter.Reading, 20)
	for i := range rs {
		rs[i] = meter.Reading{MeterID: "good", Slot: timeseries.Slot(100 + i), KW: 2}
	}
	if err := v2.SendBatch(rs); err != nil {
		t.Fatal(err)
	}
	_ = v2.Close()

	hist := reg.Histogram("fdeta_ami_ingest_latency_seconds", "", obs.FineLatencyBuckets())
	if got := hist.Count(); got != 7 {
		t.Errorf("latency observations = %d, want 7 (5 singles + 2 batch frames)", got)
	}
	st := head.Stats()
	if st.Accepted != 25 {
		t.Errorf("accepted readings = %d, want 25", st.Accepted)
	}
	if st.AuthFailed != 1 {
		t.Errorf("auth failures = %d, want 1", st.AuthFailed)
	}
	if got := reg.Counter(metricBatchFrames, "").Value(); got != 2 {
		t.Errorf("batch frames = %d, want 2", got)
	}
	if h := reg.Histogram(metricBatchSize, "", batchSizeBuckets()); h.Count() != 2 || h.Sum() != 20 {
		t.Errorf("batch size histogram = count %d sum %g, want count 2 sum 20", h.Count(), h.Sum())
	}
}

// TestPrivateRegistriesDoNotShare: two head-ends without WithMetrics must
// not bleed counters into each other (the old package had one stats struct
// per instance; the registry design must preserve that).
func TestPrivateRegistriesDoNotShare(t *testing.T) {
	a := New()
	b := New()
	if a.Metrics() == b.Metrics() {
		t.Fatal("two default head-ends share a metrics registry")
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := Dial(addr, "m1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(meter.Reading{MeterID: "m1", Slot: 0, KW: 1}); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Accepted; got != 1 {
		t.Errorf("head-end a accepted = %d, want 1", got)
	}
	if got := b.Stats().Accepted; got != 0 {
		t.Errorf("head-end b accepted = %d, want 0", got)
	}
}
